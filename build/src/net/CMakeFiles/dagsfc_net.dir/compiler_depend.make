# Empty compiler generated dependencies file for dagsfc_net.
# This may be replaced when dependencies are built.
