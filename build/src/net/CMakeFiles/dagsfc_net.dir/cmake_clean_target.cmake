file(REMOVE_RECURSE
  "libdagsfc_net.a"
)
