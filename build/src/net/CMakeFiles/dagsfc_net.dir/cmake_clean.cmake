file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_net.dir/io.cpp.o"
  "CMakeFiles/dagsfc_net.dir/io.cpp.o.d"
  "CMakeFiles/dagsfc_net.dir/ledger.cpp.o"
  "CMakeFiles/dagsfc_net.dir/ledger.cpp.o.d"
  "CMakeFiles/dagsfc_net.dir/network.cpp.o"
  "CMakeFiles/dagsfc_net.dir/network.cpp.o.d"
  "CMakeFiles/dagsfc_net.dir/vnf.cpp.o"
  "CMakeFiles/dagsfc_net.dir/vnf.cpp.o.d"
  "libdagsfc_net.a"
  "libdagsfc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
