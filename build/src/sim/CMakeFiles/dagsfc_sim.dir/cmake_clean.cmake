file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_sim.dir/config.cpp.o"
  "CMakeFiles/dagsfc_sim.dir/config.cpp.o.d"
  "CMakeFiles/dagsfc_sim.dir/dynamic.cpp.o"
  "CMakeFiles/dagsfc_sim.dir/dynamic.cpp.o.d"
  "CMakeFiles/dagsfc_sim.dir/failover.cpp.o"
  "CMakeFiles/dagsfc_sim.dir/failover.cpp.o.d"
  "CMakeFiles/dagsfc_sim.dir/runner.cpp.o"
  "CMakeFiles/dagsfc_sim.dir/runner.cpp.o.d"
  "CMakeFiles/dagsfc_sim.dir/scenario.cpp.o"
  "CMakeFiles/dagsfc_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/dagsfc_sim.dir/sweep.cpp.o"
  "CMakeFiles/dagsfc_sim.dir/sweep.cpp.o.d"
  "libdagsfc_sim.a"
  "libdagsfc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
