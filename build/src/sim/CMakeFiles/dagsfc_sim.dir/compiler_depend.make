# Empty compiler generated dependencies file for dagsfc_sim.
# This may be replaced when dependencies are built.
