file(REMOVE_RECURSE
  "libdagsfc_sim.a"
)
