
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/dagsfc_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/dagsfc_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/dynamic.cpp" "src/sim/CMakeFiles/dagsfc_sim.dir/dynamic.cpp.o" "gcc" "src/sim/CMakeFiles/dagsfc_sim.dir/dynamic.cpp.o.d"
  "/root/repo/src/sim/failover.cpp" "src/sim/CMakeFiles/dagsfc_sim.dir/failover.cpp.o" "gcc" "src/sim/CMakeFiles/dagsfc_sim.dir/failover.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/dagsfc_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/dagsfc_sim.dir/runner.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/dagsfc_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/dagsfc_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/dagsfc_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/dagsfc_sim.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dagsfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/dagsfc_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dagsfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dagsfc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dagsfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
