file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_sfc.dir/dag_sfc.cpp.o"
  "CMakeFiles/dagsfc_sfc.dir/dag_sfc.cpp.o.d"
  "CMakeFiles/dagsfc_sfc.dir/generator.cpp.o"
  "CMakeFiles/dagsfc_sfc.dir/generator.cpp.o.d"
  "CMakeFiles/dagsfc_sfc.dir/io.cpp.o"
  "CMakeFiles/dagsfc_sfc.dir/io.cpp.o.d"
  "CMakeFiles/dagsfc_sfc.dir/parallelism.cpp.o"
  "CMakeFiles/dagsfc_sfc.dir/parallelism.cpp.o.d"
  "CMakeFiles/dagsfc_sfc.dir/transform.cpp.o"
  "CMakeFiles/dagsfc_sfc.dir/transform.cpp.o.d"
  "libdagsfc_sfc.a"
  "libdagsfc_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
