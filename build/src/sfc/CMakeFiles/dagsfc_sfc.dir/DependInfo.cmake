
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/dag_sfc.cpp" "src/sfc/CMakeFiles/dagsfc_sfc.dir/dag_sfc.cpp.o" "gcc" "src/sfc/CMakeFiles/dagsfc_sfc.dir/dag_sfc.cpp.o.d"
  "/root/repo/src/sfc/generator.cpp" "src/sfc/CMakeFiles/dagsfc_sfc.dir/generator.cpp.o" "gcc" "src/sfc/CMakeFiles/dagsfc_sfc.dir/generator.cpp.o.d"
  "/root/repo/src/sfc/io.cpp" "src/sfc/CMakeFiles/dagsfc_sfc.dir/io.cpp.o" "gcc" "src/sfc/CMakeFiles/dagsfc_sfc.dir/io.cpp.o.d"
  "/root/repo/src/sfc/parallelism.cpp" "src/sfc/CMakeFiles/dagsfc_sfc.dir/parallelism.cpp.o" "gcc" "src/sfc/CMakeFiles/dagsfc_sfc.dir/parallelism.cpp.o.d"
  "/root/repo/src/sfc/transform.cpp" "src/sfc/CMakeFiles/dagsfc_sfc.dir/transform.cpp.o" "gcc" "src/sfc/CMakeFiles/dagsfc_sfc.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dagsfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dagsfc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dagsfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
