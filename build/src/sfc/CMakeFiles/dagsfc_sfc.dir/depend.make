# Empty dependencies file for dagsfc_sfc.
# This may be replaced when dependencies are built.
