file(REMOVE_RECURSE
  "libdagsfc_sfc.a"
)
