
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backtracking.cpp" "src/core/CMakeFiles/dagsfc_core.dir/backtracking.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/backtracking.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/dagsfc_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/dagsfc_core.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/batch.cpp.o.d"
  "/root/repo/src/core/delay.cpp" "src/core/CMakeFiles/dagsfc_core.dir/delay.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/delay.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/dagsfc_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/ilp.cpp" "src/core/CMakeFiles/dagsfc_core.dir/ilp.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/ilp.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/dagsfc_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/model.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/dagsfc_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/report.cpp.o.d"
  "/root/repo/src/core/search_tree.cpp" "src/core/CMakeFiles/dagsfc_core.dir/search_tree.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/search_tree.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/core/CMakeFiles/dagsfc_core.dir/solution.cpp.o" "gcc" "src/core/CMakeFiles/dagsfc_core.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfc/CMakeFiles/dagsfc_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dagsfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dagsfc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dagsfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
