# Empty compiler generated dependencies file for dagsfc_core.
# This may be replaced when dependencies are built.
