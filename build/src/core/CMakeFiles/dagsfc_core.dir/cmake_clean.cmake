file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_core.dir/backtracking.cpp.o"
  "CMakeFiles/dagsfc_core.dir/backtracking.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/baselines.cpp.o"
  "CMakeFiles/dagsfc_core.dir/baselines.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/batch.cpp.o"
  "CMakeFiles/dagsfc_core.dir/batch.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/delay.cpp.o"
  "CMakeFiles/dagsfc_core.dir/delay.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/exact.cpp.o"
  "CMakeFiles/dagsfc_core.dir/exact.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/ilp.cpp.o"
  "CMakeFiles/dagsfc_core.dir/ilp.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/model.cpp.o"
  "CMakeFiles/dagsfc_core.dir/model.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/report.cpp.o"
  "CMakeFiles/dagsfc_core.dir/report.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/search_tree.cpp.o"
  "CMakeFiles/dagsfc_core.dir/search_tree.cpp.o.d"
  "CMakeFiles/dagsfc_core.dir/solution.cpp.o"
  "CMakeFiles/dagsfc_core.dir/solution.cpp.o.d"
  "libdagsfc_core.a"
  "libdagsfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
