file(REMOVE_RECURSE
  "libdagsfc_core.a"
)
