file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_util.dir/flags.cpp.o"
  "CMakeFiles/dagsfc_util.dir/flags.cpp.o.d"
  "CMakeFiles/dagsfc_util.dir/log.cpp.o"
  "CMakeFiles/dagsfc_util.dir/log.cpp.o.d"
  "CMakeFiles/dagsfc_util.dir/rng.cpp.o"
  "CMakeFiles/dagsfc_util.dir/rng.cpp.o.d"
  "CMakeFiles/dagsfc_util.dir/stats.cpp.o"
  "CMakeFiles/dagsfc_util.dir/stats.cpp.o.d"
  "CMakeFiles/dagsfc_util.dir/table.cpp.o"
  "CMakeFiles/dagsfc_util.dir/table.cpp.o.d"
  "CMakeFiles/dagsfc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dagsfc_util.dir/thread_pool.cpp.o.d"
  "libdagsfc_util.a"
  "libdagsfc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
