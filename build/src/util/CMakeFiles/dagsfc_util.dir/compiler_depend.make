# Empty compiler generated dependencies file for dagsfc_util.
# This may be replaced when dependencies are built.
