file(REMOVE_RECURSE
  "libdagsfc_util.a"
)
