file(REMOVE_RECURSE
  "libdagsfc_graph.a"
)
