file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_graph.dir/bfs.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/dot.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/dot.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/generator.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/generator.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/graph.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/steiner.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/steiner.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/topologies.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/topologies.cpp.o.d"
  "CMakeFiles/dagsfc_graph.dir/yen.cpp.o"
  "CMakeFiles/dagsfc_graph.dir/yen.cpp.o.d"
  "libdagsfc_graph.a"
  "libdagsfc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
