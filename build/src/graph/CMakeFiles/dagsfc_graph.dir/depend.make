# Empty dependencies file for dagsfc_graph.
# This may be replaced when dependencies are built.
