
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/bfs.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/bfs.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/generator.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/generator.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/generator.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/steiner.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/steiner.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/steiner.cpp.o.d"
  "/root/repo/src/graph/topologies.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/topologies.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/topologies.cpp.o.d"
  "/root/repo/src/graph/yen.cpp" "src/graph/CMakeFiles/dagsfc_graph.dir/yen.cpp.o" "gcc" "src/graph/CMakeFiles/dagsfc_graph.dir/yen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dagsfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
