file(REMOVE_RECURSE
  "CMakeFiles/dagsfc_cli.dir/dagsfc_cli.cpp.o"
  "CMakeFiles/dagsfc_cli.dir/dagsfc_cli.cpp.o.d"
  "dagsfc_cli"
  "dagsfc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagsfc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
