# Empty compiler generated dependencies file for dagsfc_cli.
# This may be replaced when dependencies are built.
