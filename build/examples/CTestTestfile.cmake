# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_enterprise_chain]=] "/root/repo/build/examples/enterprise_chain")
set_tests_properties([=[example_enterprise_chain]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_marketplace]=] "/root/repo/build/examples/marketplace")
set_tests_properties([=[example_marketplace]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_topology_study]=] "/root/repo/build/examples/topology_study")
set_tests_properties([=[example_topology_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_dagsfc_cli]=] "/root/repo/build/examples/dagsfc_cli" "--demo" "--emit-lp" "demo.lp" "--emit-dot" "demo.dot")
set_tests_properties([=[example_dagsfc_cli]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
