# Empty dependencies file for delay_hybrid_vs_sequential.
# This may be replaced when dependencies are built.
