file(REMOVE_RECURSE
  "../bench/delay_hybrid_vs_sequential"
  "../bench/delay_hybrid_vs_sequential.pdb"
  "CMakeFiles/delay_hybrid_vs_sequential.dir/delay_hybrid_vs_sequential.cpp.o"
  "CMakeFiles/delay_hybrid_vs_sequential.dir/delay_hybrid_vs_sequential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_hybrid_vs_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
