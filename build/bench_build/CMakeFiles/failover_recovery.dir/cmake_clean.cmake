file(REMOVE_RECURSE
  "../bench/failover_recovery"
  "../bench/failover_recovery.pdb"
  "CMakeFiles/failover_recovery.dir/failover_recovery.cpp.o"
  "CMakeFiles/failover_recovery.dir/failover_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
