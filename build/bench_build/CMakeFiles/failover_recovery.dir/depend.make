# Empty dependencies file for failover_recovery.
# This may be replaced when dependencies are built.
