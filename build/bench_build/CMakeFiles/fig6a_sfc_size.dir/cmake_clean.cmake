file(REMOVE_RECURSE
  "../bench/fig6a_sfc_size"
  "../bench/fig6a_sfc_size.pdb"
  "CMakeFiles/fig6a_sfc_size.dir/fig6a_sfc_size.cpp.o"
  "CMakeFiles/fig6a_sfc_size.dir/fig6a_sfc_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_sfc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
