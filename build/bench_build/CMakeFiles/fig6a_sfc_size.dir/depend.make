# Empty dependencies file for fig6a_sfc_size.
# This may be replaced when dependencies are built.
