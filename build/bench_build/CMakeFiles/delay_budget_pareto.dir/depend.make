# Empty dependencies file for delay_budget_pareto.
# This may be replaced when dependencies are built.
