file(REMOVE_RECURSE
  "../bench/delay_budget_pareto"
  "../bench/delay_budget_pareto.pdb"
  "CMakeFiles/delay_budget_pareto.dir/delay_budget_pareto.cpp.o"
  "CMakeFiles/delay_budget_pareto.dir/delay_budget_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_budget_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
