file(REMOVE_RECURSE
  "../bench/dynamic_admission"
  "../bench/dynamic_admission.pdb"
  "CMakeFiles/dynamic_admission.dir/dynamic_admission.cpp.o"
  "CMakeFiles/dynamic_admission.dir/dynamic_admission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
