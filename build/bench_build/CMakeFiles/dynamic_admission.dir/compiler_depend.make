# Empty compiler generated dependencies file for dynamic_admission.
# This may be replaced when dependencies are built.
