file(REMOVE_RECURSE
  "../bench/fig6f_price_fluctuation"
  "../bench/fig6f_price_fluctuation.pdb"
  "CMakeFiles/fig6f_price_fluctuation.dir/fig6f_price_fluctuation.cpp.o"
  "CMakeFiles/fig6f_price_fluctuation.dir/fig6f_price_fluctuation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6f_price_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
