# Empty dependencies file for fig6f_price_fluctuation.
# This may be replaced when dependencies are built.
