# Empty compiler generated dependencies file for runtime_complexity.
# This may be replaced when dependencies are built.
