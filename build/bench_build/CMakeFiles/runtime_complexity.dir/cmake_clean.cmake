file(REMOVE_RECURSE
  "../bench/runtime_complexity"
  "../bench/runtime_complexity.pdb"
  "CMakeFiles/runtime_complexity.dir/runtime_complexity.cpp.o"
  "CMakeFiles/runtime_complexity.dir/runtime_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
