file(REMOVE_RECURSE
  "../bench/fig6b_network_size"
  "../bench/fig6b_network_size.pdb"
  "CMakeFiles/fig6b_network_size.dir/fig6b_network_size.cpp.o"
  "CMakeFiles/fig6b_network_size.dir/fig6b_network_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
