# Empty dependencies file for fig6b_network_size.
# This may be replaced when dependencies are built.
