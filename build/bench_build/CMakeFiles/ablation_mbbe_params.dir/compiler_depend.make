# Empty compiler generated dependencies file for ablation_mbbe_params.
# This may be replaced when dependencies are built.
