file(REMOVE_RECURSE
  "../bench/ablation_mbbe_params"
  "../bench/ablation_mbbe_params.pdb"
  "CMakeFiles/ablation_mbbe_params.dir/ablation_mbbe_params.cpp.o"
  "CMakeFiles/ablation_mbbe_params.dir/ablation_mbbe_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mbbe_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
