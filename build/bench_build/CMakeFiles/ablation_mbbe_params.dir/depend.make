# Empty dependencies file for ablation_mbbe_params.
# This may be replaced when dependencies are built.
