file(REMOVE_RECURSE
  "../bench/robustness_success_rate"
  "../bench/robustness_success_rate.pdb"
  "CMakeFiles/robustness_success_rate.dir/robustness_success_rate.cpp.o"
  "CMakeFiles/robustness_success_rate.dir/robustness_success_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
