
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/robustness_success_rate.cpp" "bench_build/CMakeFiles/robustness_success_rate.dir/robustness_success_rate.cpp.o" "gcc" "bench_build/CMakeFiles/robustness_success_rate.dir/robustness_success_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dagsfc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dagsfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/dagsfc_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dagsfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dagsfc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dagsfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
