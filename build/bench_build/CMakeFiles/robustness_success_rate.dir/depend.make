# Empty dependencies file for robustness_success_rate.
# This may be replaced when dependencies are built.
