file(REMOVE_RECURSE
  "../bench/micro_graph"
  "../bench/micro_graph.pdb"
  "CMakeFiles/micro_graph.dir/micro_graph.cpp.o"
  "CMakeFiles/micro_graph.dir/micro_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
