# Empty dependencies file for fig6c_connectivity.
# This may be replaced when dependencies are built.
