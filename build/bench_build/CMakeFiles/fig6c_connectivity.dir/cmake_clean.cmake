file(REMOVE_RECURSE
  "../bench/fig6c_connectivity"
  "../bench/fig6c_connectivity.pdb"
  "CMakeFiles/fig6c_connectivity.dir/fig6c_connectivity.cpp.o"
  "CMakeFiles/fig6c_connectivity.dir/fig6c_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
