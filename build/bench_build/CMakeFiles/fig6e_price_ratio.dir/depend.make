# Empty dependencies file for fig6e_price_ratio.
# This may be replaced when dependencies are built.
