file(REMOVE_RECURSE
  "../bench/fig6e_price_ratio"
  "../bench/fig6e_price_ratio.pdb"
  "CMakeFiles/fig6e_price_ratio.dir/fig6e_price_ratio.cpp.o"
  "CMakeFiles/fig6e_price_ratio.dir/fig6e_price_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6e_price_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
