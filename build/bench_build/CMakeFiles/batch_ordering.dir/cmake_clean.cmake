file(REMOVE_RECURSE
  "../bench/batch_ordering"
  "../bench/batch_ordering.pdb"
  "CMakeFiles/batch_ordering.dir/batch_ordering.cpp.o"
  "CMakeFiles/batch_ordering.dir/batch_ordering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
