# Empty compiler generated dependencies file for fig6d_deploy_ratio.
# This may be replaced when dependencies are built.
