# Empty compiler generated dependencies file for test_search_tree.
# This may be replaced when dependencies are built.
