file(REMOVE_RECURSE
  "CMakeFiles/test_search_tree.dir/test_search_tree.cpp.o"
  "CMakeFiles/test_search_tree.dir/test_search_tree.cpp.o.d"
  "test_search_tree"
  "test_search_tree.pdb"
  "test_search_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
