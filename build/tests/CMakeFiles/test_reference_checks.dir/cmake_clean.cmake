file(REMOVE_RECURSE
  "CMakeFiles/test_reference_checks.dir/test_reference_checks.cpp.o"
  "CMakeFiles/test_reference_checks.dir/test_reference_checks.cpp.o.d"
  "test_reference_checks"
  "test_reference_checks.pdb"
  "test_reference_checks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
