# Empty compiler generated dependencies file for test_reference_checks.
# This may be replaced when dependencies are built.
