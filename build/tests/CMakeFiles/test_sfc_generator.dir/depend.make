# Empty dependencies file for test_sfc_generator.
# This may be replaced when dependencies are built.
