file(REMOVE_RECURSE
  "CMakeFiles/test_sfc_generator.dir/test_sfc_generator.cpp.o"
  "CMakeFiles/test_sfc_generator.dir/test_sfc_generator.cpp.o.d"
  "test_sfc_generator"
  "test_sfc_generator.pdb"
  "test_sfc_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfc_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
