file(REMOVE_RECURSE
  "CMakeFiles/test_dag_sfc.dir/test_dag_sfc.cpp.o"
  "CMakeFiles/test_dag_sfc.dir/test_dag_sfc.cpp.o.d"
  "test_dag_sfc"
  "test_dag_sfc.pdb"
  "test_dag_sfc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
