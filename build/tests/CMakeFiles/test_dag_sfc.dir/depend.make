# Empty dependencies file for test_dag_sfc.
# This may be replaced when dependencies are built.
