# Empty dependencies file for test_backtracking.
# This may be replaced when dependencies are built.
