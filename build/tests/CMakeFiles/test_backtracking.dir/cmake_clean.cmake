file(REMOVE_RECURSE
  "CMakeFiles/test_backtracking.dir/test_backtracking.cpp.o"
  "CMakeFiles/test_backtracking.dir/test_backtracking.cpp.o.d"
  "test_backtracking"
  "test_backtracking.pdb"
  "test_backtracking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backtracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
