# Empty compiler generated dependencies file for test_log_timer.
# This may be replaced when dependencies are built.
