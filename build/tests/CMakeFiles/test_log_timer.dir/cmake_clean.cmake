file(REMOVE_RECURSE
  "CMakeFiles/test_log_timer.dir/test_log_timer.cpp.o"
  "CMakeFiles/test_log_timer.dir/test_log_timer.cpp.o.d"
  "test_log_timer"
  "test_log_timer.pdb"
  "test_log_timer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
