# Empty compiler generated dependencies file for test_yen.
# This may be replaced when dependencies are built.
