#!/usr/bin/env bash
# Regenerates BENCH_micro_graph.json: builds the bench tree in Release and
# runs the before/after micro-kernel suite for the flat path-search tier
# (seed implementations vs CSR + workspace + edge-mask). The binary aborts
# if any kernel's two arms disagree bitwise, so a recorded JSON also
# certifies bit-identity on the machine that produced it.
#
# Usage: scripts/bench_graph.sh [extra bench_micro_graph flags...]
# The build directory defaults to build-bench/ (override with BUILD_DIR).
# Pass -DDAGSFC_NATIVE=ON through CMAKE_ARGS to tune for the local machine;
# the checked-in numbers use the portable baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release \
  -DDAGSFC_BUILD_TESTS=OFF -DDAGSFC_BUILD_EXAMPLES=OFF \
  ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j --target micro_graph

out="$("$BUILD_DIR/bench/bench_micro_graph" "$@")"
echo "$out"
echo "$out" | grep '^JSON: ' | sed 's/^JSON: //' > BENCH_micro_graph.json
echo
echo "wrote BENCH_micro_graph.json"
