#!/usr/bin/env bash
# Regenerates BENCH_shard_scaling.json: builds the bench tree in Release and
# runs the shard-plane sweep — serve throughput at each shard count with two
# arms on the same seeded regional workload (`flat-mvcc` = one shared MVCC
# ledger, `sharded` = one worker pool + ledger shard per region, equal total
# workers), plus the hierarchy cost-gap sweep (HIER vs flat MBBE, every HIER
# solution checked by the independent SolutionValidator). The acceptance bar
# for the sharding work lives in this file's output: at the highest shard
# count, the sharded arm's throughput must beat the flat arm's, and
# cost_gap.all_validator_clean must be true.
#
# Usage: scripts/bench_shard.sh [extra bench_shard_scaling flags...]
# The build directory defaults to build-bench/ (override with BUILD_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release \
  -DDAGSFC_BUILD_TESTS=OFF -DDAGSFC_BUILD_EXAMPLES=OFF \
  ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j --target shard_scaling

out="$("$BUILD_DIR/bench/bench_shard_scaling" "$@")"
echo "$out"
echo "$out" | grep '^JSON: ' | sed 's/^JSON: //' > BENCH_shard_scaling.json
echo
echo "wrote BENCH_shard_scaling.json"
