#!/usr/bin/env bash
# Regenerates BENCH_serve_throughput.json: builds the bench tree in Release
# and runs the serving-layer worker sweep across both commit pipelines —
# `mutex` (legacy copy-the-ledger, full residual re-check) as the baseline
# arm and `mvcc` (replica sync + stamp validation + group commit) as the
# candidate arm — over the same seeded workload, so every JSON point is a
# directly comparable cell of the pipeline × load × workers grid. The
# acceptance bar for the MVCC work lives in this file's output: at the
# highest worker count, the mvcc arm's committed-requests/sec must beat the
# mutex arm's.
#
# Usage: scripts/bench_serve.sh [extra bench_serve_throughput flags...]
# The build directory defaults to build-bench/ (override with BUILD_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release \
  -DDAGSFC_BUILD_TESTS=OFF -DDAGSFC_BUILD_EXAMPLES=OFF \
  ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j --target serve_throughput

out="$("$BUILD_DIR/bench/bench_serve_throughput" "$@")"
echo "$out"
echo "$out" | grep '^JSON: ' | sed 's/^JSON: //' > BENCH_serve_throughput.json
echo
echo "wrote BENCH_serve_throughput.json"
