#!/usr/bin/env bash
# Strict verification pass: builds the full tree with AddressSanitizer and
# UBSan (-DDAGSFC_SANITIZE=ON) into build-asan/ and runs the test suite
# under it. Any sanitizer report fails the run (halt_on_error, plus
# -fno-sanitize-recover=undefined at compile time).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -G Ninja -DDAGSFC_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:${UBSAN_OPTIONS:-}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
