#!/usr/bin/env bash
# Strict verification pass: builds the full tree with AddressSanitizer and
# UBSan (-DDAGSFC_SANITIZE=ON) into build-asan/ and runs the test suite
# under it. Any sanitizer report fails the run (halt_on_error, plus
# -fno-sanitize-recover=undefined at compile time). A second pass repeats
# the build with the ambient trace macros compiled in (-DDAGSFC_TRACE=ON)
# so the zero-overhead-when-disabled instrumentation path is itself
# sanitizer-clean. A third pass builds with ThreadSanitizer
# (-DDAGSFC_TSAN=ON) and runs the concurrency-heavy suites (the serve
# layer, the thread pool, and the trial runner) to catch data races in the
# snapshot/commit machinery and the lazy CSR build. A fourth pass reuses
# the TSan tree for the telemetry plane (ctest -R 'metrics|watchdog'): the
# striped counters, shared histogram cells, the /metrics HTTP scrape, and
# the slow-solve watchdog are exactly the lock-free machinery TSan is for.
# A fifth pass (same tree) runs the MVCC commit battery and the path-cache
# suites (ctest -R 'mvcc|serve|path_cache'): the 8-worker overlapping-
# footprint conflict battery, the group-commit leader/follower handoff, and
# the replica-sync invalidation path all execute under TSan.
# A sixth pass reuses the TSan tree for the layered-embedder batteries
# (ctest -R 'layered|validity'): the cross-embedder optimality
# differential, the validity fuzz over all six solvers, and the
# concurrent-solve hammer that races the lazy CSR build and shared const
# embedders across threads.
# A seventh pass runs the shard plane (ctest -R 'shard') under both trees:
# ASan/UBSan for the partition/contraction/HIER logic, TSan for the
# 8-thread cross-shard commit battery and the per-shard worker pools,
# whose multi-mutex ascending-lock commits are exactly what TSan's
# lock-order analysis is for.
# An eighth pass runs the distance-oracle suite (ctest -R 'oracle') under
# both trees: ASan/UBSan for the bank indexing and the differential
# battery's workspace reuse, TSan because the oracle is shared immutable
# across the serve worker pool — every query() walks the same bank the
# build path last wrote, exactly the publish/consume edge TSan checks.
# A ninth pass runs the observability plane (ctest -R
# 'lifecycle|flight|http') under both trees: ASan/UBSan for the span-ring
# index arithmetic and the HTTP error paths, TSan because the span ring is
# the one deliberately lock-free single-writer/any-reader structure in the
# repo — the concurrent collect() battery and the tail-sampling promotion
# path are exactly what its relaxed-store/acquire-load discipline must
# survive.
# Every full pass also runs the flat-vs-reference search differential suite
# (test_search_flat), so the bit-identity contract of the CSR/workspace
# tier is checked under ASan/UBSan as well as in the plain build.
set -euo pipefail
cd "$(dirname "$0")/.."

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:${UBSAN_OPTIONS:-}"
export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"

run_pass() {
  local dir=$1
  local filter=$2
  shift 2
  cmake -B "$dir" -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  fi
}

require_test() {
  # Guards against silently dropping a suite from the build: the named
  # ctest pattern must match at least one test in the given build dir.
  local dir=$1
  local pattern=$2
  if ! ctest --test-dir "$dir" -N -R "$pattern" | grep -q 'Total Tests: [1-9]'; then
    echo "check.sh: expected tests matching '$pattern' in $dir" >&2
    exit 1
  fi
}

run_pass "${BUILD_DIR:-build-asan}" "" -DDAGSFC_SANITIZE=ON
require_test "${BUILD_DIR:-build-asan}" 'test_search_flat'
require_test "${BUILD_DIR:-build-asan}" 'test_metrics'
require_test "${BUILD_DIR:-build-asan}" 'test_watchdog'
require_test "${BUILD_DIR:-build-asan}" 'test_layered'
require_test "${BUILD_DIR:-build-asan}" 'test_validity_fuzz'
run_pass "${TRACE_BUILD_DIR:-build-asan-trace}" "" -DDAGSFC_SANITIZE=ON \
  -DDAGSFC_TRACE=ON
run_pass "${TSAN_BUILD_DIR:-build-tsan}" \
  'test_serve|test_thread_pool|test_runner|test_search_flat.Csr' \
  -DDAGSFC_TSAN=ON
# Telemetry-plane pass: same TSan tree, metrics + watchdog suites.
ctest --test-dir "${TSAN_BUILD_DIR:-build-tsan}" --output-on-failure \
  -j "$(nproc)" -R 'metrics|watchdog'
# MVCC pass: same TSan tree; the commit-pipeline battery (shadow-ledger
# fuzz, journal sync, 8-worker conflict hammer) plus the serve and
# path-cache suites that pin its determinism and invalidation contracts.
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_mvcc'
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_path_cache'
ctest --test-dir "${TSAN_BUILD_DIR:-build-tsan}" --output-on-failure \
  -j "$(nproc)" -R 'mvcc|serve|path_cache'
# Layered-embedder pass: same TSan tree; the cross-embedder battery, the
# six-solver validity fuzz, and the concurrent bitwise-agreement hammer.
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_validity_fuzz'
ctest --test-dir "${TSAN_BUILD_DIR:-build-tsan}" --output-on-failure \
  -j "$(nproc)" -R 'layered|validity'
# Shard pass: the sharded-substrate suite under both sanitizer trees. The
# ASan tree already ran it in the full first pass; the require_test guards
# keep the suite from silently dropping out of either build, and the TSan
# rerun covers the cross-shard commit battery's ascending multi-mutex
# locking and the per-shard pool teardown.
require_test "${BUILD_DIR:-build-asan}" 'test_shard'
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_shard'
ctest --test-dir "${TSAN_BUILD_DIR:-build-tsan}" --output-on-failure \
  -j "$(nproc)" -R 'shard'
# Oracle pass: the epoch-keyed ALT oracle suite under both sanitizer trees
# (the ASan tree already ran it in the full first pass; the guards keep it
# from silently dropping out of either build).
require_test "${BUILD_DIR:-build-asan}" 'test_distance_oracle'
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_distance_oracle'
ctest --test-dir "${TSAN_BUILD_DIR:-build-tsan}" --output-on-failure \
  -j "$(nproc)" -R 'oracle'
# Observability pass: request-lifecycle tracing + flight recorder + HTTP
# endpoint suites under both trees. The ASan tree already ran them in the
# full first pass; the guards keep all three suites pinned in both builds,
# and the TSan rerun covers the lock-free span ring's writer/collector
# races and the flight recorder's promotion path under the worker pools.
require_test "${BUILD_DIR:-build-asan}" 'test_lifecycle'
require_test "${BUILD_DIR:-build-asan}" 'test_flight'
require_test "${BUILD_DIR:-build-asan}" 'test_http'
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_lifecycle'
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_flight'
require_test "${TSAN_BUILD_DIR:-build-tsan}" 'test_http'
ctest --test-dir "${TSAN_BUILD_DIR:-build-tsan}" --output-on-failure \
  -j "$(nproc)" -R 'lifecycle|flight|http'
