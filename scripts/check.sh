#!/usr/bin/env bash
# Strict verification pass: builds the full tree with AddressSanitizer and
# UBSan (-DDAGSFC_SANITIZE=ON) into build-asan/ and runs the test suite
# under it. Any sanitizer report fails the run (halt_on_error, plus
# -fno-sanitize-recover=undefined at compile time). A second pass repeats
# the build with the ambient trace macros compiled in (-DDAGSFC_TRACE=ON)
# so the zero-overhead-when-disabled instrumentation path is itself
# sanitizer-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:${UBSAN_OPTIONS:-}"

run_pass() {
  local dir=$1
  shift
  cmake -B "$dir" -G Ninja -DDAGSFC_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

run_pass "${BUILD_DIR:-build-asan}"
run_pass "${TRACE_BUILD_DIR:-build-asan-trace}" -DDAGSFC_TRACE=ON
