#!/usr/bin/env bash
# Regenerates BENCH_layered_gap.json: builds the bench tree in Release and
# runs the layered-vs-greedy cost-gap suite (bench/layered_vs_greedy.cpp).
# Instances are sized so the exact solver runs on every one; the recorded
# JSON therefore carries, per workload shape, the heuristics' cost gap
# relative to LAYERED, the wall-clock means, and how many instances
# LAYERED matched EXACT bitwise on the machine that produced it.
#
# Usage: scripts/bench_layered.sh [extra bench_layered_vs_greedy flags...]
# The build directory defaults to build-bench/ (override with BUILD_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release \
  -DDAGSFC_BUILD_TESTS=OFF -DDAGSFC_BUILD_EXAMPLES=OFF \
  ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j --target layered_vs_greedy

out="$("$BUILD_DIR/bench/bench_layered_vs_greedy" "$@")"
echo "$out"
echo "$out" | grep '^JSON: ' | sed 's/^JSON: //' > BENCH_layered_gap.json
echo
echo "wrote BENCH_layered_gap.json"
