#!/usr/bin/env bash
# Produces a structured solve trace from a corpus instance: builds the CLI,
# embeds tests/corpus/ring12 with MBBE, and writes trace_ring12.json at the
# repo root as Chrome trace_event JSON. Load the file in Perfetto
# (https://ui.perfetto.dev) or chrome://tracing to walk the solve layer by
# layer; the per-solve summary is printed on stdout.
#
#   scripts/trace_demo.sh [instance] [algorithm]
#
# defaults to ring12 / mbbe; any tests/corpus/<instance>.{net,sfc}.txt pair
# and any of ranv|minv|bbe|mbbe|exact work.
set -euo pipefail
cd "$(dirname "$0")/.."

INSTANCE=${1:-ring12}
ALGORITHM=${2:-mbbe}
OUT=trace_${INSTANCE}.json

cmake -B build -G Ninja
cmake --build build --target dagsfc_cli -j

./build/examples/dagsfc_cli \
  --network "tests/corpus/${INSTANCE}.net.txt" \
  --sfc "tests/corpus/${INSTANCE}.sfc.txt" \
  --algorithm "$ALGORITHM" \
  --trace "$OUT"

echo
echo "wrote $OUT — open it at https://ui.perfetto.dev or chrome://tracing"
