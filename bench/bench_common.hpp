#pragma once
/// Shared scaffolding for the figure-reproduction benches: standard flags,
/// algorithm construction, and result printing. Every bench binary prints
/// the series of one paper figure (mean total embedding cost per algorithm
/// vs the swept parameter) as an ASCII table, a detail table (success rate,
/// wall clock, search effort, path-cache hit rate), a machine-readable JSON
/// summary line, and optionally CSV.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "graph/workspace.hpp"
#include "net/ledger.hpp"
#include "sim/sweep.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace dagsfc::bench {

struct BenchSetup {
  Flags flags;
  sim::ExperimentConfig base;
  sim::RunOptions run_opts;
  bool csv = false;
  bool with_bbe = true;

  std::unique_ptr<core::RanvEmbedder> ranv;
  std::unique_ptr<core::MinvEmbedder> minv;
  std::unique_ptr<core::BbeEmbedder> bbe;
  std::unique_ptr<core::MbbeEmbedder> mbbe;

  /// [RANV, MINV, (BBE), MBBE] — the paper's comparison set.
  [[nodiscard]] std::vector<const core::Embedder*> algorithms() const {
    std::vector<const core::Embedder*> out{ranv.get(), minv.get()};
    if (with_bbe) out.push_back(bbe.get());
    out.push_back(mbbe.get());
    return out;
  }
};

/// Parses standard flags and builds the algorithm set. Returns nullptr and
/// prints usage when --help was requested or parsing failed.
inline std::unique_ptr<BenchSetup> setup(int argc, const char* const* argv,
                                         const std::string& description) {
  auto s = std::make_unique<BenchSetup>();
  s->flags.define_int("trials", 100, "trials averaged per data point")
      .define_int("threads", 0, "worker threads (0 = hardware)")
      .define_int("seed", 0x5fcdaa11, "base RNG seed")
      .define_int("xmax", 50, "MBBE forward-search node cap X_max")
      .define_int("xd", 4, "MBBE children kept per sub-solution X_d")
      .define_bool("no-bbe", false, "exclude plain BBE from the comparison")
      .define_bool("no-path-cache", false,
                   "disable the epoch-keyed shortest-path cache (A/B timing)")
      .define_bool("reference-search", false,
                   "route searches through the frozen seed implementations "
                   "instead of the CSR/workspace tier (A/B timing)")
      .define_bool("trace", false,
                   "collect structured solve traces and report the aggregate "
                   "counts in the JSON line")
      .define_bool("csv", false, "also print CSV after the tables");
  try {
    s->flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << s->flags.usage(argv[0]);
    return nullptr;
  }
  if (s->flags.help_requested()) {
    std::cout << description << "\n\n" << s->flags.usage(argv[0]);
    return nullptr;
  }
  s->base.trials = static_cast<std::size_t>(s->flags.get_int("trials"));
  s->base.seed = static_cast<std::uint64_t>(s->flags.get_int("seed"));
  s->run_opts.threads = static_cast<std::size_t>(s->flags.get_int("threads"));
  s->run_opts.collect_traces = s->flags.get_bool("trace");
  s->csv = s->flags.get_bool("csv");
  s->with_bbe = !s->flags.get_bool("no-bbe");
  net::CapacityLedger::set_cache_default(!s->flags.get_bool("no-path-cache"));
  graph::set_flat_search_default(!s->flags.get_bool("reference-search"));

  s->ranv = std::make_unique<core::RanvEmbedder>();
  s->minv = std::make_unique<core::MinvEmbedder>();
  s->bbe = std::make_unique<core::BbeEmbedder>();
  core::MbbeOptions mopts;
  mopts.x_max = static_cast<std::size_t>(s->flags.get_int("xmax"));
  mopts.x_d = static_cast<std::size_t>(s->flags.get_int("xd"));
  s->mbbe = std::make_unique<core::MbbeEmbedder>(mopts);
  return s;
}

using util::json_escape;

/// One JSON object per bench run, rendered from the telemetry plane: every
/// sweep point carries a MetricRegistry JSON document filled by
/// sim::fill_registry — mean cost, timing, search effort, and the solver
/// path-query counters appear as `dagsfc_solver_*` / `dagsfc_path_*`
/// metrics labelled `algo="<name>"` (plus `dagsfc_trace_*` when tracing
/// ran), plus a `cost_mean` convenience number per algorithm for quick
/// grepping. Emitted on a single line prefixed "JSON: ".
inline std::string to_json(const std::string& title,
                           const sim::SweepResult& result) {
  std::ostringstream os;
  os << "{\"bench\":\"" << json_escape(title) << "\",\"points\":[";
  for (std::size_t p = 0; p < result.point_stats.size(); ++p) {
    if (p) os << ",";
    const auto& stats = result.point_stats[p];
    util::MetricRegistry registry;
    sim::fill_registry(stats, registry);
    os << "{\"label\":\""
       << json_escape(p < result.labels.size() ? result.labels[p] : "")
       << "\",\"algorithms\":[";
    for (std::size_t a = 0; a < stats.size(); ++a) {
      const sim::AlgorithmStats& st = stats[a];
      if (a) os << ",";
      os << "{\"name\":\"" << json_escape(st.name)
         << "\",\"cost_mean\":" << (st.successes ? st.cost.mean() : 0.0)
         << "}";
    }
    os << "],\"registry\":" << registry.expose_json() << "}";
  }
  os << "]}";
  return os.str();
}

inline void print_result(const BenchSetup& s, const std::string& title,
                         const std::string& expectation,
                         const sim::SweepResult& result) {
  std::cout << "== " << title << " ==\n";
  std::cout << "paper expectation: " << expectation << "\n";
  std::cout << "base config: " << s.base.summary() << "\n\n";
  std::cout << "mean total embedding cost (successful trials):\n"
            << result.cost_table.ascii() << "\n";
  std::cout << "detail (success rate / mean solve ms / expanded "
               "sub-solutions / path-cache hit rate):\n"
            << result.detail_table.ascii();
  std::cout << "\nJSON: " << to_json(title, result) << "\n";
  if (s.csv) {
    std::cout << "\nCSV:\n" << result.cost_table.csv();
  }
  std::cout.flush();
}

}  // namespace dagsfc::bench
