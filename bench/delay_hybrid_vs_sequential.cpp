/// Reproduces the paper's *motivation* (Fig. 1, §1): hybrid SFCs cut the
/// end-to-end delay of sequential SFCs because parallel VNFs overlap in
/// time. For MBBE's cost-optimal embeddings we report, per SFC size, the
/// critical-path delay of the hybrid execution vs the serialized execution
/// of the same placements, and the resulting speedup.

#include <iostream>

#include "bench_common.hpp"
#include "core/delay.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Fig. 1 motivation: hybrid vs sequential delay");
  if (!s) return 1;

  Table t({"sfc_size", "hybrid ms", "serialized ms", "speedup",
           "embeddings"});
  for (std::size_t size : {3u, 5u, 7u, 9u}) {
    sim::ExperimentConfig cfg = s->base;
    cfg.sfc_size = size;
    Rng seeder(cfg.seed + size);
    RunningStats hybrid;
    RunningStats serial;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      Rng rng(seeder.fork_seed());
      const sim::Scenario scenario = sim::make_scenario(rng, cfg);
      const sfc::DagSfc dag =
          sim::make_sfc(rng, scenario.network.catalog(), cfg);
      core::EmbeddingProblem problem;
      problem.network = &scenario.network;
      problem.sfc = &dag;
      problem.flow =
          core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
      const core::ModelIndex index(problem);
      const auto r = s->mbbe->solve_fresh(index, rng);
      if (!r.ok()) continue;
      const core::Evaluator ev(index);
      hybrid.add(core::end_to_end_delay(ev, *r.solution));
      serial.add(core::serialized_delay(ev, *r.solution));
    }
    t.row().cell(size);
    t.cell(hybrid.mean(), 2).cell(serial.mean(), 2);
    t.cell(hybrid.mean() > 0 ? serial.mean() / hybrid.mean() : 0.0, 2);
    t.cell(hybrid.count());
    std::cerr << "sfc_size=" << size << " done\n";
  }
  std::cout << "== Motivation: delay of hybrid vs sequential execution ==\n"
            << "paper expectation: hybrid (parallel) execution is faster; "
               "the gap grows with SFC width\n"
            << "base config: " << s->base.summary() << "\n\n"
            << t.ascii();
  if (s->csv) std::cout << "\nCSV:\n" << t.csv();
  return 0;
}
