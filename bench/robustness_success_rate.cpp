/// Reproduces the §5.2 robustness remark: "In all the above simulations,
/// MBBE always results in a solution while the benchmark algorithms do not."
/// Two stress settings make failures observable:
///   (1) sparse deployment — per-trial success rate as the deploy ratio
///       shrinks toward nothing;
///   (2) tight capacities — sequential flow admission into one network until
///       each algorithm first fails; more admissions = more robust packing.

#include <iostream>

#include "bench_common.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace dagsfc;

/// The §5.2 remark compares MBBE against the benchmarks; plain BBE is
/// excluded here because its unbounded forward search makes sparse-deploy
/// instances pathologically slow without changing the claim.
std::vector<const core::Embedder*> claim_set(bench::BenchSetup& s) {
  return {s.ranv.get(), s.minv.get(), s.mbbe.get()};
}

void sparse_deployment(bench::BenchSetup& s) {
  const std::vector<double> ratios{0.02, 0.05, 0.10, 0.20, 0.50};
  const auto algos = claim_set(s);
  std::vector<std::string> cols{"deploy_ratio"};
  for (const auto* a : algos) cols.push_back(a->name() + " ok%");
  Table t(cols);
  for (double r : ratios) {
    sim::ExperimentConfig cfg = s.base;
    cfg.vnf_deploy_ratio = r;
    // Tight capacities: an embedding whose real-paths pile onto the few
    // links toward the scarce hosts becomes infeasible. The capacity-blind
    // baselines walk into that; MBBE's candidate screening avoids it.
    cfg.vnf_capacity = 4.0;
    cfg.link_capacity = 4.0;
    const auto stats = sim::run_comparison(cfg, algos, s.run_opts);
    t.row().cell(std::to_string(static_cast<long long>(r * 100)) + "%");
    for (const auto& st : stats) t.cell(st.success_rate() * 100.0, 1);
    std::cerr << "deploy_ratio=" << r << " done\n";
  }
  std::cout << "success rate under sparse deployment:\n" << t.ascii() << "\n";
  if (s.csv) std::cout << "CSV:\n" << t.csv() << "\n";
}

void tight_capacity(bench::BenchSetup& s) {
  // Capacities sized so only a handful of flows fit; count admissions until
  // first failure, averaged over repetitions.
  const auto algos = claim_set(s);
  Table t({"algorithm", "mean admissions before first failure"});
  const std::size_t reps = std::max<std::size_t>(1, s.base.trials / 5);
  for (const auto* algo : algos) {
    RunningStats admissions;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(s.base.seed + rep * 7919);
      sim::ExperimentConfig cfg = s.base;
      cfg.network_size = 60;
      cfg.vnf_capacity = 4.0;
      cfg.link_capacity = 4.0;
      const sim::Scenario scenario = sim::make_scenario(rng, cfg);
      net::CapacityLedger ledger(scenario.network);
      std::size_t count = 0;
      for (;; ++count) {
        const sfc::DagSfc dag =
            sim::make_sfc(rng, scenario.network.catalog(), cfg);
        core::EmbeddingProblem problem;
        problem.network = &scenario.network;
        problem.sfc = &dag;
        problem.flow = core::Flow{scenario.source, scenario.destination,
                                  cfg.flow_rate, cfg.flow_size};
        const core::ModelIndex index(problem);
        const auto r = algo->solve(index, ledger, rng);
        if (!r.ok()) break;
        const core::Evaluator evaluator(index);
        evaluator.commit(evaluator.usage(*r.solution), ledger);
        if (count > 500) break;  // runaway guard
      }
      admissions.add(static_cast<double>(count));
    }
    t.row().cell(algo->name()).cell(admissions.mean(), 2);
    std::cerr << algo->name() << " done\n";
  }
  std::cout << "sequential admission under tight capacities (60-node "
               "network, capacity 4 units):\n"
            << t.ascii() << "\n";
  if (s.csv) std::cout << "CSV:\n" << t.csv() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto s = bench::setup(argc, argv,
                        "Sec. 5.2: robustness / success-rate comparison");
  if (!s) return 1;
  std::cout << "== Sec. 5.2: robustness of MBBE vs benchmarks ==\n"
            << "paper expectation: MBBE keeps finding solutions where "
               "RANV/MINV fail\n"
            << "base config: " << s->base.summary() << "\n\n";
  sparse_deployment(*s);
  tight_capacity(*s);
  return 0;
}
