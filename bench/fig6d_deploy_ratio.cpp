/// Reproduces Fig. 6(d): total embedding cost vs VNF deploying ratio
/// (10%..70%).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Fig. 6(d): embedding cost vs VNF deploying ratio");
  if (!s) return 1;

  const std::vector<double> ratios{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70};
  const auto points = sim::make_points(
      s->base, ratios,
      [](sim::ExperimentConfig& cfg, double v) { cfg.vnf_deploy_ratio = v; },
      [](double v) {
        return std::to_string(static_cast<long long>(v * 100)) + "%";
      });

  const auto result = sim::run_sweep("deploy_ratio", points, s->algorithms(),
                                     s->run_opts, &std::cerr);
  bench::print_result(
      *s, "Fig. 6(d): impact of the VNF deploying ratio",
      "our cost falls as the deploy ratio rises (denser VNFs -> shorter "
      "real-paths); ~25% below benchmarks",
      result);
  return 0;
}
