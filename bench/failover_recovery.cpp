/// Extension bench: link-failure survivability. A populated network loses
/// its most-loaded link; flows crossing it are torn down and re-embedded on
/// the degraded network. Cost-aware embedders strand fewer flows on hot
/// links and re-embed the affected ones more cheaply.

#include <iostream>

#include "bench_common.hpp"
#include "sim/failover.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv, "link-failure recovery (extension)");
  if (!s) return 1;

  sim::FailoverConfig cfg;
  cfg.base = s->base;
  cfg.base.network_size = 100;
  cfg.base.catalog_size = 8;
  cfg.base.sfc_size = 4;
  cfg.base.vnf_capacity = 20.0;
  cfg.base.link_capacity = 20.0;
  cfg.num_flows = 40;
  const std::size_t reps = std::max<std::size_t>(3, s->base.trials / 10);

  const std::vector<const core::Embedder*> algos{s->ranv.get(), s->minv.get(),
                                                 s->mbbe.get()};
  Table t({"algorithm", "embedded", "affected", "recovered", "recovery %",
           "cost before", "cost after"});
  for (const auto* algo : algos) {
    RunningStats embedded;
    RunningStats affected;
    RunningStats recovered;
    RunningStats before;
    RunningStats after;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const sim::FailoverResult r =
          sim::run_failover(cfg, *algo, s->base.seed + rep * 13);
      embedded.add(static_cast<double>(r.embedded));
      affected.add(static_cast<double>(r.affected));
      recovered.add(static_cast<double>(r.recovered));
      if (r.affected) before.add(r.original_cost.mean());
      if (r.recovered) after.add(r.recovery_cost.mean());
    }
    t.row().cell(algo->name());
    t.cell(embedded.mean(), 1).cell(affected.mean(), 1);
    t.cell(recovered.mean(), 1);
    t.cell(affected.mean() > 0
               ? recovered.mean() / affected.mean() * 100.0
               : 100.0,
           1);
    t.cell(before.mean(), 1).cell(after.mean(), 1);
    std::cerr << algo->name() << " done\n";
  }
  std::cout << "== Extension: most-loaded-link failure and recovery ==\n"
            << "expectation: MBBE concentrates less traffic on any single "
               "link and recovers affected flows cheaply\n\n"
            << t.ascii();
  if (s->csv) std::cout << "\nCSV:\n" << t.csv();
  return 0;
}
