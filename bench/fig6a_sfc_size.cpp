/// Reproduces Fig. 6(a): total embedding cost vs SFC size (1..9).
/// Per the paper, plain BBE is only evaluated up to SFC size 5 — beyond
/// that its exponential search is intractable (the paper reports memory
/// overflow); the series prints "-" there, exactly like the original plot
/// stops.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Fig. 6(a): embedding cost vs SFC size (1..9)");
  if (!s) return 1;

  const std::size_t bbe_max_sfc = 5;
  std::vector<std::string> cols{"sfc_size"};
  for (const auto* a : s->algorithms()) cols.push_back(a->name());
  Table cost_table(cols);
  std::vector<std::string> dcols{"sfc_size"};
  for (const auto* a : s->algorithms()) {
    dcols.push_back(a->name() + " ok%");
    dcols.push_back(a->name() + " ms");
  }
  Table detail_table(dcols);

  for (std::size_t size = 1; size <= 9; ++size) {
    sim::ExperimentConfig cfg = s->base;
    cfg.sfc_size = size;
    const bool run_bbe = s->with_bbe && size <= bbe_max_sfc;

    std::vector<const core::Embedder*> algos{s->ranv.get(), s->minv.get()};
    if (run_bbe) algos.push_back(s->bbe.get());
    algos.push_back(s->mbbe.get());

    const auto stats = sim::run_comparison(cfg, algos, s->run_opts);

    cost_table.row().cell(size);
    detail_table.row().cell(size);
    std::size_t si = 0;
    for (const auto* a : s->algorithms()) {
      if (a == s->bbe.get() && !run_bbe) {
        cost_table.cell("-");
        detail_table.cell("-").cell("-");
        continue;
      }
      const auto& st = stats[si++];
      if (st.successes > 0) {
        cost_table.cell(st.cost.mean());
      } else {
        cost_table.cell("-");
      }
      detail_table.cell(st.success_rate() * 100.0, 1);
      detail_table.cell(st.wall_ms.mean(), 3);
    }
    std::cerr << "sfc_size=" << size << " done\n";
  }

  std::cout << "== Fig. 6(a): impact of the SFC size ==\n"
            << "paper expectation: cost grows with SFC size; MBBE ~= BBE; "
               "MBBE ~30% below MINV, gap widens; BBE stops at size 5\n"
            << "base config: " << s->base.summary() << "\n\n"
            << "mean total embedding cost:\n"
            << cost_table.ascii() << "\n"
            << "detail:\n"
            << detail_table.ascii();
  if (s->csv) std::cout << "\nCSV:\n" << cost_table.csv();
  return 0;
}
