/// Shard-plane bench: serve throughput vs shard count, and the price of
/// hierarchy.
///
/// Part A (scaling): the same arrival schedule shape is served at each
/// shard count N — a regional Waxman substrate of fixed total size split
/// into N regions — by two arms with equal total worker threads:
///
///   * flat     — serve::EmbeddingService, MVCC pipeline, N workers on one
///                shared ledger (the PR-7 baseline);
///   * sharded  — ShardedEmbeddingService, N pools x 1 worker, each commit
///                locking only the shards on its region path.
///
/// The sharded arm's edge has two sources: restricted solves search a
/// region-path-sized slice of the substrate instead of all of it, and
/// disjoint region paths commit without ever serializing. The first shows
/// even on a single-core host (it is algorithmic, not parallel), so the
/// JSON records hw_threads for honest reading of the second.
///
/// Part B (cost gap): hierarchy trades optimality for locality — HIER's
/// restricted search can never beat the flat inner algorithm on the full
/// substrate. This sweep prices that trade: T random requests on one
/// regional substrate, each solved flat (MBBE) and hierarchically
/// (best-of-k), every HIER solution checked by the independent
/// core::SolutionValidator ("validator_clean" in the JSON).

#include <algorithm>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "core/validator.hpp"
#include "serve/driver.hpp"
#include "shard/driver.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;

  Flags flags;
  flags.define_int("arrivals", 400, "requests replayed per scaling cell")
      .define_int("producers", 4, "submitting threads per cell")
      .define_int("total-nodes", 96, "substrate size, constant across N")
      .define_int("sfc-size", 4, "VNFs per request SFC")
      .define_double("vnf-capacity", 6.0, "per-instance capacity")
      .define_double("link-capacity", 8.0, "per-link capacity")
      .define_double("load", 24.0, "target concurrent flows in service")
      .define_int("retries", 3, "re-solves after a commit conflict")
      .define("shard-counts", "1,2,4,8", "comma-separated shard counts")
      .define_int("gap-trials", 40, "requests in the cost-gap sweep")
      .define_int("gap-regions", 4, "regions of the cost-gap substrate")
      .define_int("hier-paths", 4, "HIER stage-one candidates")
      .define_int("seed", 0x5a4dbe4c, "workload + solver RNG seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << "shard scaling + hierarchy cost-gap bench\n\n"
              << flags.usage(argv[0]);
    return 0;
  }

  auto parse_list = [](const std::string& text) {
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t used = 0;
      out.push_back(
          static_cast<std::size_t>(std::stoul(text.substr(pos), &used)));
      pos += used;
      if (pos < text.size() && text[pos] == ',') ++pos;
    }
    return out;
  };
  const std::vector<std::size_t> shard_counts =
      parse_list(flags.get("shard-counts"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto total_nodes =
      static_cast<std::size_t>(flags.get_int("total-nodes"));

  sim::ExperimentConfig base;
  base.catalog_size = 8;
  base.sfc_size = static_cast<std::size_t>(flags.get_int("sfc-size"));
  base.vnf_capacity = flags.get_double("vnf-capacity");
  base.link_capacity = flags.get_double("link-capacity");
  base.trials = 1;

  std::ostringstream json;
  json << "{\"bench\":\"shard_scaling\",\"arrivals\":"
       << flags.get_int("arrivals") << ",\"total_nodes\":" << total_nodes
       << ",\"hw_threads\":" << std::thread::hardware_concurrency()
       << ",\"scaling\":[";

  // ---- part A: throughput vs shard count ---------------------------------
  Table table({"shards", "arm", "workers", "throughput rps", "accept%",
               "cross-region", "conflicts", "validated", "conserved"});
  bool first = true;
  for (const std::size_t shards : shard_counts) {
    shard::ShardWorkloadConfig scfg;
    scfg.regional.base = base;
    scfg.regional.regions.regions = std::max<std::size_t>(1, shards);
    scfg.regional.regions.nodes_per_region =
        std::max<std::size_t>(2, total_nodes / scfg.regional.regions.regions);
    scfg.num_arrivals = static_cast<std::size_t>(flags.get_int("arrivals"));
    const shard::ShardWorkload workload =
        shard::make_shard_workload(scfg, seed);

    serve::AdmissionPolicy admission;
    admission.queue_capacity = scfg.num_arrivals;  // no queue rejects
    admission.max_retries =
        static_cast<std::uint32_t>(flags.get_int("retries"));
    admission.retry_backoff = std::chrono::microseconds(20);
    const auto producers = std::max<std::size_t>(
        1, static_cast<std::size_t>(flags.get_int("producers")));
    const auto target_load =
        static_cast<std::size_t>(std::max(1.0, flags.get_double("load")));

    // Flat arm: the same schedule on the same substrate, one shared
    // MVCC ledger, total workers equal to the sharded arm's.
    double flat_rps = 0.0;
    {
      // Same substrate (copied), same schedule; source/destination of the
      // scenario are per-request in the arrivals and unused here.
      serve::Workload flat{sim::Scenario{workload.scenario.network, 0, 1},
                           workload.arrivals};
      core::MbbeEmbedder embedder;
      serve::OpenLoopConfig open;
      open.workers = shards;
      open.producers = producers;
      open.target_load = target_load;
      open.window = std::max<std::size_t>(4, 2 * shards / producers);
      open.admission = admission;
      open.seed = seed;
      const serve::OpenLoopResult r =
          serve::run_open_loop(flat, embedder, open);
      flat_rps = r.throughput_rps();
      const auto& m = r.metrics;
      table.row()
          .cell(shards)
          .cell("flat-mvcc")
          .cell(shards)
          .cell(r.throughput_rps(), 1)
          .cell(m.acceptance_ratio() * 100.0, 1)
          .cell("-")
          .cell(static_cast<std::size_t>(m.commit_conflicts))
          .cell(static_cast<std::size_t>(m.validated_commits))
          .cell(r.conserved ? "yes" : "NO");
      if (!first) json << ",";
      first = false;
      json << "{\"shards\":" << shards << ",\"arm\":\"flat-mvcc\""
           << ",\"workers\":" << shards << ",\"throughput_rps\":"
           << util::json_number(r.throughput_rps()) << ",\"wall_s\":"
           << util::json_number(r.wall_seconds) << ",\"conserved\":"
           << (r.conserved ? "true" : "false") << ",\"metrics\":"
           << m.to_json() << "}";
      std::cerr << "shards=" << shards << " flat done ("
                << r.throughput_rps() << " rps)\n";
    }

    // Sharded arm: N pools x 1 worker over per-region ledger shards.
    {
      const shard::ShardedSubstrate substrate(
          workload.scenario.network,
          shard::make_partition(workload.scenario.network.topology(), shards,
                                shard::PartitionScheme::kLabels,
                                workload.scenario.region_of));
      shard::ShardOpenLoopConfig open;
      open.producers = producers;
      open.target_load = target_load;
      open.window = std::max<std::size_t>(4, 2 * shards / producers);
      open.service.workers_per_shard = 1;
      open.service.admission = admission;
      open.service.hier.region_paths =
          static_cast<std::size_t>(flags.get_int("hier-paths"));
      open.service.seed = seed;
      const shard::ShardOpenLoopResult r =
          shard::run_sharded_open_loop(workload, substrate, open);
      const auto& m = r.metrics;
      table.row()
          .cell(shards)
          .cell("sharded")
          .cell(shards)
          .cell(r.throughput_rps(), 1)
          .cell(m.acceptance_ratio() * 100.0, 1)
          .cell(static_cast<std::size_t>(m.cross_region_requests))
          .cell(static_cast<std::size_t>(m.total_conflicts()))
          .cell(static_cast<std::size_t>(m.validated_commits))
          .cell(r.conserved ? "yes" : "NO");
      json << ",{\"shards\":" << shards << ",\"arm\":\"sharded\""
           << ",\"workers\":" << shards << ",\"throughput_rps\":"
           << util::json_number(r.throughput_rps()) << ",\"speedup_vs_flat\":"
           << util::json_number(flat_rps > 0.0 ? r.throughput_rps() / flat_rps
                                               : 0.0)
           << ",\"wall_s\":" << util::json_number(r.wall_seconds)
           << ",\"conserved\":" << (r.conserved ? "true" : "false")
           << ",\"metrics\":" << m.to_json() << "}";
      std::cerr << "shards=" << shards << " sharded done ("
                << r.throughput_rps() << " rps)\n";
    }
  }
  json << "],";

  // ---- part B: the price of hierarchy ------------------------------------
  Table gap_table({"request", "flat cost", "hier cost", "gap%", "valid"});
  {
    const auto gap_regions = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("gap-regions")));
    shard::ShardWorkloadConfig gcfg;
    gcfg.regional.base = base;
    gcfg.regional.regions.regions = gap_regions;
    gcfg.regional.regions.nodes_per_region =
        std::max<std::size_t>(2, total_nodes / gap_regions);
    gcfg.num_arrivals =
        static_cast<std::size_t>(flags.get_int("gap-trials"));
    const shard::ShardWorkload workload =
        shard::make_shard_workload(gcfg, seed ^ 0x9e37ULL);
    const shard::ShardedSubstrate substrate(
        workload.scenario.network,
        shard::make_partition(workload.scenario.network.topology(),
                              gap_regions, shard::PartitionScheme::kLabels,
                              workload.scenario.region_of));
    core::MbbeEmbedder flat;
    shard::HierOptions hopts;
    hopts.region_paths =
        static_cast<std::size_t>(flags.get_int("hier-paths"));
    const shard::HierarchicalEmbedder hier(substrate, hopts);

    std::size_t both = 0, clean = 0, hier_only_fail = 0;
    double flat_sum = 0.0, hier_sum = 0.0;
    for (std::size_t i = 0; i < workload.arrivals.size(); ++i) {
      const serve::Request& req = workload.arrivals[i].request;
      core::EmbeddingProblem problem;
      problem.network = &workload.scenario.network;
      problem.sfc = &req.sfc;
      problem.flow = req.flow;
      const core::ModelIndex index(problem);
      Rng rng_flat(seed + i), rng_hier(seed + i);
      const core::SolveResult rf = flat.solve_fresh(index, rng_flat);
      const core::SolveResult rh = hier.solve_fresh(index, rng_hier);
      if (rf.ok() && !rh.ok()) ++hier_only_fail;
      if (!rf.ok() || !rh.ok()) continue;
      net::CapacityLedger fresh(workload.scenario.network);
      const core::SolutionValidator validator(index);
      const bool valid = validator.check(rh, fresh).ok();
      clean += valid ? 1 : 0;
      ++both;
      flat_sum += rf.cost;
      hier_sum += rh.cost;
      if (i < 12) {
        gap_table.row()
            .cell(i)
            .cell(rf.cost, 2)
            .cell(rh.cost, 2)
            .cell(rf.cost > 0.0 ? (rh.cost / rf.cost - 1.0) * 100.0 : 0.0, 1)
            .cell(valid ? "yes" : "NO");
      }
    }
    const double gap =
        flat_sum > 0.0 ? (hier_sum / flat_sum - 1.0) * 100.0 : 0.0;
    json << "\"cost_gap\":{\"regions\":" << gap_regions << ",\"trials\":"
         << workload.arrivals.size() << ",\"both_solved\":" << both
         << ",\"hier_only_failures\":" << hier_only_fail
         << ",\"validator_clean\":" << clean
         << ",\"all_validator_clean\":" << (clean == both ? "true" : "false")
         << ",\"flat_mean_cost\":"
         << util::json_number(both ? flat_sum / static_cast<double>(both) : 0.0)
         << ",\"hier_mean_cost\":"
         << util::json_number(both ? hier_sum / static_cast<double>(both) : 0.0)
         << ",\"gap_percent\":" << util::json_number(gap) << "}";
    std::cerr << "cost gap done (" << both << " paired solves, gap " << gap
              << "%)\n";
  }
  json << "}";

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "== shard scaling: sharded service vs flat MVCC baseline ==\n"
            << "expectation: sharded throughput rises with shard count "
               "(restricted solves shrink with region size); flat baseline "
               "stays level or degrades under lock contention\n"
            << "hardware threads: " << hw;
  if (hw < 2) {
    std::cout << " (single-core host: pool parallelism cannot show; the "
                 "restricted-solve speedup and per-shard commit counters "
                 "still measure the sharding machinery)";
  }
  std::cout << "\n\n"
            << table.ascii() << "\n== hierarchy cost gap (first 12) ==\n"
            << gap_table.ascii() << "\nJSON: " << json.str() << "\n";
  return 0;
}
