/// Serving-layer bench: aggregate throughput, acceptance, commit-conflict
/// rate, and tail latency of serve::EmbeddingService across commit
/// pipelines × worker counts × offered loads.
///
/// Each cell replays the *same* seeded workload open-loop (producer threads
/// keep a window of requests in flight; each releases its oldest accepted
/// flows beyond the load target), so cells differ only in pipeline,
/// concurrency and load. The pipeline dimension is the A/B this bench
/// exists for: `mutex` is the legacy copy-the-ledger / full-recheck commit
/// path, `mvcc` the replica-sync + stamp-validation + group-commit
/// pipeline. Expectations: mvcc at high worker counts commits more
/// requests per second (fewer conflict-driven re-solves, warm per-worker
/// path caches), and the stamp-commit counter is nonzero exactly there.

#include <algorithm>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "serve/driver.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;

  Flags flags;
  flags.define_workers(0)
      .define_int("arrivals", 600, "requests replayed per cell")
      .define_int("producers", 4, "submitting threads per cell")
      .define_int("network-size", 40, "nodes in the generated network")
      .define_int("sfc-size", 4, "VNFs per request SFC")
      .define_double("vnf-capacity", 4.0, "per-instance capacity")
      .define_double("link-capacity", 6.0, "per-link capacity")
      .define_int("retries", 3, "re-solves after a commit conflict")
      .define("loads", "8,24,48", "comma-separated target in-service loads")
      .define("worker-counts", "1,2,4,8", "comma-separated worker counts")
      .define("pipelines", "mutex,mvcc", "comma-separated commit pipelines")
      .define_int("seed", 0x5eedb0b, "workload + solver RNG seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << "serve throughput sweep\n\n" << flags.usage(argv[0]);
    return 0;
  }

  auto parse_list = [](const std::string& text) {
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t used = 0;
      out.push_back(
          static_cast<std::size_t>(std::stoul(text.substr(pos), &used)));
      pos += used;
      if (pos < text.size() && text[pos] == ',') ++pos;
    }
    return out;
  };
  const std::vector<std::size_t> loads = parse_list(flags.get("loads"));
  const std::vector<std::size_t> worker_counts =
      parse_list(flags.get("worker-counts"));

  std::vector<serve::CommitPipeline> pipelines;
  {
    const std::string text = flags.get("pipelines");
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t comma = text.find(',', pos);
      if (comma == std::string::npos) comma = text.size();
      const std::string name = text.substr(pos, comma - pos);
      if (name == "mutex") {
        pipelines.push_back(serve::CommitPipeline::kMutex);
      } else if (name == "mvcc") {
        pipelines.push_back(serve::CommitPipeline::kMvcc);
      } else {
        std::cerr << "unknown pipeline '" << name << "' (mutex|mvcc)\n";
        return 1;
      }
      pos = comma + 1;
    }
  }

  sim::DynamicConfig cfg;
  cfg.base.network_size =
      static_cast<std::size_t>(flags.get_int("network-size"));
  cfg.base.catalog_size = 8;
  cfg.base.sfc_size = static_cast<std::size_t>(flags.get_int("sfc-size"));
  cfg.base.vnf_capacity = flags.get_double("vnf-capacity");
  cfg.base.link_capacity = flags.get_double("link-capacity");
  cfg.base.trials = 1;
  cfg.num_arrivals = static_cast<std::size_t>(flags.get_int("arrivals"));

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const serve::Workload workload = serve::make_workload(cfg, seed);
  core::MbbeEmbedder embedder;

  Table table({"pipeline", "load", "workers", "throughput rps", "accept%",
               "conflicts", "retries", "stamp", "validated", "lat p50 ms",
               "lat p99 ms"});
  std::ostringstream json;
  json << "{\"bench\":\"serve_throughput\",\"arrivals\":" << cfg.num_arrivals
       << ",\"hw_threads\":" << std::thread::hardware_concurrency()
       << ",\"points\":[";
  bool first = true;

  for (const serve::CommitPipeline pipeline : pipelines) {
    for (std::size_t load : loads) {
      for (std::size_t workers : worker_counts) {
        serve::OpenLoopConfig open;
        open.workers = workers;
        open.producers = std::max<std::size_t>(
            1, static_cast<std::size_t>(flags.get_int("producers")));
        open.target_load = load;
        open.window = std::max<std::size_t>(4, 2 * workers / open.producers);
        open.admission.queue_capacity = cfg.num_arrivals;  // no queue rejects
        open.admission.max_retries =
            static_cast<std::uint32_t>(flags.get_int("retries"));
        open.admission.retry_backoff = std::chrono::microseconds(20);
        open.seed = seed;
        open.tuning.pipeline = pipeline;

        const serve::OpenLoopResult r =
            serve::run_open_loop(workload, embedder, open);
        const auto& m = r.metrics;
        table.row()
            .cell(serve::to_string(pipeline))
            .cell(load)
            .cell(workers)
            .cell(r.throughput_rps(), 1)
            .cell(m.acceptance_ratio() * 100.0, 1)
            .cell(static_cast<std::size_t>(m.commit_conflicts))
            .cell(static_cast<std::size_t>(m.retries))
            .cell(static_cast<std::size_t>(m.stamp_commits))
            .cell(static_cast<std::size_t>(m.validated_commits))
            .cell(m.latency_ms.p50(), 2)
            .cell(m.latency_ms.p99(), 2);
        if (!first) json << ",";
        first = false;
        json << "{\"pipeline\":\"" << serve::to_string(pipeline)
             << "\",\"load\":" << load << ",\"workers\":" << workers
             << ",\"throughput_rps\":" << util::json_number(r.throughput_rps())
             << ",\"committed_rps\":"
             << util::json_number(
                    r.wall_seconds > 0.0
                        ? static_cast<double>(m.accepted) / r.wall_seconds
                        : 0.0)
             << ",\"wall_s\":" << util::json_number(r.wall_seconds)
             << ",\"conserved\":" << (r.conserved ? "true" : "false")
             << ",\"metrics\":" << m.to_json() << "}";
        std::cerr << "pipeline=" << serve::to_string(pipeline)
                  << " load=" << load << " workers=" << workers << " done ("
                  << r.throughput_rps() << " rps, " << m.commit_conflicts
                  << " conflicts)\n";
      }
    }
  }
  json << "]}";

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "== serve throughput: workers x offered load ==\n"
            << "expectation: throughput rises 1 -> 4 workers at fixed load; "
               "conflict/retry counters nonzero under contention\n"
            << "hardware threads: " << hw;
  if (hw < 2) {
    std::cout << " (single-core host: worker scaling cannot show; the "
                 "conflict/validated counters still exercise the "
                 "optimistic-commit machinery)";
  }
  std::cout << "\n\n" << table.ascii() << "\nJSON: " << json.str() << "\n";
  return 0;
}
