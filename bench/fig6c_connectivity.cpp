/// Reproduces Fig. 6(c): total embedding cost vs network connectivity
/// (average node degree 2..14).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Fig. 6(c): embedding cost vs average node degree");
  if (!s) return 1;

  const std::vector<double> degrees{2, 4, 6, 8, 10, 12, 14};
  const auto points = sim::make_points(
      s->base, degrees,
      [](sim::ExperimentConfig& cfg, double v) {
        cfg.network_connectivity = v;
      },
      [](double v) { return std::to_string(static_cast<long long>(v)); });

  const auto result = sim::run_sweep("connectivity", points, s->algorithms(),
                                     s->run_opts, &std::cerr);
  bench::print_result(
      *s, "Fig. 6(c): impact of the network connectivity",
      "all costs fall as connectivity rises; ours ~30% below benchmarks",
      result);
  return 0;
}
