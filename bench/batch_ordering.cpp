/// Extension ablation: how commit order affects batch admission. A fixed
/// set of heterogeneous requests (SFC sizes 1..6) is embedded onto one
/// contended network with each BatchOrder strategy; reported: accepted
/// requests, acceptance ratio, and total cost of the accepted set.

#include <iostream>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv, "batch admission ordering ablation");
  if (!s) return 1;

  sim::ExperimentConfig cfg = s->base;
  cfg.network_size = 50;
  cfg.catalog_size = 8;
  cfg.vnf_deploy_ratio = 0.25;
  cfg.vnf_capacity = 3.0;
  cfg.link_capacity = 4.0;
  const std::size_t batch_size = 120;
  const std::size_t repetitions = std::max<std::size_t>(3, s->base.trials / 10);

  const std::vector<std::pair<std::string, core::BatchOrder>> strategies{
      {"arrival", core::BatchOrder::Arrival},
      {"smallest-first", core::BatchOrder::SmallestFirst},
      {"largest-first", core::BatchOrder::LargestFirst},
      {"cheapest-first", core::BatchOrder::CheapestFirst},
  };

  Table t({"order", "mean accepted", "accept%", "mean total cost"});
  for (const auto& [label, order] : strategies) {
    RunningStats accepted;
    RunningStats ratio;
    RunningStats cost;
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      Rng rng(cfg.seed + rep * 101);
      const sim::Scenario scenario = sim::make_scenario(rng, cfg);
      // Heterogeneous request mix, same for every strategy (fresh RNG fork
      // keeps the mix identical across the strategy loop).
      Rng mix(cfg.seed + rep * 101 + 7);
      std::vector<sfc::DagSfc> dags;
      std::vector<core::BatchRequest> requests;
      dags.reserve(batch_size);
      for (std::size_t i = 0; i < batch_size; ++i) {
        sim::ExperimentConfig rc = cfg;
        rc.sfc_size = 1 + mix.index(6);
        dags.push_back(sim::make_sfc(mix, scenario.network.catalog(), rc));
      }
      for (std::size_t i = 0; i < batch_size; ++i) {
        auto src = static_cast<graph::NodeId>(mix.index(cfg.network_size));
        auto dst = static_cast<graph::NodeId>(mix.index(cfg.network_size));
        if (dst == src) dst = (dst + 1) % cfg.network_size;
        requests.push_back(core::BatchRequest{
            &dags[i], core::Flow{src, dst, cfg.flow_rate, cfg.flow_size}});
      }
      Rng solver_rng(cfg.seed + rep);
      const core::BatchResult r = core::embed_batch(
          scenario.network, requests, *s->mbbe, order, solver_rng);
      accepted.add(static_cast<double>(r.accepted));
      ratio.add(r.acceptance_ratio());
      cost.add(r.total_cost);
    }
    t.row().cell(label);
    t.cell(accepted.mean(), 1);
    t.cell(ratio.mean() * 100.0, 1);
    t.cell(cost.mean(), 1);
    std::cerr << label << " done\n";
  }
  std::cout << "== Extension: batch admission ordering (MBBE embedder) ==\n"
            << "expectation: smallest-first admits the most requests under "
               "contention; cheapest-first spends the least per batch\n\n"
            << t.ascii();
  if (s->csv) std::cout << "\nCSV:\n" << t.csv();
  return 0;
}
