/// Reproduces the §4.5 complexity claim: MBBE cuts BBE's computation
/// complexity "without an apparent performance degradation". Reports mean
/// solve wall-clock, expanded sub-solutions, and mean cost for BBE vs MBBE
/// as the SFC size grows (BBE's cost is exponential in ω·φ) and as the
/// network grows.

#include <iostream>

#include "bench_common.hpp"

namespace {

void sweep(dagsfc::bench::BenchSetup& s, const std::string& x_name,
           const std::vector<dagsfc::sim::SweepPoint>& points,
           const std::string& note) {
  using namespace dagsfc;
  const std::vector<const core::Embedder*> algos{s.bbe.get(), s.mbbe.get()};
  Table t({x_name, "BBE cost", "MBBE cost", "BBE ms", "MBBE ms", "speedup",
           "BBE expanded", "MBBE expanded", "cost penalty %"});
  for (const auto& p : points) {
    const auto stats = sim::run_comparison(p.config, algos, s.run_opts);
    const auto& b = stats[0];
    const auto& m = stats[1];
    t.row().cell(p.label);
    t.cell(b.successes ? b.cost.mean() : 0.0);
    t.cell(m.successes ? m.cost.mean() : 0.0);
    t.cell(b.wall_ms.mean(), 3).cell(m.wall_ms.mean(), 3);
    t.cell(m.wall_ms.mean() > 0 ? b.wall_ms.mean() / m.wall_ms.mean() : 0.0,
           1);
    t.cell(b.expanded.mean(), 0).cell(m.expanded.mean(), 0);
    const double penalty =
        b.successes && m.successes && b.cost.mean() > 0
            ? (m.cost.mean() / b.cost.mean() - 1.0) * 100.0
            : 0.0;
    t.cell(penalty, 2);
    std::cerr << x_name << "=" << p.label << " done\n";
  }
  std::cout << note << "\n" << t.ascii() << "\n";
  if (s.csv) std::cout << "CSV:\n" << t.csv() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Sec. 4.5: BBE vs MBBE computation complexity");
  if (!s) return 1;

  std::cout << "== Sec. 4.5: MBBE complexity reduction ==\n"
            << "paper expectation: MBBE is orders of magnitude cheaper than "
               "BBE with no apparent cost degradation\n"
            << "base config: " << s->base.summary() << "\n\n";

  {
    const std::vector<double> sizes{1, 2, 3, 4, 5};
    const auto points = sim::make_points(
        s->base, sizes,
        [](sim::ExperimentConfig& cfg, double v) {
          cfg.sfc_size = static_cast<std::size_t>(v);
        },
        [](double v) { return std::to_string(static_cast<long long>(v)); });
    sweep(*s, "sfc_size", points, "by SFC size (network 500):");
  }
  {
    const std::vector<double> sizes{50, 100, 200, 500, 1000};
    const auto points = sim::make_points(
        s->base, sizes,
        [](sim::ExperimentConfig& cfg, double v) {
          cfg.network_size = static_cast<std::size_t>(v);
        },
        [](double v) { return std::to_string(static_cast<long long>(v)); });
    sweep(*s, "network_size", points, "by network size (SFC 5):");
  }
  return 0;
}
