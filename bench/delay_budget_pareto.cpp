/// Extension bench: the cost/latency frontier. MBBE with a delay budget
/// (see BacktrackingOptions::delay_budget_ms) sweeps the budget from
/// unconstrained down to barely feasible; cost rises as the latency bound
/// tightens — the joint optimization the paper's related work ([21][23])
/// targets, built on the DAG-SFC machinery.

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/delay.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv, "cost vs delay-budget frontier");
  if (!s) return 1;

  sim::ExperimentConfig cfg = s->base;
  const std::vector<double> budgets{0.0, 20.0, 14.0, 11.0, 9.0, 8.0, 7.0};

  Table t({"budget_ms", "mean cost", "ok%", "mean delay ms"});
  for (double budget : budgets) {
    core::MbbeOptions mopts;
    if (budget > 0.0) mopts.delay_budget_ms = budget;
    const core::MbbeEmbedder mbbe(mopts);

    Rng seeder(cfg.seed);
    RunningStats cost;
    RunningStats delay;
    std::size_t ok = 0;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      Rng rng(seeder.fork_seed());
      const sim::Scenario scenario = sim::make_scenario(rng, cfg);
      const sfc::DagSfc dag =
          sim::make_sfc(rng, scenario.network.catalog(), cfg);
      core::EmbeddingProblem problem;
      problem.network = &scenario.network;
      problem.sfc = &dag;
      problem.flow =
          core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
      const core::ModelIndex index(problem);
      const auto r = mbbe.solve_fresh(index, rng);
      if (!r.ok()) continue;
      ++ok;
      cost.add(r.cost);
      const core::Evaluator ev(index);
      delay.add(core::end_to_end_delay(ev, *r.solution));
    }
    std::ostringstream label;
    label << budget;
    t.row().cell(budget > 0.0 ? label.str() : "unbounded");
    t.cell(ok ? cost.mean() : 0.0);
    t.cell(static_cast<double>(ok) / static_cast<double>(cfg.trials) * 100.0,
           1);
    t.cell(ok ? delay.mean() : 0.0, 2);
    std::cerr << "budget=" << budget << " done\n";
  }
  std::cout << "== Extension: cost vs end-to-end delay budget (MBBE) ==\n"
            << "expectation: success rate collapses as the bound tightens; "
               "mean cost is over *solved* instances only, so tight-budget "
               "rows reflect the easy survivors\n"
            << "base config: " << s->base.summary() << "\n\n"
            << t.ascii();
  if (s->csv) std::cout << "\nCSV:\n" << t.csv();
  return 0;
}
