/// Extension bench: the layered joint placement+routing embedder vs the
/// paper's greedy/backtracking heuristics, with EXACT as the optimality
/// anchor. Two workload shapes bracket the interesting regime:
///
///   * sequential (max_layer_width = 1): the product graph has no gadget
///     transitions at all — one Dijkstra pass end to end;
///   * parallel (max_layer_width = 3, the paper's default): every parallel
///     layer fires the Steiner/merger gadget enumeration per settled
///     boundary state.
///
/// Instances are sized so the exact solver always runs; per shape the bench
/// reports, over the instances where *all* four solvers succeed, the mean
/// cost, each heuristic's cost gap relative to LAYERED, the mean wall
/// clock, and how many instances LAYERED matched EXACT bitwise (the
/// cross-embedder contract of tests/test_layered.cpp, measured here on the
/// bench workload). scripts/bench_layered.sh records the `JSON:` line as
/// BENCH_layered_gap.json.

#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "sim/scenario.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dagsfc;

struct AlgoStats {
  RunningStats cost;
  RunningStats wall_ms;
  std::size_t ok = 0;
};

double now_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("trials", 60, "instances per workload shape")
      .define_int("network-size", 14, "nodes (small enough for EXACT)")
      .define_int("sfc-size", 4, "VNFs per SFC")
      .define_double("connectivity", 3.0, "average node degree")
      .define_int("seed", 0x1a9e7ed, "base RNG seed")
      .define_bool("csv", false, "also print the tables as CSV")
      .define_log_level();
  try {
    flags.parse(argc, argv);
    flags.apply_log_level();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << "layered embedder vs greedy heuristics (EXACT-anchored)\n\n"
              << flags.usage(argv[0]);
    return 0;
  }

  sim::ExperimentConfig base;
  base.network_size = static_cast<std::size_t>(flags.get_int("network-size"));
  base.network_connectivity = flags.get_double("connectivity");
  base.sfc_size = static_cast<std::size_t>(flags.get_int("sfc-size"));
  base.catalog_size = 6;
  base.trials = static_cast<std::size_t>(flags.get_int("trials"));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const core::BbeEmbedder bbe;
  const core::MbbeEmbedder mbbe;
  const core::ExactEmbedder exact{core::ExactOptions{50'000'000}};
  const core::LayeredEmbedder layered{
      core::LayeredOptions{.delay_budget_ms = std::nullopt,
                           .delay_model = {},
                           .max_work = 50'000'000,
                           .max_labels = 2'000'000}};
  struct Arm {
    const char* key;
    const core::Embedder* algo;
  };
  const std::vector<Arm> arms{{"bbe", &bbe},
                              {"mbbe", &mbbe},
                              {"exact", &exact},
                              {"layered", &layered}};

  struct Shape {
    const char* name;
    std::size_t max_layer_width;
  };
  const std::vector<Shape> shapes{{"sequential", 1}, {"parallel", 3}};

  Table t({"shape", "algo", "ok", "mean cost", "gap vs layered %",
           "mean wall ms"});
  std::ostringstream json;
  json << "{\"bench\":\"layered_vs_greedy\",\"config\":\""
       << util::json_escape(base.summary()) << "\",\"shapes\":{";

  bool first_shape = true;
  for (const Shape& shape : shapes) {
    sim::ExperimentConfig cfg = base;
    cfg.max_layer_width = shape.max_layer_width;

    std::vector<AlgoStats> stats(arms.size());
    std::size_t all_ok = 0;
    std::size_t exact_bitwise = 0;

    Rng seeder(cfg.seed);
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      const std::uint64_t instance_seed = seeder.fork_seed();
      Rng gen(instance_seed);
      const sim::Scenario scenario = sim::make_scenario(gen, cfg);
      const sfc::DagSfc dag =
          sim::make_sfc(gen, scenario.network.catalog(), cfg);
      core::EmbeddingProblem problem;
      problem.network = &scenario.network;
      problem.sfc = &dag;
      problem.flow =
          core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
      const core::ModelIndex index(problem);

      std::vector<core::SolveResult> results;
      results.reserve(arms.size());
      bool everyone_ok = true;
      for (const Arm& arm : arms) {
        Rng rng(instance_seed);
        const auto t0 = std::chrono::steady_clock::now();
        core::SolveResult r = arm.algo->solve_fresh(index, rng);
        const double ms = now_ms_since(t0);
        const std::size_t i = results.size();
        stats[i].wall_ms.add(ms);
        if (r.ok()) {
          ++stats[i].ok;
        } else {
          everyone_ok = false;
        }
        results.push_back(std::move(r));
      }
      if (!everyone_ok) continue;
      ++all_ok;
      for (std::size_t i = 0; i < arms.size(); ++i) {
        stats[i].cost.add(results[i].cost);
      }
      if (results[2].cost == results[3].cost) ++exact_bitwise;
    }

    const double layered_mean = stats[3].cost.mean();
    for (std::size_t i = 0; i < arms.size(); ++i) {
      t.row().cell(shape.name).cell(arms[i].key);
      t.cell(stats[i].ok);
      t.cell(all_ok ? stats[i].cost.mean() : 0.0);
      const double gap =
          (all_ok && layered_mean > 0.0)
              ? (stats[i].cost.mean() - layered_mean) / layered_mean * 100.0
              : 0.0;
      t.cell(gap);
      t.cell(stats[i].wall_ms.mean(), 3);
    }

    json << (first_shape ? "" : ",") << "\"" << shape.name
         << "\":{\"trials\":" << cfg.trials << ",\"all_ok\":" << all_ok
         << ",\"exact_bitwise_matches\":" << exact_bitwise << ",\"algos\":{";
    first_shape = false;
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const double gap =
          (all_ok && layered_mean > 0.0)
              ? (stats[i].cost.mean() - layered_mean) / layered_mean
              : 0.0;
      json << (i ? "," : "") << "\"" << arms[i].key << "\":{\"ok\":"
           << stats[i].ok << ",\"cost_mean\":"
           << util::json_number(all_ok ? stats[i].cost.mean() : 0.0)
           << ",\"gap_vs_layered\":" << util::json_number(gap)
           << ",\"wall_ms_mean\":" << util::json_number(stats[i].wall_ms.mean())
           << "}";
    }
    json << "}}";
    std::cerr << "shape " << shape.name << ": " << all_ok << "/" << cfg.trials
              << " instances solved by every arm, " << exact_bitwise
              << " layered==exact bitwise\n";
  }
  json << "}}";

  std::cout << "== Extension: layered vs greedy (EXACT-anchored cost gap) ==\n"
            << "expectation: LAYERED tracks EXACT bitwise and lower-bounds "
               "BBE/MBBE; cost rows average only instances every arm "
               "solved\n"
            << "base config: " << base.summary() << "\n\n"
            << t.ascii();
  if (flags.get_bool("csv")) std::cout << "\nCSV:\n" << t.csv();
  std::cout << "\nJSON: " << json.str() << "\n";
  return 0;
}
