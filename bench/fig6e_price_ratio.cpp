/// Reproduces Fig. 6(e): total embedding cost vs average price ratio (mean
/// link price over mean VNF price, 1%..50%), plus the VNF-vs-link cost
/// breakdown behind the paper's §5.2.5 observation that BBE/MBBE "trade off
/// the VNF cost reduction and the link cost reduction in a proper way".

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Fig. 6(e): embedding cost vs average price ratio");
  if (!s) return 1;

  const std::vector<double> ratios{0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50};
  const auto algos = s->algorithms();

  std::vector<std::string> cost_cols{"price_ratio"};
  for (const auto* a : algos) cost_cols.push_back(a->name());
  Table cost_table(cost_cols);

  std::vector<std::string> split_cols{"price_ratio"};
  for (const auto* a : algos) {
    split_cols.push_back(a->name() + " vnf");
    split_cols.push_back(a->name() + " link");
  }
  Table split_table(split_cols);

  for (double ratio : ratios) {
    sim::ExperimentConfig cfg = s->base;
    cfg.average_price_ratio = ratio;
    const auto stats = sim::run_comparison(cfg, algos, s->run_opts);
    const std::string label =
        std::to_string(static_cast<long long>(ratio * 100)) + "%";
    cost_table.row().cell(label);
    split_table.row().cell(label);
    for (const auto& st : stats) {
      if (st.successes > 0) {
        cost_table.cell(st.cost.mean());
        split_table.cell(st.vnf_cost.mean()).cell(st.link_cost.mean());
      } else {
        cost_table.cell("-");
        split_table.cell("-").cell("-");
      }
    }
    std::cerr << "price_ratio=" << label << " done\n";
  }

  std::cout << "== Fig. 6(e): impact of the price ratio (links vs VNFs) ==\n"
            << "paper expectation: all costs rise with the link price; "
               "benchmark costs rise faster and the gap expands\n"
            << "base config: " << s->base.summary() << "\n\n"
            << "mean total embedding cost:\n"
            << cost_table.ascii() << "\n"
            << "VNF-rental vs link share of the objective (Sec. 5.2.5 "
               "trade-off):\n"
            << split_table.ascii();
  if (s->csv) std::cout << "\nCSV:\n" << cost_table.csv();
  return 0;
}
