/// Extension bench (beyond the paper's single-shot evaluation): dynamic
/// flow admission under increasing offered load. Flows arrive Poisson,
/// hold resources for exponential times, and depart; the embedder that
/// packs cheaply keeps accepting longer. Reported per load: acceptance
/// ratio, mean embedding cost of accepted flows, and mean concurrency.

#include <iostream>

#include "bench_common.hpp"
#include "sim/dynamic.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "dynamic admission under offered load (extension)");
  if (!s) return 1;

  sim::DynamicConfig base;
  base.base = s->base;
  base.base.network_size = 100;
  base.base.catalog_size = 8;
  base.base.sfc_size = 4;
  base.base.vnf_capacity = 8.0;
  base.base.link_capacity = 10.0;
  base.mean_holding_time = 10.0;
  base.num_arrivals = std::max<std::size_t>(100, s->base.trials * 3);

  const auto algos = s->algorithms();
  std::vector<std::string> cols{"offered_load"};
  for (const auto* a : algos) {
    cols.push_back(a->name() + " accept%");
    cols.push_back(a->name() + " cost");
    cols.push_back(a->name() + " cost p95");
    cols.push_back(a->name() + " concurrency");
  }
  Table t(cols);
  std::ostringstream json;
  json << "{\"bench\":\"dynamic_admission\",\"points\":[";
  bool first = true;

  for (double rate : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    sim::DynamicConfig cfg = base;
    cfg.arrival_rate = rate;
    t.row().cell(cfg.offered_load(), 1);
    json << (first ? "" : ",") << "{\"offered_load\":"
         << util::json_number(cfg.offered_load()) << ",\"algorithms\":[";
    first = false;
    bool first_algo = true;
    for (const auto* algo : algos) {
      const sim::DynamicResult r =
          sim::run_dynamic(cfg, *algo, s->base.seed);
      t.cell(r.acceptance_ratio() * 100.0, 1);
      t.cell(r.accepted ? r.cost.mean() : 0.0, 1);
      t.cell(r.cost_hist.p95(), 1);
      t.cell(r.concurrency.mean(), 1);
      json << (first_algo ? "" : ",") << "{\"name\":\""
           << util::json_escape(algo->name()) << "\",\"acceptance_ratio\":"
           << util::json_number(r.acceptance_ratio())
           << ",\"mean_cost\":"
           << util::json_number(r.accepted ? r.cost.mean() : 0.0)
           << ",\"cost_p50\":" << util::json_number(r.cost_hist.p50())
           << ",\"cost_p95\":" << util::json_number(r.cost_hist.p95())
           << ",\"cost_p99\":" << util::json_number(r.cost_hist.p99())
           << ",\"mean_concurrency\":"
           << util::json_number(r.concurrency.mean()) << "}";
      first_algo = false;
    }
    json << "]}";
    std::cerr << "offered_load=" << cfg.offered_load() << " done\n";
  }
  json << "]}";
  std::cout << "== Extension: dynamic admission (Erlang loss) ==\n"
            << "expectation: MBBE sustains the highest acceptance and the "
               "lowest per-flow cost as load grows\n\n"
            << t.ascii() << "\nJSON: " << json.str() << "\n";
  if (s->csv) std::cout << "\nCSV:\n" << t.csv();
  return 0;
}
