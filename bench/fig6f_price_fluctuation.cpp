/// Reproduces Fig. 6(f): total embedding cost vs VNF price fluctuation
/// ratio (5%..50%).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(
      argc, argv, "Fig. 6(f): embedding cost vs VNF price fluctuation ratio");
  if (!s) return 1;

  const std::vector<double> ratios{0.05, 0.10, 0.20, 0.30, 0.40, 0.50};
  const auto points = sim::make_points(
      s->base, ratios,
      [](sim::ExperimentConfig& cfg, double v) {
        cfg.vnf_price_fluctuation = v;
      },
      [](double v) {
        return std::to_string(static_cast<long long>(v * 100)) + "%";
      });

  const auto result = sim::run_sweep("fluctuation", points, s->algorithms(),
                                     s->run_opts, &std::cerr);
  bench::print_result(
      *s, "Fig. 6(f): impact of the VNF price fluctuation ratio",
      "MBBE/BBE/MINV costs fall as fluctuation rises (cheaper instances "
      "appear); MINV narrows the gap but never wins",
      result);
  return 0;
}
