/// Ablation of MBBE's three complementary strategies (DESIGN.md calls these
/// out as the design choices to quantify):
///   * X_max — forward-search node cap (strategy 1),
///   * X_d   — sub-solution-tree branching cap (strategy 3),
///   * min-cost-path vs FST/BST tree-path instantiation (strategy 2).

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dagsfc;

void run_variants(bench::BenchSetup& s, const std::string& title,
                  const std::vector<std::pair<std::string,
                                              core::BacktrackingOptions>>&
                      variants) {
  Table t({"variant", "mean cost", "ok%", "mean ms", "expanded"});
  for (const auto& [label, opts] : variants) {
    const core::BbeEmbedder engine(opts);
    const auto stats =
        sim::run_comparison(s.base, {&engine}, s.run_opts);
    const auto& st = stats[0];
    t.row().cell(label);
    t.cell(st.successes ? st.cost.mean() : 0.0);
    t.cell(st.success_rate() * 100.0, 1);
    t.cell(st.wall_ms.mean(), 3);
    t.cell(st.expanded.mean(), 0);
    std::cerr << label << " done\n";
  }
  std::cout << title << "\n" << t.ascii() << "\n";
  if (s.csv) std::cout << "CSV:\n" << t.csv() << "\n";
}

core::BacktrackingOptions mbbe_like(std::size_t x_max, std::size_t x_d,
                                    bool min_cost) {
  core::BacktrackingOptions o;
  o.min_cost_path_instantiation = min_cost;
  o.x_max = x_max;
  o.x_d = x_d;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  auto s = bench::setup(argc, argv, "MBBE parameter/strategy ablation");
  if (!s) return 1;
  std::cout << "== Ablation: MBBE strategies ==\n"
            << "base config: " << s->base.summary() << "\n\n";

  {
    std::vector<std::pair<std::string, core::BacktrackingOptions>> v;
    for (std::size_t x : {5u, 10u, 20u, 50u, 100u}) {
      v.emplace_back("X_max=" + std::to_string(x), mbbe_like(x, 4, true));
    }
    run_variants(*s, "strategy (1): forward-search cap X_max (X_d=4):", v);
  }
  {
    std::vector<std::pair<std::string, core::BacktrackingOptions>> v;
    for (std::size_t x : {1u, 2u, 4u, 8u, 16u}) {
      v.emplace_back("X_d=" + std::to_string(x), mbbe_like(50, x, true));
    }
    run_variants(*s, "strategy (3): children kept per sub-solution X_d "
                     "(X_max=50):", v);
  }
  {
    std::vector<std::pair<std::string, core::BacktrackingOptions>> v;
    v.emplace_back("tree-path instantiation", mbbe_like(50, 4, false));
    v.emplace_back("min-cost-path instantiation", mbbe_like(50, 4, true));
    run_variants(*s,
                 "strategy (2): meta-path instantiation (X_max=50, X_d=4):",
                 v);
  }
  {
    std::vector<std::pair<std::string, core::BacktrackingOptions>> v;
    for (std::size_t k : {1u, 2u, 4u}) {
      auto o = mbbe_like(50, 4, true);
      o.paths_per_meta_path = k;
      v.emplace_back("paths/meta-path=" + std::to_string(k), o);
    }
    run_variants(*s,
                 "real-path enumeration depth (the paper's |P^a_b| / h):", v);
  }
  return 0;
}
