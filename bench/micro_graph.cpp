/// Before/after kernel suite for the flattened path-search hot path.
///
/// Every kernel runs twice on the same inputs: a `ref` arm through the
/// frozen seed implementations (graph::reference::*, std::function filters,
/// per-call allocations) and a `flat` arm through the CSR + workspace +
/// edge-mask tier. Both arms accumulate a checksum in the same order; the
/// checksums must match bitwise — the flat tier claims bit-identical
/// results, and this harness enforces the claim on every run.
///
/// The *_alt and multi_source rows measure the goal-directed tier instead:
/// there the `ref` arm is the plain flat kernel (the previous PR's hot
/// path) and the `flat` arm is the same kernel with ALT landmark pruning
/// (--landmarks, see graph/oracle.hpp) or the batched one-pass variant —
/// so their speedup column reads "oracle/batching over flat", not "flat
/// over seed". Bit-identity is enforced the same way.
///
/// Timing: per (kernel, arm) the loop body runs `iters` times per rep and
/// the best-of-`reps` wall time is reported, which filters scheduler noise
/// without averaging away the steady state the workspace tier creates.
///
/// The topology is the paper's fig6b point (network-size sweep) at
/// --network-size nodes (default 200), so the reported SSSP speedup is the
/// one the embedders see on the figure-reproduction workload. The final
/// "JSON: " line is what scripts/bench_graph.sh records as
/// BENCH_micro_graph.json.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/oracle.hpp"
#include "graph/reference.hpp"
#include "graph/steiner.hpp"
#include "graph/workspace.hpp"
#include "graph/yen.hpp"
#include "sim/scenario.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

namespace {

using namespace dagsfc;

/// Keeps the accumulated checksum observable so the timed loops cannot be
/// dead-code-eliminated (same role as benchmark::DoNotOptimize).
volatile double g_sink = 0.0;

struct KernelResult {
  std::string name;
  std::size_t iters = 0;
  double ref_ns = 0.0;
  double flat_ns = 0.0;
  double ref_checksum = 0.0;
  double flat_checksum = 0.0;

  [[nodiscard]] double speedup() const {
    return flat_ns > 0.0 ? ref_ns / flat_ns : 0.0;
  }
};

/// Best-of-reps wall time of `body(iters)`; body returns its checksum.
template <typename Body>
std::pair<double, double> time_arm(std::size_t reps, std::size_t iters,
                                   Body&& body) {
  double checksum = 0.0;
  double best_ns = graph::kInfCost;
  for (std::size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    checksum = body(iters);
    const double ns = timer.elapsed_seconds() * 1e9 /
                      static_cast<double>(iters);
    if (ns < best_ns) best_ns = ns;
    g_sink = g_sink + checksum;
  }
  return {best_ns, checksum};
}

template <typename RefBody, typename FlatBody>
KernelResult run_kernel(const std::string& name, std::size_t reps,
                        std::size_t iters, RefBody&& ref, FlatBody&& flat) {
  KernelResult out;
  out.name = name;
  out.iters = iters;
  std::tie(out.ref_ns, out.ref_checksum) = time_arm(reps, iters, ref);
  std::tie(out.flat_ns, out.flat_checksum) = time_arm(reps, iters, flat);
  if (out.ref_checksum != out.flat_checksum) {
    std::cerr << "FATAL: checksum mismatch in kernel '" << name
              << "': ref=" << out.ref_checksum
              << " flat=" << out.flat_checksum
              << " — the flat search tier is NOT bit-identical\n";
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("network-size", 200,
                   "substrate size (fig6b sweep point; paper uses 200)")
      .define_int("reps", 5, "timing repetitions; best-of-reps is reported")
      .define_int("landmarks", 16, "ALT landmark budget for the *_alt rows")
      .define_int("seed", 0x5fcdaa11, "scenario RNG seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << flags.usage(argv[0]);
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << "Before/after micro benches for the flat path-search tier."
              << "\n\n"
              << flags.usage(argv[0]);
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("network-size"));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));

  sim::ExperimentConfig cfg;
  cfg.network_size = n;
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const graph::Graph& g = scenario.network.topology();
  const graph::NodeId src = scenario.source;
  const graph::NodeId dst = scenario.destination;

  // Rotating source set: SSSP kernels sweep sources so neither arm can hide
  // behind a single hot cache line pattern.
  std::vector<graph::NodeId> sources;
  for (std::size_t i = 0; i < 16; ++i) {
    sources.push_back(static_cast<graph::NodeId>(rng.index(g.num_nodes())));
  }
  std::vector<graph::NodeId> terminals;
  for (std::size_t i = 0; i < 5; ++i) {
    terminals.push_back(static_cast<graph::NodeId>(rng.index(g.num_nodes())));
  }

  graph::SearchWorkspace ws;
  (void)g.csr();  // build once up front; every embedder solve amortizes this

  // ALT oracle for the goal-directed rows: built once (the epoch-keyed
  // steady state — the serve plane and the bench loops both reuse tables
  // across queries), outside every timed region.
  graph::DistanceOracle::Options oracle_opts;
  oracle_opts.landmarks =
      static_cast<std::size_t>(flags.get_int("landmarks"));
  const graph::DistanceOracle oracle(g, oracle_opts);
  if (!oracle.active()) {
    std::cerr << "FATAL: scenario topology is disconnected; the *_alt rows "
                 "would silently measure the unpruned kernel\n";
    return 1;
  }

  std::vector<KernelResult> results;

  // Repeated single-source shortest paths — the embedders' innermost loop.
  results.push_back(run_kernel(
      "sssp_tree", reps, 1000,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto t =
              graph::reference::dijkstra(g, sources[i % sources.size()]);
          for (const double d : t.dist) sum += d;
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          graph::dijkstra_into(g, sources[i % sources.size()], ws);
          for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
            sum += ws.dist(v);
          }
        }
        return sum;
      }));

  // Point-to-point query with early exit at the target.
  results.push_back(run_kernel(
      "p2p", reps, 1000,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto p = graph::reference::min_cost_path(
              g, sources[i % sources.size()], dst);
          if (p) sum += p->cost + static_cast<double>(p->nodes.size());
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto p =
              graph::min_cost_path(g, sources[i % sources.size()], dst, ws);
          if (p) sum += p->cost + static_cast<double>(p->nodes.size());
        }
        return sum;
      }));

  // Goal-directed point-to-point: plain flat kernel vs the same kernel
  // pruned by ALT landmark bounds (seeded upper bound — unmasked query).
  results.push_back(run_kernel(
      "p2p_alt", reps, 1000,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto p =
              graph::min_cost_path(g, sources[i % sources.size()], dst, ws);
          if (p) sum += p->cost + static_cast<double>(p->nodes.size());
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const graph::AltQuery alt = oracle.query(
              sources[i % sources.size()], dst, /*seed_upper_bound=*/true);
          const auto p = graph::min_cost_path(
              g, sources[i % sources.size()], dst, ws, nullptr, alt);
          if (p) sum += p->cost + static_cast<double>(p->nodes.size());
        }
        return sum;
      }));

  // Yen k-shortest: spur searches dominate; the flat arm reuses one spur
  // mask where the seed built a closure + two std::sets per candidate.
  results.push_back(run_kernel(
      "yen_k4", reps, 50,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          for (const auto& p :
               graph::reference::k_shortest_paths(g, src, dst, 4)) {
            sum += p.cost + static_cast<double>(p.nodes.size());
          }
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          for (const auto& p :
               graph::k_shortest_paths(g, src, dst, 4, nullptr, ws)) {
            sum += p.cost + static_cast<double>(p.nodes.size());
          }
        }
        return sum;
      }));

  // Goal-directed Yen: every inner search (first path + spurs) pruned
  // through the same landmark tables (spurs drop the seed — they run
  // masked).
  results.push_back(run_kernel(
      "yen_alt_k4", reps, 50,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          for (const auto& p :
               graph::k_shortest_paths(g, src, dst, 4, nullptr, ws)) {
            sum += p.cost + static_cast<double>(p.nodes.size());
          }
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        const graph::AltQuery alt =
            oracle.query(src, dst, /*seed_upper_bound=*/true);
        for (std::size_t i = 0; i < iters; ++i) {
          for (const auto& p :
               graph::k_shortest_paths(g, src, dst, 4, nullptr, ws, alt)) {
            sum += p.cost + static_cast<double>(p.nodes.size());
          }
        }
        return sum;
      }));

  // Batched SSSP: 8 independent full trees vs one layered-state heap pass
  // (what the Steiner base case and the shard border summaries now run).
  results.push_back(run_kernel(
      "multi_source_t8", reps, 100,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          for (std::size_t s = 0; s < 8; ++s) {
            graph::dijkstra_into(g, sources[s], ws);
            for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
              sum += ws.dist(v);
            }
          }
        }
        return sum;
      },
      [&](std::size_t iters) {
        const std::span<const graph::NodeId> batch(sources.data(), 8);
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          graph::multi_source_dijkstra_into(g, batch, ws);
          const graph::MultiSourceView bank(ws, g, 8);
          for (std::size_t s = 0; s < 8; ++s) {
            for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
              sum += bank.dist(s, v);
            }
          }
        }
        return sum;
      }));

  // Dreyfus–Wagner over 5 terminals; the DP dominates, the flat arm only
  // wins on its |T| embedded Dijkstras and the mask probes. Since the
  // batched + future-cost-pruned rewrite the flat arm also runs its base
  // case through multi_source_dijkstra_into and prunes DP cells against
  // the star upper bound.
  results.push_back(run_kernel(
      "steiner_t5", reps, 10,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto t = graph::reference::steiner_tree(g, terminals);
          if (t) sum += t->cost + static_cast<double>(t->edges.size());
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto t = graph::steiner_tree(g, terminals, nullptr, ws);
          if (t) sum += t->cost + static_cast<double>(t->edges.size());
        }
        return sum;
      }));

  // Path reconstruction from a solved search: exported-tree path_to vs
  // workspace extract_path (both use the hop-counted exact pre-size).
  const graph::ShortestPathTree ref_tree = graph::reference::dijkstra(g, src);
  graph::dijkstra_into(g, src, ws);
  results.push_back(run_kernel(
      "path_reconstruct", reps, 2000,
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto p =
              ref_tree.path_to(static_cast<graph::NodeId>(i % g.num_nodes()));
          if (p) sum += p->cost + static_cast<double>(p->nodes.size());
        }
        return sum;
      },
      [&](std::size_t iters) {
        double sum = 0.0;
        for (std::size_t i = 0; i < iters; ++i) {
          const auto p = graph::extract_path(
              ws, static_cast<graph::NodeId>(i % g.num_nodes()));
          if (p) sum += p->cost + static_cast<double>(p->nodes.size());
        }
        return sum;
      }));

  std::printf("== micro_graph: flat search tier vs seed ==\n");
  std::printf("topology: fig6b scenario, %zu nodes, %zu edges\n\n",
              g.num_nodes(), static_cast<std::size_t>(g.num_edges()));
  std::printf("%-18s %10s %12s %12s %9s\n", "kernel", "iters", "ref ns/op",
              "flat ns/op", "speedup");
  for (const KernelResult& k : results) {
    std::printf("%-18s %10zu %12.1f %12.1f %8.2fx\n", k.name.c_str(),
                k.iters, k.ref_ns, k.flat_ns, k.speedup());
  }
  std::printf("\nall checksums bit-identical between arms\n");

  std::ostringstream os;
  os << "{\"bench\":\"micro_graph\",\"network_size\":" << g.num_nodes()
     << ",\"num_edges\":" << g.num_edges() << ",\"reps\":" << reps
     << ",\"kernels\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& k = results[i];
    if (i) os << ",";
    os << "{\"name\":\"" << k.name << "\",\"iters\":" << k.iters
       << ",\"ref_ns_per_op\":" << k.ref_ns
       << ",\"flat_ns_per_op\":" << k.flat_ns
       << ",\"speedup\":" << k.speedup() << ",\"bit_identical\":true}";
  }
  os << "]}";
  std::cout << "\nJSON: " << os.str() << "\n";
  return 0;
}
