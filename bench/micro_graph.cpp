/// google-benchmark micro benches for the substrate primitives the
/// embedding algorithms lean on: Dijkstra, Yen's k-shortest paths, the
/// Dreyfus–Wagner Steiner DP, topology generation, and the cost evaluator.

#include <benchmark/benchmark.h>

#include "core/backtracking.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generator.hpp"
#include "graph/steiner.hpp"
#include "graph/yen.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace dagsfc;

graph::Graph make_graph(std::size_t n, double degree, std::uint64_t seed) {
  Rng rng(seed);
  graph::RandomGraphOptions opts;
  opts.num_nodes = n;
  opts.average_degree = degree;
  graph::Graph g = random_connected_graph(rng, opts);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(1.0, 10.0));
  }
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)), 6.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(500)->Arg(1000);

void BM_YenKsp(benchmark::State& state) {
  const auto g = make_graph(200, 6.0, 2);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::k_shortest_paths(g, 0, 150, k));
  }
}
BENCHMARK(BM_YenKsp)->Arg(2)->Arg(4)->Arg(8);

void BM_SteinerTree(benchmark::State& state) {
  const auto g = make_graph(120, 5.0, 3);
  std::vector<graph::NodeId> terminals;
  Rng rng(4);
  for (long i = 0; i < state.range(0); ++i) {
    terminals.push_back(static_cast<graph::NodeId>(rng.index(120)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::steiner_tree(g, terminals));
  }
}
BENCHMARK(BM_SteinerTree)->Arg(3)->Arg(5)->Arg(7);

void BM_NetworkGeneration(benchmark::State& state) {
  sim::ExperimentConfig cfg;
  cfg.network_size = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::make_scenario(rng, cfg));
  }
}
BENCHMARK(BM_NetworkGeneration)->Arg(100)->Arg(500)->Arg(1000);

void BM_MbbeSolve(benchmark::State& state) {
  sim::ExperimentConfig cfg;
  cfg.network_size = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
  core::EmbeddingProblem problem;
  problem.network = &scenario.network;
  problem.sfc = &dag;
  problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
  const core::ModelIndex index(problem);
  const core::MbbeEmbedder mbbe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbbe.solve_fresh(index, rng));
  }
}
BENCHMARK(BM_MbbeSolve)->Arg(100)->Arg(500);

void BM_EvaluatorCost(benchmark::State& state) {
  sim::ExperimentConfig cfg;
  Rng rng(7);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
  core::EmbeddingProblem problem;
  problem.network = &scenario.network;
  problem.sfc = &dag;
  problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
  const core::ModelIndex index(problem);
  const core::MbbeEmbedder mbbe;
  const auto r = mbbe.solve_fresh(index, rng);
  const core::Evaluator evaluator(index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.cost(*r.solution));
  }
}
BENCHMARK(BM_EvaluatorCost);

}  // namespace

BENCHMARK_MAIN();
