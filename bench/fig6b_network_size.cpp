/// Reproduces Fig. 6(b): total embedding cost vs network size
/// (10, 20, 50, 100, 200, 500, 1000 nodes).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dagsfc;
  auto s = bench::setup(argc, argv,
                        "Fig. 6(b): embedding cost vs network size");
  if (!s) return 1;

  const std::vector<double> sizes{10, 20, 50, 100, 200, 500, 1000};
  const auto points = sim::make_points(
      s->base, sizes,
      [](sim::ExperimentConfig& cfg, double v) {
        cfg.network_size = static_cast<std::size_t>(v);
      },
      [](double v) { return std::to_string(static_cast<long long>(v)); });

  const auto result =
      sim::run_sweep("network_size", points, s->algorithms(), s->run_opts,
                     &std::cerr);
  bench::print_result(
      *s, "Fig. 6(b): impact of the network size",
      "BBE/MBBE roughly flat as the network grows; benchmark costs rise; "
      ">=14% advantage, gap widens",
      result);
  return 0;
}
