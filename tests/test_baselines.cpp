#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

TEST(Minv, PicksCheapestInstancesOnCanonicalFixture) {
  auto fx = test::canonical_fixture();
  const MinvEmbedder minv;
  Rng rng(1);
  const auto r = minv.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  // Cheapest hosts: f1@1 (only), f2@5 (8<12), f3@3 (7<9), merger@3 (5<6).
  EXPECT_EQ(r.solution->placement,
            (std::vector<graph::NodeId>{1, 5, 3, 3}));
  // Cost within [optimum 35, hand-worst 41]; routing ties decide exact value.
  EXPECT_GE(r.cost, 35.0 - 1e-9);
  EXPECT_LE(r.cost, 41.0 + 1e-9);
}

TEST(Minv, IsDeterministic) {
  auto fx = test::canonical_fixture();
  const MinvEmbedder minv;
  Rng rng(1);
  const auto a = minv.solve_fresh(*fx->index, rng);
  const auto b = minv.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.solution->placement, b.solution->placement);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Ranv, ProducesValidSolutionsAcrossSeeds) {
  auto fx = test::canonical_fixture();
  const RanvEmbedder ranv;
  const Evaluator ev(*fx->index);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto r = ranv.solve_fresh(*fx->index, rng);
    ASSERT_TRUE(r.ok()) << r.failure_reason;
    EXPECT_TRUE(ev.validate(*r.solution).empty());
    EXPECT_NEAR(ev.cost(*r.solution), r.cost, 1e-9);
  }
}

TEST(Ranv, ExploresDifferentPlacements) {
  auto fx = test::canonical_fixture();
  const RanvEmbedder ranv;
  std::set<std::vector<graph::NodeId>> placements;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto r = ranv.solve_fresh(*fx->index, rng);
    ASSERT_TRUE(r.ok());
    placements.insert(r.solution->placement);
  }
  EXPECT_GT(placements.size(), 1u);  // f2/f3/merger each have 2 hosts
}

TEST(Baselines, FailWhenTypeUndeployed) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 5.0);  // f2 never deployed
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 2, 1.0, 1.0});
  Rng rng(3);
  for (const Embedder* algo :
       std::initializer_list<const Embedder*>{new RanvEmbedder,
                                              new MinvEmbedder}) {
    const auto r = algo->solve_fresh(*fx->index, rng);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.failure_reason.empty());
    delete algo;
  }
}

TEST(Baselines, FailWhenInstanceCapacityTooSmall) {
  test::NetBuilder b(2, 1);
  b.link(0, 1, 1.0);
  b.put(1, 1, 5.0, /*capacity=*/0.5);  // below flow rate 1.0
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 1, 1.0, 1.0});
  Rng rng(4);
  const MinvEmbedder minv;
  const auto r = minv.solve_fresh(*fx->index, rng);
  EXPECT_FALSE(r.ok());
}

TEST(Baselines, RepeatedTypeRespectsInstanceCapacity) {
  // SFC needs f1 twice; the cheap instance can only process one use, so the
  // second use must land on the expensive node.
  test::NetBuilder b(3, 1);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0, /*capacity=*/1.0);   // cheap but tiny
  b.put(2, 1, 50.0, /*capacity=*/10.0); // pricey fallback
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{1}}}),
      Flow{0, 2, 1.0, 1.0});
  Rng rng(5);
  const MinvEmbedder minv;
  const auto r = minv.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  const std::vector<graph::NodeId>& p = r.solution->placement;
  EXPECT_NE(p[0], p[1]);  // both on node 1 would exceed capacity 1.0
}

TEST(Baselines, MinvRoutesWithMinimumCostPaths) {
  // Two routes between f1 and f2: hop-short but pricey vs longer but cheap;
  // Dijkstra-by-price must take the cheap one.
  test::NetBuilder b(4, 2);
  b.link(0, 1, 1.0);
  b.link(1, 3, 10.0);           // expensive direct
  b.link(1, 2, 1.0).link(2, 3, 1.0);  // cheap detour
  b.put(1, 1, 5.0).put(3, 2, 5.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 3, 1.0, 1.0});
  Rng rng(6);
  const MinvEmbedder minv;
  const auto r = minv.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  // Path f1→f2 must be 1-2-3 (cost 2), not 1-3 (cost 10).
  const graph::Path& p = r.solution->inter_paths[1];
  EXPECT_EQ(p.nodes, (std::vector<graph::NodeId>{1, 2, 3}));
}

TEST(Baselines, ZeroExpansionReported) {
  auto fx = test::canonical_fixture();
  Rng rng(7);
  const MinvEmbedder minv;
  const auto r = minv.solve_fresh(*fx->index, rng);
  EXPECT_EQ(r.expanded_sub_solutions, 0u);
  EXPECT_EQ(r.candidate_solutions, 1u);
}

}  // namespace
}  // namespace dagsfc::core
