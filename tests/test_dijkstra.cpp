#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"

namespace dagsfc::graph {
namespace {

/// Weighted diamond: 0-1 (1), 1-3 (5), 0-2 (2), 2-3 (1), 1-2 (1).
Graph diamond() {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(1, 3, 5.0);
  (void)g.add_edge(0, 2, 2.0);
  (void)g.add_edge(2, 3, 1.0);
  (void)g.add_edge(1, 2, 1.0);
  return g;
}

TEST(Dijkstra, DistancesAreCheapestByPrice) {
  const Graph g = diamond();
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(t.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(t.dist[3], 3.0);  // 0-1-2-3 (1+1+1) or 0-2-3 (2+1)
}

TEST(Dijkstra, PathReconstructionIsConsistent) {
  const Graph g = diamond();
  const ShortestPathTree t = dijkstra(g, 0);
  const auto p = t.path_to(3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->source(), 0u);
  EXPECT_EQ(p->target(), 3u);
  EXPECT_TRUE(g.path_valid(*p));
  EXPECT_DOUBLE_EQ(g.path_cost(*p), 3.0);
  EXPECT_DOUBLE_EQ(p->cost, 3.0);
}

TEST(Dijkstra, PathToSourceIsTrivial) {
  const Graph g = diamond();
  const ShortestPathTree t = dijkstra(g, 0);
  const auto p = t.path_to(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, std::vector<NodeId>{0});
  EXPECT_TRUE(p->edges.empty());
  EXPECT_DOUBLE_EQ(p->cost, 0.0);
}

TEST(Dijkstra, UnreachableNode) {
  Graph g(3);
  (void)g.add_edge(0, 1, 1.0);
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_FALSE(t.reached(2));
  EXPECT_FALSE(t.path_to(2).has_value());
}

TEST(Dijkstra, EdgeFilterChangesRouting) {
  Graph g = diamond();
  // Ban the 2-3 edge: the cheapest 0→3 route becomes 0-1-3 = 6? No:
  // 0-1(1)+1-3(5)=6 vs 0-2(2)+... 2-3 banned, 2-1-3 = 2+1+5=8 → 6.
  const auto banned = g.find_edge(2, 3);
  ASSERT_TRUE(banned.has_value());
  const auto p = min_cost_path(
      g, 0, 3, [&](EdgeId e) { return e != *banned; });
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->cost, 6.0);
}

TEST(Dijkstra, FilterCanDisconnect) {
  const Graph g = diamond();
  const auto p =
      min_cost_path(g, 0, 3, [](EdgeId) { return false; });
  EXPECT_FALSE(p.has_value());
}

TEST(Dijkstra, ZeroWeightEdgesSupported) {
  Graph g(3);
  (void)g.add_edge(0, 1, 0.0);
  (void)g.add_edge(1, 2, 0.0);
  const auto p = min_cost_path(g, 0, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->cost, 0.0);
  EXPECT_EQ(p->length(), 2u);
}

TEST(Dijkstra, MinCostPathEqualsFullTreeOnRandomGraphs) {
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    RandomGraphOptions opts;
    opts.num_nodes = 40;
    opts.average_degree = 4.0;
    Graph g = random_connected_graph(rng, opts);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      g.set_weight(e, rng.uniform_real(0.1, 5.0));
    }
    const NodeId src = static_cast<NodeId>(rng.index(40));
    const NodeId dst = static_cast<NodeId>(rng.index(40));
    const ShortestPathTree t = dijkstra(g, src);
    const auto p = min_cost_path(g, src, dst);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->cost, t.dist[dst], 1e-9);
  }
}

TEST(Dijkstra, TriangleInequalityHoldsOnRandomGraph) {
  Rng rng(67);
  RandomGraphOptions opts;
  opts.num_nodes = 30;
  opts.average_degree = 4.0;
  Graph g = random_connected_graph(rng, opts);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(0.1, 3.0));
  }
  const ShortestPathTree from0 = dijkstra(g, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    EXPECT_LE(from0.dist[ed.v], from0.dist[ed.u] + ed.weight + 1e-9);
    EXPECT_LE(from0.dist[ed.u], from0.dist[ed.v] + ed.weight + 1e-9);
  }
}

TEST(Dijkstra, InvalidSourceRejected) {
  const Graph g = diamond();
  EXPECT_THROW((void)dijkstra(g, 17), ContractViolation);
}

TEST(Dijkstra, PathToSizesTheLongPathExactly) {
  // A 500-hop line graph: path_to counts hops by walking the parent chain
  // once, so the returned vectors are exactly sized (capacity == size, no
  // push_back growth) and correctly ordered source → target.
  constexpr std::size_t kNodes = 501;
  Graph g(kNodes);
  for (NodeId v = 0; v + 1 < kNodes; ++v) {
    (void)g.add_edge(v, v + 1, 1.0);
  }
  const ShortestPathTree t = dijkstra(g, 0);
  const auto p = t.path_to(kNodes - 1);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->nodes.size(), kNodes);
  ASSERT_EQ(p->edges.size(), kNodes - 1);
  EXPECT_EQ(p->nodes.capacity(), p->nodes.size());
  EXPECT_EQ(p->edges.capacity(), p->edges.size());
  EXPECT_EQ(p->cost, static_cast<double>(kNodes - 1));
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(p->nodes[i], static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i + 1 < kNodes; ++i) {
    EXPECT_EQ(p->edges[i], static_cast<EdgeId>(i));
  }
}

}  // namespace
}  // namespace dagsfc::graph
