#include "core/ilp.hpp"

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

TEST(IlpModel, ObjectiveAndViolations) {
  IlpModel m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  m.add_objective_term(3.0, a);
  m.add_objective_term(2.0, b);
  LinConstraint c;
  c.name = "pick_one";
  c.rel = Relation::Eq;
  c.rhs = 1.0;
  c.lhs.add(1.0, a).add(1.0, b);
  m.add_constraint(std::move(c));

  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(m.objective_value({0.0, 1.0}), 2.0);
  EXPECT_TRUE(m.violations({1.0, 0.0}).empty());
  EXPECT_EQ(m.violations({1.0, 1.0}).size(), 1u);
  EXPECT_EQ(m.violations({0.0, 0.0}).size(), 1u);
}

TEST(IlpModel, RelationSemantics) {
  IlpModel m;
  const VarId a = m.add_binary("a");
  LinConstraint ge;
  ge.name = "ge";
  ge.rel = Relation::GreaterEq;
  ge.rhs = 1.0;
  ge.lhs.add(2.0, a);
  m.add_constraint(std::move(ge));
  LinConstraint le;
  le.name = "le";
  le.rel = Relation::LessEq;
  le.rhs = 2.0;
  le.lhs.add(2.0, a);
  m.add_constraint(std::move(le));
  EXPECT_TRUE(m.violations({1.0}).empty());
  EXPECT_FALSE(m.violations({0.0}).empty());
}

TEST(IlpModel, LpExportHasAllSections) {
  IlpModel m;
  const VarId a = m.add_binary("alpha");
  m.add_objective_term(1.5, a);
  LinConstraint c;
  c.name = "r1";
  c.rel = Relation::GreaterEq;
  c.rhs = 1.0;
  c.lhs.add(1.0, a);
  m.add_constraint(std::move(c));
  const std::string lp = m.to_lp();
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  EXPECT_NE(lp.find("r1:"), std::string::npos);
  EXPECT_NE(lp.find("alpha"), std::string::npos);
  EXPECT_NE(lp.find(">="), std::string::npos);
}

TEST(IlpBuilder, CanonicalFixtureModelShape) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  IlpBuilder builder(*fx->index, ledger);
  const IlpModel m = builder.build();
  // 4 slots with 1+2+2+2 = 7 hosts → 7 placement vars; plus selections and
  // multicast binaries.
  EXPECT_GT(m.num_variables(), 7u);
  EXPECT_GT(m.num_constraints(), 4u);
  const std::string lp = m.to_lp();
  EXPECT_NE(lp.find("assign_s0:"), std::string::npos);
  EXPECT_NE(lp.find("vnfcap_"), std::string::npos);
  EXPECT_NE(lp.find("linkcap_"), std::string::npos);
}

TEST(IlpBuilder, EveryAlgorithmSolutionIsAFeasibleIlpPoint) {
  // The central consistency theorem of the reproduction: any solution our
  // algorithms produce satisfies the paper's constraint system, and its
  // ILP objective equals the Evaluator's cost.
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  IlpBuilder builder(*fx->index, ledger, IlpOptions{8});
  const IlpModel m = builder.build();
  const Evaluator ev(*fx->index);

  const RanvEmbedder ranv;
  const MinvEmbedder minv;
  const BbeEmbedder bbe;
  const MbbeEmbedder mbbe;
  const ExactEmbedder exact;
  Rng rng(5);
  for (const Embedder* algo : std::initializer_list<const Embedder*>{
           &ranv, &minv, &bbe, &mbbe, &exact}) {
    const auto r = algo->solve(*fx->index, ledger, rng);
    ASSERT_TRUE(r.ok()) << algo->name() << ": " << r.failure_reason;
    const auto x = builder.assignment_from(*r.solution);
    ASSERT_TRUE(x.has_value())
        << algo->name() << ": real-path missing from candidate enumeration";
    const auto bad = m.violations(*x);
    EXPECT_TRUE(bad.empty()) << algo->name() << " violates " << bad.front();
    EXPECT_NEAR(m.objective_value(*x), r.cost, 1e-6) << algo->name();
  }
}

TEST(IlpBuilder, CapacityRowsReflectLedgerState) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  // Drain f2@5 so its capacity row would be rhs 0 — builder instead screens
  // the host out entirely (no placement var for it).
  const auto id = *fx->network.find_instance(5, 2);
  ledger.consume_instance(id, ledger.instance_residual(id));
  IlpBuilder builder(*fx->index, ledger);
  const IlpModel m = builder.build();
  EXPECT_EQ(m.to_lp().find("x_s1_n5"), std::string::npos);
  EXPECT_NE(m.to_lp().find("x_s1_n2"), std::string::npos);
}

TEST(IlpBuilder, AssignmentFromRejectsForeignPaths) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  // With a single candidate path per pair, an algorithm may route a
  // meta-path along a path the enumeration does not contain.
  IlpBuilder narrow(*fx->index, ledger, IlpOptions{1});
  (void)narrow.build();
  const MbbeEmbedder mbbe;
  Rng rng(6);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  // Either found (nullopt not guaranteed) — but a corrupted placement must
  // always be rejected.
  EmbeddingSolution broken = *r.solution;
  broken.placement[0] = 0;  // node 0 hosts nothing → no placement var
  EXPECT_FALSE(narrow.assignment_from(broken).has_value());
}

TEST(IlpBuilder, InfeasibleOverCapacityAssignmentDetected) {
  // Force a rate that makes two uses of one instance infeasible and check
  // the capacity row catches a double-placed assignment.
  test::NetBuilder b(3, 1);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 2.0, /*capacity=*/1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{1}}}),
      Flow{0, 2, 1.0, 1.0});
  net::CapacityLedger ledger(fx->network);
  IlpBuilder builder(*fx->index, ledger, IlpOptions{4});
  const IlpModel m = builder.build();

  // Hand-build the (infeasible) double placement on node 1.
  EmbeddingSolution sol;
  sol.placement = {1, 1};
  graph::Path p01;
  p01.nodes = {0, 1};
  p01.edges = {*fx->network.topology().find_edge(0, 1)};
  graph::Path stay;
  stay.nodes = {1};
  graph::Path p12;
  p12.nodes = {1, 2};
  p12.edges = {*fx->network.topology().find_edge(1, 2)};
  sol.inter_paths = {p01, stay, p12};
  const auto x = builder.assignment_from(sol);
  ASSERT_TRUE(x.has_value());
  const auto bad = m.violations(*x);
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("vnfcap"), std::string::npos);
}

TEST(IlpBuilder, DeterministicAcrossBuilds) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  IlpBuilder b1(*fx->index, ledger);
  IlpBuilder b2(*fx->index, ledger);
  EXPECT_EQ(b1.build().to_lp(), b2.build().to_lp());
}

}  // namespace
}  // namespace dagsfc::core
