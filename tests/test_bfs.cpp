#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dagsfc::graph {
namespace {

/// Path 0-1-2-3 plus a branch 1-4.
Graph branchy() {
  Graph g(5);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(1, 2, 1.0);
  (void)g.add_edge(2, 3, 1.0);
  (void)g.add_edge(1, 4, 1.0);
  return g;
}

TEST(BfsRings, RingsHoldHopDistances) {
  const Graph g = branchy();
  const BfsRings r = bfs_rings(g, 0);
  ASSERT_EQ(r.rings.size(), 4u);
  EXPECT_EQ(r.rings[0], std::vector<NodeId>{0});
  EXPECT_EQ(r.rings[1], std::vector<NodeId>{1});
  const std::set<NodeId> ring2(r.rings[2].begin(), r.rings[2].end());
  EXPECT_EQ(ring2, (std::set<NodeId>{2, 4}));
  EXPECT_EQ(r.rings[3], std::vector<NodeId>{3});
  EXPECT_EQ(r.depth[3], 3u);
  EXPECT_TRUE(r.reached(4));
}

TEST(BfsRings, ParentsFormTree) {
  const Graph g = branchy();
  const BfsRings r = bfs_rings(g, 0);
  EXPECT_EQ(r.parent[0], kInvalidNode);
  EXPECT_EQ(r.parent[1], 0u);
  EXPECT_EQ(r.parent[2], 1u);
  EXPECT_EQ(r.parent[4], 1u);
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(BfsRings, FilterBlocksNodes) {
  const Graph g = branchy();
  const BfsRings r = bfs_rings(g, 0, [](NodeId v) { return v != 2; });
  EXPECT_TRUE(r.reached(4));
  EXPECT_FALSE(r.reached(2));
  EXPECT_FALSE(r.reached(3));  // only reachable through 2
}

TEST(BfsRings, DisconnectedNodeUnreached) {
  Graph g(3);
  (void)g.add_edge(0, 1, 1.0);
  const BfsRings r = bfs_rings(g, 0);
  EXPECT_FALSE(r.reached(2));
  EXPECT_EQ(r.depth[2], BfsRings::kUnreached);
}

TEST(RingExpander, StartsWithStartNode) {
  const Graph g = branchy();
  RingExpander e(g, 0);
  EXPECT_EQ(e.visited(), std::vector<NodeId>{0});
  EXPECT_EQ(e.current_ring(), std::vector<NodeId>{0});
  EXPECT_EQ(e.iterations(), 0u);
  EXPECT_TRUE(e.contains(0));
  EXPECT_FALSE(e.contains(1));
}

TEST(RingExpander, ExpandMatchesBfsRings) {
  const Graph g = branchy();
  const BfsRings full = bfs_rings(g, 0);
  RingExpander e(g, 0);
  for (std::size_t q = 1; q < full.rings.size(); ++q) {
    const auto ring = e.expand();
    std::set<NodeId> got(ring.begin(), ring.end());
    std::set<NodeId> want(full.rings[q].begin(), full.rings[q].end());
    EXPECT_EQ(got, want) << "ring " << q;
  }
  EXPECT_TRUE(e.expand().empty());
}

TEST(RingExpander, ParentsReconstructPaths) {
  const Graph g = branchy();
  RingExpander e(g, 0);
  while (!e.expand().empty()) {
  }
  EXPECT_EQ(e.bfs_parent(3), 2u);
  EXPECT_EQ(e.bfs_parent(0), kInvalidNode);
}

TEST(RingExpander, FilterRestrictsExpansion) {
  const Graph g = branchy();
  RingExpander e(g, 0, [](NodeId v) { return v <= 2; });
  while (!e.expand().empty()) {
  }
  EXPECT_TRUE(e.contains(2));
  EXPECT_FALSE(e.contains(3));
  EXPECT_FALSE(e.contains(4));
}

TEST(RingExpander, VisitedIsDiscoveryOrdered) {
  const Graph g = branchy();
  RingExpander e(g, 0);
  while (!e.expand().empty()) {
  }
  const auto& v = e.visited();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 1u);  // ring 1
  // rings are contiguous: {2,4} before 3.
  EXPECT_TRUE((v[2] == 2 && v[3] == 4) || (v[2] == 4 && v[3] == 2));
  EXPECT_EQ(v[4], 3u);
}

TEST(RingExpander, InvalidStartRejected) {
  const Graph g = branchy();
  EXPECT_THROW(RingExpander(g, 99), ContractViolation);
}

}  // namespace
}  // namespace dagsfc::graph
