/// Independent-reference verification: library algorithms checked against
/// naive reimplementations that are obviously correct (and too slow to
/// ship) — Bellman–Ford for Dijkstra, exhaustive edge-subset search for the
/// Steiner DP.

#include <gtest/gtest.h>

#include <functional>

#include "graph/dijkstra.hpp"
#include "graph/generator.hpp"
#include "graph/steiner.hpp"

namespace dagsfc::graph {
namespace {

/// Textbook Bellman–Ford distances (no negative prices here, but the
/// relaxation order is completely different from Dijkstra's).
std::vector<double> bellman_ford(const Graph& g, NodeId source) {
  std::vector<double> dist(g.num_nodes(), kInfCost);
  dist[source] = 0.0;
  for (std::size_t round = 0; round + 1 < g.num_nodes(); ++round) {
    bool changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      if (dist[ed.u] + ed.weight < dist[ed.v]) {
        dist[ed.v] = dist[ed.u] + ed.weight;
        changed = true;
      }
      if (dist[ed.v] + ed.weight < dist[ed.u]) {
        dist[ed.u] = dist[ed.v] + ed.weight;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

class DijkstraVsBellmanFord : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DijkstraVsBellmanFord, DistancesAgree) {
  Rng rng(GetParam());
  RandomGraphOptions opts;
  opts.num_nodes = 30;
  opts.average_degree = 4.0;
  Graph g = random_connected_graph(rng, opts);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(0.0, 5.0));  // zero weights included
  }
  const NodeId src = static_cast<NodeId>(rng.index(30));
  const ShortestPathTree sp = dijkstra(g, src);
  const std::vector<double> bf = bellman_ford(g, src);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_NEAR(sp.dist[v], bf[v], 1e-9) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsBellmanFord,
                         ::testing::Range<std::uint64_t>(900, 910));

/// Exhaustive minimum Steiner tree: try every edge subset (graphs are kept
/// ≤ 16 edges) and keep the cheapest connected one spanning the terminals.
double brute_force_steiner(const Graph& g,
                           const std::vector<NodeId>& terminals) {
  DAGSFC_CHECK(g.num_edges() <= 16);
  double best = kInfCost;
  for (std::uint32_t mask = 0; mask < (1u << g.num_edges()); ++mask) {
    // Connectivity of the terminal set through the chosen edges.
    std::vector<NodeId> parent(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) parent[v] = v;
    std::function<NodeId(NodeId)> find = [&](NodeId v) {
      return parent[v] == v ? v : parent[v] = find(parent[v]);
    };
    double cost = 0.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (mask & (1u << e)) {
        cost += g.edge(e).weight;
        parent[find(g.edge(e).u)] = find(g.edge(e).v);
      }
    }
    if (cost >= best) continue;
    bool connected = true;
    for (NodeId t : terminals) {
      if (find(t) != find(terminals[0])) {
        connected = false;
        break;
      }
    }
    if (connected) best = cost;
  }
  return best;
}

class SteinerVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteinerVsBruteForce, OptimaAgreeOnTinyGraphs) {
  Rng rng(GetParam());
  // Small dense-ish graph with ≤ 16 edges.
  RandomGraphOptions opts;
  opts.num_nodes = 8;
  opts.average_degree = 3.5;
  Graph g = random_connected_graph(rng, opts);
  while (g.num_edges() > 16) {
    // Regenerate sparser if the sampler overshot.
    opts.average_degree -= 0.5;
    Rng retry(GetParam() * 31 + 1);
    g = random_connected_graph(retry, opts);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(0.5, 4.0));
  }
  std::vector<NodeId> terminals;
  const std::size_t k = 2 + rng.index(3);
  for (std::size_t i = 0; i < k; ++i) {
    terminals.push_back(static_cast<NodeId>(rng.index(8)));
  }
  const auto tree = steiner_tree(g, terminals);
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->cost, brute_force_steiner(g, terminals), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteinerVsBruteForce,
                         ::testing::Range<std::uint64_t>(950, 962));

}  // namespace
}  // namespace dagsfc::graph
