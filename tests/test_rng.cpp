#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace dagsfc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 45u);  // not a stuck all-zero state
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r(7);
  EXPECT_THROW((void)r.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, UniformIntCoversWholeRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng r(13);
  std::map<std::int64_t, int> counts;
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_int(0, 9)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, n / 10, n / 100) << "value " << v;
  }
}

TEST(Rng, UniformRealStaysInRange) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  Rng r(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.uniform_real(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(23);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexBoundsAndEmptyRejected) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.index(5), 5u);
  EXPECT_THROW((void)r.index(0), ContractViolation);
}

TEST(Rng, PickReturnsElementFromVector) {
  Rng r(37);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = r.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
  const std::vector<int> empty;
  EXPECT_THROW((void)r.pick(empty), ContractViolation);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::vector<int> after = v;
  std::sort(after.begin(), after.end());
  EXPECT_EQ(after, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(43);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);  // astronomically unlikely to be identity
}

TEST(Rng, ForkSeedProducesIndependentStreams) {
  Rng parent(47);
  Rng a(parent.fork_seed());
  Rng b(parent.fork_seed());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace dagsfc
