#include "sim/dynamic.hpp"

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"

namespace dagsfc::sim {
namespace {

DynamicConfig tight() {
  DynamicConfig cfg;
  cfg.base.network_size = 40;
  cfg.base.network_connectivity = 4.0;
  cfg.base.catalog_size = 6;
  cfg.base.sfc_size = 3;
  cfg.base.vnf_capacity = 5.0;
  cfg.base.link_capacity = 6.0;
  cfg.arrival_rate = 2.0;
  cfg.mean_holding_time = 5.0;
  cfg.num_arrivals = 120;
  return cfg;
}

TEST(Dynamic, ArrivalsAccountedFor) {
  const core::MbbeEmbedder mbbe;
  const DynamicResult r = run_dynamic(tight(), mbbe, 1);
  EXPECT_EQ(r.accepted + r.rejected, 120u);
  EXPECT_EQ(r.cost.count(), r.accepted);
  EXPECT_GT(r.simulated_time, 0.0);
}

TEST(Dynamic, DeterministicForFixedSeed) {
  const core::MbbeEmbedder mbbe;
  const DynamicResult a = run_dynamic(tight(), mbbe, 7);
  const DynamicResult b = run_dynamic(tight(), mbbe, 7);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_DOUBLE_EQ(a.cost.mean(), b.cost.mean());
  EXPECT_DOUBLE_EQ(a.simulated_time, b.simulated_time);
}

TEST(Dynamic, GenerousCapacityAcceptsEverything) {
  DynamicConfig cfg = tight();
  cfg.base.vnf_capacity = 1e6;
  cfg.base.link_capacity = 1e6;
  const core::MbbeEmbedder mbbe;
  const DynamicResult r = run_dynamic(cfg, mbbe, 2);
  EXPECT_EQ(r.rejected, 0u);
}

TEST(Dynamic, HigherLoadNeverImprovesAcceptance) {
  const core::MbbeEmbedder mbbe;
  DynamicConfig low = tight();
  low.arrival_rate = 0.2;
  DynamicConfig high = tight();
  high.arrival_rate = 20.0;
  const DynamicResult rl = run_dynamic(low, mbbe, 3);
  const DynamicResult rh = run_dynamic(high, mbbe, 3);
  EXPECT_GE(rl.acceptance_ratio() + 1e-9, rh.acceptance_ratio());
  EXPECT_GT(rh.concurrency.mean(), rl.concurrency.mean());
}

TEST(Dynamic, DeparturesReturnCapacity) {
  // With a holding time far shorter than the inter-arrival gap, the system
  // empties between arrivals — acceptance must match the uncontended case.
  DynamicConfig cfg = tight();
  cfg.arrival_rate = 0.01;        // mean gap 100
  cfg.mean_holding_time = 0.001;  // flows vanish instantly
  cfg.num_arrivals = 60;
  const core::MbbeEmbedder mbbe;
  const DynamicResult r = run_dynamic(cfg, mbbe, 4);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_LE(r.concurrency.max(), 1.0);
}

TEST(Dynamic, CostAwareEmbedderBeatsRandomUnderLoad) {
  DynamicConfig cfg = tight();
  cfg.arrival_rate = 6.0;
  const core::MbbeEmbedder mbbe;
  const core::RanvEmbedder ranv;
  const DynamicResult rm = run_dynamic(cfg, mbbe, 5);
  const DynamicResult rr = run_dynamic(cfg, ranv, 5);
  EXPECT_GE(rm.acceptance_ratio(), rr.acceptance_ratio());
  if (rm.accepted > 0 && rr.accepted > 0) {
    EXPECT_LT(rm.cost.mean(), rr.cost.mean());
  }
}

TEST(Dynamic, ValidationCatchesBadConfig) {
  DynamicConfig cfg = tight();
  cfg.arrival_rate = 0.0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = tight();
  cfg.num_arrivals = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = tight();
  cfg.mean_holding_time = -1.0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(Dynamic, OfferedLoadAccessor) {
  DynamicConfig cfg;
  cfg.arrival_rate = 3.0;
  cfg.mean_holding_time = 4.0;
  EXPECT_DOUBLE_EQ(cfg.offered_load(), 12.0);
}

}  // namespace
}  // namespace dagsfc::sim
