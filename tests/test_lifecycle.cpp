/// Request-lifecycle tracing tests, layer by layer: the lock-free
/// SpanRecorder ring (round trips, wraparound accounting, multi-lane
/// merging, torn-record discipline under a concurrent reader — the TSan
/// target of scripts/check.sh), the RequestTrace inline accumulator, the
/// spans an EmbeddingService actually emits for a served request, and the
/// zero-allocation contract of span emission (counting global operator new,
/// the same idiom as test_metrics.cpp).

#include "util/span_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace {
/// Counts every path into the global allocator. Only read as a delta
/// around single-threaded regions, so unrelated allocations don't matter.
std::atomic<std::size_t> g_news{0};

void* counted_alloc(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
// The nothrow forms must be replaced too: libstdc++'s stable_sort scratch
// buffer allocates through them, and mixing the runtime's nothrow new with
// our free()-based operator delete is an alloc-dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dagsfc {
namespace {

using test::NetBuilder;

util::SpanRecord make_record(std::uint64_t trace_id, std::uint64_t t0) {
  util::SpanRecord r;
  r.trace_id = trace_id;
  r.kind = 2;
  r.detail = 1;
  r.attempt = 3;
  r.t0_ns = t0;
  r.t1_ns = t0 + 10;
  r.arg = trace_id * 7;
  r.value = static_cast<double>(trace_id) + 0.5;
  return r;
}

// -------------------------------------------------------- span recorder --

TEST(SpanRecorder, EmitCollectRoundTripsEveryField) {
  util::SpanRecorder rec(/*lanes=*/2, /*capacity_per_lane=*/8);
  EXPECT_EQ(rec.num_lanes(), 2u);
  EXPECT_EQ(rec.lane_capacity(), 8u);

  util::SpanRecord in = make_record(42, 100);
  in.lane = 99;  // must be ignored; collect() stamps the true lane
  rec.emit(1, in);

  const std::vector<util::SpanRecord> out = rec.collect();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].trace_id, 42u);
  EXPECT_EQ(out[0].kind, 2);
  EXPECT_EQ(out[0].detail, 1);
  EXPECT_EQ(out[0].attempt, 3);
  EXPECT_EQ(out[0].lane, 1u);
  EXPECT_EQ(out[0].t0_ns, 100u);
  EXPECT_EQ(out[0].t1_ns, 110u);
  EXPECT_EQ(out[0].arg, 42u * 7);
  EXPECT_DOUBLE_EQ(out[0].value, 42.5);
  EXPECT_EQ(rec.emitted(1), 1u);
  EXPECT_EQ(rec.emitted(0), 0u);
  EXPECT_EQ(rec.dropped(1), 0u);
}

TEST(SpanRecorder, WraparoundKeepsNewestAndCountsDropped) {
  constexpr std::size_t kCap = 4;
  util::SpanRecorder rec(1, kCap);
  for (std::uint64_t i = 0; i < 10; ++i) rec.emit(0, make_record(i, i));

  EXPECT_EQ(rec.emitted(0), 10u);
  EXPECT_EQ(rec.dropped(0), 10u - kCap);

  // The reader drops one extra record conservatively: with pub == n the
  // slot of entry n - capacity may be mid-overwrite, so only the last
  // capacity - 1 entries are certainly intact.
  const std::vector<util::SpanRecord> out = rec.collect();
  ASSERT_EQ(out.size(), kCap - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].trace_id, 10u - (kCap - 1) + i);
  }
}

TEST(SpanRecorder, CollectMergesLanesIntoOneTimeline) {
  util::SpanRecorder rec(3, 8);
  // Interleaved timestamps across lanes; collect must sort by t0, with the
  // lane index as a deterministic tiebreak.
  rec.emit(2, make_record(20, 5));
  rec.emit(0, make_record(1, 9));
  rec.emit(1, make_record(10, 1));
  rec.emit(0, make_record(2, 5));

  const std::vector<util::SpanRecord> out = rec.collect();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].trace_id, 10u);  // t0 = 1
  EXPECT_EQ(out[1].trace_id, 2u);   // t0 = 5, lane 0 before lane 2
  EXPECT_EQ(out[2].trace_id, 20u);  // t0 = 5, lane 2
  EXPECT_EQ(out[3].trace_id, 1u);   // t0 = 9
}

TEST(SpanRecorder, TimebaseIsMonotonicSinceConstruction) {
  util::SpanRecorder rec(1, 4);
  const std::uint64_t a = rec.now_ns();
  const std::uint64_t b = rec.now_ns();
  EXPECT_LE(a, b);
  // Instants before the recorder's epoch clamp to 0 instead of wrapping.
  EXPECT_EQ(rec.to_ns(std::chrono::steady_clock::time_point{}), 0u);
}

TEST(SpanRecorder, RejectsDegenerateShapes) {
  EXPECT_THROW(util::SpanRecorder(0, 4), ContractViolation);
  EXPECT_THROW(util::SpanRecorder(1, 0), ContractViolation);
}

/// The torn-record discipline (and the TSan target): one writer hammers a
/// small ring while a reader collects concurrently. Every record carries a
/// checksum relation between its fields; a torn read — parts of two
/// different records in one returned SpanRecord — would break it.
TEST(SpanRecorderThreads, ConcurrentCollectNeverReturnsTornRecords) {
  constexpr std::uint64_t kEmits = 20000;
  util::SpanRecorder rec(1, 8);  // tiny ring: constant wraparound

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= kEmits; ++i) {
      util::SpanRecord r;
      r.trace_id = i;
      r.kind = static_cast<std::uint8_t>(i & 0x7f);
      r.attempt = static_cast<std::uint16_t>(i & 0xffff);
      r.t0_ns = i;
      r.t1_ns = i + 1;
      r.arg = i ^ 0xdeadbeefULL;
      r.value = static_cast<double>(i);
      rec.emit(0, r);
    }
  });

  std::size_t seen = 0;
  const auto validate = [&seen](const std::vector<util::SpanRecord>& recs) {
    for (const util::SpanRecord& r : recs) {
      ++seen;
      EXPECT_EQ(r.arg, r.trace_id ^ 0xdeadbeefULL);
      EXPECT_EQ(r.t0_ns, r.trace_id);
      EXPECT_EQ(r.t1_ns, r.trace_id + 1);
      EXPECT_DOUBLE_EQ(r.value, static_cast<double>(r.trace_id));
    }
  };
  // Concurrent collects may legitimately come back empty: the writer can
  // lap the whole 8-slot ring while the reader copies it, making every
  // copied record torn-suspect. What matters is that whatever IS returned
  // passes the checksum relation.
  while (rec.emitted(0) < kEmits) validate(rec.collect());
  writer.join();

  // Quiescent wrap-up: the newest records are all intact and in order.
  const std::vector<util::SpanRecord> out = rec.collect();
  validate(out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().trace_id, kEmits);
  EXPECT_GT(seen, 0u);
}

// -------------------------------------------------------- request trace --

TEST(RequestTrace, InactiveTraceIsANoOpSink) {
  serve::RequestTrace trace;  // no recorder
  EXPECT_FALSE(trace.active());
  EXPECT_EQ(trace.now(), 0u);
  EXPECT_EQ(trace.at(serve::Clock::now()), 0u);
  trace.queue_wait(0, 1);
  trace.solve(0, true, 1, 2, 3, 4.0);
  trace.commit(0, serve::CommitClass::kFast, 2, 3, 0);
  trace.outcome(serve::Outcome::Accepted, 0, 3, 4.0);
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.overflow(), 0u);
}

TEST(RequestTrace, KeepsInlineCopyAndEmitsToRing) {
  util::SpanRecorder rec(2, 16);
  serve::RequestTrace trace(&rec, /*lane=*/1, /*id=*/7);
  ASSERT_TRUE(trace.active());
  trace.queue_wait(10, 20);
  trace.solve(0, true, 20, 30, /*snapshot_epoch=*/5, /*cost=*/12.5);
  trace.commit(0, serve::CommitClass::kStamp, 30, 40, /*arg=*/6);
  trace.outcome(serve::Outcome::Accepted, 10, 40, 12.5);

  const std::span<const util::SpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].kind,
            static_cast<std::uint8_t>(serve::SpanKind::kQueueWait));
  EXPECT_EQ(spans[1].kind, static_cast<std::uint8_t>(serve::SpanKind::kSolve));
  EXPECT_EQ(spans[1].detail, 1);  // feasible
  EXPECT_EQ(spans[1].arg, 5u);
  EXPECT_DOUBLE_EQ(spans[1].value, 12.5);
  EXPECT_EQ(spans[2].detail,
            static_cast<std::uint8_t>(serve::CommitClass::kStamp));
  EXPECT_EQ(spans[3].kind,
            static_cast<std::uint8_t>(serve::SpanKind::kOutcome));
  for (const util::SpanRecord& s : spans) EXPECT_EQ(s.trace_id, 7u);

  // The same four spans landed in the ring, on the trace's lane.
  EXPECT_EQ(rec.emitted(1), 4u);
  EXPECT_EQ(rec.emitted(0), 0u);
}

TEST(RequestTrace, InlineOverflowCountsButRingStillSees) {
  util::SpanRecorder rec(1, 512);
  serve::RequestTrace trace(&rec, 0, 1);
  const std::size_t total = serve::RequestTrace::kMaxSpans + 5;
  for (std::size_t i = 0; i < total; ++i) {
    trace.solve(static_cast<std::uint16_t>(i), false, i, i + 1, 0, 0.0);
  }
  EXPECT_EQ(trace.spans().size(), serve::RequestTrace::kMaxSpans);
  EXPECT_EQ(trace.overflow(), 5u);
  EXPECT_EQ(rec.emitted(0), total);  // the ring is never truncated
}

// ---------------------------------------------------- service lifecycle --

/// A 3-node line whose single f1 instance (capacity 1) admits exactly one
/// rate-1 flow.
net::Network one_slot_network() {
  NetBuilder b(3, 1);
  b.link(0, 1, 1.0, 10.0).link(1, 2, 1.0, 10.0);
  b.put(1, 1, 5.0, 1.0);
  return b.build();
}

serve::Request one_slot_request(serve::RequestId id) {
  serve::Request req;
  req.id = id;
  req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  req.flow = core::Flow{0, 2, 1.0, 1.0};
  return req;
}

TEST(ServiceLifecycle, TracingOffKeepsRecordersNull) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  serve::EmbeddingService service(network, mbbe, {});
  EXPECT_EQ(service.span_recorder(), nullptr);
  EXPECT_EQ(service.flight_recorder(), nullptr);
}

TEST(ServiceLifecycle, AcceptedRequestEmitsFullSpanChain) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  serve::EmbeddingService::Options opts;
  opts.workers = 1;
  opts.tracing.enabled = true;
  serve::EmbeddingService service(network, mbbe, opts);
  ASSERT_NE(service.span_recorder(), nullptr);
  ASSERT_NE(service.flight_recorder(), nullptr);

  const serve::Response r = service.submit(one_slot_request(1)).get();
  ASSERT_EQ(r.outcome, serve::Outcome::Accepted);

  const std::vector<util::SpanRecord> spans =
      service.span_recorder()->collect();
  ASSERT_EQ(spans.size(), 4u);
  using serve::SpanKind;
  // collect() sorts by t0, and the outcome span starts at submission — the
  // same instant the queue wait starts — so it sorts ahead of solve and
  // commit. Locate each span by kind rather than by position.
  const auto find = [&spans](SpanKind k) {
    return std::find_if(spans.begin(), spans.end(),
                        [k](const util::SpanRecord& s) {
                          return s.kind == static_cast<std::uint8_t>(k);
                        });
  };
  const auto queue = find(SpanKind::kQueueWait);
  const auto solve = find(SpanKind::kSolve);
  const auto commit = find(SpanKind::kCommit);
  const auto outcome = find(SpanKind::kOutcome);
  ASSERT_NE(queue, spans.end());
  ASSERT_NE(solve, spans.end());
  ASSERT_NE(commit, spans.end());
  ASSERT_NE(outcome, spans.end());
  EXPECT_EQ(spans[0].kind, static_cast<std::uint8_t>(SpanKind::kQueueWait));
  EXPECT_EQ(solve->detail, 1);  // feasible
  EXPECT_DOUBLE_EQ(solve->value, r.cost);
  EXPECT_EQ(commit->detail,
            static_cast<std::uint8_t>(serve::CommitClass::kFast));
  EXPECT_EQ(outcome->detail,
            static_cast<std::uint8_t>(serve::Outcome::Accepted));
  EXPECT_DOUBLE_EQ(outcome->value, r.cost);
  for (const util::SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, 1u);
    EXPECT_LE(s.t0_ns, s.t1_ns);
  }
  // The outcome span covers the whole request: submit → finish.
  EXPECT_EQ(outcome->t0_ns, queue->t0_ns);
  EXPECT_GE(outcome->t1_ns, commit->t1_ns);

  // A fast-path accept matches no trigger: nothing was promoted.
  EXPECT_EQ(service.flight_recorder()->promoted(), 0u);
}

TEST(ServiceLifecycle, RefusalSpansCarryTheRejectedOutcome) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  serve::EmbeddingService::Options opts;
  opts.workers = 1;
  opts.tracing.enabled = true;
  serve::EmbeddingService service(network, mbbe, opts);

  ASSERT_EQ(service.submit(one_slot_request(1)).get().outcome,
            serve::Outcome::Accepted);
  ASSERT_EQ(service.submit(one_slot_request(2)).get().outcome,
            serve::Outcome::RejectedInfeasible);

  // Request 2's chain: queue wait, one infeasible solve (no commit), and a
  // rejected outcome.
  std::vector<util::SpanRecord> spans = service.span_recorder()->collect();
  std::erase_if(spans,
                [](const util::SpanRecord& s) { return s.trace_id != 2; });
  ASSERT_EQ(spans.size(), 3u);
  using serve::SpanKind;
  const auto find = [&spans](SpanKind k) {
    return std::find_if(spans.begin(), spans.end(),
                        [k](const util::SpanRecord& s) {
                          return s.kind == static_cast<std::uint8_t>(k);
                        });
  };
  const auto solve = find(SpanKind::kSolve);
  const auto outcome = find(SpanKind::kOutcome);
  ASSERT_NE(solve, spans.end());
  ASSERT_NE(outcome, spans.end());
  EXPECT_EQ(find(SpanKind::kCommit), spans.end());  // nothing to commit
  EXPECT_EQ(solve->detail, 0);  // infeasible
  EXPECT_EQ(outcome->detail,
            static_cast<std::uint8_t>(serve::Outcome::RejectedInfeasible));
}

// ------------------------------------------------------------- hot path --

TEST(SpanEmission, HotPathAllocatesNothing) {
  util::SpanRecorder rec(1, 64);
  const util::SpanRecord r = make_record(1, 1);
  rec.emit(0, r);  // warm-up

  const std::size_t before = g_news.load();
  for (int i = 0; i < 1000; ++i) {
    rec.emit(0, r);
    serve::RequestTrace trace(&rec, 0, static_cast<serve::RequestId>(i));
    trace.queue_wait(0, 1);
    trace.solve(0, true, 1, 2, 3, 4.0);
    trace.commit(0, serve::CommitClass::kFast, 2, 3, 0);
    trace.outcome(serve::Outcome::Accepted, 0, 3, 4.0);
  }
  EXPECT_EQ(g_news.load() - before, 0u);
}

}  // namespace
}  // namespace dagsfc
