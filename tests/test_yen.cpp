#include "graph/yen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.hpp"

namespace dagsfc::graph {
namespace {

Graph diamond() {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(1, 3, 5.0);
  (void)g.add_edge(0, 2, 2.0);
  (void)g.add_edge(2, 3, 1.0);
  (void)g.add_edge(1, 2, 1.0);
  return g;
}

TEST(Yen, FirstPathIsShortest) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 3);
  ASSERT_FALSE(paths.empty());
  EXPECT_DOUBLE_EQ(paths[0].cost, 3.0);
}

TEST(Yen, CostsAreNonDecreasing) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 10);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].cost, paths[i].cost + 1e-12);
  }
}

TEST(Yen, PathsAreDistinctAndSimple) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 10);
  std::set<std::vector<NodeId>> seqs;
  for (const Path& p : paths) {
    EXPECT_TRUE(g.path_valid(p));
    EXPECT_TRUE(seqs.insert(p.nodes).second) << "duplicate path";
    std::set<NodeId> uniq(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(uniq.size(), p.nodes.size()) << "path has a loop";
  }
}

TEST(Yen, DiamondHasExactlyFourSimplePaths) {
  // 0-1-2-3, 0-2-3, 0-1-3, 0-2-1-3.
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 100);
  EXPECT_EQ(paths.size(), 4u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 3.0);  // 0-1-2-3 or 0-2-3 (ties: lexicographic)
  EXPECT_DOUBLE_EQ(paths.back().cost, 8.0);  // 0-2-1-3
}

TEST(Yen, TiedPathsBothReturnedDeterministically) {
  const Graph g = diamond();
  const auto a = k_shortest_paths(g, 0, 3, 2);
  const auto b = k_shortest_paths(g, 0, 3, 2);
  ASSERT_EQ(a.size(), 2u);
  // Both cost-3 routes surface, in a stable order across invocations.
  EXPECT_DOUBLE_EQ(a[0].cost, 3.0);
  EXPECT_DOUBLE_EQ(a[1].cost, 3.0);
  EXPECT_NE(a[0].nodes, a[1].nodes);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0].nodes, b[0].nodes);
  EXPECT_EQ(a[1].nodes, b[1].nodes);
}

TEST(Yen, KZeroGivesNothing) {
  const Graph g = diamond();
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 0).empty());
}

TEST(Yen, UnreachableTargetGivesNothing) {
  Graph g(3);
  (void)g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, 5).empty());
}

TEST(Yen, SourceEqualsTargetGivesTrivialPath) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 2, 2, 3);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths[0].nodes, std::vector<NodeId>{2});
  EXPECT_DOUBLE_EQ(paths[0].cost, 0.0);
}

TEST(Yen, RespectsEdgeFilter) {
  Graph g = diamond();
  const auto banned = g.find_edge(1, 2);
  const auto paths = k_shortest_paths(
      g, 0, 3, 10, [&](EdgeId e) { return e != *banned; });
  for (const Path& p : paths) {
    for (EdgeId e : p.edges) EXPECT_NE(e, *banned);
  }
  EXPECT_EQ(paths.size(), 2u);  // only 0-2-3 and 0-1-3 remain
}

TEST(Yen, AgreesWithExhaustiveOnRandomGraphs) {
  Rng rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    RandomGraphOptions opts;
    opts.num_nodes = 12;
    opts.average_degree = 3.0;
    Graph g = random_connected_graph(rng, opts);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      g.set_weight(e, rng.uniform_real(0.5, 2.0));
    }
    const auto paths = k_shortest_paths(g, 0, 11, 5);
    ASSERT_FALSE(paths.empty());
    // First must equal Dijkstra optimum; all must be valid and sorted.
    const auto best = min_cost_path(g, 0, 11);
    ASSERT_TRUE(best.has_value());
    EXPECT_NEAR(paths[0].cost, best->cost, 1e-9);
    for (std::size_t i = 1; i < paths.size(); ++i) {
      EXPECT_LE(paths[i - 1].cost, paths[i].cost + 1e-12);
      EXPECT_TRUE(g.path_valid(paths[i]));
    }
  }
}

}  // namespace
}  // namespace dagsfc::graph
