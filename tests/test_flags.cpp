#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dagsfc {
namespace {

Flags standard_flags() {
  Flags f;
  f.define_int("count", 10, "a count")
      .define_double("ratio", 0.5, "a ratio")
      .define_bool("verbose", false, "chatty")
      .define("name", "default", "a string");
  return f;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(Flags, DefaultsApply) {
  Flags f = standard_flags();
  const auto argv = argv_of({});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.5);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_EQ(f.get("name"), "default");
}

TEST(Flags, EqualsForm) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count=42", "--ratio=0.25", "--name=abc"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.25);
  EXPECT_EQ(f.get("name"), "abc");
}

TEST(Flags, SpaceForm) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count", "7"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("count"), 7);
}

TEST(Flags, BareBooleanSetsTrue) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--verbose"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, UnknownFlagRejected) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--nope=1"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, PositionalRejected) {
  Flags f = standard_flags();
  const auto argv = argv_of({"stray"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MissingValueRejected) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MalformedNumberRejectedOnRead) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count=12abc"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW((void)f.get_int("count"), std::invalid_argument);
}

TEST(Flags, HelpRequested) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--help"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.help_requested());
}

TEST(Flags, UsageListsAllFlags) {
  Flags f = standard_flags();
  const std::string u = f.usage("prog");
  for (const char* name : {"count", "ratio", "verbose", "name"}) {
    EXPECT_NE(u.find(std::string("--") + name), std::string::npos) << name;
  }
}

TEST(Flags, DuplicateDefinitionRejected) {
  Flags f;
  f.define_int("x", 1, "");
  EXPECT_THROW(f.define_int("x", 2, ""), std::invalid_argument);
}

TEST(Flags, UndefinedReadRejected) {
  Flags f = standard_flags();
  EXPECT_THROW((void)f.get("missing"), std::invalid_argument);
}

TEST(ParseDuration, AllUnits) {
  using std::chrono::nanoseconds;
  EXPECT_EQ(parse_duration("100ns"), nanoseconds(100));
  EXPECT_EQ(parse_duration("750us"), nanoseconds(750'000));
  EXPECT_EQ(parse_duration("250ms"), nanoseconds(250'000'000));
  EXPECT_EQ(parse_duration("1.5s"), nanoseconds(1'500'000'000));
  EXPECT_EQ(parse_duration("10m"), std::chrono::minutes(10));
  EXPECT_EQ(parse_duration("2h"), std::chrono::hours(2));
  EXPECT_EQ(parse_duration("0s"), nanoseconds(0));
  EXPECT_EQ(parse_duration("1e3ms"), std::chrono::seconds(1));
}

TEST(ParseDuration, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_duration(""), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("100"), std::invalid_argument);  // no unit
  EXPECT_THROW((void)parse_duration("5x"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("-1s"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("1.5.2s"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration("ms"), std::invalid_argument);
}

TEST(Flags, DurationFlagRoundTrips) {
  Flags f;
  f.define_duration("deadline", "250ms", "per-request deadline");
  const auto argv = argv_of({"--deadline=1.5s"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_duration("deadline"),
            std::chrono::nanoseconds(1'500'000'000));
}

TEST(Flags, DurationDefaultAppliesAndErrorsNameTheFlag) {
  Flags f;
  f.define_duration("backoff", "50us", "retry backoff");
  const auto argv = argv_of({});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_duration("backoff"), std::chrono::nanoseconds(50'000));

  Flags g;
  g.define_duration("backoff", "50us", "retry backoff");
  const auto bad = argv_of({"--backoff=oops"});
  g.parse(static_cast<int>(bad.size()), bad.data());
  try {
    (void)g.get_duration("backoff");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--backoff"), std::string::npos);
  }
}

TEST(Flags, DurationDefaultMustItselfParse) {
  Flags f;
  EXPECT_THROW(f.define_duration("deadline", "banana", ""),
               std::invalid_argument);
}

TEST(Flags, WorkersResolvesZeroToHardwareConcurrency) {
  Flags f;
  f.define_workers();
  const auto argv = argv_of({});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_GE(f.get_workers(), 1u);

  Flags g;
  g.define_workers(4);
  const auto four = argv_of({});
  g.parse(static_cast<int>(four.size()), four.data());
  EXPECT_EQ(g.get_workers(), 4u);

  Flags h;
  h.define_workers();
  const auto neg = argv_of({"--workers=-2"});
  h.parse(static_cast<int>(neg.size()), neg.data());
  EXPECT_THROW((void)h.get_workers(), std::invalid_argument);
}

}  // namespace
}  // namespace dagsfc
