#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dagsfc {
namespace {

Flags standard_flags() {
  Flags f;
  f.define_int("count", 10, "a count")
      .define_double("ratio", 0.5, "a ratio")
      .define_bool("verbose", false, "chatty")
      .define("name", "default", "a string");
  return f;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(Flags, DefaultsApply) {
  Flags f = standard_flags();
  const auto argv = argv_of({});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.5);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_EQ(f.get("name"), "default");
}

TEST(Flags, EqualsForm) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count=42", "--ratio=0.25", "--name=abc"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.25);
  EXPECT_EQ(f.get("name"), "abc");
}

TEST(Flags, SpaceForm) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count", "7"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("count"), 7);
}

TEST(Flags, BareBooleanSetsTrue) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--verbose"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, UnknownFlagRejected) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--nope=1"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, PositionalRejected) {
  Flags f = standard_flags();
  const auto argv = argv_of({"stray"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MissingValueRejected) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MalformedNumberRejectedOnRead) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--count=12abc"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW((void)f.get_int("count"), std::invalid_argument);
}

TEST(Flags, HelpRequested) {
  Flags f = standard_flags();
  const auto argv = argv_of({"--help"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.help_requested());
}

TEST(Flags, UsageListsAllFlags) {
  Flags f = standard_flags();
  const std::string u = f.usage("prog");
  for (const char* name : {"count", "ratio", "verbose", "name"}) {
    EXPECT_NE(u.find(std::string("--") + name), std::string::npos) << name;
  }
}

TEST(Flags, DuplicateDefinitionRejected) {
  Flags f;
  f.define_int("x", 1, "");
  EXPECT_THROW(f.define_int("x", 2, ""), std::invalid_argument);
}

TEST(Flags, UndefinedReadRejected) {
  Flags f = standard_flags();
  EXPECT_THROW((void)f.get("missing"), std::invalid_argument);
}

}  // namespace
}  // namespace dagsfc
