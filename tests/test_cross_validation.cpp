/// Cross-validation on randomized instances: the ILP formulation, the
/// Evaluator, and the algorithms must agree with each other far beyond the
/// hand fixtures.

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/ilp.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

struct Inst {
  sim::Scenario scenario;
  sfc::DagSfc dag;
  EmbeddingProblem problem;
  std::unique_ptr<ModelIndex> index;
};

std::unique_ptr<Inst> random_instance(Rng& rng, std::size_t nodes,
                                      std::size_t sfc_size,
                                      double deploy = 0.5) {
  sim::ExperimentConfig cfg;
  cfg.network_size = nodes;
  cfg.network_connectivity = 3.5;
  cfg.catalog_size = std::max<std::size_t>(sfc_size, 5);
  cfg.sfc_size = sfc_size;
  cfg.vnf_deploy_ratio = deploy;
  auto inst = std::make_unique<Inst>(
      Inst{sim::make_scenario(rng, cfg), sfc::DagSfc{}, EmbeddingProblem{},
           nullptr});
  inst->dag = sim::make_sfc(rng, inst->scenario.network.catalog(), cfg);
  inst->problem.network = &inst->scenario.network;
  inst->problem.sfc = &inst->dag;
  inst->problem.flow =
      Flow{inst->scenario.source, inst->scenario.destination, 1.0, 1.0};
  inst->index = std::make_unique<ModelIndex>(inst->problem);
  return inst;
}

class IlpCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpCrossValidation, MinCostRoutedSolutionsAreFeasibleIlpPoints) {
  Rng rng(GetParam());
  auto inst = random_instance(rng, 14, 4);
  net::CapacityLedger ledger(inst->scenario.network);
  // Dijkstra-routed algorithms always pick the cheapest loopless path, which
  // Yen enumerates first — so every real-path is in the candidate set.
  IlpBuilder builder(*inst->index, ledger, IlpOptions{6});
  const IlpModel model = builder.build();

  const MinvEmbedder minv;
  const MbbeEmbedder mbbe;
  for (const Embedder* algo :
       std::initializer_list<const Embedder*>{&minv, &mbbe}) {
    const auto r = algo->solve(*inst->index, ledger, rng);
    if (!r.ok()) continue;
    const auto x = builder.assignment_from(*r.solution);
    ASSERT_TRUE(x.has_value()) << algo->name();
    const auto bad = model.violations(*x);
    EXPECT_TRUE(bad.empty()) << algo->name() << ": " << bad.front();
    EXPECT_NEAR(model.objective_value(*x), r.cost, 1e-6) << algo->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpCrossValidation,
                         ::testing::Range<std::uint64_t>(500, 510));

TEST(IlpCrossValidation, ExactChainSolutionsAreFeasibleIlpPoints) {
  // Pure chains (max layer width 1): the exact solver routes every
  // meta-path with a min-cost path, which Yen's enumeration contains, so
  // the DP optimum must be a feasible ILP point with the same objective.
  Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    sim::ExperimentConfig cfg;
    cfg.network_size = 12;
    cfg.network_connectivity = 3.0;
    cfg.catalog_size = 5;
    cfg.sfc_size = 3;
    cfg.max_layer_width = 1;
    auto scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(),
                                          cfg);
    EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const ModelIndex index(problem);
    net::CapacityLedger ledger(scenario.network);

    const ExactEmbedder exact;
    const auto r = exact.solve(index, ledger, rng);
    ASSERT_TRUE(r.ok()) << r.failure_reason;

    IlpBuilder builder(index, ledger, IlpOptions{8});
    const IlpModel model = builder.build();
    const auto x = builder.assignment_from(*r.solution);
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(model.violations(*x).empty());
    EXPECT_NEAR(model.objective_value(*x), r.cost, 1e-6);
  }
}

TEST(CrossLayer, SharedLinkChargedPerLayer) {
  // The same physical link carries traffic of two different layers: the
  // multicast discount is per layer, so the link is charged twice.
  //
  //   0 --- 1 --- 2    SFC [f1] -> [f2], flow 0 -> 0.
  //   f1@2, f2@0: layer-1 inter path 0-1-2, layer-2 inter path 2-1-0,
  //   destination hop trivial. Edges 0-1 and 1-2 each carry two layers.
  test::NetBuilder b(3, 2);
  b.link(0, 1, 2.0).link(1, 2, 3.0);
  b.put(2, 1, 1.0).put(0, 2, 1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 0, 1.0, 1.0});
  const MbbeEmbedder mbbe;
  Rng rng(1);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  const Evaluator ev(*fx->index);
  const ResourceUsage u = ev.usage(*r.solution);
  const auto e01 = fx->network.topology().find_edge(0, 1);
  const auto e12 = fx->network.topology().find_edge(1, 2);
  EXPECT_EQ(u.link_uses[*e01], 2u);
  EXPECT_EQ(u.link_uses[*e12], 2u);
  // Cost: rentals 2 + 2·(2+3) links = 12.
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(WideLayers, WidthFourLayerEmbedsAndValidates) {
  test::NetBuilder b(8, 4);
  // Wheel: hub 0 to all, rim cycle.
  for (graph::NodeId v = 1; v < 8; ++v) b.link(0, v, 1.0);
  for (graph::NodeId v = 1; v < 7; ++v) b.link(v, v + 1, 1.0);
  for (net::VnfTypeId t = 1; t <= 4; ++t) b.put(t, t, 10.0);
  b.put(5, b.merger(), 2.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1, 2, 3, 4}}}),
      Flow{7, 6, 1.0, 1.0});
  Rng rng(2);
  const Evaluator ev(*fx->index);
  for (const Embedder* algo : std::initializer_list<const Embedder*>{
           new BbeEmbedder, new MbbeEmbedder, new MinvEmbedder}) {
    const auto r = algo->solve_fresh(*fx->index, rng);
    ASSERT_TRUE(r.ok()) << algo->name() << ": " << r.failure_reason;
    EXPECT_TRUE(ev.validate(*r.solution).empty()) << algo->name();
    // 4 VNFs + merger rented, every meta-path realized.
    EXPECT_EQ(r.solution->inter_paths.size(), 5u);
    EXPECT_EQ(r.solution->inner_paths.size(), 4u);
    delete algo;
  }
}

TEST(WideLayers, AssignmentCapBoundsSearchNotCorrectness) {
  // A 3-wide layer with many hosts per type explodes combinatorially; the
  // engine's assignment cap must bound the work while a solution is still
  // produced and valid.
  Rng rng(3);
  auto inst = random_instance(rng, 60, 9, 0.7);
  BacktrackingOptions opts;
  opts.min_cost_path_instantiation = true;
  opts.x_max = 40;
  opts.x_d = 2;
  opts.max_assignments_per_pair = 4;  // drastic cap
  const BbeEmbedder capped(opts);
  const auto r = capped.solve_fresh(*inst->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  const Evaluator ev(*inst->index);
  EXPECT_TRUE(ev.validate(*r.solution).empty());

  const MbbeEmbedder uncapped;
  const auto ru = uncapped.solve_fresh(*inst->index, rng);
  ASSERT_TRUE(ru.ok());
  EXPECT_GE(ru.expanded_sub_solutions, r.expanded_sub_solutions);
}

TEST(Determinism, AllDeterministicAlgorithmsStableAcrossRepeats) {
  Rng rng(4);
  auto inst = random_instance(rng, 30, 5);
  const MinvEmbedder minv;
  const BbeEmbedder bbe;
  const MbbeEmbedder mbbe;
  for (const Embedder* algo : std::initializer_list<const Embedder*>{
           &minv, &bbe, &mbbe}) {
    Rng r1(9);
    Rng r2(9);
    const auto a = algo->solve_fresh(*inst->index, r1);
    const auto b2 = algo->solve_fresh(*inst->index, r2);
    ASSERT_EQ(a.ok(), b2.ok()) << algo->name();
    if (a.ok()) {
      EXPECT_DOUBLE_EQ(a.cost, b2.cost) << algo->name();
      EXPECT_EQ(a.solution->placement, b2.solution->placement)
          << algo->name();
    }
  }
}

}  // namespace
}  // namespace dagsfc::core
