/// Telemetry-plane tests: instrument semantics and identity, byte-stable
/// exposition independent of registration/increment order, the metric-name
/// lint over every registry the codebase actually populates, the zero-
/// allocation increment contract (counting global operator new), exact
/// multi-thread stripe merging (the TSan target of scripts/check.sh), the
/// delta reporter, and an HTTP round-trip: scrape a live /metrics endpoint
/// and parse the Prometheus text back into the same counter values as the
/// in-process MetricsSnapshot.

#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "graph/oracle.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "shard/metrics.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"
#include "util/build_info.hpp"
#include "util/check.hpp"

namespace {
/// Counts every path into the global allocator. Only read as a delta
/// around single-threaded regions, so unrelated allocations don't matter.
std::atomic<std::size_t> g_news{0};

void* counted_alloc(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dagsfc::util {
namespace {

// ---------------------------------------------------------- instruments --

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricRegistry reg;
  Counter c = reg.counter("dagsfc_test_events_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge g = reg.gauge("dagsfc_test_depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  HistogramMetric h = reg.histogram("dagsfc_test_ms", {}, 1e-3, 1e6);
  h.observe(2.0);
  h.observe(40.0);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.sum(), 42.0);
  EXPECT_DOUBLE_EQ(snap.min(), 2.0);
  EXPECT_DOUBLE_EQ(snap.max(), 40.0);
}

TEST(Metrics, DefaultHandlesAreNoOpSinks) {
  Counter c;
  Gauge g;
  HistogramMetric h;
  c.inc();
  g.set(7.0);
  g.add(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count(), 0u);
}

TEST(Metrics, SameIdentityReturnsSameInstrument) {
  MetricRegistry reg;
  Counter a = reg.counter("dagsfc_test_total", {{"k", "v"}});
  // Label order is canonicalized, so a permuted label list is the same
  // identity.
  Counter b = reg.counter("dagsfc_test_total", {{"k", "v"}});
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(reg.snapshot().samples.size(), 1u);
}

TEST(Metrics, KindAndLayoutMismatchesThrow) {
  MetricRegistry reg;
  (void)reg.counter("dagsfc_test_total");
  EXPECT_THROW((void)reg.gauge("dagsfc_test_total"), ContractViolation);
  (void)reg.histogram("dagsfc_test_ms", {}, 1e-3, 1e6);
  EXPECT_THROW((void)reg.histogram("dagssfc_bad name"), ContractViolation);
  // Same name, different bucket layout: a silent re-use would mix buckets.
  EXPECT_THROW((void)reg.histogram("dagsfc_test_ms", {}, 1e-1, 1e3),
               ContractViolation);
}

TEST(Metrics, NameLintRejectsNonConvention) {
  EXPECT_TRUE(valid_metric_name("dagsfc_serve_accepted_total"));
  EXPECT_TRUE(valid_metric_name("dagsfc_phase_seconds"));
  EXPECT_FALSE(valid_metric_name("serve_accepted_total"));  // missing prefix
  EXPECT_FALSE(valid_metric_name("dagsfc_Accepted_total"));  // uppercase
  EXPECT_FALSE(valid_metric_name("dagsfc_accepted-total"));  // dash
  EXPECT_FALSE(valid_metric_name("dagsfc_"));                // empty stem
  MetricRegistry reg;
  EXPECT_THROW((void)reg.counter("requests_total"), ContractViolation);
}

TEST(Metrics, DuplicateAndEmptyLabelKeysThrow) {
  MetricRegistry reg;
  EXPECT_THROW(
      (void)reg.counter("dagsfc_test_total", {{"k", "a"}, {"k", "b"}}),
      ContractViolation);
  EXPECT_THROW((void)reg.counter("dagsfc_test_total", {{"", "x"}}),
               ContractViolation);
}

TEST(Metrics, FormatPercent) {
  EXPECT_EQ(format_percent(0.0), "0.0%");
  EXPECT_EQ(format_percent(0.973), "97.3%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
}

// ----------------------------------------------------------- exposition --

/// Two registries built with different registration order, label-list
/// order, and increment interleaving but identical final (identity, value)
/// sets must expose identical bytes in both formats.
TEST(Metrics, ExpositionBytesIndependentOfOrder) {
  MetricRegistry a;
  {
    Counter c1 = a.counter("dagsfc_alpha_total", {{"algo", "mbbe"}});
    Counter c2 = a.counter("dagsfc_alpha_total", {{"algo", "ranv"}});
    Gauge g = a.gauge("dagsfc_beta_ratio", {{"x", "1"}, {"y", "2"}});
    HistogramMetric h = a.histogram("dagsfc_gamma_ms", {}, 1e-3, 1e6);
    c1.inc(7);
    c2.inc(3);
    g.set(0.5);
    h.observe(1.0);
    h.observe(10.0);
  }
  MetricRegistry b;
  {
    HistogramMetric h = b.histogram("dagsfc_gamma_ms", {}, 1e-3, 1e6);
    // Labels handed over in reverse order: same identity after
    // canonicalization.
    Gauge g = b.gauge("dagsfc_beta_ratio", {{"y", "2"}, {"x", "1"}});
    Counter c2 = b.counter("dagsfc_alpha_total", {{"algo", "ranv"}});
    Counter c1 = b.counter("dagsfc_alpha_total", {{"algo", "mbbe"}});
    h.observe(1.0);
    c2.inc(1);
    c1.inc(7);
    c2.inc(2);
    h.observe(10.0);
    g.set(0.25);
    g.set(0.5);  // last write wins, same final value as registry a
  }
  EXPECT_EQ(a.expose_prometheus(), b.expose_prometheus());
  EXPECT_EQ(a.expose_json(), b.expose_json());
}

TEST(Metrics, PrometheusRendersAllThreeKinds) {
  MetricRegistry reg;
  reg.counter("dagsfc_events_total", {{"algo", "mbbe"}}).inc(5);
  reg.gauge("dagsfc_depth").set(2.5);
  HistogramMetric h = reg.histogram("dagsfc_lat_ms", {}, 1e-3, 1e6);
  h.observe(1.0);
  const std::string text = reg.expose_prometheus();
  EXPECT_NE(text.find("# TYPE dagsfc_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dagsfc_events_total{algo=\"mbbe\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dagsfc_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("dagsfc_depth 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dagsfc_lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("dagsfc_lat_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dagsfc_lat_ms_sum 1"), std::string::npos);
  EXPECT_NE(text.find("dagsfc_lat_ms_count 1"), std::string::npos);

  const std::string json = reg.expose_json();
  EXPECT_NE(json.find("\"name\":\"dagsfc_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
}

// ------------------------------------------------------------ exemplars --

TEST(Metrics, ExemplarTracksTheBucketsWorstValue) {
  MetricRegistry reg;
  HistogramMetric h = reg.histogram("dagsfc_lat_ms", {}, 1e-3, 1e6);
  // Two observations in one bucket: the larger one owns the exemplar.
  h.observe_exemplar(1.00, 7);
  h.observe_exemplar(1.05, 8);
  h.observe_exemplar(1.01, 9);  // smaller — must not steal it
  // And one far away, in its own bucket.
  h.observe_exemplar(500.0, 4);

  const RegistrySnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("dagsfc_lat_ms");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->exemplars.size(), 2u);  // only buckets that have one
  EXPECT_LT(s->exemplars[0].bucket, s->exemplars[1].bucket);  // bucket order
  EXPECT_DOUBLE_EQ(s->exemplars[0].value, 1.05);
  EXPECT_EQ(s->exemplars[0].trace_id, 8u);
  EXPECT_DOUBLE_EQ(s->exemplars[1].value, 500.0);
  EXPECT_EQ(s->exemplars[1].trace_id, 4u);

  // A repeat of the exact worst value refreshes the id (>= semantics): the
  // most recent worst request is the one worth grepping the flight dump
  // for.
  h.observe_exemplar(1.05, 12);
  const RegistrySnapshot snap2 = reg.snapshot();
  const MetricSample* s2 = snap2.find("dagsfc_lat_ms");
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->exemplars[0].trace_id, 12u);

  // Counts are shared with plain observe(): the exemplar path is the same
  // histogram, not a parallel one.
  EXPECT_EQ(s2->histogram.count(), 5u);
}

TEST(Metrics, ExemplarsChangeJsonButNotPrometheusBytes) {
  // Two registries fed identical values, one tagging exemplars. The
  // Prometheus 0.0.4 text has no exemplar syntax, so its bytes must be
  // identical; the JSON document is where the exemplars surface.
  MetricRegistry plain;
  MetricRegistry tagged;
  HistogramMetric hp = plain.histogram("dagsfc_lat_ms", {}, 1e-3, 1e6);
  HistogramMetric ht = tagged.histogram("dagsfc_lat_ms", {}, 1e-3, 1e6);
  for (int i = 1; i <= 10; ++i) {
    hp.observe(static_cast<double>(i));
    ht.observe_exemplar(static_cast<double>(i),
                        static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(plain.expose_prometheus(), tagged.expose_prometheus());
  EXPECT_EQ(plain.expose_json().find("\"exemplars\""), std::string::npos);
  const std::string json = tagged.expose_json();
  const std::size_t at = json.find("\"exemplars\":[");
  ASSERT_NE(at, std::string::npos);
  // The largest observation's id rides the dump.
  EXPECT_NE(json.find("\"trace_id\":10", at), std::string::npos);
  // And the snapshots proper stay bitwise-comparable — exemplars live
  // registry-side only, never in util::Histogram.
  EXPECT_TRUE(hp.snapshot() == ht.snapshot());
}

TEST(Metrics, NoOpHistogramHandleIgnoresExemplars) {
  HistogramMetric h;
  h.observe_exemplar(1.0, 1);  // must not crash on the default handle
  EXPECT_EQ(h.snapshot().count(), 0u);
}

// ----------------------------------------------------------- name lint --

/// Every name that actually lands in a registry — the serve layer's
/// instruments, the shard plane's (per-shard labelled families included),
/// the sim roll-up, and the phase meters — stays within the
/// Prometheus-clean namespace.
TEST(Metrics, AllRegisteredNamesMatchConvention) {
  const std::regex convention(
      "^dagsfc_[a-z0-9_]+(_total|_seconds|_bytes|_ratio)?$");

  std::vector<RegistrySnapshot> snapshots;

  serve::ServiceMetrics service_metrics;
  serve::Response r;
  r.outcome = serve::Outcome::Accepted;
  r.cost = 10.0;
  r.solves = 2;
  service_metrics.on_submitted();
  service_metrics.on_response(r);
  service_metrics.on_slow_solve();
  snapshots.push_back(service_metrics.registry().snapshot());

  MetricRegistry sim_registry;
  sim::AlgorithmStats stats;
  stats.name = "mbbe";
  stats.successes = 3;
  stats.failures = 1;
  stats.trace.decision_events = 5;  // force the trace family in too
  stats.path_queries.oracle_tested = 4;  // ...and the pruned-ratio gauge
  stats.path_queries.oracle_pruned = 1;
  sim::fill_registry({stats}, sim_registry, "n=10");
  snapshots.push_back(sim_registry.snapshot());

  // The distance-oracle family: one build at construction, one refresh
  // after repricing — counted into an injected registry.
  MetricRegistry oracle_registry;
  graph::Graph oracle_graph(3);
  oracle_graph.add_edge(0, 1, 1.0);
  oracle_graph.add_edge(1, 2, 1.0);
  graph::DistanceOracle::Options oracle_opts;
  oracle_opts.landmarks = 2;
  oracle_opts.registry = &oracle_registry;
  graph::DistanceOracle oracle(oracle_graph, oracle_opts);
  oracle_graph.set_weight(0, 2.0);
  oracle.ensure_current();
  snapshots.push_back(oracle_registry.snapshot());

  MetricRegistry phase_registry;
  {
    const PhaseMeter meter(phase_registry, "solve/mbbe");
    meter.record(0.001);
  }
  snapshots.push_back(phase_registry.snapshot());

  shard::ShardMetrics shard_metrics(3);
  shard_metrics.on_submitted();
  shard_metrics.on_cross_region();
  shard::CommitResult commit;
  commit.ok = true;
  commit.path = shard::CommitPath::kStamp;
  commit.touched = {0, 2};
  shard_metrics.on_commit(commit);
  shard_metrics.set_queue_depth(1, 4);
  snapshots.push_back(shard_metrics.registry().snapshot());

  // Process identity (dagsfc_build_info{version=,flags=} +
  // dagsfc_uptime_seconds), linted through an injected registry — the CLIs
  // register the same pair on the global one.
  MetricRegistry process_registry;
  const ProcessMetrics process_metrics(process_registry);
  process_metrics.update();
  snapshots.push_back(process_registry.snapshot());

  std::size_t checked = 0;
  for (const RegistrySnapshot& snap : snapshots) {
    ASSERT_FALSE(snap.samples.empty());
    for (const MetricSample& s : snap.samples) {
      EXPECT_TRUE(std::regex_match(s.name, convention))
          << "metric name violates convention: " << s.name;
      ++checked;
    }
  }
  EXPECT_GE(checked, 25u);  // the serve layer alone registers 17

  // The oracle family must actually be in what was linted — builds and
  // refreshes from the injected registry, the pruned ratio from the sim
  // roll-up (emitted only because oracle_tested > 0 above).
  const auto linted = [&](const char* name) {
    for (const RegistrySnapshot& snap : snapshots) {
      for (const MetricSample& s : snap.samples) {
        if (s.name == name) return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(linted("dagsfc_oracle_builds_total"));
  EXPECT_TRUE(linted("dagsfc_oracle_refreshes_total"));
  EXPECT_TRUE(linted("dagsfc_oracle_pruned_ratio"));
  EXPECT_TRUE(linted("dagsfc_build_info"));
  EXPECT_TRUE(linted("dagsfc_uptime_seconds"));
}

// ------------------------------------------------------------ hot path --

TEST(Metrics, IncrementHotPathAllocatesNothing) {
  MetricRegistry reg;
  Counter c = reg.counter("dagsfc_hot_total");
  Gauge g = reg.gauge("dagsfc_hot_depth");
  HistogramMetric h = reg.histogram("dagsfc_hot_ms", {}, 1e-3, 1e6);
  // Warm up: deal this thread its counter stripe and touch every cell.
  c.inc();
  g.set(1.0);
  g.add(1.0);
  h.observe(1.0);

  const std::size_t before = g_news.load();
  for (int i = 0; i < 1000; ++i) {
    c.inc();
    g.set(static_cast<double>(i));
    g.add(0.5);
    h.observe(static_cast<double>(i) + 0.25);
  }
  EXPECT_EQ(g_news.load() - before, 0u);
}

// ------------------------------------------------------------ threading --

/// The TSan shard-merge target: concurrent increments from 8 threads must
/// be exact (counters/bucket counts are integers; no lost updates), and the
/// histogram moments must see every observation.
TEST(MetricsThreads, EightThreadStripeMergeIsExact) {
  MetricRegistry reg;
  Counter c = reg.counter("dagsfc_stress_total");
  Gauge g = reg.gauge("dagsfc_stress_depth");
  HistogramMetric h = reg.histogram("dagsfc_stress_ms", {}, 1e-3, 1e6);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1.0);
        h.observe(t + 1.0);  // exact in double: the sum has one true value
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Σ t·kPerThread for t=1..8 — integers, so the float sum is exact
  // regardless of addition order.
  EXPECT_DOUBLE_EQ(snap.sum(), kPerThread * (1.0 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 8.0);
}

// ------------------------------------------------------------- reporter --

TEST(Metrics, ReporterDeliversDeltas) {
  MetricRegistry reg;
  Counter c = reg.counter("dagsfc_rep_total");
  Gauge g = reg.gauge("dagsfc_rep_depth");

  std::vector<std::string> deltas;
  MetricsReporter reporter(
      reg, std::chrono::hours(1),
      [&](const RegistrySnapshot& cur, const RegistrySnapshot& prev) {
        deltas.push_back(MetricsReporter::format_deltas(cur, prev));
      });
  reporter.report_now();  // nothing moved yet
  c.inc(5);
  g.set(2.0);
  reporter.report_now();
  reporter.report_now();  // nothing moved since the previous tick
  reporter.stop();

  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0], "");
  EXPECT_NE(deltas[1].find("dagsfc_rep_total +5"), std::string::npos);
  EXPECT_NE(deltas[1].find("dagsfc_rep_depth=2"), std::string::npos);
  EXPECT_EQ(deltas[2], "");
}

// -------------------------------------------------------- HTTP endpoint --

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// "name value" and "name{labels} value" lines → value, ignoring comments.
std::uint64_t parse_prom_counter(const std::string& body,
                                 const std::string& name) {
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string id = line.substr(0, space);
    const std::size_t brace = id.find('{');
    if (brace != std::string::npos) id.resize(brace);
    if (id == name) {
      return static_cast<std::uint64_t>(
          std::strtoull(line.c_str() + space + 1, nullptr, 10));
    }
  }
  ADD_FAILURE() << "metric not found in exposition: " << name;
  return 0;
}

/// Drives real traffic through an EmbeddingService, scrapes the live
/// /metrics endpoint, and checks the Prometheus text parses back to the
/// same counter values as the in-process MetricsSnapshot.
TEST(MetricsHttp, ScrapeRoundTripsServiceCounters) {
  const net::Network network = test::NetBuilder(3, 1)
                                   .link(0, 1, 8.0, 10.0)
                                   .link(1, 2, 8.0, 10.0)
                                   .put(1, 1, 5.0, 8.0)
                                   .build();
  const core::MbbeEmbedder mbbe;
  serve::EmbeddingService service(network, mbbe, {});
  const serve::MetricsHttpServer server(service.metrics_registry(),
                                        /*port=*/0);
  ASSERT_GT(server.port(), 0);

  for (int i = 0; i < 6; ++i) {
    serve::Request req;
    req.id = static_cast<serve::RequestId>(i + 1);
    req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
    // Rate 2 against capacity 8: four accepts, then two infeasible.
    req.flow = core::Flow{0, 2, 2.0, 1.0};
    (void)service.submit(std::move(req)).get();
  }
  const serve::MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.accepted, 4u);
  EXPECT_EQ(snap.rejected_infeasible, 2u);

  const std::string resp = http_get(server.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = resp.substr(resp.find("\r\n\r\n") + 4);
  EXPECT_EQ(parse_prom_counter(body, "dagsfc_serve_submitted_total"),
            snap.submitted);
  EXPECT_EQ(parse_prom_counter(body, "dagsfc_serve_accepted_total"),
            snap.accepted);
  EXPECT_EQ(parse_prom_counter(body, "dagsfc_serve_rejected_infeasible_total"),
            snap.rejected_infeasible);
  EXPECT_EQ(parse_prom_counter(body, "dagsfc_serve_slow_solves_total"), 0u);
  EXPECT_EQ(parse_prom_counter(body, "dagsfc_serve_latency_ms_count"),
            snap.latency_ms.count());
  EXPECT_EQ(parse_prom_counter(body, "dagsfc_serve_cost_count"),
            snap.cost.count());

  const std::string json_resp = http_get(server.port(), "/metrics.json");
  EXPECT_NE(json_resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(json_resp.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(json_resp.find("\"name\":\"dagsfc_serve_accepted_total\""),
            std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
}

}  // namespace
}  // namespace dagsfc::util
