#include "core/delay.hpp"

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

/// The hand solution from test_solution.cpp: f1@1, f2@5, f3@3, merger@3.
/// inter paths: 0-1 (1 hop), 1-5 (1), 1-5-3 (2), 3-4 (1);
/// inner paths: 5-3 (1 hop), trivial.
EmbeddingSolution hand_solution(const test::Fixture& fx) {
  const graph::Graph& g = fx.network.topology();
  auto path = [&](std::initializer_list<graph::NodeId> nodes) {
    graph::Path p;
    p.nodes = nodes;
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      p.edges.push_back(*g.find_edge(p.nodes[i], p.nodes[i + 1]));
    }
    return p;
  };
  EmbeddingSolution sol;
  sol.placement = {1, 5, 3, 3};
  sol.inter_paths = {path({0, 1}), path({1, 5}), path({1, 5, 3}),
                     path({3, 4})};
  sol.inner_paths = {path({5, 3}), path({3})};
  return sol;
}

TEST(Delay, EndToEndMatchesHandComputation) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const DelayModel m;  // 1ms/hop, 1ms/VNF, 0.2ms merger
  // Layer 1: 1 hop + f1 = 2.
  // Layer 2 branches: f2: 1 + 1 + 1 = 3; f3: 2 + 1 + 0 = 3 → max 3, +0.2.
  // Final hop: 1.  Total 6.2.
  EXPECT_NEAR(end_to_end_delay(ev, hand_solution(*fx), m), 6.2, 1e-12);
}

TEST(Delay, SerializedSumsBranches) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const DelayModel m;
  // Layer 2 serialized: 3 + 3 = 6 instead of max 3 → total 9.2.
  EXPECT_NEAR(serialized_delay(ev, hand_solution(*fx), m), 9.2, 1e-12);
}

TEST(Delay, ParallelNeverSlowerThanSerialized) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const EmbeddingSolution sol = hand_solution(*fx);
  for (double hop : {0.1, 1.0, 5.0}) {
    DelayModel m;
    m.per_hop_ms = hop;
    EXPECT_LE(end_to_end_delay(ev, sol, m),
              serialized_delay(ev, sol, m) + 1e-12);
  }
}

TEST(Delay, EqualForPurelySequentialSfc) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0).put(1, 2, 1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 2, 1.0, 1.0});
  const Evaluator ev(*fx->index);
  const MbbeEmbedder mbbe;
  Rng rng(1);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(end_to_end_delay(ev, *r.solution),
                   serialized_delay(ev, *r.solution));
}

TEST(Delay, PerCategoryProcessingOverrides) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  DelayModel m;
  m.vnf_ms.assign(fx->network.catalog().num_types(), -1.0);
  m.vnf_ms[1] = 10.0;  // f1 is slow (e.g. DPI)
  // Layer 1 becomes 1 + 10 = 11; rest unchanged (3 + 0.2 + 1) → 15.2.
  EXPECT_NEAR(end_to_end_delay(ev, hand_solution(*fx), m), 15.2, 1e-12);
}

TEST(Delay, ScalesLinearlyInHopLatency) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const EmbeddingSolution sol = hand_solution(*fx);
  DelayModel zero;
  zero.per_hop_ms = 0.0;
  DelayModel one;
  DelayModel two;
  two.per_hop_ms = 2.0;
  const double d0 = end_to_end_delay(ev, sol, zero);
  const double d1 = end_to_end_delay(ev, sol, one);
  const double d2 = end_to_end_delay(ev, sol, two);
  // Both branches have identical hop counts here, so the critical path
  // never switches and delay is affine in the per-hop latency.
  EXPECT_NEAR(d2 - d1, d1 - d0, 1e-9);
}

TEST(DelayConstrained, UnboundedBudgetMatchesUnconstrained) {
  auto fx = test::canonical_fixture();
  Rng rng(10);
  const MbbeEmbedder plain;
  MbbeOptions opts;
  opts.delay_budget_ms = 1e9;
  const MbbeEmbedder bounded(opts);
  const auto a = plain.solve_fresh(*fx->index, rng);
  const auto b = bounded.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.solution->placement, b.solution->placement);
}

TEST(DelayConstrained, SolutionsRespectTheBudget) {
  auto fx = test::canonical_fixture();
  Rng rng(11);
  // Unconstrained MBBE solution has delay 8.2ms on this fixture (cost 40).
  for (double budget : {8.2, 9.0, 20.0}) {
    MbbeOptions opts;
    opts.delay_budget_ms = budget;
    const MbbeEmbedder mbbe(opts);
    const auto r = mbbe.solve_fresh(*fx->index, rng);
    ASSERT_TRUE(r.ok()) << "budget " << budget << ": " << r.failure_reason;
    const Evaluator ev(*fx->index);
    EXPECT_LE(end_to_end_delay(ev, *r.solution), budget + 1e-9);
  }
}

TEST(DelayConstrained, ImpossibleBudgetFailsCleanly) {
  auto fx = test::canonical_fixture();
  Rng rng(12);
  MbbeOptions opts;
  opts.delay_budget_ms = 0.5;  // less than one VNF's processing time
  const MbbeEmbedder mbbe(opts);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(DelayConstrained, TighterBudgetNeverCheaper) {
  // Cost(budget) is non-increasing in the budget: relaxing the constraint
  // can only help. Checked across a sweep on a random instance.
  sim::ExperimentConfig cfg;
  cfg.network_size = 40;
  cfg.catalog_size = 8;
  cfg.sfc_size = 5;
  Rng rng(13);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
  EmbeddingProblem problem;
  problem.network = &scenario.network;
  problem.sfc = &dag;
  problem.flow = Flow{scenario.source, scenario.destination, 1.0, 1.0};
  const ModelIndex index(problem);

  double previous_cost = -1.0;
  for (double budget : {40.0, 20.0, 12.0, 9.0}) {  // tightening
    MbbeOptions opts;
    opts.delay_budget_ms = budget;
    const MbbeEmbedder mbbe(opts);
    const auto r = mbbe.solve_fresh(index, rng);
    if (!r.ok()) break;  // even tighter budgets only fail harder
    if (previous_cost >= 0.0) {
      EXPECT_GE(r.cost + 1e-9, previous_cost)
          << "tightening the budget made the embedding cheaper";
    }
    previous_cost = r.cost;
  }
}

TEST(DelayConstrained, BudgetCanForceCostlierButFasterEmbedding) {
  // Two hosts one hop from the source (both inside the forward search's
  // first ring): the cheap one sits three hops from the destination, the
  // pricey one a single hop. Cost-optimal embedding is slow; a tight
  // budget must switch to the pricey fast host.
  test::NetBuilder b(6, 1);
  b.link(0, 1, 1.0).link(0, 2, 1.0);
  b.link(1, 4, 1.0);                              // fast exit
  b.link(2, 3, 1.0).link(3, 5, 1.0).link(5, 4, 1.0);  // slow exit
  b.put(1, 1, 50.0);  // pricey, 1 hop from the destination
  b.put(2, 1, 5.0);   // cheap, 3 hops from the destination
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 4, 1.0, 1.0});
  Rng rng(14);
  const MbbeEmbedder loose;
  const auto rl = loose.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(rl.solution->placement[0], 2u);  // cost-optimal: 5+1+3 = 9
  EXPECT_DOUBLE_EQ(rl.cost, 9.0);

  MbbeOptions opts;
  opts.delay_budget_ms = 3.0;  // 1 hop + 1ms VNF + 1 hop; the 5ms slow
                               // route is out of budget
  const MbbeEmbedder tight(opts);
  const auto rt = tight.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(rt.ok()) << rt.failure_reason;
  EXPECT_EQ(rt.solution->placement[0], 1u);
  EXPECT_DOUBLE_EQ(rt.cost, 52.0);
  const Evaluator ev(*fx->index);
  EXPECT_LE(end_to_end_delay(ev, *rt.solution), 3.0 + 1e-9);
}

TEST(Delay, HybridBeatsSequentialOnGeneratedScenarios) {
  // The library-level restatement of NFP's headline: for wide SFCs the
  // parallel execution is strictly faster on the same embedding.
  sim::ExperimentConfig cfg;
  cfg.network_size = 40;
  cfg.catalog_size = 9;
  cfg.sfc_size = 9;  // layers 3,3,3 — plenty of parallelism
  Rng rng(7);
  const MbbeEmbedder mbbe;
  int strictly_faster = 0;
  int total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow =
        Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const ModelIndex index(problem);
    const auto r = mbbe.solve_fresh(index, rng);
    if (!r.ok()) continue;
    ++total;
    const Evaluator ev(index);
    const double par = end_to_end_delay(ev, *r.solution);
    const double seq = serialized_delay(ev, *r.solution);
    EXPECT_LE(par, seq + 1e-12);
    if (par < seq - 1e-12) ++strictly_faster;
  }
  ASSERT_GT(total, 5);
  EXPECT_GT(strictly_faster, total / 2);
}

}  // namespace
}  // namespace dagsfc::core
