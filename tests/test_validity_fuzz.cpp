/// Validity fuzzing: a seeded generator drives every embedder in the
/// library — RANV, MINV, BBE, MBBE, EXACT, LAYERED — over random Waxman and
/// fat-tree instances, and every solution any of them returns must pass the
/// independent core::SolutionValidator (structure, layer order, deployment
/// sets, capacities, and the bitwise cost recomputation).
///
/// This is deliberately *not* a differential test: no solver is compared to
/// another, so it keeps finding bugs even on instances where they all
/// disagree or all fail. It also runs under ASan and TSan via the
/// `layered|validity` pass in scripts/check.sh, together with a
/// concurrent-solve hammer over one shared problem (cold CSR, shared
/// const embedders) that gives the sanitizer something to bite on.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "core/validator.hpp"
#include "graph/topologies.hpp"
#include "graph/workspace.hpp"
#include "net/network.hpp"
#include "sfc/generator.hpp"
#include "test_helpers.hpp"

namespace dagsfc {
namespace {

/// Scenario recipe over an arbitrary topology (the sim:: generator is tied
/// to the paper's random-graph model; the fuzzer wants structured WAN and
/// data-center shapes too): random link prices, per-node Bernoulli VNF
/// deployment with a force-deploy fallback so every category exists.
net::Network dress_topology(graph::Graph topo, Rng& rng,
                            std::size_t catalog_size, double deploy_ratio) {
  for (graph::EdgeId e = 0; e < topo.num_edges(); ++e) {
    topo.set_weight(e, rng.uniform_real(5.0, 40.0));
  }
  net::VnfCatalog catalog(catalog_size);
  net::Network network(std::move(topo), catalog, /*link_capacity=*/100.0);
  std::vector<net::VnfTypeId> all_types = catalog.regular_ids();
  all_types.push_back(catalog.merger());
  for (net::VnfTypeId t : all_types) {
    for (graph::NodeId v = 0; v < network.num_nodes(); ++v) {
      if (rng.bernoulli(deploy_ratio)) {
        (void)network.deploy(v, t, rng.uniform_real(50.0, 150.0), 100.0);
      }
    }
    if (network.nodes_with(t).empty()) {
      const auto v = static_cast<graph::NodeId>(rng.index(network.num_nodes()));
      (void)network.deploy(v, t, rng.uniform_real(50.0, 150.0), 100.0);
    }
  }
  return network;
}

struct FuzzStats {
  int solutions_checked = 0;
  int failures_reported = 0;
};

void fuzz_instance(graph::Graph topo, Rng& rng, FuzzStats& stats) {
  net::Network network =
      dress_topology(std::move(topo), rng, /*catalog_size=*/6,
                     /*deploy_ratio=*/rng.uniform_real(0.3, 0.7));

  sfc::RandomSfcOptions sfc_opts;
  sfc_opts.size = 2 + rng.index(3);  // 2..4 VNFs
  sfc_opts.max_layer_width = 3;
  const sfc::DagSfc dag =
      sfc::random_dag_sfc(rng, network.catalog(), sfc_opts);

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &dag;
  const auto n = network.num_nodes();
  const auto src = static_cast<graph::NodeId>(rng.index(n));
  auto dst = static_cast<graph::NodeId>(rng.index(n));
  while (dst == src) dst = static_cast<graph::NodeId>(rng.index(n));
  problem.flow = core::Flow{src, dst, 1.0, 1.0};
  const core::ModelIndex index(problem);
  const core::SolutionValidator validator(index);

  const core::RanvEmbedder ranv;
  const core::MinvEmbedder minv;
  const core::BbeEmbedder bbe;
  const core::MbbeEmbedder mbbe;
  const core::ExactEmbedder exact;
  const core::LayeredEmbedder layered;
  const std::vector<const core::Embedder*> all = {&ranv, &minv,  &bbe,
                                                  &mbbe, &exact, &layered};

  for (const core::Embedder* algo : all) {
    SCOPED_TRACE(algo->name());
    net::CapacityLedger ledger(network);
    Rng solve_rng(rng.fork_seed());
    const auto result = algo->solve(index, ledger, solve_rng);
    if (!result.ok()) {
      // A refusal must come with a reason; silence is a bug.
      EXPECT_FALSE(result.failure_reason.empty());
      ++stats.failures_reported;
      continue;
    }
    const auto audit = validator.check(result, ledger);
    EXPECT_TRUE(audit.ok()) << audit.to_string();
    ++stats.solutions_checked;
  }
}

TEST(ValidityFuzz, WaxmanInstances) {
  Rng seeder(0x3a817a57ceedull);
  FuzzStats stats;
  for (int i = 0; i < 25; ++i) {
    SCOPED_TRACE("waxman instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    graph::WaxmanOptions wopts;
    wopts.num_nodes = 12 + rng.index(8);  // 12..19 nodes
    wopts.alpha = 0.7;
    wopts.beta = 0.4;
    fuzz_instance(graph::make_waxman(rng, wopts), rng, stats);
    if (::testing::Test::HasFailure()) break;
  }
  // The fuzz must actually exercise the validator, not dodge it via
  // universal refusals.
  EXPECT_GE(stats.solutions_checked, 50);
}

TEST(ValidityFuzz, FatTreeInstances) {
  Rng seeder(0xfa77ee5eedull);
  FuzzStats stats;
  for (int i = 0; i < 25; ++i) {
    SCOPED_TRACE("fat-tree instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    fuzz_instance(graph::make_fat_tree(4), rng, stats);  // 20 switches
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_GE(stats.solutions_checked, 50);
}

// ---------------------------------------------------------------------------
// Concurrency: many threads solve the same shared problem with shared const
// embedders; per-thread ledgers/workspaces. First CSR build races on a cold
// graph. Every thread must observe bitwise-identical costs. Runs under TSan
// via scripts/check.sh.

TEST(ValidityFuzz, ConcurrentSolvesAgreeBitwise) {
  auto fx = test::canonical_fixture();
  const core::LayeredEmbedder layered;
  const core::ExactEmbedder exact;
  const core::SolutionValidator validator(*fx->index);

  constexpr int kThreads = 8;
  constexpr int kSolvesPerThread = 4;
  std::vector<double> layered_costs(kThreads, 0.0);
  std::vector<double> exact_costs(kThreads, 0.0);
  std::vector<char> valid(kThreads, 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      graph::SearchWorkspace ws;
      bool all_valid = true;
      for (int s = 0; s < kSolvesPerThread; ++s) {
        net::CapacityLedger ledger(fx->network);
        Rng rng(7);
        const auto lay = layered.solve(*fx->index, ledger, rng, nullptr, &ws);
        net::CapacityLedger ledger2(fx->network);
        Rng rng2(7);
        const auto ex = exact.solve(*fx->index, ledger2, rng2, nullptr, &ws);
        if (!lay.ok() || !ex.ok()) {
          all_valid = false;
          break;
        }
        layered_costs[t] = lay.cost;
        exact_costs[t] = ex.cost;
        net::CapacityLedger fresh(fx->network);
        if (!validator.check(lay, fresh).ok()) all_valid = false;
      }
      valid[t] = all_valid ? 1 : 0;
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(valid[t], 1) << "thread " << t;
    EXPECT_EQ(layered_costs[t], layered_costs[0]);
    EXPECT_EQ(exact_costs[t], exact_costs[0]);
    EXPECT_EQ(layered_costs[t], exact_costs[t]);
  }
}

}  // namespace
}  // namespace dagsfc
