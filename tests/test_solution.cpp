#include "core/solution.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

/// Hand-built valid solution on the canonical fixture:
/// f1@1, f2@5, f3@3, merger@3; known cost 35 (the instance optimum).
EmbeddingSolution hand_solution(const test::Fixture& fx) {
  const graph::Graph& g = fx.network.topology();
  auto path = [&](std::initializer_list<graph::NodeId> nodes) {
    graph::Path p;
    p.nodes = nodes;
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      p.edges.push_back(*g.find_edge(p.nodes[i], p.nodes[i + 1]));
    }
    p.cost = g.path_cost(p);
    return p;
  };
  EmbeddingSolution sol;
  sol.placement = {1, 5, 3, 3};
  sol.inter_paths = {path({0, 1}),      // src → f1
                     path({1, 5}),      // f1 → f2
                     path({1, 5, 3}),   // f1 → f3 (shares 1-5: multicast)
                     path({3, 4})};     // merger → t
  sol.inner_paths = {path({5, 3}),      // f2 → merger
                     path({3})};        // f3 co-located with merger
  return sol;
}

TEST(Evaluator, ResolveEndpoints) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const EmbeddingSolution sol = hand_solution(*fx);
  EXPECT_EQ(ev.resolve(SlotRef::source(), sol), 0u);
  EXPECT_EQ(ev.resolve(SlotRef::destination(), sol), 4u);
  EXPECT_EQ(ev.resolve(SlotRef::of(1), sol), 5u);
}

TEST(Evaluator, HandSolutionIsValid) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const auto errors = ev.validate(hand_solution(*fx));
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(Evaluator, CostMatchesHandComputation) {
  // VNF: f1@1=10, f2@5=8, f3@3=7, merger@3=5 → 30.
  // Links: group0 {0-1}=1; group1 {1-5, 5-3}=2 (multicast shares 1-5);
  // inner 5-3=1 (charged again: different group); group2 {3-4}=1 → 5.
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  EXPECT_DOUBLE_EQ(ev.cost(hand_solution(*fx)), 35.0);
}

TEST(Evaluator, MulticastDiscountCountsSharedEdgeOnce) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const ResourceUsage u = ev.usage(hand_solution(*fx));
  const auto e15 = fx->network.topology().find_edge(1, 5);
  const auto e53 = fx->network.topology().find_edge(5, 3);
  ASSERT_TRUE(e15 && e53);
  // 1-5 carried by both group-1 inter paths → once.
  EXPECT_EQ(u.link_uses[*e15], 1u);
  // 5-3 carried by a group-1 inter path AND an inner path → twice.
  EXPECT_EQ(u.link_uses[*e53], 2u);
}

TEST(Evaluator, FlowSizeScalesCost) {
  auto fx = test::canonical_fixture();
  fx->problem.flow.size = 3.0;
  const ModelIndex idx(fx->problem);
  const Evaluator ev(idx);
  EXPECT_DOUBLE_EQ(ev.cost(hand_solution(*fx)), 105.0);
}

TEST(Evaluator, CostBreakdownSums) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const ResourceUsage u = ev.usage(hand_solution(*fx));
  const auto [vnf, link] = ev.cost_breakdown(u);
  EXPECT_DOUBLE_EQ(vnf, 30.0);
  EXPECT_DOUBLE_EQ(link, 5.0);
}

TEST(Evaluator, InstanceUsesCountRepeats) {
  // Same type in two layers mapped to one node: α counts both uses.
  test::NetBuilder b(2, 1);
  b.link(0, 1, 1.0);
  b.put(1, 1, 4.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{1}}}),
      Flow{0, 0, 1.0, 1.0});
  const Evaluator ev(*fx->index);
  EmbeddingSolution sol;
  sol.placement = {1, 1};
  auto one = [&](std::vector<graph::NodeId> nodes) {
    graph::Path p;
    p.nodes = std::move(nodes);
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      p.edges.push_back(
          *fx->network.topology().find_edge(p.nodes[i], p.nodes[i + 1]));
    }
    return p;
  };
  sol.inter_paths = {one({0, 1}), one({1}), one({1, 0})};
  ASSERT_TRUE(ev.validate(sol).empty());
  const ResourceUsage u = ev.usage(sol);
  EXPECT_EQ(u.instance_uses[0], 2u);
  // Cost: 2·4 rental + links 1 + 0 + 1.
  EXPECT_DOUBLE_EQ(ev.cost(u), 10.0);
}

TEST(Evaluator, ValidateCatchesWrongHost) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  EmbeddingSolution sol = hand_solution(*fx);
  sol.placement[0] = 0;  // node 0 hosts nothing
  EXPECT_FALSE(ev.validate(sol).empty());
}

TEST(Evaluator, ValidateCatchesEndpointMismatch) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  EmbeddingSolution sol = hand_solution(*fx);
  std::swap(sol.inter_paths[1], sol.inter_paths[2]);  // endpoints now wrong
  EXPECT_FALSE(ev.validate(sol).empty());
}

TEST(Evaluator, ValidateCatchesMissingPath) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  EmbeddingSolution sol = hand_solution(*fx);
  sol.inter_paths[3] = graph::Path{};
  EXPECT_FALSE(ev.validate(sol).empty());
}

TEST(Evaluator, ValidateCatchesNonWalk) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  EmbeddingSolution sol = hand_solution(*fx);
  sol.inter_paths[0].nodes = {0, 4};  // no such edge
  EXPECT_FALSE(ev.validate(sol).empty());
}

TEST(Evaluator, ValidateCatchesSizeMismatch) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  EmbeddingSolution sol = hand_solution(*fx);
  sol.placement.pop_back();
  EXPECT_FALSE(ev.validate(sol).empty());
  sol = hand_solution(*fx);
  sol.inner_paths.pop_back();
  EXPECT_FALSE(ev.validate(sol).empty());
}

TEST(Evaluator, FeasibilityAgainstLedger) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const EmbeddingSolution sol = hand_solution(*fx);
  const ResourceUsage u = ev.usage(sol);
  net::CapacityLedger ledger(fx->network);
  EXPECT_TRUE(ev.feasible(u, ledger));
  // Drain the f1 instance: infeasible.
  const auto inst = fx->network.find_instance(1, 1);
  ledger.consume_instance(*inst, ledger.instance_residual(*inst));
  EXPECT_FALSE(ev.feasible(u, ledger));
}

TEST(Evaluator, CommitDebitsSharedEdgeTwice) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const ResourceUsage u = ev.usage(hand_solution(*fx));
  net::CapacityLedger ledger(fx->network);
  ev.commit(u, ledger);
  const auto e53 = fx->network.topology().find_edge(5, 3);
  EXPECT_DOUBLE_EQ(ledger.link_residual(*e53), 98.0);  // 2 uses × rate 1
  const auto inst = fx->network.find_instance(1, 1);
  EXPECT_DOUBLE_EQ(ledger.instance_residual(*inst), 99.0);
}

TEST(Evaluator, ReleaseUndoesCommitExactly) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const ResourceUsage u = ev.usage(hand_solution(*fx));
  net::CapacityLedger ledger(fx->network);
  ev.commit(u, ledger);
  EXPECT_GT(ledger.total_link_consumed(), 0.0);
  ev.release(u, ledger);
  EXPECT_DOUBLE_EQ(ledger.total_link_consumed(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_instance_consumed(), 0.0);
  // Multiple commit/release cycles stay balanced.
  for (int i = 0; i < 3; ++i) ev.commit(u, ledger);
  for (int i = 0; i < 3; ++i) ev.release(u, ledger);
  EXPECT_DOUBLE_EQ(ledger.total_link_consumed(), 0.0);
}

TEST(Report, DotOverlayMarksUsedElements) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const std::string dot = to_dot(ev, hand_solution(*fx), "sol");
  // Source and destination get the doublecircle shape.
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  // Hosting node 5 rents f2 and is boxed.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("f2"), std::string::npos);
  // The doubly-used link 5-3 is bold with its reuse count.
  EXPECT_NE(dot.find("x2"), std::string::npos);
  // Unused elements are dimmed.
  EXPECT_NE(dot.find("color=gray"), std::string::npos);
  EXPECT_EQ(dot.find("x0"), std::string::npos);  // no zero-count labels
}

TEST(Report, DescribeMentionsPlacementsAndCost) {
  auto fx = test::canonical_fixture();
  const Evaluator ev(*fx->index);
  const std::string text = describe(ev, hand_solution(*fx));
  EXPECT_NE(text.find("f1@node1"), std::string::npos);
  EXPECT_NE(text.find("merger@node3"), std::string::npos);
  EXPECT_NE(text.find("35.00"), std::string::npos);
  EXPECT_NE(text.find("co-located"), std::string::npos);
}

}  // namespace
}  // namespace dagsfc::core
