/// Tests for the epoch-keyed ALT distance oracle (graph/oracle.hpp), the
/// goal-directed kernels it feeds (dijkstra.cpp, yen.cpp) and the batched
/// search tier (multi-source layered Dijkstra, multi-target early exit, the
/// batched Steiner base case). The contract throughout is the flat tier's:
/// bit-identity. Oracle-on answers must equal oracle-off answers exactly —
/// for every primitive, and for every embedder's end-to-end SolveResult —
/// because the landmark bounds only ever *prune* work the unpruned run
/// provably never needed (DESIGN.md §13).
///
/// The OracleConcurrent suite is the TSan target of scripts/check.sh's
/// oracle pass: one immutable oracle shared by many querying threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "core/path_oracle.hpp"
#include "core/validator.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generator.hpp"
#include "graph/oracle.hpp"
#include "graph/reference.hpp"
#include "graph/steiner.hpp"
#include "graph/workspace.hpp"
#include "graph/yen.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "shard/hier.hpp"
#include "shard/partition.hpp"
#include "shard/substrate.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"
#include "util/metrics.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

/// Pins the process-wide search-tier switch for one test and restores it.
struct FlagGuard {
  bool saved = graph::flat_search_default();
  ~FlagGuard() { graph::set_flat_search_default(saved); }
};

graph::Graph random_weighted_graph(std::size_t n, double degree,
                                   std::uint64_t seed) {
  Rng rng(seed);
  graph::RandomGraphOptions opts;
  opts.num_nodes = n;
  opts.average_degree = degree;
  graph::Graph g = random_connected_graph(rng, opts);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(1.0, 10.0));
  }
  return g;
}

/// A random ~80%-permissive allow-set, expressed both ways: as the seed's
/// EdgeFilter and as the flat tier's EdgeMask over the same bits.
struct AllowSet {
  std::vector<char> allow;
  graph::EdgeMaskBuffer mask;
  graph::EdgeMask view;

  AllowSet(const graph::Graph& g, Rng& rng) {
    allow.resize(g.num_edges());
    mask.assign(g.num_edges(), false);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      allow[e] = rng.uniform_real(0.0, 1.0) < 0.8 ? 1 : 0;
      if (allow[e]) mask.set(e);
    }
    view = mask.view();
  }
  [[nodiscard]] graph::EdgeFilter filter() const {
    return [this](graph::EdgeId e) { return allow[e] != 0; };
  }
};

void expect_same_path(const graph::Path& a, const graph::Path& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.cost, b.cost);  // bit-identical, not approximate
}

void expect_same_opt_path(const std::optional<graph::Path>& a,
                          const std::optional<graph::Path>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) expect_same_path(*a, *b);
}

/// Relative slack for the *bound* checks only (the bounds are sums of
/// independently rounded Dijkstra results, so last-ulp drift is expected).
/// Path comparisons above stay bitwise.
constexpr double kRelSlack = 1e-9;

// ---------------------------------------------------------------------------
// Bound semantics: admissibility, consistency, determinism.

TEST(OracleBounds, AdmissibleAndConsistentOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(40, 4.0, seed);
    const graph::DistanceOracle oracle(g);
    ASSERT_TRUE(oracle.active());
    ASSERT_GT(oracle.num_landmarks(), 0u);

    for (graph::NodeId s = 0; s < 5; ++s) {
      const auto ref = graph::reference::dijkstra(g, s);
      for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
        const double d = ref.dist[t];
        const double lb = oracle.lower_bound(s, t);
        const double ub = oracle.upper_bound(s, t);
        EXPECT_LE(lb, d * (1.0 + kRelSlack) + kRelSlack)
            << "inadmissible lower bound for " << s << "->" << t;
        EXPECT_GE(ub * (1.0 + kRelSlack) + kRelSlack, d)
            << "invalid upper bound for " << s << "->" << t;
        EXPECT_GE(lb, 0.0);
      }
      EXPECT_EQ(oracle.lower_bound(s, s), 0.0);  // exact: x - x == 0
    }

    // Consistency (the 1-Lipschitz property the write-prune proof leans
    // on): across any edge, the bound toward a fixed target moves by at
    // most the edge weight.
    for (graph::NodeId t = 0; t < 6; ++t) {
      for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
        const graph::Edge& edge = g.edge(e);
        const double a = oracle.lower_bound(edge.u, t);
        const double b = oracle.lower_bound(edge.v, t);
        const double gap = a < b ? b - a : a - b;
        EXPECT_LE(gap, edge.weight * (1.0 + kRelSlack) + kRelSlack)
            << "inconsistent bounds across edge " << e;
      }
    }
  }
}

TEST(OracleBounds, SelectionAndQueriesAreDeterministic) {
  const graph::Graph g = random_weighted_graph(30, 4.0, 77);
  const graph::DistanceOracle a(g);
  const graph::DistanceOracle b(g);
  ASSERT_TRUE(a.active());
  const auto la = a.landmarks();
  const auto lb = b.landmarks();
  ASSERT_EQ(la.size(), lb.size());
  EXPECT_TRUE(std::equal(la.begin(), la.end(), lb.begin()));

  const graph::AltQuery qa = a.query(3, 17, /*seed_upper_bound=*/true);
  const graph::AltQuery qb = b.query(3, 17, /*seed_upper_bound=*/true);
  ASSERT_EQ(qa.active, qb.active);
  ASSERT_GT(qa.active, 0u);
  ASSERT_LE(qa.active, graph::AltQuery::kMaxActive);
  EXPECT_EQ(qa.seed_ub, qb.seed_ub);
  for (std::uint32_t i = 0; i < qa.active; ++i) {
    EXPECT_EQ(qa.to_target[i], qb.to_target[i]);
  }
  // The per-query subset can only be as tight as the all-landmark bound,
  // and the seeded upper bound must dominate the truth.
  const auto ref = graph::reference::min_cost_path(g, 3, 17);
  ASSERT_TRUE(ref.has_value());
  EXPECT_LE(qa.lower_bound(3), ref->cost * (1.0 + kRelSlack));
  EXPECT_GE(qa.seed_ub * (1.0 + kRelSlack), ref->cost);
  EXPECT_EQ(qa.lower_bound(17), 0.0);
}

// ---------------------------------------------------------------------------
// Epoch keying: repricing refreshes, structural drift rebuilds.

TEST(OracleEpochs, WeightDriftRefreshesStructureDriftRebuilds) {
  util::MetricRegistry registry;
  graph::Graph g = random_weighted_graph(20, 3.0, 5);
  graph::DistanceOracle::Options opts;
  opts.landmarks = 4;
  opts.registry = &registry;
  graph::DistanceOracle oracle(g, opts);
  EXPECT_EQ(oracle.builds(), 1u);
  EXPECT_EQ(oracle.refreshes(), 0u);
  EXPECT_TRUE(oracle.fresh());
  EXPECT_TRUE(oracle.matches(g));

  const std::vector<graph::NodeId> before(oracle.landmarks().begin(),
                                          oracle.landmarks().end());

  // Repricing: stale until ensure_current, which refreshes in place —
  // same landmark positions, tables rebuilt over the new weights.
  g.set_weight(0, 123.0);
  EXPECT_FALSE(oracle.fresh());
  EXPECT_FALSE(oracle.matches(g));
  oracle.ensure_current();
  EXPECT_EQ(oracle.builds(), 1u);
  EXPECT_EQ(oracle.refreshes(), 1u);
  EXPECT_TRUE(oracle.matches(g));
  const std::vector<graph::NodeId> after_refresh(oracle.landmarks().begin(),
                                                 oracle.landmarks().end());
  EXPECT_EQ(before, after_refresh);
  for (graph::NodeId s = 0; s < 4; ++s) {
    const auto ref = graph::reference::dijkstra(g, s);
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_LE(oracle.lower_bound(s, t),
                ref.dist[t] * (1.0 + kRelSlack) + kRelSlack);
    }
  }

  // Structural drift: a full rebuild (landmark re-selection included).
  g.add_edge(0, g.num_nodes() - 1, 0.5);
  EXPECT_FALSE(oracle.matches(g));
  oracle.ensure_current();
  EXPECT_EQ(oracle.builds(), 2u);
  EXPECT_EQ(oracle.refreshes(), 1u);
  EXPECT_TRUE(oracle.matches(g));

  // ensure_current is a no-op when fresh.
  oracle.ensure_current();
  EXPECT_EQ(oracle.builds(), 2u);
  EXPECT_EQ(oracle.refreshes(), 1u);

  // A different Graph object never matches, fresh or not.
  const graph::Graph other = random_weighted_graph(20, 3.0, 5);
  EXPECT_FALSE(oracle.matches(other));

  EXPECT_EQ(registry.counter("dagsfc_oracle_builds_total").value(), 2u);
  EXPECT_EQ(registry.counter("dagsfc_oracle_refreshes_total").value(), 1u);
}

TEST(OracleEpochs, DisconnectedGraphDisablesPruning) {
  graph::Graph g = random_weighted_graph(12, 3.0, 9);
  const graph::NodeId isolated = g.add_node();
  const graph::DistanceOracle oracle(g);
  EXPECT_FALSE(oracle.active());
  EXPECT_FALSE(oracle.matches(g));
  EXPECT_EQ(oracle.lower_bound(0, isolated), 0.0);
  EXPECT_EQ(oracle.upper_bound(0, isolated), graph::kInfCost);

  const graph::AltQuery alt = oracle.query(0, 5, /*seed_upper_bound=*/true);
  EXPECT_EQ(alt.active, 0u);
  EXPECT_EQ(alt.seed_ub, graph::kInfCost);

  // An inactive AltQuery routes to the plain kernel — identical results.
  graph::SearchWorkspace ws1, ws2;
  expect_same_opt_path(graph::min_cost_path(g, 0, 5, ws1, nullptr, alt),
                       graph::min_cost_path(g, 0, 5, ws2, nullptr));
}

// ---------------------------------------------------------------------------
// Goal-directed kernels: pruned == plain, bitwise, and pruning fires.

TEST(GoalDirected, PointToPointPrunedEqualsPlainEverywhere) {
  graph::SearchWorkspace pruned_ws, plain_ws;
  graph::PruneStats stats;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(48, 4.0, seed);
    const graph::DistanceOracle oracle(g);
    ASSERT_TRUE(oracle.active());
    Rng rng(seed * 31);
    const AllowSet set(g, rng);
    for (graph::NodeId s = 0; s < 4; ++s) {
      for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
        // Unmasked: the query may seed the landmark-routed upper bound.
        graph::AltQuery alt = oracle.query(s, t, /*seed_upper_bound=*/true);
        alt.stats = &stats;
        expect_same_opt_path(
            graph::min_cost_path(g, s, t, pruned_ws, nullptr, alt),
            graph::min_cost_path(g, s, t, plain_ws, nullptr));
        // Masked: lower bounds stay admissible, the seed must stay off.
        graph::AltQuery masked = oracle.query(s, t, /*seed_upper_bound=*/false);
        masked.stats = &stats;
        EXPECT_EQ(masked.seed_ub, graph::kInfCost);
        expect_same_opt_path(
            graph::min_cost_path(g, s, t, pruned_ws, &set.view, masked),
            graph::min_cost_path(g, s, t, plain_ws, &set.view));
      }
    }
  }
  // The whole point: the identical answers must have cost less work.
  EXPECT_GT(stats.tested, 0u);
  EXPECT_GT(stats.pruned, 0u);
}

TEST(GoalDirected, YenPrunedEqualsPlain) {
  graph::SearchWorkspace pruned_ws, plain_ws;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(36, 4.0, seed);
    const graph::DistanceOracle oracle(g);
    ASSERT_TRUE(oracle.active());
    Rng rng(seed * 101);
    const AllowSet set(g, rng);
    for (const auto& [s, t] :
         {std::pair<graph::NodeId, graph::NodeId>{0, 35}, {7, 20}, {3, 3}}) {
      const graph::AltQuery open = oracle.query(s, t, /*seed_upper_bound=*/true);
      const auto pruned =
          graph::k_shortest_paths(g, s, t, 4, nullptr, pruned_ws, open);
      const auto plain = graph::k_shortest_paths(g, s, t, 4, nullptr, plain_ws);
      ASSERT_EQ(pruned.size(), plain.size());
      for (std::size_t i = 0; i < pruned.size(); ++i) {
        expect_same_path(pruned[i], plain[i]);
      }
      const graph::AltQuery closed =
          oracle.query(s, t, /*seed_upper_bound=*/false);
      const auto pruned_m =
          graph::k_shortest_paths(g, s, t, 4, &set.view, pruned_ws, closed);
      const auto plain_m =
          graph::k_shortest_paths(g, s, t, 4, &set.view, plain_ws);
      ASSERT_EQ(pruned_m.size(), plain_m.size());
      for (std::size_t i = 0; i < pruned_m.size(); ++i) {
        expect_same_path(pruned_m[i], plain_m[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batched tier: one heap pass == k standalone passes, bitwise.

TEST(Batched, MultiSourceEqualsStandaloneRuns) {
  graph::SearchWorkspace batch_ws, solo_ws;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(40, 4.0, seed);
    Rng rng(seed * 7);
    const AllowSet set(g, rng);
    // Duplicate source on purpose: layers are independent even then.
    const std::vector<graph::NodeId> sources{0, 13, 7, 13, 29, 1};
    for (const graph::EdgeMask* mask : {(const graph::EdgeMask*)nullptr,
                                        &set.view}) {
      graph::multi_source_dijkstra_into(g, sources, batch_ws, mask);
      const graph::MultiSourceView bank(batch_ws, g, sources.size());
      ASSERT_EQ(bank.num_layers(), sources.size());
      for (std::size_t layer = 0; layer < sources.size(); ++layer) {
        graph::dijkstra_into(g, sources[layer], solo_ws, mask);
        const auto solo = graph::export_tree(solo_ws, g.num_nodes());
        for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
          EXPECT_EQ(bank.reached(layer, v), solo.reached(v));
          EXPECT_EQ(bank.dist(layer, v), solo.dist[v]);
          EXPECT_EQ(bank.parent(layer, v), solo.parent[v]);
          EXPECT_EQ(bank.parent_edge(layer, v), solo.parent_edge[v]);
        }
      }
    }
  }
}

TEST(Batched, MultiTargetEqualsEarlyExitRuns) {
  graph::SearchWorkspace batch_ws, solo_ws;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    graph::Graph g = random_weighted_graph(40, 4.0, seed);
    const graph::NodeId isolated = g.add_node();  // guaranteed unreachable
    Rng rng(seed * 19);
    const AllowSet set(g, rng);
    // Duplicates and the source itself are both legal targets.
    const std::vector<graph::NodeId> targets{5, 22, 5, 0, 31, isolated};
    for (const graph::EdgeMask* mask : {(const graph::EdgeMask*)nullptr,
                                        &set.view}) {
      graph::dijkstra_into_targets(g, 0, targets, batch_ws, mask);
      for (const graph::NodeId t : targets) {
        expect_same_opt_path(graph::extract_path(batch_ws, t),
                             graph::min_cost_path(g, 0, t, solo_ws, mask));
      }
    }
  }
}

TEST(Batched, SteinerMatchesReferenceUnderMasks) {
  graph::SearchWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(24, 3.5, seed);
    Rng rng(seed * 131);
    const AllowSet set(g, rng);
    for (std::size_t k = 1; k <= 5; ++k) {
      std::vector<graph::NodeId> terms;
      for (std::size_t i = 0; i < k; ++i) {
        terms.push_back(static_cast<graph::NodeId>(rng.index(g.num_nodes())));
      }
      const auto flat = graph::steiner_tree(g, terms, &set.view, ws);
      const auto ref = graph::reference::steiner_tree(g, terms, set.filter());
      ASSERT_EQ(flat.has_value(), ref.has_value());
      if (!flat) continue;
      EXPECT_EQ(flat->cost, ref->cost);  // bit-identical, not approximate
      auto fe = flat->edges;
      auto re = ref->edges;
      std::sort(fe.begin(), fe.end());
      std::sort(re.begin(), re.end());
      EXPECT_EQ(fe, re);
    }
  }
}

// ---------------------------------------------------------------------------
// PathOracle-level batching: min_cost_paths == per-target queries, with one
// dijkstra_call for the whole fan-out.

TEST(Batched, PathOracleMinCostPathsMatchesPerTarget) {
  const FlagGuard guard;
  graph::set_flat_search_default(true);
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  ledger.set_cache_enabled(false);
  graph::SearchWorkspace ws;
  core::PathOracle batched(fx->network.topology(), ledger, 1.0, &ws);
  core::PathOracle single(fx->network.topology(), ledger, 1.0);

  const std::vector<graph::NodeId> targets{4, 2, 4, 0, 5};
  const auto got = batched.min_cost_paths(0, targets);
  ASSERT_EQ(got.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    expect_same_opt_path(got[i], single.min_cost_path(0, targets[i]));
  }
  // One batched pass, not |targets| early-exit runs.
  EXPECT_EQ(batched.counters().dijkstra_calls, 1u);
  EXPECT_EQ(single.counters().dijkstra_calls, targets.size());
}

// ---------------------------------------------------------------------------
// Embedder-level differential: oracle-on vs oracle-off, end to end. Mirrors
// the flat-vs-reference harness in test_search_flat.cpp, with the workspace
// attachment as the only difference between the arms.

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_identical(const core::SolveResult& on,
                      const core::SolveResult& off) {
  ASSERT_EQ(on.ok(), off.ok())
      << on.failure_reason << " vs " << off.failure_reason;
  EXPECT_EQ(on.failure_reason, off.failure_reason);
  EXPECT_EQ(on.expanded_sub_solutions, off.expanded_sub_solutions);
  EXPECT_EQ(on.candidate_solutions, off.candidate_solutions);
  if (!on.ok()) return;
  EXPECT_EQ(on.cost, off.cost);  // bit-identical, not approximate
  ASSERT_TRUE(off.solution.has_value());
  EXPECT_EQ(on.solution->placement, off.solution->placement);
  ASSERT_EQ(on.solution->inter_paths.size(), off.solution->inter_paths.size());
  for (std::size_t i = 0; i < on.solution->inter_paths.size(); ++i) {
    expect_same_path(on.solution->inter_paths[i],
                     off.solution->inter_paths[i]);
  }
  ASSERT_EQ(on.solution->inner_paths.size(), off.solution->inner_paths.size());
  for (std::size_t i = 0; i < on.solution->inner_paths.size(); ++i) {
    expect_same_path(on.solution->inner_paths[i],
                     off.solution->inner_paths[i]);
  }
}

core::SolveResult solve_through(const core::Embedder& algo,
                                const core::ModelIndex& index,
                                graph::SearchWorkspace* ws,
                                std::uint64_t rng_seed) {
  graph::set_flat_search_default(true);
  net::CapacityLedger ledger(index.problem().net());
  ledger.set_cache_enabled(false);
  Rng rng(rng_seed);
  return algo.solve(index, ledger, rng, nullptr, ws);
}

struct EmbedderSet {
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  core::ExactEmbedder exact{core::ExactOptions{50'000'000}};
  core::LayeredEmbedder layered{core::LayeredOptions{
      .delay_budget_ms = std::nullopt,
      .delay_model = {},
      .max_work = 50'000'000,
      .max_labels = 2'000'000}};

  [[nodiscard]] std::vector<const core::Embedder*> all() const {
    return {&ranv, &minv, &bbe, &mbbe, &exact, &layered};
  }
};

/// Runs every flat embedder (plus HIER over a stripe partition when the
/// network is large enough) with and without the oracle attached to its
/// workspace; returns the total prune tests the oracle-on arm performed.
std::uint64_t run_oracle_differential(const core::ModelIndex& index,
                                      std::uint64_t seed) {
  const net::Network& network = index.problem().net();
  const graph::DistanceOracle oracle(network.topology());
  std::uint64_t tested = 0;

  const EmbedderSet set;
  std::vector<const core::Embedder*> algos = set.all();
  std::unique_ptr<shard::ShardedSubstrate> substrate;
  std::unique_ptr<shard::HierarchicalEmbedder> hier;
  if (network.num_nodes() >= 6) {
    substrate = std::make_unique<shard::ShardedSubstrate>(
        network, shard::make_partition(network.topology(), 3,
                                       shard::PartitionScheme::kStripe));
    hier = std::make_unique<shard::HierarchicalEmbedder>(*substrate);
    algos.push_back(hier.get());
  }

  for (const core::Embedder* algo : algos) {
    SCOPED_TRACE(algo->name());
    graph::SearchWorkspace on_ws, off_ws;
    on_ws.set_distance_oracle(&oracle);
    const auto on = solve_through(*algo, index, &on_ws, seed);
    const auto off = solve_through(*algo, index, &off_ws, seed);
    expect_identical(on, off);
    EXPECT_EQ(off.path_queries.oracle_tested, 0u);
    tested += on.path_queries.oracle_tested;
  }
  return tested;
}

class OracleCorpusDifferential : public ::testing::TestWithParam<const char*> {
};

TEST_P(OracleCorpusDifferential, OracleOnOffIdentical) {
  const FlagGuard guard;
  const std::string dir = std::string(DAGSFC_CORPUS_DIR) + "/";
  net::Network network =
      net::network_from_text(slurp(dir + GetParam() + std::string(".net.txt")));
  const sfc::SfcFile file =
      sfc::sfc_from_text(slurp(dir + GetParam() + std::string(".sfc.txt")));
  ASSERT_TRUE(file.flow.has_value());

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  (void)run_oracle_differential(index, /*seed=*/1);
}

INSTANTIATE_TEST_SUITE_P(Instances, OracleCorpusDifferential,
                         ::testing::Values("ring12", "leafspine14", "waxman20",
                                           "tightline5"),
                         [](const auto& info) { return info.param; });

TEST(OracleDifferential, TwoHundredRandomInstancesOracleOnOffIdentical) {
  const FlagGuard guard;
  sim::ExperimentConfig cfg;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;

  std::uint64_t total_tested = 0;
  Rng seeder(0xa17a17a17ull);
  for (int i = 0; i < 200; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    total_tested += run_oracle_differential(index, /*seed=*/3000 + i);
    if (::testing::Test::HasFailure()) break;  // one instance is enough
  }
  // Across 200 instances the pruned arm must actually have consulted the
  // oracle — otherwise the differential silently compared off vs off.
  EXPECT_GT(total_tested, 0u);
}

TEST(OracleDifferential, DirtyWorkspaceReuseChangesNothing) {
  const FlagGuard guard;
  auto fx = test::canonical_fixture();
  const graph::DistanceOracle oracle(fx->network.topology());
  const EmbedderSet set;
  graph::SearchWorkspace shared;
  shared.set_distance_oracle(&oracle);
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    for (const core::Embedder* algo : set.all()) {
      SCOPED_TRACE(algo->name());
      const auto reused = solve_through(*algo, *fx->index, &shared, 4);
      graph::SearchWorkspace fresh;
      const auto baseline = solve_through(*algo, *fx->index, &fresh, 4);
      expect_identical(reused, baseline);
    }
  }
}

TEST(OracleDifferential, BorderDistanceSummariesMatchBruteForce) {
  // The kBorderDistance substrate mode feeds region transit prices from the
  // batched multi-source kernel; a per-pair early-exit Dijkstra over the
  // same intra-region subgraph must reproduce them.
  const graph::Graph topo = random_weighted_graph(24, 3.0, 11);
  net::Network network(graph::Graph(topo), net::VnfCatalog(2));
  const auto partition =
      shard::make_partition(network.topology(), 3,
                            shard::PartitionScheme::kStripe);
  const shard::ShardedSubstrate plain(network, partition);
  const shard::ShardedSubstrate summarized(
      network, partition, shard::SummaryMode::kBorderDistance);
  EXPECT_EQ(plain.summary_mode(), shard::SummaryMode::kMeanPrice);
  EXPECT_EQ(summarized.summary_mode(), shard::SummaryMode::kBorderDistance);

  const graph::Graph& g = network.topology();
  graph::SearchWorkspace ws;
  graph::EdgeMaskBuffer intra;
  for (shard::RegionId r = 0; r < 3; ++r) {
    const auto borders = summarized.border_nodes(r);
    if (borders.size() < 2) {
      EXPECT_EQ(summarized.transit_price(r), plain.transit_price(r));
      continue;
    }
    intra.assign(g.num_edges(), false);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& edge = g.edge(e);
      if (partition.region(edge.u) == r && partition.region(edge.v) == r) {
        intra.set(e);
      }
    }
    const graph::EdgeMask mask = intra.view();
    double sum = 0.0;
    std::size_t pairs = 0;
    bool connected = true;
    for (std::size_t i = 0; i < borders.size() && connected; ++i) {
      for (std::size_t j = i + 1; j < borders.size(); ++j) {
        const auto p =
            graph::min_cost_path(g, borders[i], borders[j], ws, &mask);
        if (!p) {
          connected = false;
          break;
        }
        sum += p->cost;
        ++pairs;
      }
    }
    if (connected && pairs > 0) {
      EXPECT_EQ(summarized.transit_price(r), sum / static_cast<double>(pairs));
    } else {
      EXPECT_EQ(summarized.transit_price(r), plain.transit_price(r));
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency: one immutable oracle, many querying threads (TSan target).

TEST(OracleConcurrent, SharedOracleConcurrentQueriesAgree) {
  const graph::Graph g = random_weighted_graph(60, 5.0, 3);
  const graph::DistanceOracle oracle(g);
  ASSERT_TRUE(oracle.active());

  // Single-threaded truth, unpruned.
  std::vector<double> truth(g.num_nodes(), graph::kInfCost);
  {
    graph::SearchWorkspace ws;
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (const auto p = graph::min_cost_path(g, 0, t, ws)) truth[t] = p->cost;
    }
  }

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<char> ok(kThreads, 0);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      graph::SearchWorkspace ws;  // workspaces are per-thread; the oracle
      bool all = true;            // tables are the shared read-only state
      for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
        const graph::AltQuery alt =
            oracle.query(0, t, /*seed_upper_bound=*/true);
        const auto p = graph::min_cost_path(g, 0, t, ws, nullptr, alt);
        all = all && p.has_value() && p->cost == truth[t];
      }
      ok[i] = all ? 1 : 0;
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(ok[i], 1) << "thread " << i;
  }
}

}  // namespace
}  // namespace dagsfc
