#include "core/batch.hpp"

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

/// Line network with a bottleneck VNF: capacity fits exactly two uses.
struct BatchWorld {
  net::Network network;
  sfc::DagSfc small;
  sfc::DagSfc big;

  BatchWorld()
      : network(make_network()),
        small({sfc::Layer{{1}}}),
        big({sfc::Layer{{1}}, sfc::Layer{{2}}}) {}

  static net::Network make_network() {
    test::NetBuilder b(4, 2);
    b.link(0, 1, 1.0, 10.0).link(1, 2, 1.0, 10.0).link(2, 3, 1.0, 10.0);
    b.put(1, 1, 5.0, /*capacity=*/2.0);
    b.put(2, 2, 5.0, /*capacity=*/1.0);
    return b.build();
  }
};

TEST(Batch, ArrivalOrderCommitsSequentially) {
  BatchWorld w;
  const std::vector<BatchRequest> reqs{
      {&w.small, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},  // third exceeds f1 capacity 2
  };
  const MbbeEmbedder mbbe;
  Rng rng(1);
  const BatchResult r =
      embed_batch(w.network, reqs, mbbe, BatchOrder::Arrival, rng);
  EXPECT_EQ(r.items.size(), 3u);
  EXPECT_EQ(r.accepted, 2u);
  EXPECT_FALSE(r.items[2].result.ok());
  EXPECT_NEAR(r.acceptance_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_GT(r.total_cost, 0.0);
}

TEST(Batch, SmallestFirstAdmitsMoreUnderContention) {
  // One big request burns the f2 instance AND one f1 use; three smalls only
  // need f1. Arrival order (big first) strands a small; smallest-first
  // packs both smalls then rejects the big.
  BatchWorld w;
  const std::vector<BatchRequest> reqs{
      {&w.big, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},
  };
  const MbbeEmbedder mbbe;
  Rng rng(2);
  const BatchResult arrival =
      embed_batch(w.network, reqs, mbbe, BatchOrder::Arrival, rng);
  const BatchResult smallest =
      embed_batch(w.network, reqs, mbbe, BatchOrder::SmallestFirst, rng);
  EXPECT_EQ(arrival.accepted, 2u);   // big + one small
  EXPECT_EQ(smallest.accepted, 2u);  // both smalls; big rejected
  // Smallest-first commits the two smalls before the big.
  EXPECT_EQ(smallest.items[0].request_index, 1u);
  EXPECT_EQ(smallest.items[1].request_index, 2u);
  EXPECT_TRUE(smallest.items[0].result.ok());
  EXPECT_TRUE(smallest.items[1].result.ok());
  EXPECT_FALSE(smallest.items[2].result.ok());
}

TEST(Batch, LargestFirstPrioritizesBigRequests) {
  BatchWorld w;
  const std::vector<BatchRequest> reqs{
      {&w.small, Flow{0, 3, 1.0, 1.0}},
      {&w.big, Flow{0, 3, 1.0, 1.0}},
  };
  const MbbeEmbedder mbbe;
  Rng rng(3);
  const BatchResult r =
      embed_batch(w.network, reqs, mbbe, BatchOrder::LargestFirst, rng);
  EXPECT_EQ(r.items[0].request_index, 1u);  // the big one went first
  EXPECT_EQ(r.accepted, 2u);                // both fit here
}

TEST(Batch, CheapestFirstOrdersByProbeCost) {
  // Two requests with very different costs on an uncontended network: the
  // cheap one must be committed first.
  test::NetBuilder b(5, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(2, 3, 1.0).link(3, 4, 1.0);
  b.put(1, 1, 1.0);    // cheap f1
  b.put(3, 2, 90.0);   // expensive f2
  auto network = b.build();
  const sfc::DagSfc cheap({sfc::Layer{{1}}});
  const sfc::DagSfc pricey({sfc::Layer{{2}}});
  const std::vector<BatchRequest> reqs{
      {&pricey, Flow{0, 4, 1.0, 1.0}},
      {&cheap, Flow{0, 4, 1.0, 1.0}},
  };
  const MbbeEmbedder mbbe;
  Rng rng(4);
  const BatchResult r =
      embed_batch(network, reqs, mbbe, BatchOrder::CheapestFirst, rng);
  EXPECT_EQ(r.items[0].request_index, 1u);
  EXPECT_EQ(r.accepted, 2u);
}

TEST(Batch, CheapestFirstPutsUnsolvableLast) {
  BatchWorld w;
  const sfc::DagSfc impossible(
      {sfc::Layer{{2}}, sfc::Layer{{2}}});  // f2 capacity is 1, needs 2
  const std::vector<BatchRequest> reqs{
      {&impossible, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},
  };
  const MbbeEmbedder mbbe;
  Rng rng(5);
  const BatchResult r =
      embed_batch(w.network, reqs, mbbe, BatchOrder::CheapestFirst, rng);
  EXPECT_EQ(r.items[0].request_index, 1u);
  EXPECT_TRUE(r.items[0].result.ok());
  EXPECT_FALSE(r.items[1].result.ok());
}

TEST(Batch, EmptyBatch) {
  BatchWorld w;
  const MbbeEmbedder mbbe;
  Rng rng(6);
  const BatchResult r = embed_batch(w.network, {}, mbbe,
                                    BatchOrder::Arrival, rng);
  EXPECT_TRUE(r.items.empty());
  EXPECT_EQ(r.accepted, 0u);
  EXPECT_DOUBLE_EQ(r.acceptance_ratio(), 0.0);
}

TEST(Batch, NullSfcRejected) {
  BatchWorld w;
  const MbbeEmbedder mbbe;
  Rng rng(7);
  const std::vector<BatchRequest> reqs{{nullptr, Flow{0, 3, 1.0, 1.0}}};
  EXPECT_THROW(
      (void)embed_batch(w.network, reqs, mbbe, BatchOrder::Arrival, rng),
      ContractViolation);
}

TEST(Batch, TotalCostSumsAcceptedOnly) {
  BatchWorld w;
  const std::vector<BatchRequest> reqs{
      {&w.small, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},
      {&w.small, Flow{0, 3, 1.0, 1.0}},
  };
  const MbbeEmbedder mbbe;
  Rng rng(8);
  const BatchResult r =
      embed_batch(w.network, reqs, mbbe, BatchOrder::Arrival, rng);
  double expect = 0.0;
  for (const auto& item : r.items) {
    if (item.result.ok()) expect += item.result.cost;
  }
  EXPECT_DOUBLE_EQ(r.total_cost, expect);
}

}  // namespace
}  // namespace dagsfc::core
