#include "sfc/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dagsfc::sfc {
namespace {

TEST(LayerWidths, PaperRuleOfThree) {
  EXPECT_EQ(layer_widths(1, 3), (std::vector<std::size_t>{1}));
  EXPECT_EQ(layer_widths(3, 3), (std::vector<std::size_t>{3}));
  EXPECT_EQ(layer_widths(5, 3), (std::vector<std::size_t>{3, 2}));
  EXPECT_EQ(layer_widths(9, 3), (std::vector<std::size_t>{3, 3, 3}));
  EXPECT_EQ(layer_widths(10, 3), (std::vector<std::size_t>{3, 3, 3, 1}));
}

TEST(LayerWidths, OtherCaps) {
  EXPECT_EQ(layer_widths(5, 1),
            (std::vector<std::size_t>{1, 1, 1, 1, 1}));
  EXPECT_EQ(layer_widths(5, 10), (std::vector<std::size_t>{5}));
}

TEST(LayerWidths, RejectsZero) {
  EXPECT_THROW((void)layer_widths(0, 3), ContractViolation);
  EXPECT_THROW((void)layer_widths(3, 0), ContractViolation);
}

TEST(RandomDagSfc, SizeAndStructureMatchRequest) {
  Rng rng(1);
  const net::VnfCatalog c(12);
  for (std::size_t size = 1; size <= 9; ++size) {
    RandomSfcOptions opts;
    opts.size = size;
    const DagSfc dag = random_dag_sfc(rng, c, opts);
    EXPECT_EQ(dag.size(), size);
    const auto widths = layer_widths(size, 3);
    ASSERT_EQ(dag.num_layers(), widths.size());
    for (std::size_t l = 0; l < widths.size(); ++l) {
      EXPECT_EQ(dag.layer(l).width(), widths[l]);
    }
  }
}

TEST(RandomDagSfc, TypesAreDistinctAcrossWholeSfc) {
  Rng rng(2);
  const net::VnfCatalog c(12);
  for (int t = 0; t < 20; ++t) {
    RandomSfcOptions opts;
    opts.size = 9;
    const DagSfc dag = random_dag_sfc(rng, c, opts);
    std::set<net::VnfTypeId> seen;
    for (const Layer& l : dag.layers()) {
      for (net::VnfTypeId v : l.vnfs) {
        EXPECT_TRUE(seen.insert(v).second) << "duplicate type " << v;
        EXPECT_TRUE(c.is_regular(v));
      }
    }
  }
}

TEST(RandomDagSfc, SameStructureDifferentVnfsAcrossRuns) {
  Rng rng(3);
  const net::VnfCatalog c(12);
  RandomSfcOptions opts;
  opts.size = 5;
  const DagSfc a = random_dag_sfc(rng, c, opts);
  const DagSfc b = random_dag_sfc(rng, c, opts);
  ASSERT_EQ(a.num_layers(), b.num_layers());
  bool differs = false;
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    ASSERT_EQ(a.layer(l).width(), b.layer(l).width());
    if (a.layer(l).vnfs != b.layer(l).vnfs) differs = true;
  }
  EXPECT_TRUE(differs) << "generator should vary VNFs between runs";
}

TEST(RandomDagSfc, DeterministicForFixedSeed) {
  const net::VnfCatalog c(12);
  RandomSfcOptions opts;
  opts.size = 7;
  Rng r1(42);
  Rng r2(42);
  const DagSfc a = random_dag_sfc(r1, c, opts);
  const DagSfc b = random_dag_sfc(r2, c, opts);
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_EQ(a.layer(l).vnfs, b.layer(l).vnfs);
  }
}

TEST(RandomDagSfc, CatalogTooSmallRejected) {
  Rng rng(4);
  const net::VnfCatalog c(3);
  RandomSfcOptions opts;
  opts.size = 4;
  EXPECT_THROW((void)random_dag_sfc(rng, c, opts), ContractViolation);
}

TEST(RandomDagSfc, ResultValidates) {
  Rng rng(5);
  const net::VnfCatalog c(10);
  RandomSfcOptions opts;
  opts.size = 6;
  const DagSfc dag = random_dag_sfc(rng, c, opts);
  EXPECT_NO_THROW(dag.validate(c));
}

}  // namespace
}  // namespace dagsfc::sfc
