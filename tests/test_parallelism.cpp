#include "sfc/parallelism.hpp"

#include <gtest/gtest.h>

namespace dagsfc::sfc {
namespace {

TEST(Profiles, ReadReadIsParallel) {
  const NfProfile a{to_mask(PacketField::kPayload), 0, false};
  const NfProfile b{to_mask(PacketField::kPayload), 0, false};
  EXPECT_TRUE(profiles_parallelizable(a, b));
}

TEST(Profiles, WriteWriteOnSameFieldConflicts) {
  const NfProfile a{0, to_mask(PacketField::kDstAddr), false};
  const NfProfile b{0, to_mask(PacketField::kDstAddr), false};
  EXPECT_FALSE(profiles_parallelizable(a, b));
}

TEST(Profiles, WriteReadConflictIsSymmetric) {
  const NfProfile writer{0, to_mask(PacketField::kSrcAddr), false};
  const NfProfile reader{to_mask(PacketField::kSrcAddr), 0, false};
  EXPECT_FALSE(profiles_parallelizable(writer, reader));
  EXPECT_FALSE(profiles_parallelizable(reader, writer));
}

TEST(Profiles, DisjointWritesAreParallel) {
  const NfProfile a{0, to_mask(PacketField::kSrcAddr), false};
  const NfProfile b{0, to_mask(PacketField::kPayload), false};
  EXPECT_TRUE(profiles_parallelizable(a, b));
}

TEST(Profiles, TwoDroppersConflict) {
  const NfProfile fw{to_mask(PacketField::kSrcAddr), 0, true};
  const NfProfile ips{to_mask(PacketField::kPayload), 0, true};
  EXPECT_FALSE(profiles_parallelizable(fw, ips));
}

TEST(Profiles, SingleDropperIsFine) {
  const NfProfile fw{to_mask(PacketField::kSrcAddr), 0, true};
  const NfProfile monitor{to_mask(PacketField::kPayload), 0, false};
  EXPECT_TRUE(profiles_parallelizable(fw, monitor));
}

TEST(Profiles, MultiFieldMasksCombine) {
  const NfProfile a{PacketField::kSrcAddr | PacketField::kDstAddr,
                    to_mask(PacketField::kTransportPorts), false};
  const NfProfile b{to_mask(PacketField::kTransportPorts), 0, false};
  EXPECT_FALSE(profiles_parallelizable(a, b));  // a writes what b reads
}

TEST(ProfileOracle, MapsCatalogTypes) {
  const net::VnfCatalog c(2);
  std::vector<NfProfile> profiles(2);
  profiles[0] = {0, to_mask(PacketField::kSrcAddr), false};  // f1 writes src
  profiles[1] = {to_mask(PacketField::kSrcAddr), 0, false};  // f2 reads src
  const ProfileOracle oracle(c, profiles);
  EXPECT_FALSE(oracle.parallel(1, 2));
  EXPECT_EQ(oracle.profile(1).writes, to_mask(PacketField::kSrcAddr));
}

TEST(ProfileOracle, WrongProfileCountRejected) {
  const net::VnfCatalog c(3);
  EXPECT_THROW(ProfileOracle(c, std::vector<NfProfile>(2)),
               ContractViolation);
}

TEST(ProfileOracle, NonRegularTypeRejected) {
  const net::VnfCatalog c(2);
  const ProfileOracle oracle(c, std::vector<NfProfile>(2));
  EXPECT_THROW((void)oracle.parallel(0, 1), ContractViolation);
  EXPECT_THROW((void)oracle.parallel(1, c.merger()), ContractViolation);
}

TEST(MatrixOracle, DefaultsToSequential) {
  const MatrixOracle m(3);
  EXPECT_FALSE(m.parallel(1, 2));
}

TEST(MatrixOracle, SetIsSymmetric) {
  MatrixOracle m(3);
  m.set_parallel(1, 3);
  EXPECT_TRUE(m.parallel(1, 3));
  EXPECT_TRUE(m.parallel(3, 1));
  EXPECT_FALSE(m.parallel(1, 2));
  m.set_parallel(1, 3, false);
  EXPECT_FALSE(m.parallel(1, 3));
}

TEST(MatrixOracle, SelfPairNeverParallel) {
  MatrixOracle m(2);
  EXPECT_FALSE(m.parallel(1, 1));
  EXPECT_THROW(m.set_parallel(2, 2), ContractViolation);
}

TEST(RandomOracle, ExtremeProbabilities) {
  Rng rng(3);
  const RandomOracle never(5, rng, 0.0);
  const RandomOracle always(5, rng, 1.0);
  for (net::VnfTypeId a = 1; a <= 5; ++a) {
    for (net::VnfTypeId b = a + 1; b <= 5; ++b) {
      EXPECT_FALSE(never.parallel(a, b));
      EXPECT_TRUE(always.parallel(a, b));
    }
  }
}

TEST(RandomOracle, FrequencyNearP) {
  Rng rng(5);
  const RandomOracle o(40, rng, 0.538);
  int parallel = 0;
  int total = 0;
  for (net::VnfTypeId a = 1; a <= 40; ++a) {
    for (net::VnfTypeId b = a + 1; b <= 40; ++b) {
      ++total;
      parallel += o.parallel(a, b) ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(parallel) / total, 0.538, 0.06);
}

TEST(RandomOracle, SymmetricAndStable) {
  Rng rng(7);
  const RandomOracle o(10, rng, 0.5);
  for (net::VnfTypeId a = 1; a <= 10; ++a) {
    for (net::VnfTypeId b = 1; b <= 10; ++b) {
      if (a == b) continue;
      EXPECT_EQ(o.parallel(a, b), o.parallel(b, a));
      EXPECT_EQ(o.parallel(a, b), o.parallel(a, b));  // no re-randomizing
    }
  }
}

}  // namespace
}  // namespace dagsfc::sfc
