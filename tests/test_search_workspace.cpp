/// SearchWorkspace unit tests: the generation-stamp machinery (including
/// the 2^32 wrap-around), the heap's (key, node) pop order — the
/// property the bit-identity argument rests on — and the headline
/// allocation contract: a warm dijkstra_into() on a reused workspace
/// performs ZERO heap allocations, asserted through a counting global
/// operator new.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <queue>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/generator.hpp"
#include "graph/reference.hpp"
#include "graph/workspace.hpp"

namespace {
/// Counts every path into the global allocator. The counter is only read
/// as a delta around single-threaded regions, so other allocations (gtest
/// internals, etc.) between tests don't matter.
std::atomic<std::size_t> g_news{0};

void* counted_alloc(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dagsfc {
namespace {

graph::Graph random_weighted_graph(std::size_t n, double degree,
                                   std::uint64_t seed) {
  Rng rng(seed);
  graph::RandomGraphOptions opts;
  opts.num_nodes = n;
  opts.average_degree = degree;
  graph::Graph g = random_connected_graph(rng, opts);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(1.0, 10.0));
  }
  return g;
}

// ---------------------------------------------------------------------------
// The acceptance criterion: zero heap allocations per warm Dijkstra.

TEST(WorkspaceAllocations, WarmDijkstraIsAllocationFree) {
  const graph::Graph g = random_weighted_graph(200, 6.0, 1);
  (void)g.csr();  // materialize the packed view outside the measured region
  graph::SearchWorkspace ws;
  graph::EdgeMaskBuffer mask;
  mask.assign(g.num_edges(), true);
  mask.clear(0);
  const graph::EdgeMask view = mask.view();

  // Warm-up: first call may size the workspace arrays and the heap buffer.
  graph::dijkstra_into(g, 0, ws);
  graph::dijkstra_into(g, 1, ws, &view);

  const std::size_t before = g_news.load();
  for (graph::NodeId s = 0; s < 64; ++s) {
    graph::dijkstra_into(g, s % static_cast<graph::NodeId>(g.num_nodes()), ws);
    graph::dijkstra_into(g, s % static_cast<graph::NodeId>(g.num_nodes()), ws,
                         &view);
    graph::dijkstra_into(g, 0, ws, nullptr, /*stop_at=*/s);
  }
  EXPECT_EQ(g_news.load(), before)
      << "a warm dijkstra_into call touched the heap";
}

TEST(WorkspaceAllocations, WorkspaceSurvivesGraphGrowthByReallocatingOnce) {
  graph::Graph g = random_weighted_graph(50, 4.0, 2);
  graph::SearchWorkspace ws;
  graph::dijkstra_into(g, 0, ws);
  // Grow the graph: the next search may allocate (arrays resize)…
  const graph::NodeId n = g.add_node();
  g.add_edge(n, 0, 1.0);
  graph::dijkstra_into(g, n, ws);
  EXPECT_EQ(ws.dist(0), 1.0);
  // …but only once: further warm calls are allocation-free again.
  const std::size_t before = g_news.load();
  for (int i = 0; i < 16; ++i) graph::dijkstra_into(g, 0, ws);
  EXPECT_EQ(g_news.load(), before);
}

// ---------------------------------------------------------------------------
// Generation stamps.

TEST(WorkspaceStamps, StaleSlotsFromEarlierSearchesAreInvisible) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  graph::SearchWorkspace ws;
  graph::dijkstra_into(g, 0, ws);
  EXPECT_EQ(ws.dist(3), 3.0);

  // Early-exit search from the far end: nodes past the stop are unstamped,
  // so the old generation's values must not bleed through.
  graph::dijkstra_into(g, 3, ws, nullptr, /*stop_at=*/2);
  EXPECT_EQ(ws.dist(3), 0.0);
  EXPECT_EQ(ws.dist(2), 1.0);
  EXPECT_EQ(ws.dist(0), graph::kInfCost);  // not reached this generation
  EXPECT_EQ(ws.parent(0), graph::kInvalidNode);
  EXPECT_FALSE(ws.reached(0));
}

TEST(WorkspaceStamps, GenerationWraparoundResetsCleanly) {
  const graph::Graph g = random_weighted_graph(30, 4.0, 3);
  graph::SearchWorkspace ws;
  // Stamp every node at a pre-wrap generation…
  graph::dijkstra_into(g, 0, ws);
  const auto want = graph::reference::dijkstra(g, 5);
  // …then force the counter to the wrap point. prepare() must zero the
  // stamp array instead of letting old stamps alias generation 1, 2, …
  ws.debug_set_generation(std::numeric_limits<std::uint32_t>::max());
  graph::dijkstra_into(g, 5, ws);
  EXPECT_EQ(ws.generation(), 1u);
  const auto got = graph::export_tree(ws, g.num_nodes());
  EXPECT_EQ(want.dist, got.dist);
  EXPECT_EQ(want.parent, got.parent);
  // And the generations right after the wrap stay self-consistent.
  for (graph::NodeId s = 0; s < 5; ++s) {
    graph::dijkstra_into(g, s, ws);
    const auto ref = graph::reference::dijkstra(g, s);
    EXPECT_EQ(ref.dist, graph::export_tree(ws, g.num_nodes()).dist);
  }
}

TEST(WorkspaceStamps, BfsAndDijkstraStampsAreIndependent) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  graph::SearchWorkspace ws;
  graph::dijkstra_into(g, 0, ws);
  ws.bfs_prepare(g);
  ws.bfs_mark(2, graph::kInvalidNode);
  // The BFS marks don't disturb the Dijkstra view and vice versa.
  EXPECT_EQ(ws.dist(2), 2.0);
  EXPECT_TRUE(ws.bfs_seen(2));
  EXPECT_FALSE(ws.bfs_seen(0));
  graph::dijkstra_into(g, 2, ws);
  EXPECT_TRUE(ws.bfs_seen(2));  // still marked; separate generation space
  EXPECT_EQ(ws.dist(0), 2.0);
}

// ---------------------------------------------------------------------------
// The workspace heap (bottom-up binary sift over bit-cast integer keys):
// pops strictly in (key, node) order — the exact order
// std::priority_queue<pair<double, NodeId>, greater<>> pops, which is what
// makes flat search bit-identical to the seed. The layout and the key
// encoding are free to change; this pop order is the contract.

TEST(WorkspaceHeap, PopsInKeyThenNodeOrder) {
  graph::Graph g(1);
  graph::SearchWorkspace ws;
  ws.prepare(g);

  Rng rng(99);
  std::vector<graph::SearchWorkspace::HeapItem> items;
  for (int i = 0; i < 500; ++i) {
    // Coarse keys so ties on key (node tie-break) are common.
    items.push_back({static_cast<double>(rng.index(20)),
                     static_cast<graph::NodeId>(rng.index(50))});
  }
  ws.heap_clear();
  for (const auto& it : items) ws.heap_push(it.key, it.node);
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    return a.key != b.key ? a.key < b.key : a.node < b.node;
  });
  for (const auto& want : items) {
    ASSERT_FALSE(ws.heap_empty());
    const auto got = ws.heap_pop();
    EXPECT_EQ(want.key, got.key);
    EXPECT_EQ(want.node, got.node);
  }
  EXPECT_TRUE(ws.heap_empty());
}

TEST(WorkspaceHeap, InterleavedPushPopMatchesPriorityQueue) {
  graph::Graph g(1);
  graph::SearchWorkspace ws;
  ws.prepare(g);
  std::priority_queue<std::pair<double, graph::NodeId>,
                      std::vector<std::pair<double, graph::NodeId>>,
                      std::greater<>>
      pq;
  Rng rng(7);
  ws.heap_clear();
  for (int round = 0; round < 2000; ++round) {
    if (pq.empty() || rng.index(3) != 0) {
      const auto key = static_cast<double>(rng.index(10));
      const auto node = static_cast<graph::NodeId>(rng.index(30));
      ws.heap_push(key, node);
      pq.emplace(key, node);
    } else {
      const auto [want_key, want_node] = pq.top();
      pq.pop();
      const auto got = ws.heap_pop();
      ASSERT_EQ(want_key, got.key);
      ASSERT_EQ(want_node, got.node);
    }
  }
  while (!pq.empty()) {
    const auto [want_key, want_node] = pq.top();
    pq.pop();
    const auto got = ws.heap_pop();
    ASSERT_EQ(want_key, got.key);
    ASSERT_EQ(want_node, got.node);
  }
  EXPECT_TRUE(ws.heap_empty());
}

}  // namespace
}  // namespace dagsfc
