#include <gtest/gtest.h>

#include <thread>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace dagsfc {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay silent on info/debug unless the user opts in.
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::Warn));
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(level));
  }
}

TEST(Log, MacroEvaluatesStreamLazily) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DAGSFC_DEBUG("value: " << expensive());
  EXPECT_EQ(evaluations, 0) << "suppressed levels must not evaluate args";
  set_log_level(LogLevel::Debug);
  DAGSFC_DEBUG("value: " << expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, MacroCompilesForAllLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);  // keep the test output clean
  DAGSFC_DEBUG("d" << 1);
  DAGSFC_INFO("i" << 2);
  DAGSFC_WARN("w" << 3);
  DAGSFC_ERROR("e" << 4);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.elapsed_seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(t.elapsed_ms(), t.elapsed_seconds() * 1e3,
              t.elapsed_ms() * 0.5);
}

TEST(Timer, ResetRestartsTheClock) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), 0.015);
}

TEST(Timer, Monotonic) {
  WallTimer t;
  double prev = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double now = t.elapsed_seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace dagsfc
