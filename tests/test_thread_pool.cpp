#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dagsfc {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

// ---- stress ---------------------------------------------------------------

TEST(ThreadPoolStress, ThousandsOfTinyTasks) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  constexpr long kTasks = 5000;
  futures.reserve(kTasks);
  for (long i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolStress, ManyExceptionsEachReachTheirOwnFuture) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 3 == 0) throw std::runtime_error("task " + std::to_string(i));
      return i;
    }));
  }
  int thrown = 0;
  for (int i = 0; i < 500; ++i) {
    try {
      EXPECT_EQ(futures[i].get(), i);
    } catch (const std::runtime_error& e) {
      ++thrown;
      EXPECT_EQ(std::string(e.what()), "task " + std::to_string(i));
    }
  }
  EXPECT_EQ(thrown, 167);  // ⌈500/3⌉ multiples of 3 below 500
}

TEST(ThreadPoolStress, ExceptionDoesNotKillTheWorker) {
  ThreadPool pool(1);  // a single worker must survive every throw
  for (int round = 0; round < 50; ++round) {
    auto bad = pool.submit([]() -> int { throw std::logic_error("boom"); });
    EXPECT_THROW(bad.get(), std::logic_error);
    auto good = pool.submit([round] { return round; });
    EXPECT_EQ(good.get(), round);
  }
}

TEST(ThreadPoolStress, DestructionWithDeepQueueRunsEverything) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    // Two slow tasks occupy both workers while 2000 more pile up behind
    // them; the destructor must drain the backlog, not drop it.
    for (int i = 0; i < 2; ++i) {
      (void)pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ++done;
      });
    }
    for (int i = 0; i < 2000; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // ~ThreadPool joins here
  EXPECT_EQ(done.load(), 2002);
}

TEST(ThreadPoolStress, SubmitFromWithinATask) {
  ThreadPool pool(4);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;
  });
  // Needs ≥ 2 workers: the outer task blocks on the inner one's future.
  EXPECT_EQ(outer.get(), 8);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(300);
  parallel_for(pool, visits.size(),
               [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 10,
                   [](std::size_t i) {
                     if (i == 3) throw std::invalid_argument("bad index");
                   }),
      std::invalid_argument);
}

TEST(ParallelFor, OtherTasksStillRunAfterThrow) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  try {
    parallel_for(pool, 20, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      ++counter;
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(counter.load(), 19);  // failure does not cancel siblings
}

TEST(ParallelFor, ResultsMatchSequentialSum) {
  ThreadPool pool(3);
  std::vector<long> out(500, 0);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<long>(i) * 2; });
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 499L * 500L);  // 2 * Σ i = n(n-1)
}

}  // namespace
}  // namespace dagsfc
