/// Metamorphic tests of the cost model (objective (1) with the multicast
/// discount of formula (9)). Each property transforms an instance in a way
/// whose effect on the objective is known analytically, solves both sides,
/// and checks the relation — with every traced solve additionally required
/// to reconstruct its own reported cost bitwise from the per-term Cost
/// events:
///   (a) duplicating a parallel VNF (a clone type deployed identically)
///       never decreases inter-layer multicast sharing;
///   (b) scaling all prices by k = 2 scales the total cost by exactly k
///       (powers of two commute with IEEE rounding, so bitwise);
///   (c) permuting the VNFs inside a parallel set leaves the MBBE cost
///       unchanged.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/delay.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/generator.hpp"
#include "net/network.hpp"
#include "sim/config.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace dagsfc {
namespace {

using core::EmbeddingTrace;
using core::SolveResult;

/// Near-equality tolerance for cross-solve cost comparisons: summation
/// order may differ between the two solves, so allow a few ulps.
double tol(double reference) { return 1e-9 * (1.0 + std::abs(reference)); }

/// Traced solve against nominal capacities; always checks the bitwise
/// trace-reconstruction invariant.
SolveResult solve_checked(const core::Embedder& algo,
                          const core::ModelIndex& index, std::uint64_t seed,
                          EmbeddingTrace* trace_out = nullptr) {
  Rng rng(seed);
  EmbeddingTrace trace;
  const SolveResult r = algo.solve_fresh(index, rng, &trace);
  if (r.ok()) {
    EXPECT_EQ(trace.reconstructed_cost(), r.cost)
        << algo.name() << ": trace cost terms must reproduce the objective";
  }
  if (trace_out != nullptr) *trace_out = std::move(trace);
  return r;
}

// ---------------------------------------------------------------------------
// (b) price scaling
// ---------------------------------------------------------------------------

void scale_all_prices(net::Network& net, double k) {
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    net.set_link_price(e, k * net.link_price(e));
  }
  for (net::InstanceId id = 0; id < net.num_instances(); ++id) {
    net.set_instance_price(id, k * net.instance(id).price);
  }
}

struct EmbedderSet {
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  core::ExactEmbedder exact{core::ExactOptions{50'000'000}};
  core::LayeredEmbedder layered{core::LayeredOptions{
      .delay_budget_ms = std::nullopt,
      .delay_model = {},
      .max_work = 50'000'000,
      .max_labels = 2'000'000}};

  [[nodiscard]] std::vector<const core::Embedder*> all() const {
    return {&ranv, &minv, &bbe, &mbbe, &exact, &layered};
  }
};

/// Doubling every price must scale the objective bitwise: every term is
/// uses · price · z, multiplication by 2 is exact, and scaling by a power
/// of two commutes with every intermediate rounding of the sum. It also
/// preserves every cost comparison, so all algorithms (given the same RNG
/// stream) make identical decisions.
void expect_scale_invariance(const core::ModelIndex& base,
                             const core::ModelIndex& scaled,
                             std::uint64_t solve_seed) {
  const EmbedderSet set;
  for (const core::Embedder* algo : set.all()) {
    const SolveResult b = solve_checked(*algo, base, solve_seed);
    const SolveResult s = solve_checked(*algo, scaled, solve_seed);
    ASSERT_EQ(b.ok(), s.ok()) << algo->name();
    if (!b.ok()) continue;
    EXPECT_EQ(s.cost, 2.0 * b.cost)
        << algo->name() << ": doubled prices must double the cost bitwise";
    EXPECT_EQ(b.solution->placement, s.solution->placement) << algo->name();
  }
}

TEST(PriceScaling, CanonicalInstanceScalesBitwise) {
  const auto base = test::canonical_fixture();
  const auto scaled = test::canonical_fixture();
  scale_all_prices(scaled->network, 2.0);
  expect_scale_invariance(*base->index, *scaled->index, 0x5ca1e);
}

sim::ExperimentConfig small_config(std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;
  cfg.max_layer_width = 3;
  cfg.trials = 1;
  cfg.seed = seed;
  return cfg;
}

/// Regenerates the identical random scenario twice (the generator is a
/// deterministic function of the RNG stream) and scales the second copy.
TEST(PriceScaling, RandomInstancesScaleBitwise) {
  for (std::uint64_t seed : {0x11auLL, 0x22buLL, 0x33cuLL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const sim::ExperimentConfig cfg = small_config(seed);
    Rng rng_a(seed);
    sim::Scenario a = make_scenario(rng_a, cfg);
    const sfc::DagSfc dag_a = make_sfc(rng_a, a.network.catalog(), cfg);
    Rng rng_b(seed);
    sim::Scenario b = make_scenario(rng_b, cfg);
    const sfc::DagSfc dag_b = make_sfc(rng_b, b.network.catalog(), cfg);
    scale_all_prices(b.network, 2.0);

    core::EmbeddingProblem pa;
    pa.network = &a.network;
    pa.sfc = &dag_a;
    pa.flow = core::Flow{a.source, a.destination, cfg.flow_rate, cfg.flow_size};
    const core::ModelIndex ia(pa);
    core::EmbeddingProblem pb;
    pb.network = &b.network;
    pb.sfc = &dag_b;
    pb.flow = core::Flow{b.source, b.destination, cfg.flow_rate, cfg.flow_size};
    const core::ModelIndex ib(pb);

    expect_scale_invariance(ia, ib, seed ^ 0xfeed);
  }
}

// ---------------------------------------------------------------------------
// (c) permutation within a parallel set
// ---------------------------------------------------------------------------

/// The canonical 6-node instance with the parallel layer's VNF order chosen
/// by the caller.
std::unique_ptr<test::Fixture> canonical_with_order(
    std::vector<net::VnfTypeId> parallel) {
  test::NetBuilder b(6, 3);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(2, 3, 1.0).link(3, 4, 1.0);
  b.link(1, 5, 1.0).link(5, 3, 1.0);
  b.put(1, 1, 10.0);
  b.put(2, 2, 12.0).put(5, 2, 8.0);
  b.put(2, 3, 9.0).put(3, 3, 7.0);
  b.put(3, b.merger(), 5.0).put(5, b.merger(), 6.0);
  sfc::DagSfc dag({sfc::Layer{{1}}, sfc::Layer{std::move(parallel)}});
  return test::make_fixture(b.build(), std::move(dag),
                            core::Flow{0, 4, 1.0, 1.0});
}

TEST(ParallelPermutation, CanonicalMbbeCostUnchanged) {
  const auto fwd = canonical_with_order({2, 3});
  const auto rev = canonical_with_order({3, 2});
  const core::MbbeEmbedder mbbe;
  const core::ExactEmbedder exact;
  const SolveResult mf = solve_checked(mbbe, *fwd->index, 1);
  const SolveResult mr = solve_checked(mbbe, *rev->index, 1);
  ASSERT_TRUE(mf.ok());
  ASSERT_TRUE(mr.ok());
  EXPECT_NEAR(mf.cost, mr.cost, tol(mf.cost));
  // The exact optimum is order-invariant too, and bounds the heuristic.
  const SolveResult ef = solve_checked(exact, *fwd->index, 1);
  const SolveResult er = solve_checked(exact, *rev->index, 1);
  ASSERT_TRUE(ef.ok());
  ASSERT_TRUE(er.ok());
  EXPECT_NEAR(ef.cost, er.cost, tol(ef.cost));
  EXPECT_GE(mf.cost, ef.cost - tol(ef.cost));
}

TEST(ParallelPermutation, RandomInstancesMbbeCostUnchanged) {
  std::size_t exercised = 0;
  for (std::uint64_t seed : {0x9a1uLL, 0x9b2uLL, 0x9c3uLL, 0x9d4uLL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const sim::ExperimentConfig cfg = small_config(seed);
    Rng rng(seed);
    const sim::Scenario sc = make_scenario(rng, cfg);
    const sfc::DagSfc dag = make_sfc(rng, sc.network.catalog(), cfg);

    // Reverse the first parallel layer; skip chains without one.
    std::vector<sfc::Layer> layers = dag.layers();
    auto parallel = std::find_if(layers.begin(), layers.end(),
                                 [](const sfc::Layer& l) {
                                   return l.width() > 1;
                                 });
    if (parallel == layers.end()) continue;
    std::reverse(parallel->vnfs.begin(), parallel->vnfs.end());
    const sfc::DagSfc permuted(std::move(layers));

    core::EmbeddingProblem pf;
    pf.network = &sc.network;
    pf.sfc = &dag;
    pf.flow =
        core::Flow{sc.source, sc.destination, cfg.flow_rate, cfg.flow_size};
    const core::ModelIndex fwd(pf);
    core::EmbeddingProblem pp = pf;
    pp.sfc = &permuted;
    const core::ModelIndex rev(pp);

    const core::MbbeEmbedder mbbe;
    const SolveResult rf = solve_checked(mbbe, fwd, seed);
    const SolveResult rr = solve_checked(mbbe, rev, seed);
    ASSERT_EQ(rf.ok(), rr.ok());
    if (!rf.ok()) continue;
    EXPECT_NEAR(rf.cost, rr.cost, tol(rf.cost));
    ++exercised;
  }
  EXPECT_GT(exercised, 0u) << "no seed produced a solvable parallel layer";
}

// ---------------------------------------------------------------------------
// (a) duplicating a parallel VNF never decreases multicast sharing
// ---------------------------------------------------------------------------

/// An instance pair sharing one network: the base DAG [1] -> [2 | 3] and a
/// widened DAG [1] -> [2 | 3 | 4], where type 4 is a byte-identical clone
/// of type 3 (deployed on the same nodes, same prices and capacities).
struct DupCase {
  net::Network network;
  sfc::DagSfc base_dag;
  sfc::DagSfc dup_dag;
  core::EmbeddingProblem base_problem;
  core::EmbeddingProblem dup_problem;
  std::unique_ptr<core::ModelIndex> base_index;
  std::unique_ptr<core::ModelIndex> dup_index;

  DupCase(net::Network n, core::Flow flow)
      : network(std::move(n)),
        base_dag({sfc::Layer{{1}}, sfc::Layer{{2, 3}}}),
        dup_dag({sfc::Layer{{1}}, sfc::Layer{{2, 3, 4}}}) {
    base_problem.network = &network;
    base_problem.sfc = &base_dag;
    base_problem.flow = flow;
    dup_problem = base_problem;
    dup_problem.sfc = &dup_dag;
    base_index = std::make_unique<core::ModelIndex>(base_problem);
    dup_index = std::make_unique<core::ModelIndex>(dup_problem);
  }
};

constexpr net::VnfTypeId kOrig = 3;
constexpr net::VnfTypeId kClone = 4;

/// Clones every type-3 deployment as type 4 — the "duplicate VNF".
void clone_deployments(net::Network& net) {
  const std::vector<graph::NodeId> hosts = net.nodes_with(kOrig);
  for (const graph::NodeId v : hosts) {
    const auto id = net.find_instance(v, kOrig);
    ASSERT_TRUE(id.has_value());
    (void)net.deploy(v, kClone, net.instance(*id).price,
                     net.instance(*id).capacity);
  }
}

std::unique_ptr<DupCase> random_dup_case(std::uint64_t seed) {
  Rng rng(seed);
  graph::RandomGraphOptions gopts;
  gopts.num_nodes = 16;
  gopts.average_degree = 3.0;
  net::Network net(graph::random_connected_graph(rng, gopts),
                   net::VnfCatalog(4));
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    net.set_link_price(e, rng.uniform_real(1.0, 3.0));
  }
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    for (net::VnfTypeId t = 1; t <= 3; ++t) {
      if (rng.uniform_real(0.0, 1.0) < 0.6) {
        (void)net.deploy(v, t, rng.uniform_real(5.0, 15.0), 100.0);
      }
    }
    if (rng.uniform_real(0.0, 1.0) < 0.4) {
      (void)net.deploy(v, net.catalog().merger(), rng.uniform_real(3.0, 8.0),
                       100.0);
    }
  }
  for (net::VnfTypeId t = 1; t <= 3; ++t) {
    if (net.nodes_with(t).empty()) {
      (void)net.deploy(rng.index(net.num_nodes()), t,
                       rng.uniform_real(5.0, 15.0), 100.0);
    }
  }
  if (net.nodes_with(net.catalog().merger()).empty()) {
    (void)net.deploy(rng.index(net.num_nodes()), net.catalog().merger(),
                     rng.uniform_real(3.0, 8.0), 100.0);
  }
  clone_deployments(net);
  const auto src = static_cast<graph::NodeId>(rng.index(net.num_nodes()));
  auto dst = static_cast<graph::NodeId>(rng.index(net.num_nodes()));
  while (dst == src) dst = static_cast<graph::NodeId>(rng.index(net.num_nodes()));
  return std::make_unique<DupCase>(std::move(net),
                                   core::Flow{src, dst, 1.0, 1.0});
}

/// Maps each slot of the widened index to the base slot it mirrors: same
/// layer + same type, with the clone type standing in for the original.
std::vector<core::SlotId> map_slots(const core::ModelIndex& dup,
                                    const core::ModelIndex& base) {
  std::vector<core::SlotId> out(dup.num_slots(), core::kInvalidSlot);
  for (core::SlotId s = 0; s < dup.num_slots(); ++s) {
    const std::uint32_t l = dup.slot_layer(s);
    if (dup.is_merger_slot(s)) {
      out[s] = base.merger_slot(l);
      continue;
    }
    net::VnfTypeId want = dup.slot_type(s);
    if (want == kClone) want = kOrig;
    for (const core::SlotId b : base.layer_slots(l)) {
      if (!base.is_merger_slot(b) && base.slot_type(b) == want) {
        out[s] = b;
        break;
      }
    }
    EXPECT_NE(out[s], core::kInvalidSlot);
  }
  return out;
}

const graph::Path& lookup_path(const std::vector<core::MetaPathDesc>& descs,
                               const std::vector<graph::Path>& paths,
                               std::uint32_t layer, core::SlotRef from,
                               core::SlotRef to) {
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (descs[i].layer == layer && descs[i].from == from &&
        descs[i].to == to) {
      return paths[i];
    }
  }
  ADD_FAILURE() << "no base meta-path matches layer " << layer;
  static const graph::Path kEmpty;
  return kEmpty;
}

/// Extends a base solution to the widened index: the clone slot reuses the
/// original's node, and every clone meta-path copies the original's
/// real-path.
core::EmbeddingSolution extend_solution(
    const core::EmbeddingSolution& base_sol, const core::ModelIndex& base,
    const core::ModelIndex& dup, const std::vector<core::SlotId>& dup_to_base) {
  const auto map_ref = [&](core::SlotRef r) {
    if (r.kind == core::SlotRef::Kind::Slot) {
      return core::SlotRef::of(dup_to_base[r.slot]);
    }
    return r;
  };
  core::EmbeddingSolution out;
  out.placement.resize(dup.num_slots());
  for (core::SlotId s = 0; s < dup.num_slots(); ++s) {
    out.placement[s] = base_sol.placement[dup_to_base[s]];
  }
  for (const core::MetaPathDesc& d : dup.inter_paths()) {
    out.inter_paths.push_back(lookup_path(base.inter_paths(),
                                          base_sol.inter_paths, d.layer,
                                          map_ref(d.from), map_ref(d.to)));
  }
  for (const core::MetaPathDesc& d : dup.inner_paths()) {
    out.inner_paths.push_back(lookup_path(base.inner_paths(),
                                          base_sol.inner_paths, d.layer,
                                          map_ref(d.from), map_ref(d.to)));
  }
  return out;
}

/// Total link charges saved by the formula (9) multicast discount.
std::uint64_t sharing_of(const std::vector<core::Evaluator::CostTerm>& terms) {
  std::uint64_t saved = 0;
  for (const auto& t : terms) {
    if (!t.vnf) saved += t.raw_uses - t.uses;
  }
  return saved;
}

void check_duplication_case(const DupCase& c, std::uint64_t solve_seed) {
  const core::MbbeEmbedder mbbe;
  EmbeddingTrace base_trace;
  const SolveResult base =
      solve_checked(mbbe, *c.base_index, solve_seed, &base_trace);
  if (!base.ok()) return;  // callers count exercised instances

  const std::vector<core::SlotId> d2b = map_slots(*c.dup_index, *c.base_index);
  const core::EmbeddingSolution dup_sol =
      extend_solution(*base.solution, *c.base_index, *c.dup_index, d2b);
  const core::Evaluator base_eval(*c.base_index);
  const core::Evaluator dup_eval(*c.dup_index);
  ASSERT_TRUE(dup_eval.validate(dup_sol).empty());

  const auto base_terms = base_eval.cost_terms(*base.solution);
  const auto dup_terms = dup_eval.cost_terms(dup_sol);
  const std::uint64_t base_sharing = sharing_of(base_terms);
  const std::uint64_t dup_sharing = sharing_of(dup_terms);

  // The traced solve's Cost events agree with the evaluator's sharing.
  EXPECT_EQ(base_trace.multicast_sharing(), base_sharing);
  EXPECT_EQ(base_trace.counts().multicast_shared_uses, base_sharing);

  // Locate the clone slot and the real-paths its meta-paths copied.
  core::SlotId clone_slot = core::kInvalidSlot;
  for (core::SlotId s = 0; s < c.dup_index->num_slots(); ++s) {
    if (!c.dup_index->is_merger_slot(s) &&
        c.dup_index->slot_type(s) == kClone) {
      clone_slot = s;
    }
  }
  ASSERT_NE(clone_slot, core::kInvalidSlot);
  const graph::Path* clone_inter = nullptr;
  const graph::Path* clone_inner = nullptr;
  const auto& inter_descs = c.dup_index->inter_paths();
  for (std::size_t i = 0; i < inter_descs.size(); ++i) {
    if (inter_descs[i].to == core::SlotRef::of(clone_slot)) {
      clone_inter = &dup_sol.inter_paths[i];
    }
  }
  const auto& inner_descs = c.dup_index->inner_paths();
  for (std::size_t i = 0; i < inner_descs.size(); ++i) {
    if (inner_descs[i].from == core::SlotRef::of(clone_slot)) {
      clone_inner = &dup_sol.inner_paths[i];
    }
  }
  ASSERT_NE(clone_inter, nullptr);
  ASSERT_NE(clone_inner, nullptr);

  // The copied inter-layer path rides entirely on links its original
  // already pays for, so each of its edges is one more saved charge; the
  // inner-layer copy charges independently (formula (10)) and saves
  // nothing. Hence sharing grows by exactly the inter copy's length — and
  // in particular never decreases.
  EXPECT_EQ(dup_sharing, base_sharing + clone_inter->length());
  EXPECT_GE(dup_sharing, base_sharing);

  // Cost grows by exactly the clone rental plus its inner-layer links.
  const net::Network& net = c.network;
  const double z = c.base_problem.flow.size;
  const graph::NodeId clone_node = dup_sol.placement[clone_slot];
  const auto clone_id = net.find_instance(clone_node, kClone);
  ASSERT_TRUE(clone_id.has_value());
  double delta = net.instance(*clone_id).price * z;
  for (const graph::EdgeId e : clone_inner->edges) {
    delta += net.link_price(e) * z;
  }
  const double base_cost = base_eval.cost(*base.solution);
  const double dup_cost = dup_eval.cost(dup_sol);
  EXPECT_EQ(base_cost, base.cost);
  EXPECT_NEAR(dup_cost, base_cost + delta, tol(dup_cost));

  // Solving the widened instance directly also reconstructs bitwise
  // (checked inside solve_checked).
  (void)solve_checked(mbbe, *c.dup_index, solve_seed);
}

TEST(VnfDuplication, CanonicalSharingNeverDecreases) {
  test::NetBuilder b(6, 4);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(2, 3, 1.0).link(3, 4, 1.0);
  b.link(1, 5, 1.0).link(5, 3, 1.0);
  b.put(1, 1, 10.0);
  b.put(2, 2, 12.0).put(5, 2, 8.0);
  b.put(2, 3, 9.0).put(3, 3, 7.0);
  b.put(2, 4, 9.0).put(3, 4, 7.0);  // clone of type 3
  b.put(3, b.merger(), 5.0).put(5, b.merger(), 6.0);
  auto c = std::make_unique<DupCase>(b.build(), core::Flow{0, 4, 1.0, 1.0});
  check_duplication_case(*c, 0xd0d0);
}

TEST(VnfDuplication, RandomSharingNeverDecreases) {
  std::size_t exercised = 0;
  for (std::uint64_t seed : {0x41uLL, 0x42uLL, 0x43uLL, 0x44uLL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto c = random_dup_case(seed);
    const core::MbbeEmbedder mbbe;
    Rng probe(seed);
    if (!mbbe.solve_fresh(*c->base_index, probe).ok()) continue;
    check_duplication_case(*c, seed ^ 0xd0d0);
    ++exercised;
  }
  EXPECT_GT(exercised, 0u) << "no random seed produced a solvable base case";
}

// ---------------------------------------------------------------------------
// (d) delay budgets on the layered solver
// ---------------------------------------------------------------------------

/// Tightening a delay budget can only shrink the feasible set, so the
/// optimal cost is monotonically non-increasing in the budget: for budgets
/// b1 >= b2, cost(b1) <= cost(b2), and a solve that succeeds under b2 must
/// succeed under b1.
TEST(DelayBudget, TighteningNeverDecreasesCost) {
  const auto budgets = {64.0, 16.0, 8.0, 6.0, 5.0, 4.5};

  for (std::uint64_t seed : {0x91uLL, 0x92uLL, 0x93uLL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const sim::ExperimentConfig cfg = small_config(seed);
    Rng gen(cfg.seed);
    const sim::Scenario scenario = sim::make_scenario(gen, cfg);
    const sfc::DagSfc dag = sim::make_sfc(gen, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);

    double prev_cost = 0.0;
    bool prev_ok = false;
    bool any_ok = false;
    for (const double budget : budgets) {
      SCOPED_TRACE("budget " + std::to_string(budget));
      core::LayeredOptions opts;
      opts.delay_budget_ms = budget;
      const core::LayeredEmbedder layered{opts};
      const auto r = solve_checked(layered, index, seed);
      // Budgets iterate loosest-first: whenever two budgets both embed, the
      // tighter one may not be cheaper.
      if (prev_ok && r.ok()) {
        EXPECT_GE(r.cost + tol(r.cost), prev_cost)
            << "tightening the budget decreased the cost";
      }
      if (r.ok()) {
        const core::Evaluator evaluator(index);
        EXPECT_LE(core::end_to_end_delay(evaluator, *r.solution, {}),
                  budget + 1e-9);
        prev_cost = r.cost;
        prev_ok = true;
        any_ok = true;
      }
    }
    (void)any_ok;
    // Once a budget fails, every tighter one must fail too (checked by
    // construction: budgets are descending, so assert failure is absorbing).
    bool seen_failure = false;
    for (const double budget : budgets) {
      core::LayeredOptions opts;
      opts.delay_budget_ms = budget;
      const core::LayeredEmbedder layered{opts};
      const bool ok = solve_checked(layered, index, seed).ok();
      if (seen_failure) {
        EXPECT_FALSE(ok) << "budget " << budget
                         << " succeeded after a looser one failed";
      }
      if (!ok) seen_failure = true;
    }
  }
}

/// "No budget" and "budget = ∞" are the same thing, and the implementation
/// promises they take the same code path — so the results must be fully
/// bitwise-identical, solutions included.
TEST(DelayBudget, InfiniteBudgetIsBitwiseNoBudget) {
  const auto check = [](const core::ModelIndex& index, std::uint64_t seed) {
    const core::LayeredEmbedder none;  // delay_budget_ms unset
    core::LayeredOptions inf_opts;
    inf_opts.delay_budget_ms = std::numeric_limits<double>::infinity();
    const core::LayeredEmbedder infinite{inf_opts};

    const auto a = solve_checked(none, index, seed);
    const auto b = solve_checked(infinite, index, seed);
    ASSERT_EQ(a.ok(), b.ok());
    EXPECT_EQ(a.failure_reason, b.failure_reason);
    EXPECT_EQ(a.expanded_sub_solutions, b.expanded_sub_solutions);
    if (!a.ok()) return;
    EXPECT_EQ(a.cost, b.cost);  // bitwise
    EXPECT_EQ(a.solution->placement, b.solution->placement);
    ASSERT_EQ(a.solution->inter_paths.size(), b.solution->inter_paths.size());
    for (std::size_t i = 0; i < a.solution->inter_paths.size(); ++i) {
      EXPECT_EQ(a.solution->inter_paths[i].nodes,
                b.solution->inter_paths[i].nodes);
      EXPECT_EQ(a.solution->inter_paths[i].cost,
                b.solution->inter_paths[i].cost);
    }
  };

  const auto fx = test::canonical_fixture();
  check(*fx->index, 0x1f1);

  for (std::uint64_t seed : {0xa1uLL, 0xa2uLL, 0xa3uLL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const sim::ExperimentConfig cfg = small_config(seed);
    Rng gen(cfg.seed);
    const sim::Scenario scenario = sim::make_scenario(gen, cfg);
    const sfc::DagSfc dag = sim::make_sfc(gen, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    check(index, seed);
  }
}

}  // namespace
}  // namespace dagsfc
