#include "core/backtracking.hpp"

#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

TEST(Bbe, SolvesCanonicalFixtureWithKnownCost) {
  // Hand trace (see DESIGN.md interpretation): the forward search from f1@1
  // stops after one ring ({0,2,5} covers f2, f3, merger@5), so the only
  // merger candidate is node 5 and the best reachable candidate is
  // f2@5, f3@2, merger@5 at total cost 40.
  auto fx = test::canonical_fixture();
  const BbeEmbedder bbe;
  Rng rng(1);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  EXPECT_DOUBLE_EQ(r.cost, 40.0);
  const Evaluator ev(*fx->index);
  EXPECT_TRUE(ev.validate(*r.solution).empty());
  EXPECT_EQ(r.solution->placement[0], 1u);   // f1
  EXPECT_EQ(r.solution->placement[3], 5u);   // merger found in ring 1
}

TEST(Mbbe, MatchesBbeOnCanonicalFixture) {
  // The paper's observation: MBBE usually selects the same links/VNFs.
  auto fx = test::canonical_fixture();
  const MbbeEmbedder mbbe;
  Rng rng(1);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  EXPECT_DOUBLE_EQ(r.cost, 40.0);
}

TEST(Bbe, SingleLayerSingleVnf) {
  test::NetBuilder b(3, 1);
  b.link(0, 1, 2.0).link(1, 2, 3.0);
  b.put(1, 1, 7.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 2, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(2);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  // 7 rental + 2 (0-1) + 3 (1-2).
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(Bbe, PrefersCheaperOfTwoHosts) {
  test::NetBuilder b(4, 1);
  b.link(0, 1, 1.0).link(0, 2, 1.0).link(1, 3, 1.0).link(2, 3, 1.0);
  b.put(1, 1, 20.0);
  b.put(2, 1, 10.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 3, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(3);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.solution->placement[0], 2u);
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(Bbe, SourceHostingVnfGivesZeroLengthInterPath) {
  test::NetBuilder b(2, 1);
  b.link(0, 1, 5.0);
  b.put(0, 1, 3.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 1, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(4);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.cost, 8.0);  // 3 + final hop 5
  EXPECT_TRUE(r.solution->inter_paths[0].edges.empty());
}

TEST(Bbe, FailsWhenLayerTypeUnreachable) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0);  // f2 missing everywhere
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 2, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(5);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.failure_reason.find("layer 2"), std::string::npos);
}

TEST(Bbe, FailsWhenNoMergerDeployed) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0).put(1, 2, 1.0);  // parallel layer, but no merger anywhere
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1, 2}}}),
                               Flow{0, 2, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(6);
  EXPECT_FALSE(bbe.solve_fresh(*fx->index, rng).ok());
}

TEST(Bbe, RespectsLedgerResiduals) {
  auto fx = test::canonical_fixture();
  const BbeEmbedder bbe;
  Rng rng(7);
  net::CapacityLedger ledger(fx->network);
  // Exhaust the merger at node 5: BBE must fall back to merger@3.
  ledger.consume_instance(*fx->network.find_instance(5, fx->network.catalog().merger()),
                          100.0);
  const auto r = bbe.solve(*fx->index, ledger, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  EXPECT_EQ(r.solution->placement[3], 3u);
}

TEST(Mbbe, XdOneStillSolves) {
  auto fx = test::canonical_fixture();
  MbbeOptions opts;
  opts.x_d = 1;
  const MbbeEmbedder mbbe(opts);
  Rng rng(8);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
}

TEST(Mbbe, TinyXmaxFallsBackToUncappedSearch) {
  // X_max=1 freezes the capped forward search at the start node, which
  // hosts nothing; the engine's uncapped retry pass must still solve the
  // instance ("MBBE always results in a solution").
  auto fx = test::canonical_fixture();
  MbbeOptions opts;
  opts.x_max = 1;
  const MbbeEmbedder mbbe(opts);
  Rng rng(9);
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  EXPECT_DOUBLE_EQ(r.cost, 40.0);  // same result as the unconstrained run
}

TEST(Mbbe, InvalidOptionsRejected) {
  EXPECT_THROW(MbbeEmbedder(MbbeOptions{0, 4}), ContractViolation);
  EXPECT_THROW(MbbeEmbedder(MbbeOptions{50, 0}), ContractViolation);
}

TEST(Mbbe, ExpandsFewerSubSolutionsThanBbe) {
  auto fx = test::canonical_fixture();
  const BbeEmbedder bbe;
  const MbbeEmbedder mbbe(MbbeOptions{50, 1});
  Rng rng(10);
  const auto rb = bbe.solve_fresh(*fx->index, rng);
  const auto rm = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(rb.ok() && rm.ok());
  EXPECT_LE(rm.expanded_sub_solutions, rb.expanded_sub_solutions);
}

TEST(Engine, MulticastDiscountExploitedOnSharedInterPath) {
  // Both parallel VNFs sit behind the same expensive bridge; the layer's
  // inter multicast must charge the bridge once.
  test::NetBuilder b(5, 2);
  b.link(0, 1, 10.0);             // the bridge
  b.link(1, 2, 1.0).link(1, 3, 1.0).link(2, 4, 1.0).link(3, 4, 1.0);
  b.put(2, 1, 5.0).put(3, 2, 5.0);
  b.put(4, b.merger(), 1.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1, 2}}}),
                               Flow{0, 4, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(11);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  // VNF 5+5+1=11; links: bridge 10 once + 1-2,1-3 inter (2) + inner
  // 2-4,3-4 (2) + final at 4 (0).
  EXPECT_DOUBLE_EQ(r.cost, 25.0);
}

TEST(Engine, DestinationHostingMergerGivesZeroFinalHop) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(0, 2, 1.0);
  b.put(1, 1, 2.0).put(1, 2, 2.0);
  b.put(2, b.merger(), 1.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1, 2}}}),
                               Flow{0, 2, 1.0, 1.0});
  const BbeEmbedder bbe;
  Rng rng(12);
  const auto r = bbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  const auto [dfirst, dlast] = fx->index->inter_group_range(1);
  ASSERT_EQ(dlast - dfirst, 1u);
  EXPECT_TRUE(r.solution->inter_paths[dfirst].edges.empty());
}

TEST(Engine, AlternativeRealPathsEscapeTheBfsTreePath) {
  // The BFS tree discovers node 1 through the expensive direct link, so the
  // single-tree-path BBE pays 10 for the meta-path; enumerating the paper's
  // alternative real-paths (ρ over P^a_b) finds the cheap detour 0-2-1.
  test::NetBuilder b(3, 1);
  b.link(0, 1, 10.0).link(0, 2, 1.0).link(2, 1, 1.0);
  b.put(1, 1, 5.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 1, 1.0, 1.0});
  Rng rng(20);
  const BbeEmbedder single_path;
  const auto r1 = single_path.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1.cost, 15.0);

  BacktrackingOptions opts;
  opts.paths_per_meta_path = 3;
  const BbeEmbedder multi_path(opts);
  const auto r3 = multi_path.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ(r3.cost, 7.0);
  EXPECT_GT(r3.expanded_sub_solutions, r1.expanded_sub_solutions);
}

TEST(Engine, PathCombosEnumeratedForParallelLayers) {
  // Parallel layer with two routes per inner meta-path: with combos capped
  // at 1 only the tree paths are used; with more combos the engine may mix
  // alternatives. Costs must never get worse as the cap grows.
  auto fx = test::canonical_fixture();
  BacktrackingOptions narrow;
  narrow.paths_per_meta_path = 2;
  narrow.max_path_combos = 1;
  BacktrackingOptions wide = narrow;
  wide.max_path_combos = 16;
  Rng rng(21);
  const BbeEmbedder n_engine(narrow);
  const BbeEmbedder w_engine(wide);
  const auto rn = n_engine.solve_fresh(*fx->index, rng);
  const auto rw = w_engine.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(rn.ok() && rw.ok());
  EXPECT_LE(rw.cost, rn.cost + 1e-9);
  EXPECT_GE(rw.expanded_sub_solutions, rn.expanded_sub_solutions);
}

TEST(Engine, MultiPathMbbeNeverWorseThanSinglePath) {
  auto fx = test::canonical_fixture();
  Rng rng(22);
  const MbbeEmbedder base;
  BacktrackingOptions opts;
  opts.min_cost_path_instantiation = true;
  opts.x_max = 50;
  opts.x_d = 4;
  opts.paths_per_meta_path = 4;
  const BbeEmbedder multi(opts);
  const auto rb = base.solve_fresh(*fx->index, rng);
  const auto rm = multi.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(rb.ok() && rm.ok());
  EXPECT_LE(rm.cost, rb.cost + 1e-9);
}

TEST(Engine, SolveFreshEqualsSolveWithNominalLedger) {
  auto fx = test::canonical_fixture();
  const MbbeEmbedder mbbe;
  Rng rng(13);
  net::CapacityLedger ledger(fx->network);
  const auto a = mbbe.solve_fresh(*fx->index, rng);
  const auto b2 = mbbe.solve(*fx->index, ledger, rng);
  ASSERT_TRUE(a.ok() && b2.ok());
  EXPECT_DOUBLE_EQ(a.cost, b2.cost);
  EXPECT_EQ(a.solution->placement, b2.solution->placement);
}

}  // namespace
}  // namespace dagsfc::core
