#include "graph/steiner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.hpp"

namespace dagsfc::graph {
namespace {

/// Checks the returned edge set is a connected acyclic subgraph spanning the
/// terminals with the claimed cost.
void expect_valid_tree(const Graph& g, const SteinerTree& t,
                       const std::vector<NodeId>& terminals) {
  double cost = 0.0;
  std::set<NodeId> nodes;
  std::set<EdgeId> uniq(t.edges.begin(), t.edges.end());
  EXPECT_EQ(uniq.size(), t.edges.size()) << "duplicate edges";
  for (EdgeId e : t.edges) {
    cost += g.edge(e).weight;
    nodes.insert(g.edge(e).u);
    nodes.insert(g.edge(e).v);
  }
  EXPECT_NEAR(cost, t.cost, 1e-9);
  // A tree: |E| = |nodes touched| - 1 (when non-empty).
  if (!t.edges.empty()) {
    EXPECT_EQ(t.edges.size(), nodes.size() - 1);
  }
  // Connectivity over the tree, terminals all inside.
  std::set<NodeId> distinct(terminals.begin(), terminals.end());
  if (distinct.size() <= 1) return;
  for (NodeId term : distinct) EXPECT_TRUE(nodes.count(term)) << term;
  // BFS over tree edges from one terminal.
  std::set<NodeId> seen{*distinct.begin()};
  bool grew = true;
  while (grew) {
    grew = false;
    for (EdgeId e : t.edges) {
      const Edge& ed = g.edge(e);
      if (seen.count(ed.u) != seen.count(ed.v)) {
        seen.insert(ed.u);
        seen.insert(ed.v);
        grew = true;
      }
    }
  }
  for (NodeId term : distinct) EXPECT_TRUE(seen.count(term));
}

TEST(Steiner, TwoTerminalsIsShortestPath) {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(1, 2, 1.0);
  (void)g.add_edge(0, 3, 5.0);
  (void)g.add_edge(3, 2, 5.0);
  const auto t = steiner_tree(g, {0, 2});
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->cost, 2.0);
  expect_valid_tree(g, *t, {0, 2});
}

TEST(Steiner, StarUsesTheHub) {
  // Terminals on three leaves; optimum routes through the hub.
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(0, 2, 1.0);
  (void)g.add_edge(0, 3, 1.0);
  const auto t = steiner_tree(g, {1, 2, 3});
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->cost, 3.0);
  expect_valid_tree(g, *t, {1, 2, 3});
}

TEST(Steiner, SteinerPointBeatsPairwisePaths) {
  // Triangle of terminals with expensive direct links (3.0 each) and a
  // cheap central node (1.0 spokes): the Steiner point wins (3 < 6).
  Graph g(4);
  (void)g.add_edge(0, 1, 3.0);
  (void)g.add_edge(1, 2, 3.0);
  (void)g.add_edge(0, 2, 3.0);
  (void)g.add_edge(0, 3, 1.0);
  (void)g.add_edge(1, 3, 1.0);
  (void)g.add_edge(2, 3, 1.0);
  const auto t = steiner_tree(g, {0, 1, 2});
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->cost, 3.0);
  bool uses_hub = false;
  for (EdgeId e : t->edges) {
    if (g.edge(e).u == 3 || g.edge(e).v == 3) uses_hub = true;
  }
  EXPECT_TRUE(uses_hub);
}

TEST(Steiner, SingleOrDuplicateTerminalsGiveEmptyTree) {
  Graph g(3);
  (void)g.add_edge(0, 1, 1.0);
  auto t = steiner_tree(g, {1});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->edges.empty());
  EXPECT_DOUBLE_EQ(t->cost, 0.0);
  t = steiner_tree(g, {1, 1, 1});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->edges.empty());
  t = steiner_tree(g, {});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->edges.empty());
}

TEST(Steiner, DisconnectedTerminalsFail) {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(steiner_tree(g, {0, 3}).has_value());
}

TEST(Steiner, EdgeFilterIsHonored) {
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2, 1.0);
  (void)g.add_edge(0, 1, 2.0);
  (void)g.add_edge(1, 2, 2.0);
  const auto t = steiner_tree(g, {0, 2},
                              [&](EdgeId e) { return e != direct; });
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->cost, 4.0);
  for (EdgeId e : t->edges) EXPECT_NE(e, direct);
}

TEST(Steiner, TooManyTerminalsRejected) {
  Graph g(20);
  for (NodeId v = 1; v < 20; ++v) (void)g.add_edge(0, v, 1.0);
  std::vector<NodeId> terms;
  for (NodeId v = 1; v <= 15; ++v) terms.push_back(v);
  EXPECT_THROW((void)steiner_tree(g, terms), ContractViolation);
}

TEST(Steiner, NeverWorseThanShortestPathUnionOnRandomGraphs) {
  Rng rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    RandomGraphOptions opts;
    opts.num_nodes = 25;
    opts.average_degree = 4.0;
    Graph g = random_connected_graph(rng, opts);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      g.set_weight(e, rng.uniform_real(0.1, 4.0));
    }
    std::vector<NodeId> terms;
    for (int i = 0; i < 4; ++i) {
      terms.push_back(static_cast<NodeId>(rng.index(25)));
    }
    const auto t = steiner_tree(g, terms);
    ASSERT_TRUE(t.has_value());
    expect_valid_tree(g, *t, terms);
    // Upper bound: union of shortest paths from terms[0].
    const auto sp = dijkstra(g, terms[0]);
    std::set<EdgeId> union_edges;
    for (NodeId term : terms) {
      const auto p = sp.path_to(term);
      ASSERT_TRUE(p.has_value());
      union_edges.insert(p->edges.begin(), p->edges.end());
    }
    double union_cost = 0.0;
    for (EdgeId e : union_edges) union_cost += g.edge(e).weight;
    EXPECT_LE(t->cost, union_cost + 1e-9);
    // Lower bound: the most expensive single terminal-to-terminal shortest
    // path (any spanning structure must connect that pair).
    double lb = 0.0;
    for (NodeId term : terms) {
      lb = std::max(lb, std::min(sp.dist[term], kInfCost));
    }
    EXPECT_GE(t->cost + 1e-9, lb);
  }
}

}  // namespace
}  // namespace dagsfc::graph
