/// Failure injection: exhausted resources, unreachable placements, and
/// degenerate inputs. Every algorithm must fail *cleanly* — a SolveResult
/// with ok()==false and a reason — never a crash, hang, or an invalid
/// "solution".

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

std::vector<std::unique_ptr<Embedder>> all_algorithms() {
  std::vector<std::unique_ptr<Embedder>> v;
  v.push_back(std::make_unique<RanvEmbedder>());
  v.push_back(std::make_unique<MinvEmbedder>());
  v.push_back(std::make_unique<BbeEmbedder>());
  v.push_back(std::make_unique<MbbeEmbedder>());
  v.push_back(std::make_unique<ExactEmbedder>());
  return v;
}

TEST(FailureInjection, AllInstancesOfOneTypeExhausted) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  // Drain every f2 instance (nodes 2 and 5).
  for (graph::NodeId v : fx->network.nodes_with(2)) {
    const auto id = *fx->network.find_instance(v, 2);
    ledger.consume_instance(id, ledger.instance_residual(id));
  }
  Rng rng(1);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve(*fx->index, ledger, rng);
    EXPECT_FALSE(r.ok()) << algo->name();
    EXPECT_FALSE(r.failure_reason.empty()) << algo->name();
  }
}

TEST(FailureInjection, AllLinksDrained) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  for (graph::EdgeId e = 0; e < fx->network.num_links(); ++e) {
    ledger.consume_link(e, ledger.link_residual(e));
  }
  Rng rng(2);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve(*fx->index, ledger, rng);
    EXPECT_FALSE(r.ok()) << algo->name();
  }
}

TEST(FailureInjection, CutLinkDisconnectsDestination) {
  // Drain only the links into node 4 (the destination): embeddings must
  // fail at the final hop, not crash.
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  const auto e34 = fx->network.topology().find_edge(3, 4);
  ledger.consume_link(*e34, ledger.link_residual(*e34));
  Rng rng(3);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve(*fx->index, ledger, rng);
    EXPECT_FALSE(r.ok()) << algo->name();
  }
}

TEST(FailureInjection, PartialDrainStillSolvable) {
  // Drain the cheap f2@5; everyone must fall back to f2@2 and succeed.
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  const auto id = *fx->network.find_instance(5, 2);
  ledger.consume_instance(id, ledger.instance_residual(id));
  Rng rng(4);
  const Evaluator ev(*fx->index);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve(*fx->index, ledger, rng);
    ASSERT_TRUE(r.ok()) << algo->name() << ": " << r.failure_reason;
    EXPECT_EQ(r.solution->placement[1], 2u) << algo->name();
    EXPECT_TRUE(ev.feasible(ev.usage(*r.solution), ledger)) << algo->name();
  }
}

TEST(FailureInjection, RateLargerThanEveryCapacityFailsEverywhere) {
  auto fx = test::canonical_fixture();
  fx->problem.flow.rate = 1000.0;  // beyond all capacities (100)
  const ModelIndex index(fx->problem);
  net::CapacityLedger ledger(fx->network);
  Rng rng(5);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve(index, ledger, rng);
    EXPECT_FALSE(r.ok()) << algo->name();
  }
}

TEST(FailureInjection, IsolatedButDeployedNodesAreUnusable) {
  // f2's only host sits behind links with zero capacity.
  test::NetBuilder b(4, 2);
  b.link(0, 1, 1.0);
  b.link(1, 2, 1.0, /*capacity=*/0.0);  // the cut
  b.link(1, 3, 1.0);
  b.put(1, 1, 1.0).put(2, 2, 1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 3, 1.0, 1.0});
  Rng rng(6);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve_fresh(*fx->index, rng);
    EXPECT_FALSE(r.ok()) << algo->name();
  }
}

TEST(FailureInjection, FailuresDoNotMutateTheLedger) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  for (graph::NodeId v : fx->network.nodes_with(2)) {
    const auto id = *fx->network.find_instance(v, 2);
    ledger.consume_instance(id, ledger.instance_residual(id));
  }
  const double link_before = ledger.total_link_consumed();
  const double inst_before = ledger.total_instance_consumed();
  Rng rng(7);
  for (const auto& algo : all_algorithms()) {
    (void)algo->solve(*fx->index, ledger, rng);
  }
  EXPECT_DOUBLE_EQ(ledger.total_link_consumed(), link_before);
  EXPECT_DOUBLE_EQ(ledger.total_instance_consumed(), inst_before);
}

TEST(FailureInjection, SingleNodeFlowWithLocalVnfs) {
  // Degenerate but legal: source == destination, everything co-located.
  test::NetBuilder b(2, 2);
  b.link(0, 1, 1.0);
  b.put(0, 1, 2.0).put(0, 2, 3.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 0, 1.0, 1.0});
  Rng rng(8);
  for (const auto& algo : all_algorithms()) {
    const auto r = algo->solve_fresh(*fx->index, rng);
    ASSERT_TRUE(r.ok()) << algo->name() << ": " << r.failure_reason;
    EXPECT_DOUBLE_EQ(r.cost, 5.0) << algo->name();  // rentals only, no links
  }
}

TEST(FailureInjection, MbbeSurvivesWhereItMustAndReportsWhereItCant) {
  // The paper's robustness claim, miniaturized: a feasible-but-awkward
  // instance (single host per type, far apart) must still embed.
  test::NetBuilder b(7, 3);
  for (graph::NodeId v = 0; v + 1 < 7; ++v) b.link(v, v + 1, 1.0);
  b.put(1, 1, 5.0).put(3, 2, 5.0).put(5, 3, 5.0);
  b.put(6, b.merger(), 5.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2, 3}}}),
      Flow{0, 6, 1.0, 1.0});
  Rng rng(9);
  const MbbeEmbedder mbbe;
  const auto r = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  const Evaluator ev(*fx->index);
  EXPECT_TRUE(ev.validate(*r.solution).empty());
}

}  // namespace
}  // namespace dagsfc::core
