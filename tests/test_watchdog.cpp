/// Slow-solve watchdog tests: a gate-held solve crosses the threshold, the
/// monitor fires exactly once for it (however many sampling periods it
/// stays in flight), the structured warning carries the request identity,
/// and the default configuration has no watchdog at all.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <semaphore>
#include <string>

#include "core/backtracking.hpp"
#include "serve/service.hpp"
#include "test_helpers.hpp"
#include "util/log.hpp"

namespace dagsfc::serve {
namespace {

using test::NetBuilder;

net::Network line_network() {
  NetBuilder b(3, 1);
  b.link(0, 1, 1.0, 10.0).link(1, 2, 1.0, 10.0);
  b.put(1, 1, 5.0, 4.0);
  return b.build();
}

Request line_request(RequestId id) {
  Request req;
  req.id = id;
  req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  req.flow = core::Flow{0, 2, 1.0, 1.0};
  return req;
}

/// Every solve signals entry, then blocks until released — holding the
/// request in flight for as long as the test wants.
class HoldEmbedder : public core::Embedder {
 public:
  explicit HoldEmbedder(const core::Embedder& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return "hold"; }

  void wait_entered() const { entered_.acquire(); }
  void release(std::ptrdiff_t permits = 1) const { gate_.release(permits); }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink*,
      graph::SearchWorkspace* workspace) const override {
    entered_.release();
    gate_.acquire();
    return inner_->solve(index, ledger, rng, nullptr, workspace);
  }

 private:
  const core::Embedder* inner_;
  mutable std::counting_semaphore<64> entered_{0};
  mutable std::counting_semaphore<64> gate_{0};
};

TEST(Watchdog, FiresExactlyOncePerSlowRequest) {
  const net::Network network = line_network();
  const core::MbbeEmbedder mbbe;
  const HoldEmbedder hold(mbbe);

  EmbeddingService::Options opts;
  opts.workers = 1;
  opts.slow_solve_threshold = std::chrono::milliseconds(20);
  opts.watchdog_period = std::chrono::milliseconds(2);
  EmbeddingService service(network, hold, opts);

  std::future<Response> fut = service.submit(line_request(1));
  hold.wait_entered();  // the worker is now inside the gated solve

  // The request is held well past the threshold; the watchdog samples it
  // every 2ms. Wait until it fires...
  const auto deadline =
      Clock::now() + std::chrono::seconds(10);
  while (service.metrics().slow_solves == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.metrics().slow_solves, 1u);

  // ...then hold for many more sampling periods: still exactly one.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(service.metrics().slow_solves, 1u);

  hold.release();
  const Response r = fut.get();
  EXPECT_EQ(r.outcome, Outcome::Accepted);
  EXPECT_EQ(service.metrics().slow_solves, 1u);

  // A second slow request is a fresh incident: the counter moves again.
  std::future<Response> fut2 = service.submit(line_request(2));
  hold.wait_entered();
  const auto deadline2 = Clock::now() + std::chrono::seconds(10);
  while (service.metrics().slow_solves < 2 && Clock::now() < deadline2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.metrics().slow_solves, 2u);
  hold.release();
  (void)fut2.get();
  service.shutdown();
  EXPECT_EQ(service.metrics().slow_solves, 2u);
}

TEST(Watchdog, FastSolvesNeverTripIt) {
  const net::Network network = line_network();
  const core::MbbeEmbedder mbbe;
  EmbeddingService::Options opts;
  opts.workers = 2;
  opts.slow_solve_threshold = std::chrono::seconds(30);
  opts.watchdog_period = std::chrono::milliseconds(1);
  EmbeddingService service(network, mbbe, opts);
  for (RequestId id = 1; id <= 4; ++id) {
    (void)service.submit(line_request(id)).get();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(service.metrics().slow_solves, 0u);
}

TEST(Watchdog, DisabledByDefault) {
  const net::Network network = line_network();
  const core::MbbeEmbedder mbbe;
  EmbeddingService service(network, mbbe, {});
  EXPECT_EQ(service.options().slow_solve_threshold.count(), 0);
  (void)service.submit(line_request(1)).get();
  EXPECT_EQ(service.metrics().slow_solves, 0u);
}

TEST(Watchdog, BusyAndQueueGaugesSettleAfterDrain) {
  const net::Network network = line_network();
  const core::MbbeEmbedder mbbe;
  const HoldEmbedder hold(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 1;
  opts.slow_solve_threshold = std::chrono::seconds(30);  // watch, never warn
  EmbeddingService service(network, hold, opts);

  std::future<Response> a = service.submit(line_request(1));
  std::future<Response> b = service.submit(line_request(2));
  hold.wait_entered();
  MetricsSnapshot busy = service.metrics();
  EXPECT_DOUBLE_EQ(busy.workers_busy, 1.0);
  EXPECT_DOUBLE_EQ(busy.queue_depth, 1.0);  // request 2 still queued

  hold.release(2);
  (void)a.get();
  (void)b.get();
  service.drain();
  MetricsSnapshot idle = service.metrics();
  EXPECT_DOUBLE_EQ(idle.workers_busy, 0.0);
  EXPECT_DOUBLE_EQ(idle.queue_depth, 0.0);
}

}  // namespace
}  // namespace dagsfc::serve
