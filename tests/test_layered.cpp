/// Differential battery for core::LayeredEmbedder, the joint
/// placement+routing search over the implicit layered product graph.
///
/// The layered solver claims optimality for the uncapacitated objective —
/// the same claim ExactEmbedder makes by per-layer dynamic programming.
/// Two independent algorithms arriving at the same optimum is the strongest
/// oracle this library has, so the battery holds LAYERED to:
///
///   * cost bitwise-equal to EXACT on every corpus instance where the exact
///     solver runs, and on 200 seeded random instances;
///   * never costlier than the BBE/MBBE heuristics anywhere (their
///     solutions are feasible points of the same objective);
///   * every returned solution passing the independent SolutionValidator
///     (admissibility + bitwise cost recomputation);
///   * indifference to a dirty caller workspace, like every flat-tier
///     search (mirrors test_search_flat.cpp);
///   * a truthful trace: LayeredLevel/LayeredGadget decision events plus a
///     cost-event envelope whose sum reproduces the reported cost bitwise.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/delay.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "core/validator.hpp"
#include "graph/workspace.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

core::SolveResult solve_fresh(const core::Embedder& algo,
                              const core::ModelIndex& index,
                              std::uint64_t seed,
                              graph::SearchWorkspace* ws = nullptr) {
  net::CapacityLedger ledger(index.problem().net());
  Rng rng(seed);
  return algo.solve(index, ledger, rng, nullptr, ws);
}

void expect_valid(const core::ModelIndex& index,
                  const core::SolveResult& result) {
  const core::SolutionValidator validator(index);
  const net::CapacityLedger fresh(index.problem().net());
  const auto audit = validator.check(result, fresh);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

/// The whole cross-embedder contract on one instance: validity of the
/// layered solution, bitwise agreement with EXACT, dominance over BBE/MBBE.
/// Returns whether the exact oracle was available on this instance.
bool run_cross_embedder(const core::ModelIndex& index, std::uint64_t seed) {
  const core::LayeredEmbedder layered{
      core::LayeredOptions{.delay_budget_ms = std::nullopt,
                           .delay_model = {},
                           .max_work = 50'000'000,
                           .max_labels = 2'000'000}};
  const core::ExactEmbedder exact{core::ExactOptions{50'000'000}};
  const core::BbeEmbedder bbe;
  const core::MbbeEmbedder mbbe;

  const auto lay = solve_fresh(layered, index, seed);
  expect_valid(index, lay);

  const auto ex = solve_fresh(exact, index, seed);
  if (ex.ok()) {
    EXPECT_TRUE(lay.ok()) << lay.failure_reason;
    if (lay.ok()) {
      EXPECT_EQ(lay.cost, ex.cost)  // bit-identical, not approximate
          << "layered diverged from the exact optimum";
    }
  }
  // The heuristics respect capacities *during* search, so they may embed
  // instances whose uncapacitated optimum is infeasible (where LAYERED,
  // like EXACT, refuses post-hoc). Dominance is claimed whenever LAYERED
  // does return: its solution is the uncapacitated optimum, and every
  // heuristic solution is a feasible point of the same objective.
  for (const core::Embedder* heuristic :
       std::initializer_list<const core::Embedder*>{&bbe, &mbbe}) {
    const auto h = solve_fresh(*heuristic, index, seed);
    if (h.ok() && lay.ok()) {
      EXPECT_LE(lay.cost, h.cost)
          << "layered costlier than " << heuristic->name();
    }
  }
  return ex.ok();
}

// ---------------------------------------------------------------------------
// Corpus instances.

class LayeredCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(LayeredCorpus, MatchesExactBeatsHeuristics) {
  const std::string dir = std::string(DAGSFC_CORPUS_DIR) + "/";
  net::Network network =
      net::network_from_text(slurp(dir + GetParam() + std::string(".net.txt")));
  const sfc::SfcFile file =
      sfc::sfc_from_text(slurp(dir + GetParam() + std::string(".sfc.txt")));
  ASSERT_TRUE(file.flow.has_value());

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  run_cross_embedder(index, /*seed=*/1);
}

INSTANTIATE_TEST_SUITE_P(Instances, LayeredCorpus,
                         ::testing::Values("ring12", "leafspine14", "waxman20",
                                           "tightline5"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// 200 seeded random instances.

TEST(LayeredDifferential, TwoHundredRandomInstances) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;

  Rng seeder(0x1a9e7edb17ull);
  int exact_agreements = 0;
  for (int i = 0; i < 200; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    if (run_cross_embedder(index, /*seed=*/3000 + i)) ++exact_agreements;
    if (::testing::Test::HasFailure()) break;  // one instance is enough
  }
  // The oracle must actually have had teeth on a healthy share of draws.
  EXPECT_GE(exact_agreements, 100);
}

// ---------------------------------------------------------------------------
// Canonical fixture: the known-by-hand instance.

TEST(Layered, CanonicalFixtureOptimal) {
  auto fx = test::canonical_fixture();
  const core::LayeredEmbedder layered;
  const core::ExactEmbedder exact;
  const auto lay = solve_fresh(layered, *fx->index, 7);
  const auto ex = solve_fresh(exact, *fx->index, 7);
  ASSERT_TRUE(lay.ok()) << lay.failure_reason;
  ASSERT_TRUE(ex.ok()) << ex.failure_reason;
  EXPECT_EQ(lay.cost, ex.cost);
  EXPECT_EQ(lay.candidate_solutions, 1u);
  expect_valid(*fx->index, lay);
}

// ---------------------------------------------------------------------------
// Workspace hygiene: a dirty caller workspace changes nothing, including
// one previously used by a *different* solver and by prior layered solves.

TEST(Layered, SharedDirtyWorkspaceChangesNothing) {
  auto fx = test::canonical_fixture();
  const core::LayeredEmbedder layered;
  const core::MbbeEmbedder mbbe;
  graph::SearchWorkspace ws;

  (void)solve_fresh(mbbe, *fx->index, 3, &ws);  // dirty the workspace
  const auto first = solve_fresh(layered, *fx->index, 7, &ws);
  const auto second = solve_fresh(layered, *fx->index, 7, &ws);
  const auto fresh = solve_fresh(layered, *fx->index, 7);

  ASSERT_TRUE(fresh.ok()) << fresh.failure_reason;
  for (const auto* r : {&first, &second}) {
    ASSERT_TRUE(r->ok());
    EXPECT_EQ(r->cost, fresh.cost);
    EXPECT_EQ(r->solution->placement, fresh.solution->placement);
    EXPECT_EQ(r->expanded_sub_solutions, fresh.expanded_sub_solutions);
  }
}

// ---------------------------------------------------------------------------
// Trace contract: decision events present, cost envelope reproduces the
// reported cost bitwise (the solve() envelope adds Cost events).

TEST(Layered, TraceEventsAndReconstructedCost) {
  auto fx = test::canonical_fixture();
  const core::LayeredEmbedder layered;
  net::CapacityLedger ledger(fx->network);
  Rng rng(7);
  core::EmbeddingTrace trace;
  const auto r = layered.solve(*fx->index, ledger, rng, &trace);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  EXPECT_EQ(trace.reconstructed_cost(), r.cost);  // bitwise

  std::size_t levels = 0;
  std::size_t gadgets = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == core::TraceEventKind::LayeredLevel) ++levels;
    if (e.kind == core::TraceEventKind::LayeredGadget) ++gadgets;
  }
  // One LayeredLevel summary per level (ω + 1), and the parallel layer must
  // have fired at least one gadget.
  EXPECT_EQ(levels, fx->dag.num_layers() + 1);
  EXPECT_GE(gadgets, 1u);
}

// ---------------------------------------------------------------------------
// Delay budgets (the scalar/bi-criteria seam; metamorphic relations live in
// test_metamorphic.cpp).

TEST(Layered, GenerousBudgetKeepsTheOptimum) {
  auto fx = test::canonical_fixture();
  const core::LayeredEmbedder unconstrained;
  const auto base = solve_fresh(unconstrained, *fx->index, 7);
  ASSERT_TRUE(base.ok()) << base.failure_reason;

  const core::Evaluator evaluator(*fx->index);
  const core::DelayModel model;
  const double base_delay =
      core::end_to_end_delay(evaluator, *base.solution, model);

  core::LayeredOptions opts;
  // Admits the optimum; the hair of slack absorbs summation-order ulps
  // between the label engine's hop-by-hop accumulation and the per-layer
  // sums of end_to_end_delay.
  opts.delay_budget_ms = base_delay + 1e-6;
  opts.delay_model = model;
  const core::LayeredEmbedder budgeted{opts};
  const auto r = solve_fresh(budgeted, *fx->index, 7);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  expect_valid(*fx->index, r);
  EXPECT_NEAR(r.cost, base.cost, 1e-9);
  EXPECT_LE(core::end_to_end_delay(evaluator, *r.solution, model),
            base_delay + 1e-9);
}

TEST(Layered, ImpossibleBudgetFailsCleanly) {
  auto fx = test::canonical_fixture();
  core::LayeredOptions opts;
  opts.delay_budget_ms = 1e-3;  // below even one hop of latency
  const core::LayeredEmbedder layered{opts};
  const auto r = solve_fresh(layered, *fx->index, 7);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failure_reason.find("delay budget"), std::string::npos)
      << r.failure_reason;
}

TEST(Layered, TightBudgetTradesCostForDelay) {
  // Chain with a cheap-but-long and an expensive-but-short option:
  //   0 -1- 1 -1- 2 -1- 3 (f1 at 1 cheaply, at 3 dearly; dest 4 next to 3)
  // plus a long cheap detour so the unconstrained optimum takes more hops.
  test::NetBuilder b(7, 1);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(2, 3, 1.0).link(3, 4, 1.0);
  b.link(0, 5, 1.0).link(5, 6, 1.0).link(6, 4, 1.0);
  b.put(3, 1, 2.0);   // on the short 0-1-2-3-4 spine
  b.put(6, 1, 50.0);  // on the 0-5-6-4 shortcut
  sfc::DagSfc dag({sfc::Layer{{1}}});
  auto fx = test::make_fixture(b.build(), std::move(dag),
                               core::Flow{0, 4, 1.0, 1.0});

  const core::LayeredEmbedder unconstrained;
  const auto base = solve_fresh(unconstrained, *fx->index, 7);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.solution->placement[0], 3u);  // cheap rent wins, 4 hops

  core::LayeredOptions opts;
  opts.delay_budget_ms = 4.1;  // 3 hops + 1ms processing fits; 4 hops do not
  const core::LayeredEmbedder budgeted{opts};
  const auto r = solve_fresh(budgeted, *fx->index, 7);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  expect_valid(*fx->index, r);
  EXPECT_EQ(r.solution->placement[0], 6u);  // forced onto the short route
  EXPECT_GT(r.cost, base.cost);

  const core::Evaluator evaluator(*fx->index);
  EXPECT_LE(core::end_to_end_delay(evaluator, *r.solution, {}),
            *opts.delay_budget_ms + 1e-9);
}

}  // namespace
}  // namespace dagsfc
