/// Property-based suites (parameterized sweeps): invariants that must hold
/// across randomized instances and configurations, not just hand-picked
/// fixtures.

#include <gtest/gtest.h>

#include <set>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "graph/generator.hpp"
#include "graph/steiner.hpp"
#include "graph/yen.hpp"
#include "sim/scenario.hpp"

namespace dagsfc {
namespace {

// ---------- graph invariants across sizes/densities ------------------------

struct GraphParam {
  std::size_t nodes;
  double degree;
};

class GraphProperties : public ::testing::TestWithParam<GraphParam> {};

TEST_P(GraphProperties, GeneratorInvariants) {
  const auto [nodes, degree] = GetParam();
  Rng rng(nodes * 31 + static_cast<std::uint64_t>(degree * 7));
  graph::RandomGraphOptions opts;
  opts.num_nodes = nodes;
  opts.average_degree = degree;
  const graph::Graph g = graph::random_connected_graph(rng, opts);
  EXPECT_EQ(g.num_nodes(), nodes);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_GE(g.num_edges(), nodes - 1);  // at least the spanning tree
  // Simple graph: no self loops (enforced by contract) and no duplicates.
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    EXPECT_NE(ed.u, ed.v);
    EXPECT_TRUE(seen.insert({std::min(ed.u, ed.v), std::max(ed.u, ed.v)})
                    .second);
  }
}

TEST_P(GraphProperties, DijkstraPathsAreConsistent) {
  const auto [nodes, degree] = GetParam();
  Rng rng(nodes * 13 + 7);
  graph::RandomGraphOptions opts;
  opts.num_nodes = nodes;
  opts.average_degree = degree;
  graph::Graph g = graph::random_connected_graph(rng, opts);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(0.1, 5.0));
  }
  const auto sp = graph::dijkstra(g, 0);
  for (graph::NodeId v = 0; v < nodes; ++v) {
    ASSERT_TRUE(sp.reached(v));  // connected graph
    const auto p = sp.path_to(v);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(g.path_valid(*p));
    EXPECT_NEAR(g.path_cost(*p), sp.dist[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, GraphProperties,
    ::testing::Values(GraphParam{2, 1.0}, GraphParam{10, 2.0},
                      GraphParam{50, 4.0}, GraphParam{120, 6.0},
                      GraphParam{50, 12.0}));

// ---------- Steiner ⊆ shortest-path-union sandwich across seeds ------------

class SteinerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteinerProperty, SandwichBounds) {
  Rng rng(GetParam());
  graph::RandomGraphOptions opts;
  opts.num_nodes = 20;
  opts.average_degree = 4.0;
  graph::Graph g = graph::random_connected_graph(rng, opts);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(0.2, 3.0));
  }
  std::vector<graph::NodeId> terms;
  for (int i = 0; i < 5; ++i) {
    terms.push_back(static_cast<graph::NodeId>(rng.index(20)));
  }
  const auto tree = graph::steiner_tree(g, terms);
  ASSERT_TRUE(tree.has_value());
  const auto sp = graph::dijkstra(g, terms[0]);
  double union_cost = 0.0;
  std::set<graph::EdgeId> uni;
  double max_pair = 0.0;
  for (graph::NodeId t : terms) {
    const auto p = sp.path_to(t);
    uni.insert(p->edges.begin(), p->edges.end());
    max_pair = std::max(max_pair, sp.dist[t]);
  }
  for (graph::EdgeId e : uni) union_cost += g.edge(e).weight;
  EXPECT_LE(tree->cost, union_cost + 1e-9);
  EXPECT_GE(tree->cost + 1e-9, max_pair);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteinerProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

// ---------- end-to-end embedding invariants over configurations ------------

struct EmbedParam {
  std::size_t network_size;
  std::size_t sfc_size;
  double deploy_ratio;
};

class EmbeddingProperties : public ::testing::TestWithParam<EmbedParam> {};

TEST_P(EmbeddingProperties, SolutionsValidFeasibleAndOrdered) {
  const auto [n, k, dr] = GetParam();
  sim::ExperimentConfig cfg;
  cfg.network_size = n;
  cfg.network_connectivity = 4.0;
  cfg.catalog_size = std::max<std::size_t>(k, 6);
  cfg.sfc_size = k;
  cfg.vnf_deploy_ratio = dr;
  Rng rng(n * 1000 + k * 10 + static_cast<std::uint64_t>(dr * 100));

  const core::MbbeEmbedder mbbe;
  const core::MinvEmbedder minv;
  const core::RanvEmbedder ranv;

  for (int trial = 0; trial < 4; ++trial) {
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow =
        core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    const core::Evaluator ev(index);
    net::CapacityLedger nominal(scenario.network);

    for (const core::Embedder* algo :
         std::initializer_list<const core::Embedder*>{&mbbe, &minv, &ranv}) {
      const auto r = algo->solve_fresh(index, rng);
      if (!r.ok()) continue;
      // (1) structurally valid;
      const auto errors = ev.validate(*r.solution);
      ASSERT_TRUE(errors.empty())
          << algo->name() << ": " << errors.front();
      // (2) reported cost equals evaluator cost;
      EXPECT_NEAR(ev.cost(*r.solution), r.cost, 1e-6) << algo->name();
      // (3) feasible against nominal capacities;
      EXPECT_TRUE(ev.feasible(ev.usage(*r.solution), nominal))
          << algo->name();
      // (4) positive cost (a real embedding rents something).
      EXPECT_GT(r.cost, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EmbeddingProperties,
    ::testing::Values(EmbedParam{20, 1, 0.5}, EmbedParam{20, 3, 0.5},
                      EmbedParam{40, 5, 0.5}, EmbedParam{40, 5, 0.2},
                      EmbedParam{40, 7, 0.6}, EmbedParam{80, 9, 0.4},
                      EmbedParam{15, 4, 0.9}));

// ---------- cost-model scaling property -------------------------------------

class FlowSizeScaling : public ::testing::TestWithParam<double> {};

TEST_P(FlowSizeScaling, CostIsLinearInZ) {
  const double z = GetParam();
  sim::ExperimentConfig cfg;
  cfg.network_size = 30;
  cfg.catalog_size = 6;
  cfg.sfc_size = 4;
  Rng rng(55);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);

  auto solve_with_z = [&](double size) {
    core::EmbeddingProblem p;
    p.network = &scenario.network;
    p.sfc = &dag;
    p.flow = core::Flow{scenario.source, scenario.destination, 1.0, size};
    const core::ModelIndex index(p);
    const core::MbbeEmbedder mbbe;
    Rng r2(7);
    return mbbe.solve_fresh(index, r2);
  };
  const auto base = solve_with_z(1.0);
  const auto scaled = solve_with_z(z);
  ASSERT_TRUE(base.ok() && scaled.ok());
  EXPECT_NEAR(scaled.cost, base.cost * z, base.cost * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Zs, FlowSizeScaling,
                         ::testing::Values(0.5, 2.0, 3.5, 10.0));

}  // namespace
}  // namespace dagsfc
