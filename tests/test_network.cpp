#include "net/network.hpp"

#include <gtest/gtest.h>

namespace dagsfc::net {
namespace {

Network triangle() {
  graph::Graph g(3);
  (void)g.add_edge(0, 1, 2.0);
  (void)g.add_edge(1, 2, 3.0);
  (void)g.add_edge(0, 2, 4.0);
  return Network(std::move(g), VnfCatalog(2), 50.0);
}

TEST(Network, TopologyAndLinkDefaults) {
  const Network n = triangle();
  EXPECT_EQ(n.num_nodes(), 3u);
  EXPECT_EQ(n.num_links(), 3u);
  EXPECT_DOUBLE_EQ(n.link_price(0), 2.0);
  EXPECT_DOUBLE_EQ(n.link_capacity(0), 50.0);
}

TEST(Network, LinkMutation) {
  Network n = triangle();
  n.set_link_price(1, 7.5);
  n.set_link_capacity(1, 9.0);
  EXPECT_DOUBLE_EQ(n.link_price(1), 7.5);
  EXPECT_DOUBLE_EQ(n.link_capacity(1), 9.0);
  EXPECT_THROW(n.set_link_capacity(1, -1.0), ContractViolation);
}

TEST(Network, DeployAndLookup) {
  Network n = triangle();
  const InstanceId id = n.deploy(1, 1, 10.0, 5.0);
  EXPECT_EQ(n.num_instances(), 1u);
  EXPECT_EQ(n.instance(id).node, 1u);
  EXPECT_EQ(n.instance(id).type, 1u);
  EXPECT_DOUBLE_EQ(n.instance(id).price, 10.0);
  EXPECT_DOUBLE_EQ(n.instance(id).capacity, 5.0);
  EXPECT_EQ(n.find_instance(1, 1), std::optional<InstanceId>(id));
  EXPECT_FALSE(n.find_instance(0, 1).has_value());
  EXPECT_TRUE(n.has_vnf(1, 1));
  EXPECT_FALSE(n.has_vnf(1, 2));
}

TEST(Network, OneInstancePerTypePerNode) {
  Network n = triangle();
  (void)n.deploy(0, 1, 1.0, 1.0);
  EXPECT_THROW((void)n.deploy(0, 1, 2.0, 2.0), ContractViolation);
  (void)n.deploy(0, 2, 2.0, 2.0);  // different type on same node is fine
  EXPECT_EQ(n.instances_on(0).size(), 2u);
}

TEST(Network, DummyNotDeployable) {
  Network n = triangle();
  EXPECT_THROW((void)n.deploy(0, VnfCatalog::dummy(), 1.0, 1.0),
               ContractViolation);
}

TEST(Network, MergerIsDeployable) {
  Network n = triangle();
  const VnfTypeId m = n.catalog().merger();
  (void)n.deploy(2, m, 3.0, 4.0);
  EXPECT_TRUE(n.has_vnf(2, m));
  EXPECT_EQ(n.nodes_with(m), std::vector<graph::NodeId>{2});
}

TEST(Network, TypeNodeSetsTrackDeployments) {
  Network n = triangle();
  (void)n.deploy(0, 1, 1.0, 1.0);
  (void)n.deploy(2, 1, 1.0, 1.0);
  (void)n.deploy(1, 2, 1.0, 1.0);
  EXPECT_EQ(n.nodes_with(1), (std::vector<graph::NodeId>{0, 2}));
  EXPECT_EQ(n.nodes_with(2), std::vector<graph::NodeId>{1});
  EXPECT_TRUE(n.nodes_with(n.catalog().merger()).empty());
}

TEST(Network, MeanPrices) {
  Network n = triangle();
  EXPECT_DOUBLE_EQ(n.mean_link_price(), 3.0);
  EXPECT_DOUBLE_EQ(n.mean_vnf_price(), 0.0);  // nothing deployed
  (void)n.deploy(0, 1, 10.0, 1.0);
  (void)n.deploy(1, 2, 20.0, 1.0);
  EXPECT_DOUBLE_EQ(n.mean_vnf_price(), 15.0);
}

TEST(Network, InvalidArgumentsRejected) {
  Network n = triangle();
  EXPECT_THROW((void)n.deploy(9, 1, 1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)n.deploy(0, 99, 1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)n.deploy(0, 1, -1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)n.deploy(0, 1, 1.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace dagsfc::net
