/// Serve-layer tests: queue semantics, admission, the optimistic-commit
/// protocol (forced epoch conflicts), multi-producer stress with
/// conservation invariants (the ThreadSanitizer target of scripts/check.sh),
/// and worker-count determinism of the closed-loop driver.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <future>
#include <semaphore>
#include <vector>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "serve/driver.hpp"
#include "serve/queue.hpp"
#include "test_helpers.hpp"

namespace dagsfc::serve {
namespace {

using test::NetBuilder;

// ---------------------------------------------------------------- queue --

TEST(BoundedQueue, FifoAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, RejectedItemIsNotMovedFrom) {
  BoundedQueue<std::vector<int>> q(1);
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{4, 5, 6};
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_FALSE(q.try_push(std::move(b)));
  EXPECT_EQ(b.size(), 3u);  // intact after the failed push
}

TEST(BoundedQueue, CloseDrainsThenEndsPop) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

// ------------------------------------------------------------ admission --

TEST(AdmissionPolicy, BackoffDoubles) {
  AdmissionPolicy p;
  p.retry_backoff = std::chrono::nanoseconds(100);
  EXPECT_EQ(p.backoff_before(1).count(), 100);
  EXPECT_EQ(p.backoff_before(2).count(), 200);
  EXPECT_EQ(p.backoff_before(3).count(), 400);
  // The doubling is capped so huge retry budgets cannot overflow.
  EXPECT_EQ(p.backoff_before(40), p.backoff_before(11));
}

TEST(AdmissionPolicy, ShedsOnlyExpiredDeadlines) {
  AdmissionPolicy p;
  Request req;
  const auto now = Clock::now();
  EXPECT_FALSE(p.should_shed(req, now));  // no deadline
  req.deadline = now + std::chrono::seconds(1);
  EXPECT_FALSE(p.should_shed(req, now));
  req.deadline = now - std::chrono::seconds(1);
  EXPECT_TRUE(p.should_shed(req, now));
  p.shed_expired = false;
  EXPECT_FALSE(p.should_shed(req, now));
}

// ------------------------------------------------------ service fixtures --

/// A 3-node line whose single f1 instance (capacity 1) admits exactly one
/// rate-1 flow: the canonical conflict crucible.
net::Network one_slot_network() {
  NetBuilder b(3, 1);
  b.link(0, 1, 1.0, 10.0).link(1, 2, 1.0, 10.0);
  b.put(1, 1, 5.0, 1.0);
  return b.build();
}

Request one_slot_request(RequestId id) {
  Request req;
  req.id = id;
  req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  req.flow = core::Flow{0, 2, 1.0, 1.0};
  return req;
}

/// Wraps an embedder; every solve waits for a gate permit after signalling
/// entry, so tests can hold workers inside the (unlocked) solve phase.
class GateEmbedder : public core::Embedder {
 public:
  explicit GateEmbedder(const core::Embedder& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return "gate"; }

  void wait_entered() const { entered_.acquire(); }
  void open(std::ptrdiff_t permits) const { gate_.release(permits); }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink*,
      graph::SearchWorkspace* workspace) const override {
    entered_.release();
    gate_.acquire();
    return inner_->solve(index, ledger, rng, nullptr, workspace);
  }

 private:
  const core::Embedder* inner_;
  mutable std::counting_semaphore<64> entered_{0};
  mutable std::counting_semaphore<64> gate_{0};
};

/// Wraps an embedder; the first two solves rendezvous *after* solving and
/// *before* returning, so both hold solutions computed from pre-commit
/// snapshots — guaranteeing the second commit faces a moved epoch.
class RendezvousEmbedder : public core::Embedder {
 public:
  explicit RendezvousEmbedder(const core::Embedder& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return "rendezvous"; }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink*,
      graph::SearchWorkspace* workspace) const override {
    core::SolveResult r = inner_->solve(index, ledger, rng, nullptr, workspace);
    if (calls_.fetch_add(1) < 2) sync_.arrive_and_wait();
    return r;
  }

 private:
  const core::Embedder* inner_;
  mutable std::atomic<int> calls_{0};
  mutable std::barrier<> sync_{2};
};

// -------------------------------------------------------------- service --

TEST(EmbeddingService, AcceptMatchesSingleShotSolveAndReleases) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  EmbeddingService service(network, mbbe, {});

  const Response r = service.submit(one_slot_request(1)).get();
  ASSERT_EQ(r.outcome, Outcome::Accepted);
  EXPECT_EQ(r.solves, 1u);
  EXPECT_EQ(r.conflicts, 0u);
  EXPECT_FALSE(r.epoch_validated);  // nothing raced: fast path

  // Cost must equal the offline single-shot solve on a fresh ledger.
  Request ref = one_slot_request(1);
  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &ref.sfc;
  problem.flow = ref.flow;
  const core::ModelIndex index(problem);
  Rng rng(0);
  const core::SolveResult offline = mbbe.solve_fresh(index, rng);
  ASSERT_TRUE(offline.ok());
  EXPECT_DOUBLE_EQ(r.cost, offline.cost);

  EXPECT_EQ(service.in_service(), 1u);
  const net::CapacityLedger mid = service.ledger_snapshot();
  EXPECT_DOUBLE_EQ(mid.instance_residual(0), 0.0);

  EXPECT_TRUE(service.release(1));
  EXPECT_FALSE(service.release(1));  // already departed
  EXPECT_FALSE(service.release(99));  // never admitted
  EXPECT_EQ(service.in_service(), 0u);
  const net::CapacityLedger after = service.ledger_snapshot();
  EXPECT_DOUBLE_EQ(after.instance_residual(0), 1.0);
  EXPECT_EQ(service.metrics().releases, 1u);
}

TEST(EmbeddingService, SecondFlowRejectedOnceCapacityIsHeld) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  EmbeddingService service(network, mbbe, {});

  ASSERT_EQ(service.submit(one_slot_request(1)).get().outcome,
            Outcome::Accepted);
  const Response r2 = service.submit(one_slot_request(2)).get();
  EXPECT_EQ(r2.outcome, Outcome::RejectedInfeasible);
  // No conflict: the solver already saw the held capacity in its snapshot.
  EXPECT_EQ(r2.conflicts, 0u);

  // After the departure the same request embeds again.
  EXPECT_TRUE(service.release(1));
  EXPECT_EQ(service.submit(one_slot_request(3)).get().outcome,
            Outcome::Accepted);
}

TEST(EmbeddingService, QueueFullRejectsImmediately) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  const GateEmbedder gate(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 1;
  opts.admission.queue_capacity = 1;
  EmbeddingService service(network, gate, opts);

  auto f1 = service.submit(one_slot_request(1));
  gate.wait_entered();  // worker is inside solve; the queue is empty again
  auto f2 = service.submit(one_slot_request(2));  // fills the queue
  auto f3 = service.submit(one_slot_request(3));  // bounced
  const Response r3 = f3.get();
  EXPECT_EQ(r3.outcome, Outcome::RejectedQueueFull);
  EXPECT_EQ(r3.id, 3u);

  gate.open(8);  // enough permits for solves + retries
  EXPECT_EQ(f1.get().outcome, Outcome::Accepted);
  EXPECT_EQ(f2.get().outcome, Outcome::RejectedInfeasible);
  EXPECT_EQ(service.metrics().rejected_queue_full, 1u);
}

TEST(EmbeddingService, ExpiredDeadlineIsShedWithoutSolving) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  EmbeddingService service(network, mbbe, {});

  Request req = one_slot_request(1);
  req.deadline = Clock::now() - std::chrono::milliseconds(5);
  const Response r = service.submit(std::move(req)).get();
  EXPECT_EQ(r.outcome, Outcome::SheddedDeadline);
  EXPECT_EQ(r.solves, 0u);
  EXPECT_EQ(service.metrics().shed_deadline, 1u);
  EXPECT_EQ(service.in_service(), 0u);
}

TEST(EmbeddingService, ForcedEpochConflictRetriesThenRejects) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  const RendezvousEmbedder rendezvous(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 2;
  opts.admission.retry_backoff = std::chrono::nanoseconds(0);
  EmbeddingService service(network, rendezvous, opts);

  // Both workers solve against pre-commit snapshots (the rendezvous blocks
  // the winner from committing until the loser has solved too), so exactly
  // one commit faces a moved epoch over capacity that is now gone.
  auto f1 = service.submit(one_slot_request(1));
  auto f2 = service.submit(one_slot_request(2));
  const Response r1 = f1.get();
  const Response r2 = f2.get();

  const Response& won = r1.accepted() ? r1 : r2;
  const Response& lost = r1.accepted() ? r2 : r1;
  ASSERT_EQ(won.outcome, Outcome::Accepted);
  EXPECT_EQ(won.solves, 1u);
  // The loser's first feasible solution failed validation (conflict), and
  // its retry saw the truth and rejected.
  EXPECT_EQ(lost.outcome, Outcome::RejectedInfeasible);
  EXPECT_EQ(lost.conflicts, 1u);
  EXPECT_EQ(lost.solves, 2u);

  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.accepted, 1u);
  EXPECT_EQ(m.commit_conflicts, 1u);
  EXPECT_EQ(m.retries, 1u);
  EXPECT_EQ(m.fast_commits + m.stamp_commits + m.validated_commits, 1u);
}

TEST(EmbeddingService, ZeroRetriesLosesConflictedRequests) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  const RendezvousEmbedder rendezvous(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 2;
  opts.admission.max_retries = 0;
  EmbeddingService service(network, rendezvous, opts);

  auto f1 = service.submit(one_slot_request(1));
  auto f2 = service.submit(one_slot_request(2));
  const Response r1 = f1.get();
  const Response r2 = f2.get();
  const Response& lost = r1.accepted() ? r2 : r1;
  EXPECT_EQ(lost.outcome, Outcome::LostConflict);
  EXPECT_EQ(lost.conflicts, 1u);
  EXPECT_EQ(service.metrics().lost_conflict, 1u);
}

// --------------------------------------------------- stress (TSan target) --

TEST(EmbeddingServiceStress, ManyProducersConserveCapacity) {
  sim::DynamicConfig cfg;
  cfg.base.network_size = 40;
  cfg.base.network_connectivity = 4.0;
  cfg.base.catalog_size = 6;
  cfg.base.sfc_size = 3;
  cfg.base.vnf_capacity = 5.0;
  cfg.base.link_capacity = 6.0;
  cfg.base.trials = 1;
  cfg.arrival_rate = 4.0;
  cfg.num_arrivals = 160;
  const Workload workload = make_workload(cfg, 0xabcdef);

  const core::MbbeEmbedder mbbe;
  OpenLoopConfig open;
  open.workers = 4;
  open.producers = 4;
  open.window = 6;
  open.target_load = 24;
  open.admission.queue_capacity = cfg.num_arrivals;
  open.admission.retry_backoff = std::chrono::nanoseconds(0);
  const OpenLoopResult r = run_open_loop(workload, mbbe, open);

  const MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.submitted, cfg.num_arrivals);
  // Conservation: every submitted request reached exactly one terminal
  // outcome...
  EXPECT_EQ(m.accepted + m.rejected_infeasible + m.rejected_queue_full +
                m.shed_deadline + m.lost_conflict,
            m.submitted);
  // ...every accepted flow was released, and the drained ledger is nominal.
  EXPECT_EQ(m.releases, m.accepted);
  EXPECT_TRUE(r.conserved);
  // Commit-path accounting closes too: every accept went through exactly
  // one of the fast / stamp-validated / residual-validated commit paths.
  EXPECT_EQ(m.fast_commits + m.stamp_commits + m.validated_commits,
            m.accepted);
  EXPECT_GT(m.accepted, 0u);
}

TEST(EmbeddingServiceStress, SubmitReleaseRaceOnTinyNetwork) {
  // Hammer the one-slot network from many threads: admission flips between
  // feasible and infeasible as flows come and go, and every terminal state
  // must still be accounted for.
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  EmbeddingService::Options opts;
  opts.workers = 4;
  opts.admission.queue_capacity = 512;
  opts.admission.retry_backoff = std::chrono::nanoseconds(0);
  EmbeddingService service(network, mbbe, opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> accepted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id =
            static_cast<RequestId>(t * kPerThread + i + 1);
        const Response r = service.submit(one_slot_request(id)).get();
        if (r.accepted()) {
          ++accepted;
          EXPECT_TRUE(service.release(id));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  service.drain();

  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.completed(), m.submitted);
  EXPECT_EQ(m.accepted, accepted.load());
  EXPECT_EQ(m.releases, accepted.load());
  EXPECT_EQ(service.in_service(), 0u);
  const net::CapacityLedger after = service.ledger_snapshot();
  EXPECT_DOUBLE_EQ(after.instance_residual(0), 1.0);
}

// --------------------------------------------------- driver determinism --

MetricsSnapshot closed_loop_metrics(const Workload& w,
                                    const core::Embedder& e,
                                    std::size_t workers,
                                    CommitPipeline pipeline,
                                    DriverResult* out = nullptr) {
  AdmissionPolicy admission;
  admission.retry_backoff = std::chrono::nanoseconds(0);
  ServiceTuning tuning;
  tuning.pipeline = pipeline;
  DriverResult r = run_closed_loop(w, e, workers, admission, 0x5eed, tuning);
  if (out) *out = r;
  return r.metrics;
}

TEST(ClosedLoopDriver, MetricsBitIdenticalAcrossWorkersAndPipelines) {
  sim::DynamicConfig cfg;
  cfg.base.network_size = 30;
  cfg.base.network_connectivity = 4.0;
  cfg.base.catalog_size = 6;
  cfg.base.sfc_size = 3;
  cfg.base.vnf_capacity = 4.0;
  cfg.base.link_capacity = 5.0;
  cfg.base.trials = 1;
  cfg.arrival_rate = 3.0;
  cfg.num_arrivals = 50;
  const Workload workload = make_workload(cfg, 0x1234);

  // Both a deterministic and a randomized embedder: the per-request RNG
  // streams are keyed on (seed, id, attempt), never the worker. The grid
  // covers both commit pipelines at 1 and 8 workers: the closed loop must
  // produce one identical metric stream for all four.
  const core::MbbeEmbedder mbbe;
  const core::RanvEmbedder ranv;
  struct Cell {
    CommitPipeline pipeline;
    std::size_t workers;
  };
  const Cell cells[] = {{CommitPipeline::kMvcc, 1},
                        {CommitPipeline::kMvcc, 8},
                        {CommitPipeline::kMutex, 1},
                        {CommitPipeline::kMutex, 8}};
  for (const core::Embedder* algo :
       {static_cast<const core::Embedder*>(&mbbe),
        static_cast<const core::Embedder*>(&ranv)}) {
    DriverResult ref{};
    const MetricsSnapshot a = closed_loop_metrics(
        workload, *algo, cells[0].workers, cells[0].pipeline, &ref);
    EXPECT_TRUE(ref.conserved) << algo->name();
    EXPECT_GT(a.accepted, 0u) << algo->name();
    // Closed loop keeps one request in flight: optimistic commits can
    // never race, so the fast path must carry every accept in both
    // pipelines and the batch histogram sees only singleton drains.
    EXPECT_EQ(a.commit_conflicts, 0u) << algo->name();
    EXPECT_EQ(a.stamp_commits, 0u) << algo->name();
    EXPECT_EQ(a.validated_commits, 0u) << algo->name();
    EXPECT_EQ(a.fast_commits, a.accepted) << algo->name();
    EXPECT_EQ(a.group_commit_batch.count(), a.accepted) << algo->name();
    EXPECT_DOUBLE_EQ(a.group_commit_batch.max(), 1.0) << algo->name();

    for (std::size_t i = 1; i < std::size(cells); ++i) {
      const Cell& cell = cells[i];
      const auto label = [&] {
        return std::string(algo->name()) + "/" + to_string(cell.pipeline) +
               "/w" + std::to_string(cell.workers);
      };
      DriverResult r{};
      const MetricsSnapshot b =
          closed_loop_metrics(workload, *algo, cell.workers, cell.pipeline,
                              &r);
      EXPECT_EQ(a.accepted, b.accepted) << label();
      EXPECT_EQ(a.rejected_infeasible, b.rejected_infeasible) << label();
      EXPECT_EQ(a.lost_conflict, b.lost_conflict) << label();
      EXPECT_EQ(a.commit_conflicts, b.commit_conflicts) << label();
      EXPECT_EQ(a.retries, b.retries) << label();
      EXPECT_EQ(a.fast_commits, b.fast_commits) << label();
      EXPECT_EQ(a.stamp_commits, b.stamp_commits) << label();
      EXPECT_EQ(a.validated_commits, b.validated_commits) << label();
      EXPECT_EQ(a.releases, b.releases) << label();
      // Bitwise: per-flow cost distribution (counts, sum, extremes).
      EXPECT_TRUE(a.cost == b.cost) << label();
      EXPECT_EQ(ref.final_epoch, r.final_epoch) << label();
      EXPECT_DOUBLE_EQ(ref.simulated_time, r.simulated_time) << label();
      EXPECT_TRUE(r.conserved) << label();
      // Only the MVCC pipeline records group-commit drains; the legacy
      // mutex pipeline must leave the histogram untouched.
      const std::uint64_t expect_batches =
          cell.pipeline == CommitPipeline::kMvcc ? b.accepted : 0u;
      EXPECT_EQ(b.group_commit_batch.count(), expect_batches) << label();
    }
  }
}

TEST(ClosedLoopDriver, TracingOnOffIsBitIdentical) {
  sim::DynamicConfig cfg;
  cfg.base.network_size = 30;
  cfg.base.network_connectivity = 4.0;
  cfg.base.catalog_size = 6;
  cfg.base.sfc_size = 3;
  cfg.base.vnf_capacity = 4.0;
  cfg.base.link_capacity = 5.0;
  cfg.base.trials = 1;
  cfg.arrival_rate = 3.0;
  cfg.num_arrivals = 50;
  const Workload workload = make_workload(cfg, 0x1234);
  const core::MbbeEmbedder mbbe;
  const AdmissionPolicy admission;

  // Tracing is observation only: an aggressive configuration (a 1 ns
  // latency threshold that promotes every request, refusals promoted, a
  // tiny ring forcing constant wraparound) must not perturb a single
  // solve, commit decision, or counter relative to tracing disabled.
  ServiceTuning off;
  ServiceTuning on;
  on.tracing.enabled = true;
  on.tracing.ring_capacity = 8;
  on.tracing.latency_over = std::chrono::nanoseconds(1);
  on.tracing.on_refusal = true;
  std::uint64_t spans_emitted = 0;
  std::uint64_t promoted = 0;
  on.on_finish = [&](EmbeddingService& s) {
    ASSERT_NE(s.flight_recorder(), nullptr);
    promoted = s.flight_recorder()->promoted();
    for (std::size_t lane = 0; lane < s.span_recorder()->num_lanes();
         ++lane) {
      spans_emitted += s.span_recorder()->emitted(lane);
    }
  };

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    spans_emitted = 0;
    promoted = 0;
    const DriverResult a =
        run_closed_loop(workload, mbbe, workers, admission, 0x5eed, off);
    const DriverResult b =
        run_closed_loop(workload, mbbe, workers, admission, 0x5eed, on);
    EXPECT_GT(spans_emitted, 0u);
    EXPECT_GT(promoted, 0u);  // the 1 ns threshold catches every request

    // Latency histograms are wall-clock shaped, so bit-identity is asserted
    // on everything the solver and commit protocol actually decide — the
    // same field set the worker-count battery compares.
    EXPECT_EQ(a.metrics.accepted, b.metrics.accepted);
    EXPECT_EQ(a.metrics.rejected_infeasible, b.metrics.rejected_infeasible);
    EXPECT_EQ(a.metrics.lost_conflict, b.metrics.lost_conflict);
    EXPECT_EQ(a.metrics.commit_conflicts, b.metrics.commit_conflicts);
    EXPECT_EQ(a.metrics.retries, b.metrics.retries);
    EXPECT_EQ(a.metrics.fast_commits, b.metrics.fast_commits);
    EXPECT_EQ(a.metrics.stamp_commits, b.metrics.stamp_commits);
    EXPECT_EQ(a.metrics.validated_commits, b.metrics.validated_commits);
    EXPECT_EQ(a.metrics.releases, b.metrics.releases);
    EXPECT_TRUE(a.metrics.cost == b.metrics.cost);
    EXPECT_EQ(a.final_epoch, b.final_epoch);
    EXPECT_DOUBLE_EQ(a.simulated_time, b.simulated_time);
    EXPECT_TRUE(a.conserved);
    EXPECT_TRUE(b.conserved);
  }
}

TEST(ClosedLoopDriver, WorkloadIsDeterministicInSeed) {
  sim::DynamicConfig cfg;
  cfg.base.network_size = 20;
  cfg.base.catalog_size = 6;
  cfg.base.sfc_size = 3;
  cfg.base.trials = 1;
  cfg.num_arrivals = 20;
  const Workload a = make_workload(cfg, 42);
  const Workload b = make_workload(cfg, 42);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.arrivals[i].at, b.arrivals[i].at);
    EXPECT_DOUBLE_EQ(a.arrivals[i].holding, b.arrivals[i].holding);
    EXPECT_EQ(a.arrivals[i].request.flow.source,
              b.arrivals[i].request.flow.source);
    EXPECT_EQ(a.arrivals[i].request.flow.destination,
              b.arrivals[i].request.flow.destination);
  }
  const Workload c = make_workload(cfg, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    if (a.arrivals[i].at != c.arrivals[i].at) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// -------------------------------------------------------------- metrics --

TEST(ServiceMetrics, JsonCarriesCountersAndPercentiles) {
  ServiceMetrics metrics;
  metrics.on_submitted();
  Response r;
  r.outcome = Outcome::Accepted;
  r.cost = 123.0;
  r.solves = 2;
  r.conflicts = 1;
  r.epoch_validated = true;
  r.queue_ms = 0.5;
  r.solve_ms = 1.5;
  metrics.on_response(r);
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.commit_conflicts, 1u);
  EXPECT_EQ(snap.retries, 1u);
  EXPECT_EQ(snap.validated_commits, 1u);
  const std::string json = snap.to_json();
  for (const char* key :
       {"\"submitted\":1", "\"accepted\":1", "\"commit_conflicts\":1",
        "\"retries\":1", "\"validated_commits\":1", "\"latency_ms\"",
        "\"p99\"", "\"cost\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace dagsfc::serve
