#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dagsfc {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats big;
  Rng rng(9);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform_real(0, 1));
  for (int i = 0; i < 1000; ++i) big.add(rng.uniform_real(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(PercentileSorted, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 4.0);
}

TEST(PercentileSorted, InterpolatesLinearly) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
}

TEST(PercentileSorted, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.3), 7.0);
}

TEST(PercentileSorted, RejectsBadInput) {
  const std::vector<double> v{1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile_sorted(empty, 0.5), ContractViolation);
  EXPECT_THROW((void)percentile_sorted(v, 1.5), ContractViolation);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summarize, StddevMatchesFormula) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Histogram, EmptyIsZeroed) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleValueQuantilesAreExact) {
  Histogram h;
  h.add(5.0);
  // Clamping to the observed min/max makes one-sample quantiles exact.
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  EXPECT_DOUBLE_EQ(h.p99(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, QuantilesWithinBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // Relative error is bounded by the bucket width, 10^(1/16) ≈ 1.155.
  const double width = std::pow(10.0, 1.0 / 16.0);
  EXPECT_GT(h.p50(), 500.0 / width);
  EXPECT_LT(h.p50(), 500.5 * width);
  EXPECT_GT(h.p95(), 950.0 / width);
  EXPECT_LT(h.p95(), 950.5 * width);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);   // clamps to observed min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);  // and max
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Histogram, MergeMatchesSequentialBitwise) {
  // Integer-valued samples sum exactly in any order, so the merged
  // histogram must be bitwise-equal to the sequentially filled one.
  Histogram all;
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 500; ++i) {
    const double x = static_cast<double>(i);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_TRUE(a == all);
  Histogram empty;
  a.merge(empty);  // merging an empty partial is a no-op
  EXPECT_TRUE(a == all);
}

TEST(Histogram, UnderflowAndOverflowAreCaptured) {
  Histogram h;  // default range [1e-3, 1e9)
  h.add(1e-9);
  h.add(0.0);
  h.add(1e12);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);                   // underflow bin
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 1u);  // overflow bin
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  // Quantiles still clamp to the observed extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e12);
}

TEST(Histogram, BucketBoundsTileTheRange) {
  const Histogram h(1.0, 100.0, 4);
  const auto under = h.bucket_bounds(0);
  const auto over = h.bucket_bounds(h.num_buckets() - 1);
  EXPECT_DOUBLE_EQ(under.second, 1.0);
  EXPECT_DOUBLE_EQ(over.first, 100.0);
  double prev_upper = under.second;
  for (std::size_t b = 1; b + 1 < h.num_buckets(); ++b) {
    const auto [lo, hi] = h.bucket_bounds(b);
    EXPECT_DOUBLE_EQ(lo, prev_upper);
    EXPECT_GT(hi, lo);
    prev_upper = hi;
  }
  EXPECT_NEAR(prev_upper, 100.0, 1e-9);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(1e-3, 1e9, 16);
  Histogram b(1e-3, 1e9, 8);
  EXPECT_FALSE(a.same_layout(b));
  EXPECT_THROW(a.merge(b), ContractViolation);
  const Histogram c(1e-3, 1e9, 16);
  EXPECT_TRUE(a.same_layout(c));
}

TEST(Histogram, EqualityDetectsDivergence) {
  Histogram a;
  Histogram b;
  a.add(2.0);
  b.add(2.0);
  EXPECT_TRUE(a == b);
  b.add(3.0);
  EXPECT_FALSE(a == b);
}

TEST(Histogram, TwoSamplesInOneBucketInterpolateBetweenThem) {
  Histogram h(1.0, 100.0, 4);  // first in-range bucket is [1, 10^(1/4))
  h.add(1.1);
  h.add(1.2);
  // Both samples share a bucket, so its value range clamps to [1.1, 1.2]
  // and the rank interpolation is exact within it: rank(q=0.5) = 0.5,
  // frac = (0.5 + 0.5) / 2 = 0.5 → the midpoint of the observed extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.15);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.1);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.2);
  // Equal samples collapse the clamped range to a point: every interior
  // quantile is that point (the hi <= lo edge of the interpolation).
  Histogram point(1.0, 100.0, 4);
  point.add(5.0);
  point.add(5.0);
  EXPECT_DOUBLE_EQ(point.quantile(0.3), 5.0);
  EXPECT_DOUBLE_EQ(point.quantile(0.9), 5.0);
}

TEST(Histogram, TwoSamplesAcrossBucketsClampToTheWinningBucket) {
  Histogram h(1.0, 100.0, 4);
  h.add(1.0);
  h.add(80.0);
  // With n = 2 every interior quantile has rank q·(n−1) < 1, so the first
  // sample's bucket always wins; the interpolated value never escapes that
  // bucket's clamped range even as q → 1, and q = 1 alone jumps to the max.
  const double first_hi = h.bucket_bounds(1).second;  // bucket holding 1.0
  double prev = h.quantile(0.0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (const double q : {0.25, 0.5, 0.75, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);  // monotone in q
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, first_hi);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.99), first_hi);  // frac clamps at 1
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 80.0);
}

}  // namespace
}  // namespace dagsfc
