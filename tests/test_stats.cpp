#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dagsfc {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats big;
  Rng rng(9);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform_real(0, 1));
  for (int i = 0; i < 1000; ++i) big.add(rng.uniform_real(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(PercentileSorted, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 4.0);
}

TEST(PercentileSorted, InterpolatesLinearly) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
}

TEST(PercentileSorted, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.3), 7.0);
}

TEST(PercentileSorted, RejectsBadInput) {
  const std::vector<double> v{1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile_sorted(empty, 0.5), ContractViolation);
  EXPECT_THROW((void)percentile_sorted(v, 1.5), ContractViolation);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summarize, StddevMatchesFormula) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

}  // namespace
}  // namespace dagsfc
