#include "core/exact.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

TEST(Exact, FindsTheHandVerifiedOptimum) {
  // Enumerated by hand on the canonical fixture: f1@1, f2@5, f3@3,
  // merger@3 at total cost 35 (see test_solution.cpp for the arithmetic).
  auto fx = test::canonical_fixture();
  const ExactEmbedder exact;
  Rng rng(1);
  const auto r = exact.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  EXPECT_DOUBLE_EQ(r.cost, 35.0);
  EXPECT_EQ(r.solution->placement,
            (std::vector<graph::NodeId>{1, 5, 3, 3}));
  const Evaluator ev(*fx->index);
  EXPECT_TRUE(ev.validate(*r.solution).empty());
}

TEST(Exact, SingleVnfChainIsShortestPathPlusRental) {
  test::NetBuilder b(4, 1);
  b.link(0, 1, 2.0).link(1, 2, 2.0).link(2, 3, 2.0).link(0, 3, 9.0);
  b.put(2, 1, 5.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 3, 1.0, 1.0});
  const ExactEmbedder exact;
  Rng rng(2);
  const auto r = exact.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.cost, 11.0);  // 5 + (0-1-2)=4 + (2-3)=2
}

TEST(Exact, ChoosesSteinerPointForMulticast) {
  // Terminals {start, f1-node, f2-node} on a triangle with a cheap hub:
  // the inter-layer multicast must route through the hub (cost 3 < 6).
  test::NetBuilder b(5, 2);
  b.link(0, 1, 3.0).link(0, 2, 3.0).link(1, 2, 3.0);
  b.link(0, 3, 1.0).link(1, 3, 1.0).link(2, 3, 1.0);
  b.link(2, 4, 1.0);
  b.put(1, 1, 1.0).put(2, 2, 1.0);
  b.put(2, b.merger(), 1.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1, 2}}}),
                               Flow{0, 4, 1.0, 1.0});
  const ExactEmbedder exact;
  Rng rng(3);
  const auto r = exact.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok()) << r.failure_reason;
  // VNF 1+1+1 = 3; inter Steiner {0,1,2} via hub = 3; inner 1→2 cheapest is
  // 1-3-2 = 2; final 2-4 = 1. Total 9.
  EXPECT_DOUBLE_EQ(r.cost, 9.0);
}

TEST(Exact, FlowSizeScalesOptimalCost) {
  auto fx = test::canonical_fixture();
  fx->problem.flow.size = 2.0;
  const ModelIndex idx(fx->problem);
  const ExactEmbedder exact;
  Rng rng(4);
  const auto r = exact.solve(idx, net::CapacityLedger(fx->network), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.cost, 70.0);
}

TEST(Exact, ReportsUnreachableLayer) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0);  // f2 missing
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 2, 1.0, 1.0});
  const ExactEmbedder exact;
  Rng rng(5);
  const auto r = exact.solve_fresh(*fx->index, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(Exact, RefusesOversizedInstances) {
  auto fx = test::canonical_fixture();
  ExactOptions opts;
  opts.max_work = 1;  // absurdly small budget
  const ExactEmbedder exact(opts);
  Rng rng(6);
  const auto r = exact.solve_fresh(*fx->index, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.failure_reason.find("too large"), std::string::npos);
}

TEST(Exact, FlagsBindingCapacities) {
  // The unconstrained optimum needs the f1 instance twice, but its capacity
  // only allows one use — the solver must refuse rather than return an
  // infeasible "optimum".
  test::NetBuilder b(3, 1);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0, /*capacity=*/1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{1}}}),
      Flow{0, 2, 1.0, 1.0});
  const ExactEmbedder exact;
  Rng rng(7);
  const auto r = exact.solve_fresh(*fx->index, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.failure_reason.find("capacity"), std::string::npos);
}

TEST(Exact, ScreensInstancesBelowFlowRate) {
  // A cheaper instance that cannot process the flow rate must be skipped in
  // favor of a feasible one.
  test::NetBuilder b(3, 1);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0, /*capacity=*/0.5);   // too small for rate 1.0
  b.put(2, 1, 10.0, /*capacity=*/5.0);
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{1}}}),
                               Flow{0, 2, 1.0, 1.0});
  const ExactEmbedder exact;
  Rng rng(8);
  const auto r = exact.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.solution->placement[0], 2u);
}

}  // namespace
}  // namespace dagsfc::core
