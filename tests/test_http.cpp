/// MetricsHttpServer route and error-path tests: /healthz, the 404 / 405 /
/// 400-oversized-request-line responses, /debug/traces.json with and
/// without an attached flight recorder, and the before_scrape hook keeping
/// util::ProcessMetrics (dagsfc_build_info + dagsfc_uptime_seconds) fresh
/// in the exposition.

#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>

#include "serve/trace.hpp"
#include "util/build_info.hpp"
#include "util/metrics.hpp"

namespace dagsfc::serve {
namespace {

/// Sends \p request verbatim and returns the whole response (headers+body).
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ::shutdown(fd, SHUT_WR);
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return raw_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  EXPECT_NE(sep, std::string::npos);
  return sep == std::string::npos ? std::string{} : response.substr(sep + 4);
}

TEST(MetricsHttp, HealthzReportsOkAndUptime) {
  const util::MetricRegistry registry;
  const MetricsHttpServer server(registry, 0);
  const std::string resp = http_get(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("{\"status\":\"ok\",\"uptime_seconds\":"),
            std::string::npos);
}

TEST(MetricsHttp, UnknownPathIs404) {
  const util::MetricRegistry registry;
  const MetricsHttpServer server(registry, 0);
  const std::string resp = http_get(server.port(), "/nope");
  EXPECT_NE(resp.find("HTTP/1.0 404 Not Found"), std::string::npos);
  EXPECT_EQ(body_of(resp), "not found\n");
}

TEST(MetricsHttp, NonGetMethodIs405) {
  const util::MetricRegistry registry;
  const MetricsHttpServer server(registry, 0);
  const std::string resp =
      raw_request(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 405 Method Not Allowed"), std::string::npos);
  EXPECT_EQ(body_of(resp), "method not allowed\n");
}

TEST(MetricsHttp, OversizedRequestLineIs400) {
  const util::MetricRegistry registry;
  const MetricsHttpServer server(registry, 0);
  // A request line that alone overflows the server's 4 KiB read buffer —
  // no "\r\n" anywhere in what the server can read.
  const std::string resp = raw_request(
      server.port(), "GET /" + std::string(8192, 'a') + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 400 Bad Request"), std::string::npos);
  EXPECT_EQ(body_of(resp), "request line too long\n");
}

TEST(MetricsHttp, DebugTracesIs404WithoutAFlightRecorder) {
  const util::MetricRegistry registry;
  const MetricsHttpServer server(registry, 0);
  const std::string resp = http_get(server.port(), "/debug/traces.json");
  EXPECT_NE(resp.find("HTTP/1.0 404 Not Found"), std::string::npos);
}

TEST(MetricsHttp, DebugTracesServesTheFlightDump) {
  const util::MetricRegistry registry;
  FlightRecorder flight(4);
  FlightTrace t;
  t.trace_id = 42;
  t.triggers = kTriggerLatency;
  t.outcome = Outcome::Accepted;
  t.latency_ms = 12.5;
  flight.promote(std::move(t));

  MetricsHttpServer::Options opts;
  opts.flight = &flight;
  const MetricsHttpServer server(registry, 0, opts);
  const std::string resp = http_get(server.port(), "/debug/traces.json");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(body_of(resp), flight.to_json());
  EXPECT_NE(body_of(resp).find("\"trace_id\":42"), std::string::npos);
}

TEST(MetricsHttp, BeforeScrapeHookKeepsProcessMetricsFresh) {
  util::MetricRegistry registry;
  const util::ProcessMetrics process(registry);

  std::atomic<int> scrapes{0};
  MetricsHttpServer::Options opts;
  opts.before_scrape = [&] {
    process.update();
    scrapes.fetch_add(1);
  };
  const MetricsHttpServer server(registry, 0, opts);

  const std::string prom = body_of(http_get(server.port(), "/metrics"));
  EXPECT_EQ(scrapes.load(), 1);
  // The info-metric idiom: build identity as labels, value pinned to 1.
  EXPECT_NE(prom.find("dagsfc_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("version=\"" + util::build_info().version + "\""),
            std::string::npos);
  EXPECT_NE(prom.find("flags=\"" + util::build_info().flags + "\""),
            std::string::npos);
  EXPECT_NE(prom.find("dagsfc_uptime_seconds"), std::string::npos);

  (void)http_get(server.port(), "/metrics.json");
  EXPECT_EQ(scrapes.load(), 2);
  // The hook is a scrape-path concern: /healthz must not run it.
  (void)http_get(server.port(), "/healthz");
  EXPECT_EQ(scrapes.load(), 2);
}

}  // namespace
}  // namespace dagsfc::serve
