/// Differential tests for the flat search tier (CSR + SearchWorkspace +
/// EdgeMask) against the frozen seed implementations in graph::reference.
/// The tier's core contract is bit-identity: same distances, same parents,
/// same tie-breaks, same paths — for every primitive and for every
/// embedder's end-to-end SolveResult. Mirrors tests/test_path_cache.cpp,
/// which establishes the same contract for the cache layer.
///
/// Also pins the CSR determinism contract (row order == insertion order)
/// and exercises the lazy concurrent CSR build; the Csr suite runs under
/// ThreadSanitizer in scripts/check.sh.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "core/validator.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generator.hpp"
#include "graph/reference.hpp"
#include "graph/steiner.hpp"
#include "graph/workspace.hpp"
#include "graph/yen.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

/// Pins the process-wide search-tier switch for one test and restores it.
struct FlagGuard {
  bool saved = graph::flat_search_default();
  ~FlagGuard() { graph::set_flat_search_default(saved); }
};

graph::Graph random_weighted_graph(std::size_t n, double degree,
                                   std::uint64_t seed) {
  Rng rng(seed);
  graph::RandomGraphOptions opts;
  opts.num_nodes = n;
  opts.average_degree = degree;
  graph::Graph g = random_connected_graph(rng, opts);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, rng.uniform_real(1.0, 10.0));
  }
  return g;
}

/// A random ~80%-permissive allow-set, expressed both ways: as the seed's
/// EdgeFilter and as the flat tier's EdgeMask over the same bits.
struct AllowSet {
  std::vector<char> allow;
  graph::EdgeMaskBuffer mask;
  graph::EdgeMask view;

  AllowSet(const graph::Graph& g, Rng& rng) {
    allow.resize(g.num_edges());
    mask.assign(g.num_edges(), false);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      allow[e] = rng.uniform_real(0.0, 1.0) < 0.8 ? 1 : 0;
      if (allow[e]) mask.set(e);
    }
    view = mask.view();
  }
  [[nodiscard]] graph::EdgeFilter filter() const {
    return [this](graph::EdgeId e) { return allow[e] != 0; };
  }
};

void expect_same_path(const graph::Path& a, const graph::Path& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.cost, b.cost);  // bit-identical, not approximate
}

void expect_same_opt_path(const std::optional<graph::Path>& a,
                          const std::optional<graph::Path>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) expect_same_path(*a, *b);
}

// ---------------------------------------------------------------------------
// Primitive-level differential: every kernel, random graphs, random masks.

TEST(FlatPrimitives, DijkstraTreesMatchReferenceExactly) {
  graph::SearchWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(40, 4.0, seed);
    Rng rng(seed * 977);
    const AllowSet set(g, rng);
    for (graph::NodeId s = 0; s < 5; ++s) {
      const auto ref = graph::reference::dijkstra(g, s, set.filter());
      graph::dijkstra_into(g, s, ws, &set.view);
      const auto flat = graph::export_tree(ws, g.num_nodes());
      EXPECT_EQ(ref.source, flat.source);
      EXPECT_EQ(ref.dist, flat.dist);
      EXPECT_EQ(ref.parent, flat.parent);
      EXPECT_EQ(ref.parent_edge, flat.parent_edge);

      // Unfiltered arms, and the legacy entry point's flat dispatch.
      const auto ref_open = graph::reference::dijkstra(g, s);
      graph::dijkstra_into(g, s, ws);
      const auto flat_open = graph::export_tree(ws, g.num_nodes());
      EXPECT_EQ(ref_open.dist, flat_open.dist);
      EXPECT_EQ(ref_open.parent, flat_open.parent);
      const auto dispatched = graph::dijkstra(g, s, set.filter());
      EXPECT_EQ(ref.dist, dispatched.dist);
      EXPECT_EQ(ref.parent, dispatched.parent);
    }
  }
}

TEST(FlatPrimitives, PointToPointMatchesReferenceExactly) {
  graph::SearchWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(40, 4.0, seed);
    Rng rng(seed * 1013);
    const AllowSet set(g, rng);
    for (int q = 0; q < 10; ++q) {
      const auto s = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
      const auto t = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
      expect_same_opt_path(
          graph::reference::min_cost_path(g, s, t, set.filter()),
          graph::min_cost_path(g, s, t, ws, &set.view));
      expect_same_opt_path(graph::reference::min_cost_path(g, s, t),
                           graph::min_cost_path(g, s, t, ws));
    }
  }
}

TEST(FlatPrimitives, YenMatchesReferenceExactly) {
  graph::SearchWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(30, 4.0, seed);
    Rng rng(seed * 31337);
    const AllowSet set(g, rng);
    for (int q = 0; q < 4; ++q) {
      const auto s = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
      const auto t = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
      if (s == t) continue;
      const auto ref =
          graph::reference::k_shortest_paths(g, s, t, 5, set.filter());
      const auto flat = graph::k_shortest_paths(g, s, t, 5, &set.view,
                                                ws);
      ASSERT_EQ(ref.size(), flat.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        expect_same_path(ref[i], flat[i]);
      }
      const auto ref_open = graph::reference::k_shortest_paths(g, s, t, 5);
      const auto flat_open = graph::k_shortest_paths(g, s, t, 5, nullptr, ws);
      ASSERT_EQ(ref_open.size(), flat_open.size());
      for (std::size_t i = 0; i < ref_open.size(); ++i) {
        expect_same_path(ref_open[i], flat_open[i]);
      }
    }
  }
}

TEST(FlatPrimitives, SteinerMatchesReferenceExactly) {
  graph::SearchWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const graph::Graph g = random_weighted_graph(25, 4.0, seed);
    Rng rng(seed * 7919);
    const AllowSet set(g, rng);
    std::vector<graph::NodeId> terminals;
    for (int i = 0; i < 4; ++i) {
      terminals.push_back(static_cast<graph::NodeId>(rng.index(g.num_nodes())));
    }
    const auto ref = graph::reference::steiner_tree(g, terminals, set.filter());
    const auto flat = graph::steiner_tree(g, terminals, &set.view, ws);
    ASSERT_EQ(ref.has_value(), flat.has_value());
    if (ref) {
      EXPECT_EQ(ref->cost, flat->cost);
      EXPECT_EQ(ref->edges, flat->edges);
    }
    const auto ref_open = graph::reference::steiner_tree(g, terminals);
    const auto flat_open = graph::steiner_tree(g, terminals, nullptr, ws);
    ASSERT_EQ(ref_open.has_value(), flat_open.has_value());
    if (ref_open) {
      EXPECT_EQ(ref_open->cost, flat_open->cost);
      EXPECT_EQ(ref_open->edges, flat_open->edges);
    }
  }
}

// ---------------------------------------------------------------------------
// CSR determinism and the lazy concurrent build.

TEST(Csr, RowOrderEqualsInsertionOrder) {
  // Edges added in a deliberately scrambled order; every CSR row must
  // replay its node's incidence list verbatim — the tie-break order every
  // deterministic search result depends on.
  graph::Graph g(6);
  g.add_edge(3, 1, 1.0);
  g.add_edge(0, 4, 1.0);
  g.add_edge(1, 0, 1.0);
  g.add_edge(5, 3, 1.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(0, 3, 1.0);
  const graph::CsrView view = g.csr();
  ASSERT_EQ(view.offsets.size(), g.num_nodes() + 1);
  ASSERT_EQ(view.incidence.size(), 2 * g.num_edges());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto row = view.row(v);
    const auto adj = g.neighbors(v);
    ASSERT_EQ(row.size(), adj.size()) << "node " << v;
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(row[i].edge, adj[i].edge) << "node " << v << " slot " << i;
      EXPECT_EQ(row[i].neighbor, adj[i].neighbor);
    }
  }
}

TEST(Csr, MutationInvalidatesAndRebuilds) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.csr().row(0).size(), 1u);
  g.add_edge(0, 2, 1.0);  // invalidates the view built above
  const graph::CsrView rebuilt = g.csr();
  ASSERT_EQ(rebuilt.row(0).size(), 2u);
  EXPECT_EQ(rebuilt.row(0)[1].neighbor, 2u);
  const graph::NodeId n = g.add_node();
  EXPECT_EQ(g.csr().offsets.size(), g.num_nodes() + 1);
  EXPECT_TRUE(g.csr().row(n).empty());
}

TEST(Csr, ConcurrentFirstUseBuildsOnce) {
  // Many threads race the first csr() call on a quiescent graph; all must
  // observe the same complete view. Runs under TSan via scripts/check.sh.
  const graph::Graph g = random_weighted_graph(60, 5.0, 42);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::size_t> row_sums(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, &row_sums, t] {
      const graph::CsrView view = g.csr();
      std::size_t sum = 0;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        sum += view.row(v).size();
      }
      row_sums[t] = sum;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(row_sums[t], 2 * g.num_edges());
  }
}

// ---------------------------------------------------------------------------
// Embedder-level differential: flat tier vs seed implementations, end to
// end, mirroring the cache-on/off harness in test_path_cache.cpp.

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_identical(const core::SolveResult& flat,
                      const core::SolveResult& ref) {
  ASSERT_EQ(flat.ok(), ref.ok())
      << flat.failure_reason << " vs " << ref.failure_reason;
  EXPECT_EQ(flat.failure_reason, ref.failure_reason);
  EXPECT_EQ(flat.expanded_sub_solutions, ref.expanded_sub_solutions);
  EXPECT_EQ(flat.candidate_solutions, ref.candidate_solutions);
  if (!flat.ok()) return;
  EXPECT_EQ(flat.cost, ref.cost);  // bit-identical, not approximate
  ASSERT_TRUE(ref.solution.has_value());
  EXPECT_EQ(flat.solution->placement, ref.solution->placement);
  ASSERT_EQ(flat.solution->inter_paths.size(),
            ref.solution->inter_paths.size());
  for (std::size_t i = 0; i < flat.solution->inter_paths.size(); ++i) {
    expect_same_path(flat.solution->inter_paths[i],
                     ref.solution->inter_paths[i]);
  }
  ASSERT_EQ(flat.solution->inner_paths.size(),
            ref.solution->inner_paths.size());
  for (std::size_t i = 0; i < flat.solution->inner_paths.size(); ++i) {
    expect_same_path(flat.solution->inner_paths[i],
                     ref.solution->inner_paths[i]);
  }
}

core::SolveResult solve_with(const core::Embedder& algo,
                             const core::ModelIndex& index, bool flat_on,
                             bool cache_on, std::uint64_t rng_seed) {
  graph::set_flat_search_default(flat_on);
  net::CapacityLedger ledger(index.problem().net());
  ledger.set_cache_enabled(cache_on);
  Rng rng(rng_seed);
  return algo.solve(index, ledger, rng);
}

struct EmbedderSet {
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  core::ExactEmbedder exact{core::ExactOptions{50'000'000}};
  core::LayeredEmbedder layered{core::LayeredOptions{
      .delay_budget_ms = std::nullopt,
      .delay_model = {},
      .max_work = 50'000'000,
      .max_labels = 2'000'000}};

  [[nodiscard]] std::vector<const core::Embedder*> all() const {
    return {&ranv, &minv, &bbe, &mbbe, &exact, &layered};
  }
};

void run_differential(const core::ModelIndex& index, std::uint64_t seed,
                      bool with_cache_arms) {
  const EmbedderSet set;
  const core::SolutionValidator validator(index);
  for (const core::Embedder* algo : set.all()) {
    SCOPED_TRACE(algo->name());
    // Cache disabled: pure search-tier comparison, no shared layer between
    // the arms.
    const auto flat = solve_with(*algo, index, true, false, seed);
    const auto ref = solve_with(*algo, index, false, false, seed);
    expect_identical(flat, ref);
    // Every returned solution must pass the independent admissibility
    // oracle, including its bitwise cost recomputation.
    const net::CapacityLedger fresh(index.problem().net());
    const auto audit = validator.check(flat, fresh);
    EXPECT_TRUE(audit.ok()) << audit.to_string();
    if (with_cache_arms) {
      // Cache enabled on both sides: the flat tier composes with the
      // epoch-keyed cache exactly as the seed search did.
      const auto flat_c = solve_with(*algo, index, true, true, seed);
      const auto ref_c = solve_with(*algo, index, false, true, seed);
      expect_identical(flat_c, ref_c);
      expect_identical(flat_c, ref);
    }
  }
}

class FlatCorpusDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(FlatCorpusDifferential, FlatVsReferenceIdentical) {
  const FlagGuard guard;
  const std::string dir = std::string(DAGSFC_CORPUS_DIR) + "/";
  net::Network network =
      net::network_from_text(slurp(dir + GetParam() + std::string(".net.txt")));
  const sfc::SfcFile file =
      sfc::sfc_from_text(slurp(dir + GetParam() + std::string(".sfc.txt")));
  ASSERT_TRUE(file.flow.has_value());

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  run_differential(index, /*seed=*/1, /*with_cache_arms=*/true);
}

INSTANTIATE_TEST_SUITE_P(Instances, FlatCorpusDifferential,
                         ::testing::Values("ring12", "leafspine14", "waxman20",
                                           "tightline5"),
                         [](const auto& info) { return info.param; });

TEST(FlatDifferential, TwoHundredRandomInstances) {
  const FlagGuard guard;
  sim::ExperimentConfig cfg;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;

  Rng seeder(0xf1a75ea5c4ull);
  for (int i = 0; i < 200; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    run_differential(index, /*seed=*/2000 + i, /*with_cache_arms=*/false);
    if (::testing::Test::HasFailure()) break;  // one instance is enough
  }
}

TEST(FlatDifferential, SharedWorkspaceAcrossSolvesChangesNothing) {
  const FlagGuard guard;
  graph::set_flat_search_default(true);
  auto fx = test::canonical_fixture();
  const core::MbbeEmbedder mbbe;
  graph::SearchWorkspace ws;

  net::CapacityLedger ledger(fx->network);
  Rng rng1(7);
  const auto with_ws = mbbe.solve(*fx->index, ledger, rng1, nullptr, &ws);
  net::CapacityLedger ledger2(fx->network);
  Rng rng2(7);
  const auto again = mbbe.solve(*fx->index, ledger2, rng2, nullptr, &ws);
  net::CapacityLedger ledger3(fx->network);
  Rng rng3(7);
  const auto fresh = mbbe.solve(*fx->index, ledger3, rng3);
  expect_identical(with_ws, fresh);
  expect_identical(again, fresh);  // a dirty workspace is as good as a new one
}

}  // namespace
}  // namespace dagsfc
