#include "core/model.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace dagsfc::core {
namespace {

TEST(EmbeddingProblem, ValidateChecksEverything) {
  auto fx = test::canonical_fixture();
  EXPECT_NO_THROW(fx->problem.validate());

  EmbeddingProblem bad = fx->problem;
  bad.network = nullptr;
  EXPECT_THROW(bad.validate(), ContractViolation);

  bad = fx->problem;
  bad.flow.source = 99;
  EXPECT_THROW(bad.validate(), ContractViolation);

  bad = fx->problem;
  bad.flow.rate = 0.0;
  EXPECT_THROW(bad.validate(), ContractViolation);

  bad = fx->problem;
  bad.flow.size = -1.0;
  EXPECT_THROW(bad.validate(), ContractViolation);
}

TEST(ModelIndex, SlotLayoutForCanonicalFixture) {
  // [f1] -> [f2|f3 (+merger)] → slots: f1, f2, f3, merger.
  auto fx = test::canonical_fixture();
  const ModelIndex& idx = *fx->index;
  const net::VnfCatalog& c = fx->network.catalog();
  ASSERT_EQ(idx.num_slots(), 4u);
  EXPECT_EQ(idx.slot_type(0), c.regular(1));
  EXPECT_EQ(idx.slot_type(1), c.regular(2));
  EXPECT_EQ(idx.slot_type(2), c.regular(3));
  EXPECT_EQ(idx.slot_type(3), c.merger());
  EXPECT_TRUE(idx.is_merger_slot(3));
  EXPECT_FALSE(idx.is_merger_slot(1));
  EXPECT_EQ(idx.slot_layer(0), 0u);
  EXPECT_EQ(idx.slot_layer(3), 1u);
}

TEST(ModelIndex, SlotLookupHelpers) {
  auto fx = test::canonical_fixture();
  const ModelIndex& idx = *fx->index;
  EXPECT_EQ(idx.vnf_slot(0, 0), 0u);
  EXPECT_EQ(idx.vnf_slot(1, 1), 2u);
  EXPECT_EQ(idx.merger_slot(1), 3u);
  EXPECT_EQ(idx.layer_end_slot(0), 0u);  // single VNF
  EXPECT_EQ(idx.layer_end_slot(1), 3u);  // merger
  EXPECT_THROW((void)idx.merger_slot(0), ContractViolation);
  EXPECT_EQ(idx.layer_slots(1).size(), 3u);
}

TEST(ModelIndex, InterLayerGroupsCoverSfcPlusDestinationHop) {
  auto fx = test::canonical_fixture();
  const ModelIndex& idx = *fx->index;
  // Groups: 0 (src→f1), 1 (f1→{f2,f3}), 2 (merger→t).
  EXPECT_EQ(idx.num_inter_groups(), 3u);
  ASSERT_EQ(idx.inter_paths().size(), 4u);

  auto [f0, l0] = idx.inter_group_range(0);
  EXPECT_EQ(l0 - f0, 1u);
  EXPECT_EQ(idx.inter_paths()[f0].from.kind, SlotRef::Kind::Source);
  EXPECT_EQ(idx.inter_paths()[f0].to, SlotRef::of(0));

  auto [f1, l1] = idx.inter_group_range(1);
  EXPECT_EQ(l1 - f1, 2u);
  EXPECT_EQ(idx.inter_paths()[f1].from, SlotRef::of(0));
  EXPECT_EQ(idx.inter_paths()[f1].to, SlotRef::of(1));
  EXPECT_EQ(idx.inter_paths()[f1 + 1].to, SlotRef::of(2));

  auto [f2, l2] = idx.inter_group_range(2);
  EXPECT_EQ(l2 - f2, 1u);
  EXPECT_EQ(idx.inter_paths()[f2].from, SlotRef::of(3));  // merger
  EXPECT_EQ(idx.inter_paths()[f2].to.kind, SlotRef::Kind::Destination);
}

TEST(ModelIndex, InnerLayerPathsOnlyForParallelLayers) {
  auto fx = test::canonical_fixture();
  const ModelIndex& idx = *fx->index;
  ASSERT_EQ(idx.inner_paths().size(), 2u);
  auto [f0, l0] = idx.inner_layer_range(0);
  EXPECT_EQ(f0, l0);  // single-VNF layer: none
  auto [f1, l1] = idx.inner_layer_range(1);
  EXPECT_EQ(l1 - f1, 2u);
  EXPECT_EQ(idx.inner_paths()[f1].from, SlotRef::of(1));
  EXPECT_EQ(idx.inner_paths()[f1].to, SlotRef::of(3));
  EXPECT_EQ(idx.inner_paths()[f1 + 1].from, SlotRef::of(2));
}

TEST(ModelIndex, AllSequentialSfcHasNoMergerSlots) {
  test::NetBuilder b(3, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0);
  b.put(1, 1, 1.0).put(1, 2, 1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      Flow{0, 2, 1.0, 1.0});
  EXPECT_EQ(fx->index->num_slots(), 2u);
  EXPECT_TRUE(fx->index->inner_paths().empty());
  EXPECT_EQ(fx->index->num_inter_groups(), 3u);
}

TEST(ModelIndex, WideSingleLayer) {
  test::NetBuilder b(2, 4);
  b.link(0, 1, 1.0);
  for (net::VnfTypeId t = 1; t <= 4; ++t) b.put(0, t, 1.0);
  b.put(0, b.merger(), 1.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1, 2, 3, 4}}}),
      Flow{0, 1, 1.0, 1.0});
  EXPECT_EQ(fx->index->num_slots(), 5u);  // 4 VNFs + merger
  EXPECT_EQ(fx->index->inner_paths().size(), 4u);
  auto [f, l] = fx->index->inter_group_range(0);
  EXPECT_EQ(l - f, 4u);
}

}  // namespace
}  // namespace dagsfc::core
