#include "net/io.hpp"
#include "sfc/io.hpp"

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

namespace dagsfc {
namespace {

TEST(NetworkIo, RoundTripCanonicalFixture) {
  auto fx = test::canonical_fixture();
  const std::string text = net::to_text(fx->network);
  const net::Network parsed = net::network_from_text(text);

  EXPECT_EQ(parsed.num_nodes(), fx->network.num_nodes());
  EXPECT_EQ(parsed.num_links(), fx->network.num_links());
  EXPECT_EQ(parsed.num_instances(), fx->network.num_instances());
  EXPECT_EQ(parsed.catalog().num_regular(),
            fx->network.catalog().num_regular());
  for (graph::EdgeId e = 0; e < parsed.num_links(); ++e) {
    EXPECT_DOUBLE_EQ(parsed.link_price(e), fx->network.link_price(e));
    EXPECT_DOUBLE_EQ(parsed.link_capacity(e), fx->network.link_capacity(e));
  }
  for (net::InstanceId id = 0; id < parsed.num_instances(); ++id) {
    EXPECT_EQ(parsed.instance(id).node, fx->network.instance(id).node);
    EXPECT_EQ(parsed.instance(id).type, fx->network.instance(id).type);
    EXPECT_DOUBLE_EQ(parsed.instance(id).price,
                     fx->network.instance(id).price);
  }
}

TEST(NetworkIo, RoundTripIsIdempotentText) {
  auto fx = test::canonical_fixture();
  const std::string once = net::to_text(fx->network);
  const std::string twice = net::to_text(net::network_from_text(once));
  EXPECT_EQ(once, twice);
}

TEST(NetworkIo, RoundTripGeneratedScenario) {
  Rng rng(3);
  sim::ExperimentConfig cfg;
  cfg.network_size = 50;
  cfg.catalog_size = 6;
  const sim::Scenario s = sim::make_scenario(rng, cfg);
  const net::Network parsed = net::network_from_text(net::to_text(s.network));
  EXPECT_EQ(parsed.num_instances(), s.network.num_instances());
  EXPECT_DOUBLE_EQ(parsed.mean_vnf_price(), s.network.mean_vnf_price());
  EXPECT_DOUBLE_EQ(parsed.mean_link_price(), s.network.mean_link_price());
}

TEST(NetworkIo, CustomNamesSurvive) {
  net::VnfCatalog c({"firewall", "ids"});
  graph::Graph g(2);
  (void)g.add_edge(0, 1, 1.0);
  net::Network n(std::move(g), c);
  (void)n.deploy(0, 1, 2.0, 3.0);
  const net::Network parsed = net::network_from_text(net::to_text(n));
  EXPECT_EQ(parsed.catalog().name(1), "firewall");
  EXPECT_EQ(parsed.catalog().name(2), "ids");
}

TEST(NetworkIo, MergerKeywordParses) {
  const std::string text =
      "catalog 2\nnodes 2\nlink 0 1 1.5 10\nvnf 1 merger 2.5 4\n";
  const net::Network n = net::network_from_text(text);
  EXPECT_TRUE(n.has_vnf(1, n.catalog().merger()));
}

TEST(NetworkIo, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const std::string& frag) {
    try {
      (void)net::network_from_text(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(frag), std::string::npos)
          << e.what();
    }
  };
  expect_error("nodes 2\nlink 0 1 1 1\n", "missing catalog");
  expect_error("catalog 2\n", "missing nodes");
  expect_error("catalog 2\nnodes 2\nlink 0 9 1 1\n", "line 3");
  expect_error("catalog 2\nnodes 2\nbogus 1\n", "unknown keyword");
  expect_error("catalog 2\nnodes 2\nvnf 0 7 1 1\n", "out of range");
  expect_error("catalog 2\nnodes 2\nvnf 0 1\n", "vnf needs");
  expect_error("catalog 2\nnodes 2\nlink 0 0 1 1\n", "self loops");
}

TEST(SfcIo, RoundTripStructure) {
  const sfc::DagSfc dag({sfc::Layer{{1}}, sfc::Layer{{2, 3, 4}},
                         sfc::Layer{{5, 6}}});
  const sfc::SfcFile parsed = sfc::sfc_from_text(sfc::to_text(dag));
  ASSERT_EQ(parsed.dag.num_layers(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(parsed.dag.layer(l).vnfs, dag.layer(l).vnfs);
  }
  EXPECT_FALSE(parsed.flow.has_value());
}

TEST(SfcIo, FlowLineRoundTrips) {
  const sfc::DagSfc dag({sfc::Layer{{1, 2}}});
  sfc::SfcFile::Flow f{3, 9, 2.0, 4.5};
  const sfc::SfcFile parsed = sfc::sfc_from_text(sfc::to_text(dag, f));
  ASSERT_TRUE(parsed.flow.has_value());
  EXPECT_EQ(parsed.flow->source, 3u);
  EXPECT_EQ(parsed.flow->destination, 9u);
  EXPECT_DOUBLE_EQ(parsed.flow->rate, 2.0);
  EXPECT_DOUBLE_EQ(parsed.flow->size, 4.5);
}

TEST(SfcIo, ParseErrors) {
  EXPECT_THROW((void)sfc::sfc_from_text(""), std::invalid_argument);
  EXPECT_THROW((void)sfc::sfc_from_text("layer\n"), std::invalid_argument);
  EXPECT_THROW((void)sfc::sfc_from_text("layer 1 x\n"),
               std::invalid_argument);
  EXPECT_THROW((void)sfc::sfc_from_text("chain 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)sfc::sfc_from_text("layer 1\nflow 0 1\n"),
               std::invalid_argument);
}

TEST(SfcIo, CommentsAndBlanksIgnored) {
  const sfc::SfcFile parsed = sfc::sfc_from_text(
      "# header\n\nlayer 1 2\n  \n# trailing\nlayer 3\n");
  EXPECT_EQ(parsed.dag.num_layers(), 2u);
}

TEST(Io, MutatedTextNeverCrashesTheParsers) {
  // Fuzz-lite: random single-character mutations of valid documents must
  // either parse or throw std::invalid_argument — never crash or hang.
  auto fx = test::canonical_fixture();
  const std::string net_text = net::to_text(fx->network);
  const std::string sfc_text =
      sfc::to_text(fx->dag, sfc::SfcFile::Flow{0, 4, 1.0, 1.0});
  Rng rng(0xF022);
  const std::string charset = "abcxyz0189 .-#\nmerger";
  for (int trial = 0; trial < 200; ++trial) {
    std::string n = net_text;
    std::string s = sfc_text;
    for (int m = 0; m < 3; ++m) {
      n[rng.index(n.size())] = charset[rng.index(charset.size())];
      s[rng.index(s.size())] = charset[rng.index(charset.size())];
    }
    try {
      (void)net::network_from_text(n);
    } catch (const std::invalid_argument&) {
    } catch (const ContractViolation&) {
    }
    try {
      (void)sfc::sfc_from_text(s);
    } catch (const std::invalid_argument&) {
    } catch (const ContractViolation&) {
    }
  }
}

TEST(Io, FullProblemRoundTripSolvesIdentically) {
  // Serialize the canonical fixture, reload it, and confirm MBBE returns
  // the same cost on the reloaded instance.
  auto fx = test::canonical_fixture();
  const std::string net_text = net::to_text(fx->network);
  const std::string sfc_text = sfc::to_text(
      fx->dag, sfc::SfcFile::Flow{fx->problem.flow.source,
                                  fx->problem.flow.destination,
                                  fx->problem.flow.rate,
                                  fx->problem.flow.size});
  net::Network network = net::network_from_text(net_text);
  const sfc::SfcFile file = sfc::sfc_from_text(sfc_text);
  ASSERT_TRUE(file.flow.has_value());
  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  const core::MbbeEmbedder mbbe;
  Rng rng(1);
  const auto reloaded = mbbe.solve_fresh(index, rng);
  const auto original = mbbe.solve_fresh(*fx->index, rng);
  ASSERT_TRUE(reloaded.ok() && original.ok());
  EXPECT_DOUBLE_EQ(reloaded.cost, original.cost);
}

}  // namespace
}  // namespace dagsfc
