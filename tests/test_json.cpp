/// Tests for util/json.hpp: full JSON string escaping (the bench JSON line
/// previously shipped a partial escaper that corrupted control characters)
/// and deterministic number rendering.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/json.hpp"

namespace dagsfc::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
}

TEST(JsonEscape, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  // NUL embedded in a std::string must not truncate the output.
  EXPECT_EQ(json_escape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, PassesUtf8BytesThrough) {
  const std::string snowman = "\xe2\x98\x83";
  EXPECT_EQ(json_escape("x" + snowman + "y"), "x" + snowman + "y");
}

TEST(JsonNumber, IntegralValuesPrintWithoutFraction) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
}

TEST(JsonNumber, FractionalValuesRoundTrip) {
  for (double v : {0.1, 1.0 / 3.0, 123.456, -2.718281828459045}) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(JsonNumber, NonFiniteValuesBecomeNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, HugeIntegralValuesUseScientificPath) {
  // Beyond 2^53 the integer fast path is skipped; output still parses back.
  const double v = 1e300;
  EXPECT_EQ(std::stod(json_number(v)), v);
}

}  // namespace
}  // namespace dagsfc::util
