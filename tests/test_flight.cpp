/// Tail-sampled flight-recorder tests: the trigger predicate, trigger-name
/// rendering, FIFO eviction and byte-stable JSON dumps, and the end-to-end
/// promotion paths through both service planes — a forced commit-conflict
/// loser (LostConflict), a forced slow request (latency trigger, with its
/// trace id surfacing as a histogram exemplar in the JSON exposition and
/// its trace retrievable byte-stably via GET /debug/traces.json), a
/// watchdog-flagged request, and a shard-plane refusal.

#include "serve/trace.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <future>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "shard/service.hpp"
#include "shard/substrate.hpp"
#include "sim/regional.hpp"
#include "test_helpers.hpp"

namespace dagsfc::serve {
namespace {

using test::NetBuilder;

// ------------------------------------------------------------- triggers --

TEST(TraceTriggers, EvaluatePredicateMatchesSpec) {
  TracingOptions opts;  // defaults: lost_conflict + watchdog on
  EXPECT_EQ(evaluate_triggers(opts, Outcome::Accepted, 1.0, false), 0);
  EXPECT_EQ(evaluate_triggers(opts, Outcome::LostConflict, 1.0, false),
            kTriggerLostConflict);
  EXPECT_EQ(evaluate_triggers(opts, Outcome::Accepted, 1.0, true),
            kTriggerWatchdog);
  // Refusals are off by default...
  EXPECT_EQ(evaluate_triggers(opts, Outcome::RejectedInfeasible, 1.0, false),
            0);
  opts.on_refusal = true;
  for (const Outcome o :
       {Outcome::RejectedInfeasible, Outcome::RejectedQueueFull,
        Outcome::SheddedDeadline}) {
    EXPECT_EQ(evaluate_triggers(opts, o, 1.0, false), kTriggerRefusal);
  }
  // ...and the latency trigger only exists once a threshold is set.
  EXPECT_EQ(evaluate_triggers(opts, Outcome::Accepted, 1e9, false), 0);
  opts.latency_over = std::chrono::milliseconds(10);
  EXPECT_EQ(evaluate_triggers(opts, Outcome::Accepted, 9.99, false), 0);
  EXPECT_EQ(evaluate_triggers(opts, Outcome::Accepted, 10.0, false),
            kTriggerLatency);
  // Bits compose: a slow lost-conflict carries both.
  EXPECT_EQ(evaluate_triggers(opts, Outcome::LostConflict, 50.0, false),
            kTriggerLatency | kTriggerLostConflict);
  // Toggles mask their bits.
  opts.on_lost_conflict = false;
  opts.on_watchdog = false;
  EXPECT_EQ(evaluate_triggers(opts, Outcome::LostConflict, 1.0, true), 0);
}

TEST(TraceTriggers, NamesRenderInBitOrder) {
  EXPECT_EQ(trigger_names(0), "");
  EXPECT_EQ(trigger_names(kTriggerLatency), "latency");
  EXPECT_EQ(trigger_names(kTriggerLatency | kTriggerWatchdog),
            "latency,watchdog");
  EXPECT_EQ(trigger_names(kTriggerLostConflict | kTriggerRefusal),
            "lost_conflict,refusal");
}

// ------------------------------------------------------ flight recorder --

FlightTrace make_trace(RequestId id, std::uint8_t triggers) {
  FlightTrace t;
  t.trace_id = id;
  t.triggers = triggers;
  t.outcome = Outcome::LostConflict;
  t.latency_ms = 2.5;
  util::SpanRecord s;
  s.trace_id = id;
  s.kind = static_cast<std::uint8_t>(SpanKind::kCommit);
  s.detail = static_cast<std::uint8_t>(CommitClass::kConflict);
  s.t0_ns = 100;
  s.t1_ns = 200;
  s.arg = 3;
  t.spans.push_back(s);
  return t;
}

TEST(FlightRecorder, EvictsFifoAndCountsEveryPromotion) {
  FlightRecorder rec(2);
  EXPECT_EQ(rec.capacity(), 2u);
  rec.promote(make_trace(1, kTriggerLostConflict));
  rec.promote(make_trace(2, kTriggerLostConflict));
  rec.promote(make_trace(3, kTriggerLatency));
  EXPECT_EQ(rec.promoted(), 3u);
  const std::vector<FlightTrace> kept = rec.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace_id, 2u);  // oldest retained first; 1 was evicted
  EXPECT_EQ(kept[1].trace_id, 3u);
}

TEST(FlightRecorder, ToJsonIsByteStableAndStructured) {
  FlightRecorder rec(4);
  rec.promote(make_trace(9, kTriggerLatency | kTriggerLostConflict));
  const std::string a = rec.to_json();
  const std::string b = rec.to_json();
  EXPECT_EQ(a, b);  // same retained set → same bytes
  EXPECT_NE(a.find("\"promoted\":1"), std::string::npos);
  EXPECT_NE(a.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(a.find("\"trace_id\":9"), std::string::npos);
  EXPECT_NE(a.find("\"triggers\":[\"latency\",\"lost_conflict\"]"),
            std::string::npos);
  EXPECT_NE(a.find("\"outcome\":\"lost_conflict\""), std::string::npos);
  EXPECT_NE(a.find("\"kind\":\"commit\",\"detail\":\"conflict\""),
            std::string::npos);

  // The Chrome export holds one complete event per span.
  const std::string chrome = rec.to_chrome();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"commit/conflict\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------- service promotion --

/// One-slot fixture shared with test_serve.cpp: a 3-node line whose single
/// f1 instance (capacity 1) admits exactly one rate-1 flow.
net::Network one_slot_network() {
  NetBuilder b(3, 1);
  b.link(0, 1, 1.0, 10.0).link(1, 2, 1.0, 10.0);
  b.put(1, 1, 5.0, 1.0);
  return b.build();
}

Request one_slot_request(RequestId id) {
  Request req;
  req.id = id;
  req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  req.flow = core::Flow{0, 2, 1.0, 1.0};
  return req;
}

/// The first two solves rendezvous *after* solving and *before* returning,
/// so both hold solutions from pre-commit snapshots — guaranteeing the
/// second commit faces a moved epoch (same device as test_serve.cpp).
class RendezvousEmbedder : public core::Embedder {
 public:
  explicit RendezvousEmbedder(const core::Embedder& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return "rendezvous"; }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink*,
      graph::SearchWorkspace* workspace) const override {
    core::SolveResult r = inner_->solve(index, ledger, rng, nullptr, workspace);
    if (calls_.fetch_add(1) < 2) sync_.arrive_and_wait();
    return r;
  }

 private:
  const core::Embedder* inner_;
  mutable std::atomic<int> calls_{0};
  mutable std::barrier<> sync_{2};
};

/// Every solve signals entry, then blocks until released — holding the
/// request in flight for as long as the test wants.
class HoldEmbedder : public core::Embedder {
 public:
  explicit HoldEmbedder(const core::Embedder& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return "hold"; }

  void wait_entered() const { entered_.acquire(); }
  void release(std::ptrdiff_t permits = 1) const { gate_.release(permits); }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink*,
      graph::SearchWorkspace* workspace) const override {
    entered_.release();
    gate_.acquire();
    return inner_->solve(index, ledger, rng, nullptr, workspace);
  }

 private:
  const core::Embedder* inner_;
  mutable std::counting_semaphore<64> entered_{0};
  mutable std::counting_semaphore<64> gate_{0};
};

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// The acceptance scenario in one test: a forced conflicted request lands
/// in the flight recorder with queue-wait, solve, and per-commit-attempt
/// spans, and GET /debug/traces.json serves the identical dump twice.
TEST(FlightPromotion, LostConflictTraceIsPromotedAndServed) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  const RendezvousEmbedder rendezvous(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 2;
  opts.admission.max_retries = 0;  // the conflicted loser terminates at once
  opts.tracing.enabled = true;
  EmbeddingService service(network, rendezvous, opts);

  auto f1 = service.submit(one_slot_request(1));
  auto f2 = service.submit(one_slot_request(2));
  const Response r1 = f1.get();
  const Response r2 = f2.get();
  const Response& lost = r1.accepted() ? r2 : r1;
  ASSERT_EQ(lost.outcome, Outcome::LostConflict);

  const FlightRecorder* flight = service.flight_recorder();
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->promoted(), 1u);  // the winner matched no trigger
  const std::vector<FlightTrace> traces = flight->snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const FlightTrace& t = traces[0];
  EXPECT_EQ(t.trace_id, lost.id);
  EXPECT_EQ(t.triggers, kTriggerLostConflict);
  EXPECT_EQ(t.outcome, Outcome::LostConflict);
  EXPECT_EQ(t.dropped_spans, 0u);

  // queue wait → feasible solve → conflicted commit → lost outcome.
  ASSERT_EQ(t.spans.size(), 4u);
  EXPECT_EQ(t.spans[0].kind, static_cast<std::uint8_t>(SpanKind::kQueueWait));
  EXPECT_EQ(t.spans[1].kind, static_cast<std::uint8_t>(SpanKind::kSolve));
  EXPECT_EQ(t.spans[1].detail, 1);  // the losing solution was feasible
  EXPECT_EQ(t.spans[2].kind, static_cast<std::uint8_t>(SpanKind::kCommit));
  EXPECT_EQ(t.spans[2].detail,
            static_cast<std::uint8_t>(CommitClass::kConflict));
  EXPECT_EQ(t.spans[3].kind, static_cast<std::uint8_t>(SpanKind::kOutcome));
  for (const util::SpanRecord& s : t.spans) EXPECT_EQ(s.trace_id, lost.id);

  // Byte-stable over HTTP: two scrapes of a quiescent recorder are
  // identical, and the body is exactly the recorder's own dump.
  MetricsHttpServer::Options hopts;
  hopts.flight = flight;
  const MetricsHttpServer server(service.metrics_registry(), 0, hopts);
  const std::string a = http_get(server.port(), "/debug/traces.json");
  const std::string b = http_get(server.port(), "/debug/traces.json");
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(a.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(a.substr(a.find("\r\n\r\n") + 4), flight->to_json());
}

TEST(FlightPromotion, SlowRequestTripsLatencyTriggerAndExemplar) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  const HoldEmbedder hold(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 1;
  opts.tracing.enabled = true;
  opts.tracing.latency_over = std::chrono::milliseconds(5);
  EmbeddingService service(network, hold, opts);

  auto fut = service.submit(one_slot_request(1));
  hold.wait_entered();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hold.release(8);  // permits for the solve plus any retries
  const Response r = fut.get();
  ASSERT_EQ(r.outcome, Outcome::Accepted);
  ASSERT_GE(r.queue_ms + r.solve_ms, 5.0);

  const FlightRecorder* flight = service.flight_recorder();
  ASSERT_EQ(flight->promoted(), 1u);
  const FlightTrace t = flight->snapshot().at(0);
  EXPECT_EQ(t.trace_id, 1u);
  EXPECT_TRUE(t.triggers & kTriggerLatency);
  EXPECT_GE(t.latency_ms, 5.0);

  // The worst request's trace id rides the latency histogram into the JSON
  // exposition as an exemplar.
  const std::string json = service.metrics_registry().expose_json();
  const std::size_t family = json.find("\"dagsfc_serve_latency_ms\"");
  ASSERT_NE(family, std::string::npos);
  const std::size_t exemplars = json.find("\"exemplars\":[", family);
  ASSERT_NE(exemplars, std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":1", exemplars), std::string::npos);
}

TEST(FlightPromotion, WatchdogFlagPromotesTheFlaggedRequest) {
  const net::Network network = one_slot_network();
  const core::MbbeEmbedder mbbe;
  const HoldEmbedder hold(mbbe);
  EmbeddingService::Options opts;
  opts.workers = 1;
  opts.slow_solve_threshold = std::chrono::milliseconds(5);
  opts.watchdog_period = std::chrono::milliseconds(1);
  opts.tracing.enabled = true;
  EmbeddingService service(network, hold, opts);

  auto fut = service.submit(one_slot_request(1));
  hold.wait_entered();
  // Hold until the watchdog has sampled the in-flight request.
  while (service.metrics().slow_solves == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hold.release(8);
  const Response r = fut.get();
  ASSERT_EQ(r.outcome, Outcome::Accepted);
  EXPECT_TRUE(r.watchdog_flagged);

  const FlightRecorder* flight = service.flight_recorder();
  ASSERT_EQ(flight->promoted(), 1u);
  EXPECT_TRUE(flight->snapshot().at(0).triggers & kTriggerWatchdog);
}

// ---------------------------------------------------------- shard plane --

TEST(FlightPromotionShard, RefusalTraceCarriesPerCandidateSolves) {
  Rng rng(11);
  sim::RegionalConfig rcfg;
  rcfg.base.catalog_size = 8;
  rcfg.base.sfc_size = 3;
  rcfg.base.trials = 1;
  rcfg.regions.regions = 3;
  rcfg.regions.nodes_per_region = 8;
  const sim::RegionalScenario scenario = sim::make_regional_scenario(rng, rcfg);
  const shard::ShardedSubstrate substrate(
      scenario.network, shard::RegionPartition::from_labels(scenario.region_of));

  shard::ShardedEmbeddingService::Options opts;
  opts.tracing.enabled = true;
  opts.tracing.on_refusal = true;
  shard::ShardedEmbeddingService service(substrate, opts);
  ASSERT_NE(service.span_recorder(), nullptr);
  // One span lane per (shard, worker).
  EXPECT_EQ(service.span_recorder()->num_lanes(), substrate.num_regions());

  // A rate far above any capacity: every candidate solve is infeasible, so
  // the request refuses and — with on_refusal — promotes.
  Request req;
  req.id = 77;
  req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  req.flow = core::Flow{0, static_cast<graph::NodeId>(
                               scenario.network.num_nodes() - 1),
                        1e9, 1.0};
  const Response r = service.submit(std::move(req)).get();
  ASSERT_EQ(r.outcome, Outcome::RejectedInfeasible);

  const FlightRecorder* flight = service.flight_recorder();
  ASSERT_NE(flight, nullptr);
  ASSERT_EQ(flight->promoted(), 1u);
  const FlightTrace t = flight->snapshot().at(0);
  EXPECT_EQ(t.trace_id, 77u);
  EXPECT_EQ(t.triggers, kTriggerRefusal);
  EXPECT_EQ(t.outcome, Outcome::RejectedInfeasible);

  // queue wait, one infeasible solve per stage-one candidate (its index in
  // arg), and the outcome span; no commit was ever attempted.
  ASSERT_GE(t.spans.size(), 3u);
  EXPECT_EQ(t.spans.front().kind,
            static_cast<std::uint8_t>(SpanKind::kQueueWait));
  EXPECT_EQ(t.spans.back().kind,
            static_cast<std::uint8_t>(SpanKind::kOutcome));
  for (std::size_t i = 1; i + 1 < t.spans.size(); ++i) {
    EXPECT_EQ(t.spans[i].kind, static_cast<std::uint8_t>(SpanKind::kSolve));
    EXPECT_EQ(t.spans[i].detail, 0);  // infeasible
    EXPECT_EQ(t.spans[i].arg, static_cast<std::uint64_t>(i - 1));
  }
  EXPECT_EQ(static_cast<std::size_t>(r.solves), t.spans.size() - 2);
}

}  // namespace
}  // namespace dagsfc::serve
