/// MVCC battery: per-resource version stamps, footprint-scoped validation,
/// the mutation journal and replica sync, and the concurrent conflict
/// battery through EmbeddingService — the second ThreadSanitizer target of
/// scripts/check.sh.
///
/// The core of the file is the shadow-ledger fuzz: a long random
/// interleaving of can_apply / apply / unapply footprints is mirrored into
/// a plain-array oracle, and after every step the real ledger must agree
/// bitwise on residuals, epochs and stamps. Rates are dyadic (0.25 .. 2.0)
/// against power-of-two capacities, so every debit/credit is exact in
/// binary floating point and "conserves" means *bitwise* restoration.

#include "net/ledger.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <span>
#include <thread>
#include <vector>

#include "core/backtracking.hpp"
#include "serve/service.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace dagsfc {
namespace {

using test::NetBuilder;

// ---------------------------------------------------------------- stamps --

TEST(MvccStamps, StartAtZeroAndRecordTheMutatingEpoch) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger led(fx->network);

  EXPECT_EQ(led.epoch(), 0u);
  for (graph::EdgeId e = 0; e < fx->network.num_links(); ++e) {
    EXPECT_EQ(led.link_stamp(e), 0u);
  }
  for (net::InstanceId i = 0; i < fx->network.num_instances(); ++i) {
    EXPECT_EQ(led.instance_stamp(i), 0u);
  }

  led.consume_link(2, 1.0);
  EXPECT_EQ(led.epoch(), 1u);
  EXPECT_EQ(led.link_stamp(2), 1u);
  EXPECT_EQ(led.link_stamp(0), 0u);  // untouched resources keep their stamp

  led.consume_instance(0, 1.0);
  EXPECT_EQ(led.epoch(), 2u);
  EXPECT_EQ(led.instance_stamp(0), 2u);
  EXPECT_EQ(led.link_stamp(2), 1u);

  // Credits stamp too: a departure invalidates snapshots just like a debit.
  led.release_link(2, 1.0);
  EXPECT_EQ(led.epoch(), 3u);
  EXPECT_EQ(led.link_stamp(2), 3u);
}

TEST(MvccStamps, FootprintValidationScopesToTouchedResources) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger led(fx->network);

  // Footprint: links {0, 1}, instance {0}.
  const std::vector<std::uint32_t> links{1, 1};
  const std::vector<std::uint32_t> insts{1};
  const std::uint64_t snap = led.epoch();
  EXPECT_TRUE(led.footprint_unchanged_since(links, insts, snap));

  // Mutations strictly outside the footprint never invalidate it.
  led.consume_link(3, 1.0);
  led.consume_instance(2, 1.0);
  EXPECT_TRUE(led.footprint_unchanged_since(links, insts, snap));

  // A zero count is "not in the footprint" even though the span covers it.
  const std::vector<std::uint32_t> sparse{0, 0, 0, 1};
  EXPECT_FALSE(led.footprint_unchanged_since(sparse, {}, snap));

  // Touching any counted resource invalidates, debit or credit alike.
  led.consume_link(0, 1.0);
  EXPECT_FALSE(led.footprint_unchanged_since(links, insts, snap));
  const std::uint64_t snap2 = led.epoch();
  EXPECT_TRUE(led.footprint_unchanged_since(links, insts, snap2));
  led.release_link(0, 1.0);
  EXPECT_FALSE(led.footprint_unchanged_since(links, insts, snap2));

  // Instance stamps gate exactly like link stamps.
  const std::uint64_t snap3 = led.epoch();
  led.consume_instance(0, 1.0);
  EXPECT_FALSE(led.footprint_unchanged_since(links, insts, snap3));
  EXPECT_TRUE(led.footprint_unchanged_since(links, {}, snap3));

  // The empty footprint is trivially unchanged forever.
  EXPECT_TRUE(led.footprint_unchanged_since({}, {}, 0));
}

// ------------------------------------------------------- shadow-led fuzz --

/// Plain-array oracle mirroring the exact mutation semantics the ledger
/// documents: one epoch bump per touched resource, instances before links
/// (the apply/unapply order), stamp = the bumped epoch.
struct ShadowLedger {
  std::vector<double> link, inst;
  std::vector<double> link_cap, inst_cap;
  std::vector<std::uint64_t> link_stamp, inst_stamp;
  std::uint64_t epoch = 0;

  explicit ShadowLedger(const net::Network& n) {
    for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
      link.push_back(n.link_capacity(e));
      link_cap.push_back(n.link_capacity(e));
    }
    for (net::InstanceId i = 0; i < n.num_instances(); ++i) {
      inst.push_back(n.instance(i).capacity);
      inst_cap.push_back(n.instance(i).capacity);
    }
    link_stamp.assign(link.size(), 0);
    inst_stamp.assign(inst.size(), 0);
  }

  [[nodiscard]] bool can_apply(std::span<const std::uint32_t> lu,
                               std::span<const std::uint32_t> iu,
                               double rate) const {
    for (std::size_t i = 0; i < iu.size(); ++i) {
      if (iu[i] > 0 && inst[i] < static_cast<double>(iu[i]) * rate) {
        return false;
      }
    }
    for (std::size_t e = 0; e < lu.size(); ++e) {
      if (lu[e] > 0 && link[e] < static_cast<double>(lu[e]) * rate) {
        return false;
      }
    }
    return true;
  }

  void apply(std::span<const std::uint32_t> lu,
             std::span<const std::uint32_t> iu, double rate, double sign) {
    for (std::size_t i = 0; i < iu.size(); ++i) {
      if (iu[i] > 0) {
        inst[i] -= sign * static_cast<double>(iu[i]) * rate;
        inst_stamp[i] = ++epoch;
      }
    }
    for (std::size_t e = 0; e < lu.size(); ++e) {
      if (lu[e] > 0) {
        link[e] -= sign * static_cast<double>(lu[e]) * rate;
        link_stamp[e] = ++epoch;
      }
    }
  }

  [[nodiscard]] bool unchanged_since(std::span<const std::uint32_t> lu,
                                     std::span<const std::uint32_t> iu,
                                     std::uint64_t since) const {
    for (std::size_t i = 0; i < iu.size(); ++i) {
      if (iu[i] > 0 && inst_stamp[i] > since) return false;
    }
    for (std::size_t e = 0; e < lu.size(); ++e) {
      if (lu[e] > 0 && link_stamp[e] > since) return false;
    }
    return true;
  }
};

struct AppliedFootprint {
  std::vector<std::uint32_t> links, insts;
  double rate = 0.0;
};

/// 5-node ring + two chords, power-of-two capacities; three instances.
net::Network fuzz_network() {
  NetBuilder b(5, 2);
  b.link(0, 1, 1.0, 64.0).link(1, 2, 1.0, 64.0).link(2, 3, 1.0, 64.0);
  b.link(3, 4, 1.0, 64.0).link(4, 0, 1.0, 64.0);
  b.link(0, 2, 1.0, 32.0).link(1, 3, 1.0, 32.0);
  b.put(1, 1, 5.0, 64.0).put(3, 2, 5.0, 64.0).put(2, 1, 5.0, 32.0);
  return b.build();
}

TEST(MvccFuzz, RandomFootprintInterleavingsAgreeWithAShadowOracle) {
  const net::Network network = fuzz_network();
  net::CapacityLedger led(network);
  led.set_cache_enabled(false);  // pure ledger semantics under test
  ShadowLedger shadow(network);
  Rng rng(0xfeedface);

  const std::size_t L = network.num_links();
  const std::size_t I = network.num_instances();
  constexpr double kRates[] = {0.25, 0.5, 1.0, 2.0};

  auto random_footprint = [&](AppliedFootprint& f) {
    f.links.assign(L, 0);
    f.insts.assign(I, 0);
    bool any = false;
    for (auto& c : f.links) {
      c = static_cast<std::uint32_t>(rng.index(3));
      any |= c > 0;
    }
    for (auto& c : f.insts) {
      c = static_cast<std::uint32_t>(rng.index(3));
      any |= c > 0;
    }
    if (!any) f.links[rng.index(L)] = 1;
    f.rate = kRates[rng.index(4)];
  };

  auto check_equal = [&] {
    ASSERT_EQ(led.epoch(), shadow.epoch);
    for (graph::EdgeId e = 0; e < L; ++e) {
      ASSERT_EQ(led.link_residual(e), shadow.link[e]) << "link " << e;
      ASSERT_EQ(led.link_stamp(e), shadow.link_stamp[e]) << "link " << e;
      ASSERT_LE(led.link_stamp(e), led.epoch());
    }
    for (net::InstanceId i = 0; i < I; ++i) {
      ASSERT_EQ(led.instance_residual(i), shadow.inst[i]) << "inst " << i;
      ASSERT_EQ(led.instance_stamp(i), shadow.inst_stamp[i]) << "inst " << i;
      ASSERT_LE(led.instance_stamp(i), led.epoch());
    }
  };

  // A rolling validation snapshot: (epoch, residual copies) refreshed every
  // 16 steps, probed every step for the stamp-exactness property.
  std::uint64_t snap_epoch = 0;
  std::vector<double> snap_link = shadow.link;
  std::vector<double> snap_inst = shadow.inst;

  std::vector<AppliedFootprint> outstanding;
  std::vector<std::uint64_t> prev_link_stamp(L, 0), prev_inst_stamp(I, 0);
  AppliedFootprint f;

  for (int step = 0; step < 4000; ++step) {
    const std::size_t op = rng.index(100);
    if (op < 55 || outstanding.empty()) {
      random_footprint(f);
      const bool fits = shadow.can_apply(f.links, f.insts, f.rate);
      ASSERT_EQ(led.can_apply(f.links, f.insts, f.rate), fits) << step;
      if (fits) {
        led.apply(f.links, f.insts, f.rate);
        shadow.apply(f.links, f.insts, f.rate, +1.0);
        outstanding.push_back(f);
      }
    } else {
      const std::size_t pick = rng.index(outstanding.size());
      const AppliedFootprint take = outstanding[pick];
      outstanding[pick] = outstanding.back();
      outstanding.pop_back();
      led.unapply(take.links, take.insts, take.rate);
      shadow.apply(take.links, take.insts, take.rate, -1.0);
    }

    check_equal();
    if (HasFatalFailure()) return;

    // Stamps are monotone per resource.
    for (graph::EdgeId e = 0; e < L; ++e) {
      ASSERT_GE(led.link_stamp(e), prev_link_stamp[e]);
      prev_link_stamp[e] = led.link_stamp(e);
    }
    for (net::InstanceId i = 0; i < I; ++i) {
      ASSERT_GE(led.instance_stamp(i), prev_inst_stamp[i]);
      prev_inst_stamp[i] = led.instance_stamp(i);
    }

    // Validation probe: the ledger's verdict matches the shadow stamps, and
    // an unchanged verdict really does mean "the snapshot residuals of the
    // footprint are the live residuals, bitwise" — the exactness the serve
    // layer's stamp-validated commit rides on.
    random_footprint(f);
    const bool unchanged = shadow.unchanged_since(f.links, f.insts, snap_epoch);
    ASSERT_EQ(led.footprint_unchanged_since(f.links, f.insts, snap_epoch),
              unchanged)
        << step;
    if (unchanged) {
      for (graph::EdgeId e = 0; e < L; ++e) {
        if (f.links[e] > 0) {
          ASSERT_EQ(led.link_residual(e), snap_link[e]);
        }
      }
      for (net::InstanceId i = 0; i < I; ++i) {
        if (f.insts[i] > 0) {
          ASSERT_EQ(led.instance_residual(i), snap_inst[i]);
        }
      }
    }

    if (step % 16 == 0) {
      snap_epoch = led.epoch();
      snap_link = shadow.link;
      snap_inst = shadow.inst;
    }
  }

  // Conservation: unwinding every outstanding footprint restores nominal
  // capacity bitwise (all arithmetic was dyadic-exact).
  for (const AppliedFootprint& o : outstanding) {
    led.unapply(o.links, o.insts, o.rate);
    shadow.apply(o.links, o.insts, o.rate, -1.0);
  }
  check_equal();
  for (graph::EdgeId e = 0; e < L; ++e) {
    EXPECT_EQ(led.link_residual(e), network.link_capacity(e));
  }
  for (net::InstanceId i = 0; i < I; ++i) {
    EXPECT_EQ(led.instance_residual(i), network.instance(i).capacity);
  }
  EXPECT_EQ(led.total_link_consumed(), 0.0);
  EXPECT_EQ(led.total_instance_consumed(), 0.0);
}

// -------------------------------------------------- journal + sync_from --

void expect_bit_equal(const net::CapacityLedger& a,
                      const net::CapacityLedger& b, const net::Network& n) {
  EXPECT_EQ(a.epoch(), b.epoch());
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    EXPECT_EQ(a.link_residual(e), b.link_residual(e)) << "link " << e;
    EXPECT_EQ(a.link_stamp(e), b.link_stamp(e)) << "link " << e;
  }
  for (net::InstanceId i = 0; i < n.num_instances(); ++i) {
    EXPECT_EQ(a.instance_residual(i), b.instance_residual(i)) << "inst " << i;
    EXPECT_EQ(a.instance_stamp(i), b.instance_stamp(i)) << "inst " << i;
  }
}

TEST(MvccJournal, DeltaSyncReplaysTheJournalAndMatchesTheMaster) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger master(fx->network);
  master.enable_journal(16);
  EXPECT_TRUE(master.journal_enabled());

  net::CapacityLedger replica(master);
  EXPECT_FALSE(replica.journal_enabled());  // never inherited

  master.consume_link(0, 1.0);
  master.consume_instance(0, 1.0);
  master.consume_link(3, 2.5);
  master.release_link(0, 0.5);
  master.consume_instance(2, 4.0);

  EXPECT_TRUE(replica.sync_from(master));  // 5 <= 16: delta path
  expect_bit_equal(replica, master, fx->network);

  // Idempotent: a second sync at equal epochs is a no-op delta.
  EXPECT_TRUE(replica.sync_from(master));
  expect_bit_equal(replica, master, fx->network);
}

TEST(MvccJournal, FallsBackToAFullCopyWhenTheRingIsOverrun) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger master(fx->network);
  master.enable_journal(4);
  net::CapacityLedger replica(master);

  for (int i = 0; i < 6; ++i) {  // 6 > 4: the ring no longer covers the gap
    master.consume_link(static_cast<graph::EdgeId>(i % 3), 0.25);
  }
  EXPECT_FALSE(replica.sync_from(master));
  expect_bit_equal(replica, master, fx->network);

  // Once caught up, small deltas ride the journal again.
  master.consume_link(4, 1.0);
  master.release_link(0, 0.25);
  EXPECT_TRUE(replica.sync_from(master));
  expect_bit_equal(replica, master, fx->network);
}

TEST(MvccJournal, ReplicaCreatedBeforeJournalingUsesTheFullCopy) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger master(fx->network);
  master.consume_link(0, 1.0);  // pre-journal mutation
  net::CapacityLedger replica(fx->network);  // fresh: epoch 0
  master.enable_journal(8);
  master.consume_link(1, 1.0);
  // The replica's epoch predates journal_start_: the gap is not covered.
  EXPECT_FALSE(replica.sync_from(master));
  expect_bit_equal(replica, master, fx->network);
}

// ------------------------------------------- conflict battery (TSan run) --

/// Single corridor: every request routes 0 -> 2 through the one f1
/// instance, so all footprints overlap completely. Capacity 3 admits at
/// most three concurrent rate-1 flows.
net::Network contended_network() {
  NetBuilder b(3, 1);
  b.link(0, 1, 1.0, 3.0).link(1, 2, 1.0, 3.0);
  b.put(1, 1, 5.0, 3.0);
  return b.build();
}

serve::Request corridor_request(serve::RequestId id) {
  serve::Request req;
  req.id = id;
  req.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  req.flow = core::Flow{0, 2, 1.0, 1.0};
  return req;
}

TEST(MvccConflictBattery, OverlappingFootprintsNeverOverCommitOrLivelock) {
  for (const serve::CommitPipeline pipeline :
       {serve::CommitPipeline::kMvcc, serve::CommitPipeline::kMutex}) {
    const net::Network network = contended_network();
    const core::MbbeEmbedder mbbe;
    serve::EmbeddingService::Options opts;
    opts.workers = 8;
    opts.pipeline = pipeline;
    opts.admission.queue_capacity = 1024;
    opts.admission.retry_backoff = std::chrono::nanoseconds(0);
    opts.admission.max_retries = 2;
    serve::EmbeddingService service(network, mbbe, opts);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 30;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> terminal{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Hold up to two accepted flows before releasing the oldest, so
        // commits and departures interleave with other threads' commits.
        std::deque<serve::RequestId> held;
        for (int i = 0; i < kPerThread; ++i) {
          const auto id =
              static_cast<serve::RequestId>(t * kPerThread + i + 1);
          const serve::Response r = service.submit(corridor_request(id)).get();
          // Every request terminates in a decided state — the no-livelock
          // guarantee (a hung future would time the whole test out).
          const bool decided = r.outcome == serve::Outcome::Accepted ||
                               r.outcome == serve::Outcome::RejectedInfeasible ||
                               r.outcome == serve::Outcome::LostConflict;
          EXPECT_TRUE(decided) << static_cast<int>(r.outcome);
          ++terminal;
          if (r.accepted()) {
            ++accepted;
            held.push_back(id);
            if (held.size() > 2) {
              EXPECT_TRUE(service.release(held.front()));
              held.pop_front();
            }
          }
        }
        for (const serve::RequestId id : held) {
          EXPECT_TRUE(service.release(id));
        }
      });
    }
    for (auto& th : threads) th.join();
    service.drain();

    const serve::MetricsSnapshot m = service.metrics();
    const char* label = serve::to_string(pipeline);
    EXPECT_EQ(m.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread))
        << label;
    EXPECT_EQ(terminal.load(), m.submitted) << label;
    EXPECT_EQ(m.completed(), m.submitted) << label;
    EXPECT_EQ(m.accepted, accepted.load()) << label;
    // No lost updates: every accepted flow's exact usage came back, so the
    // drained ledger is bitwise nominal (all rates were integral) — and no
    // over-commit ever happened, or the ledger's contract checks would have
    // aborted the run mid-flight.
    EXPECT_EQ(m.releases, m.accepted) << label;
    EXPECT_EQ(service.in_service(), 0u) << label;
    const net::CapacityLedger drained = service.ledger_snapshot();
    EXPECT_EQ(drained.instance_residual(0), 3.0) << label;
    EXPECT_EQ(drained.link_residual(0), 3.0) << label;
    EXPECT_EQ(drained.link_residual(1), 3.0) << label;
    // Commit accounting closes across the three paths.
    EXPECT_EQ(m.fast_commits + m.stamp_commits + m.validated_commits,
              m.accepted)
        << label;
    EXPECT_GT(m.accepted, 0u) << label;
    if (pipeline == serve::CommitPipeline::kMutex) {
      EXPECT_EQ(m.stamp_commits, 0u) << label;
      EXPECT_EQ(m.group_commit_batch.count(), 0u) << label;
    }
  }
}

// -------------------------------------- deterministic stamp-commit proof --

/// Wraps an embedder; the first two solves rendezvous *after* solving and
/// *before* returning, so both hold solutions computed from pre-commit
/// snapshots — whichever commits second is guaranteed to face a moved
/// epoch.
class RendezvousEmbedder : public core::Embedder {
 public:
  explicit RendezvousEmbedder(const core::Embedder& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return "rendezvous"; }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink*,
      graph::SearchWorkspace* workspace) const override {
    core::SolveResult r = inner_->solve(index, ledger, rng, nullptr, workspace);
    if (calls_.fetch_add(1) < 2) sync_.arrive_and_wait();
    return r;
  }

 private:
  const core::Embedder* inner_;
  mutable std::atomic<int> calls_{0};
  mutable std::barrier<> sync_{2};
};

/// Two disjoint corridors (0-1-2 and 3-4-5, one f1 instance each): two
/// concurrent requests never share a resource.
net::Network disjoint_corridors_network() {
  NetBuilder b(6, 1);
  b.link(0, 1, 1.0, 10.0).link(1, 2, 1.0, 10.0);
  b.link(3, 4, 1.0, 10.0).link(4, 5, 1.0, 10.0);
  b.put(1, 1, 5.0, 10.0).put(4, 1, 5.0, 10.0);
  return b.build();
}

TEST(MvccService, DisjointFootprintsCommitByStampWhenTheEpochMoves) {
  const net::Network network = disjoint_corridors_network();
  const core::MbbeEmbedder mbbe;
  const RendezvousEmbedder rendezvous(mbbe);
  serve::EmbeddingService::Options opts;
  opts.workers = 2;
  opts.pipeline = serve::CommitPipeline::kMvcc;
  opts.admission.retry_backoff = std::chrono::nanoseconds(0);
  serve::EmbeddingService service(network, rendezvous, opts);

  serve::Request a;
  a.id = 1;
  a.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  a.flow = core::Flow{0, 2, 1.0, 1.0};
  serve::Request b;
  b.id = 2;
  b.sfc = sfc::DagSfc({sfc::Layer{{1}}});
  b.flow = core::Flow{3, 5, 1.0, 1.0};

  // The rendezvous forces both solves to finish before either commits, so
  // the second commit always sees a moved epoch — but its footprint is
  // disjoint from the first's, so the per-resource stamps alone must
  // reconcile it: one fast commit, one stamp-validated commit, and the
  // expensive residual re-check never runs.
  auto fa = service.submit(std::move(a));
  auto fb = service.submit(std::move(b));
  const serve::Response ra = fa.get();
  const serve::Response rb = fb.get();
  ASSERT_EQ(ra.outcome, serve::Outcome::Accepted);
  ASSERT_EQ(rb.outcome, serve::Outcome::Accepted);
  EXPECT_EQ(ra.conflicts + rb.conflicts, 0u);

  const serve::MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.accepted, 2u);
  EXPECT_EQ(m.commit_conflicts, 0u);
  EXPECT_EQ(m.fast_commits, 1u);
  EXPECT_EQ(m.stamp_commits, 1u);
  EXPECT_EQ(m.validated_commits, 0u);
}

}  // namespace
}  // namespace dagsfc
