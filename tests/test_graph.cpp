#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace dagsfc::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(component_count(g), 0u);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  const NodeId n = g.add_node();
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(1, 1, 1.0), ContractViolation);
}

TEST(Graph, ParallelEdgeRejectedBothDirections) {
  Graph g(2);
  (void)g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)g.add_edge(0, 1, 2.0), ContractViolation);
  EXPECT_THROW((void)g.add_edge(1, 0, 2.0), ContractViolation);
}

TEST(Graph, NegativeWeightRejected) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(0, 1, -0.1), ContractViolation);
}

TEST(Graph, OutOfRangeEndpointsRejected) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(0, 5, 1.0), ContractViolation);
}

TEST(Graph, EdgeOther) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 1.0);
  EXPECT_EQ(g.edge(e).other(0), 2u);
  EXPECT_EQ(g.edge(e).other(2), 0u);
  EXPECT_THROW((void)g.edge(e).other(1), ContractViolation);
}

TEST(Graph, NeighborsAndDegree) {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(0, 2, 1.0);
  (void)g.add_edge(0, 3, 1.0);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  bool saw2 = false;
  for (const Incidence& inc : g.neighbors(0)) {
    if (inc.neighbor == 2) saw2 = true;
  }
  EXPECT_TRUE(saw2);
}

TEST(Graph, FindEdgeSymmetric) {
  Graph g(3);
  const EdgeId e = g.add_edge(1, 2, 1.0);
  EXPECT_EQ(g.find_edge(1, 2), std::optional<EdgeId>(e));
  EXPECT_EQ(g.find_edge(2, 1), std::optional<EdgeId>(e));
  EXPECT_FALSE(g.find_edge(0, 1).has_value());
}

TEST(Graph, SetWeight) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.set_weight(e, 9.0);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 9.0);
  EXPECT_THROW(g.set_weight(e, -1.0), ContractViolation);
}

TEST(Graph, AverageDegree) {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);  // 2*2/4
}

TEST(Graph, PathCostAndValidity) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1.5);
  const EdgeId e12 = g.add_edge(1, 2, 2.5);
  (void)g.add_edge(2, 3, 4.0);

  Path p;
  p.nodes = {0, 1, 2};
  p.edges = {e01, e12};
  EXPECT_TRUE(g.path_valid(p));
  EXPECT_DOUBLE_EQ(g.path_cost(p), 4.0);

  Path wrong_order = p;
  std::swap(wrong_order.edges[0], wrong_order.edges[1]);
  EXPECT_FALSE(g.path_valid(wrong_order));

  Path size_mismatch;
  size_mismatch.nodes = {0, 1};
  EXPECT_FALSE(g.path_valid(size_mismatch));

  Path single_node;
  single_node.nodes = {2};
  EXPECT_TRUE(g.path_valid(single_node));
  EXPECT_EQ(single_node.length(), 0u);

  Path empty;
  EXPECT_TRUE(g.path_valid(empty));
  EXPECT_TRUE(empty.empty());
}

TEST(Graph, PathEndpointAccessors) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 1.0);
  Path p;
  p.nodes = {0, 2};
  p.edges = {e};
  EXPECT_EQ(p.source(), 0u);
  EXPECT_EQ(p.target(), 2u);
  Path empty;
  EXPECT_THROW((void)empty.source(), ContractViolation);
}

TEST(Graph, FindEdgeProbesTheLowerDegreeEndpoint) {
  // A hub with many leaves: probing leaf—hub must scan the leaf's (size-1)
  // incidence list, never the hub's, in either argument order.
  Graph g(10);
  std::vector<EdgeId> spokes;
  for (NodeId leaf = 1; leaf < 10; ++leaf) {
    spokes.push_back(g.add_edge(0, leaf, 1.0));
  }
  ASSERT_EQ(g.degree(0), 9u);
  ASSERT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.find_edge_probe_endpoint(3, 0), 3u);
  EXPECT_EQ(g.find_edge_probe_endpoint(0, 3), 3u);
  EXPECT_EQ(g.find_edge(3, 0), spokes[2]);
  EXPECT_EQ(g.find_edge(0, 3), spokes[2]);
  // Equal degrees: the first argument wins (deterministic, documented).
  const EdgeId cross = g.add_edge(1, 2, 1.0);
  EXPECT_EQ(g.find_edge_probe_endpoint(1, 2), 1u);
  EXPECT_EQ(g.find_edge(2, 1), cross);
  // Leaf—leaf pairs without an edge still resolve to nullopt via the
  // cheaper endpoint.
  EXPECT_EQ(g.find_edge_probe_endpoint(4, 0), 4u);
  EXPECT_FALSE(g.find_edge(4, 5).has_value());
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(1, 2, 1.0);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(component_count(g), 2u);
  (void)g.add_edge(2, 3, 1.0);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(component_count(g), 1u);
}

}  // namespace
}  // namespace dagsfc::graph
