#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "sim/sweep.hpp"

namespace dagsfc::sim {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.network_size = 25;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;
  cfg.trials = 8;
  return cfg;
}

TEST(Runner, TrialCountsAddUp) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  const auto stats = run_comparison(tiny(), {&minv, &mbbe}, RunOptions{2});
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.successes + s.failures, 8u);
    EXPECT_EQ(s.wall_ms.count(), 8u);
  }
  EXPECT_EQ(stats[0].name, "MINV");
  EXPECT_EQ(stats[1].name, "MBBE");
}

TEST(Runner, SameSeedReproducesExactly) {
  const core::RanvEmbedder ranv;
  const core::MinvEmbedder minv;
  const auto a = run_comparison(tiny(), {&ranv, &minv}, RunOptions{1});
  const auto b = run_comparison(tiny(), {&ranv, &minv}, RunOptions{1});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cost.mean(), b[i].cost.mean());
    EXPECT_EQ(a[i].successes, b[i].successes);
  }
}

TEST(Runner, DifferentSeedsDiffer) {
  const core::MinvEmbedder minv;
  ExperimentConfig c1 = tiny();
  ExperimentConfig c2 = tiny();
  c2.seed = 12345;
  const auto a = run_comparison(c1, {&minv}, RunOptions{1});
  const auto b = run_comparison(c2, {&minv}, RunOptions{1});
  EXPECT_NE(a[0].cost.mean(), b[0].cost.mean());
}

TEST(Runner, CostBreakdownSumsToTotal) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  const auto stats = run_comparison(tiny(), {&minv, &mbbe}, RunOptions{2});
  for (const auto& s : stats) {
    SCOPED_TRACE(s.name);
    ASSERT_GT(s.successes, 0u);
    EXPECT_NEAR(s.vnf_cost.mean() + s.link_cost.mean(), s.cost.mean(), 1e-6);
    EXPECT_GT(s.vnf_cost.mean(), 0.0);
  }
}

// The claim in runner.hpp — per-trial RNG streams derived from the base
// seed make results bit-identical regardless of thread count — held only by
// inspection until now. Compare every deterministic statistic across pools
// of 1, 2 and 8 workers (wall clock excluded, it is genuinely timing).
TEST(Runner, ResultsBitIdenticalAcrossThreadCounts) {
  const core::RanvEmbedder ranv;
  const core::MinvEmbedder minv;
  const core::BbeEmbedder bbe;
  const core::MbbeEmbedder mbbe;
  const std::vector<const core::Embedder*> algos{&ranv, &minv, &bbe, &mbbe};
  const auto reference = run_comparison(tiny(), algos, RunOptions{1});
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto got = run_comparison(tiny(), algos, RunOptions{threads});
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t a = 0; a < got.size(); ++a) {
      SCOPED_TRACE(reference[a].name);
      EXPECT_EQ(got[a].name, reference[a].name);
      EXPECT_EQ(got[a].successes, reference[a].successes);
      EXPECT_EQ(got[a].failures, reference[a].failures);
      // Bit-identical, not approximately equal: the accumulation order of
      // RunningStats is fixed by the trial index, not the schedule.
      EXPECT_EQ(got[a].cost.mean(), reference[a].cost.mean());
      EXPECT_EQ(got[a].vnf_cost.mean(), reference[a].vnf_cost.mean());
      EXPECT_EQ(got[a].link_cost.mean(), reference[a].link_cost.mean());
      EXPECT_EQ(got[a].expanded.mean(), reference[a].expanded.mean());
      EXPECT_EQ(got[a].path_queries.dijkstra_calls,
                reference[a].path_queries.dijkstra_calls);
      EXPECT_EQ(got[a].path_queries.yen_calls,
                reference[a].path_queries.yen_calls);
      EXPECT_EQ(got[a].path_queries.cache_hits,
                reference[a].path_queries.cache_hits);
      EXPECT_EQ(got[a].path_queries.cache_misses,
                reference[a].path_queries.cache_misses);
      EXPECT_EQ(got[a].path_queries.evictions,
                reference[a].path_queries.evictions);
    }
  }
}

TEST(Runner, PathQueryCountersAccumulateAcrossTrials) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  const auto stats = run_comparison(tiny(), {&minv, &mbbe}, RunOptions{2});
  for (const auto& s : stats) {
    SCOPED_TRACE(s.name);
    EXPECT_GT(s.path_queries.dijkstra_calls, 0u);
    // solve_fresh ledgers default to caching on, so hits + misses > 0 and
    // the hit rate is well defined.
    EXPECT_GT(s.path_queries.cache_hits + s.path_queries.cache_misses, 0u);
    EXPECT_GE(s.cache_hit_rate(), 0.0);
    EXPECT_LE(s.cache_hit_rate(), 1.0);
  }
}

TEST(Runner, SuccessRateAccessor) {
  AlgorithmStats s;
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.0);
  s.successes = 3;
  s.failures = 1;
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.75);
}

TEST(Runner, EmptyAlgorithmListRejected) {
  EXPECT_THROW((void)run_comparison(tiny(), {}, RunOptions{1}),
               ContractViolation);
}

TEST(Sweep, TableShapeMatchesPointsAndAlgorithms) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  auto base = tiny();
  base.trials = 4;
  const auto points = make_points(
      base, {20.0, 30.0},
      [](ExperimentConfig& cfg, double v) {
        cfg.network_size = static_cast<std::size_t>(v);
      },
      [](double v) { return std::to_string(static_cast<int>(v)); });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].label, "20");
  EXPECT_EQ(points[0].config.network_size, 20u);
  EXPECT_EQ(points[1].config.network_size, 30u);

  const auto result = run_sweep("n", points, {&minv, &mbbe}, RunOptions{2});
  EXPECT_EQ(result.cost_table.row_count(), 2u);
  EXPECT_EQ(result.cost_table.column_count(), 3u);  // n + 2 algorithms
  EXPECT_EQ(result.detail_table.column_count(), 9u);  // n + 4 per algorithm
  // CSV must parse back to the same number of lines.
  const std::string csv = result.cost_table.csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Sweep, ProgressStreamReceivesOneLinePerPoint) {
  const core::MinvEmbedder minv;
  auto base = tiny();
  base.trials = 2;
  const auto points = make_points(
      base, {20.0, 25.0, 30.0},
      [](ExperimentConfig& cfg, double v) {
        cfg.network_size = static_cast<std::size_t>(v);
      },
      [](double v) { return std::to_string(static_cast<int>(v)); });
  std::ostringstream progress;
  (void)run_sweep("n", points, {&minv}, RunOptions{1}, &progress);
  const std::string text = progress.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

}  // namespace
}  // namespace dagsfc::sim
