#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "sim/sweep.hpp"

namespace dagsfc::sim {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.network_size = 25;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;
  cfg.trials = 8;
  return cfg;
}

TEST(Runner, TrialCountsAddUp) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  const auto stats = run_comparison(tiny(), {&minv, &mbbe}, RunOptions{2});
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.successes + s.failures, 8u);
    EXPECT_EQ(s.wall_ms.count(), 8u);
  }
  EXPECT_EQ(stats[0].name, "MINV");
  EXPECT_EQ(stats[1].name, "MBBE");
}

TEST(Runner, SameSeedReproducesExactly) {
  const core::RanvEmbedder ranv;
  const core::MinvEmbedder minv;
  const auto a = run_comparison(tiny(), {&ranv, &minv}, RunOptions{1});
  const auto b = run_comparison(tiny(), {&ranv, &minv}, RunOptions{1});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cost.mean(), b[i].cost.mean());
    EXPECT_EQ(a[i].successes, b[i].successes);
  }
}

TEST(Runner, DifferentSeedsDiffer) {
  const core::MinvEmbedder minv;
  ExperimentConfig c1 = tiny();
  ExperimentConfig c2 = tiny();
  c2.seed = 12345;
  const auto a = run_comparison(c1, {&minv}, RunOptions{1});
  const auto b = run_comparison(c2, {&minv}, RunOptions{1});
  EXPECT_NE(a[0].cost.mean(), b[0].cost.mean());
}

TEST(Runner, CostBreakdownSumsToTotal) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  const auto stats = run_comparison(tiny(), {&minv, &mbbe}, RunOptions{2});
  for (const auto& s : stats) {
    SCOPED_TRACE(s.name);
    ASSERT_GT(s.successes, 0u);
    EXPECT_NEAR(s.vnf_cost.mean() + s.link_cost.mean(), s.cost.mean(), 1e-6);
    EXPECT_GT(s.vnf_cost.mean(), 0.0);
  }
}

TEST(Runner, SuccessRateAccessor) {
  AlgorithmStats s;
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.0);
  s.successes = 3;
  s.failures = 1;
  EXPECT_DOUBLE_EQ(s.success_rate(), 0.75);
}

TEST(Runner, EmptyAlgorithmListRejected) {
  EXPECT_THROW((void)run_comparison(tiny(), {}, RunOptions{1}),
               ContractViolation);
}

TEST(Sweep, TableShapeMatchesPointsAndAlgorithms) {
  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  auto base = tiny();
  base.trials = 4;
  const auto points = make_points(
      base, {20.0, 30.0},
      [](ExperimentConfig& cfg, double v) {
        cfg.network_size = static_cast<std::size_t>(v);
      },
      [](double v) { return std::to_string(static_cast<int>(v)); });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].label, "20");
  EXPECT_EQ(points[0].config.network_size, 20u);
  EXPECT_EQ(points[1].config.network_size, 30u);

  const auto result = run_sweep("n", points, {&minv, &mbbe}, RunOptions{2});
  EXPECT_EQ(result.cost_table.row_count(), 2u);
  EXPECT_EQ(result.cost_table.column_count(), 3u);  // n + 2 algorithms
  EXPECT_EQ(result.detail_table.column_count(), 7u);  // n + 3 per algorithm
  // CSV must parse back to the same number of lines.
  const std::string csv = result.cost_table.csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Sweep, ProgressStreamReceivesOneLinePerPoint) {
  const core::MinvEmbedder minv;
  auto base = tiny();
  base.trials = 2;
  const auto points = make_points(
      base, {20.0, 25.0, 30.0},
      [](ExperimentConfig& cfg, double v) {
        cfg.network_size = static_cast<std::size_t>(v);
      },
      [](double v) { return std::to_string(static_cast<int>(v)); });
  std::ostringstream progress;
  (void)run_sweep("n", points, {&minv}, RunOptions{1}, &progress);
  const std::string text = progress.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

}  // namespace
}  // namespace dagsfc::sim
