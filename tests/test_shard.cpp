/// Shard-plane tests: partition schemes (determinism, coverage, validity),
/// substrate ownership and region-graph contraction invariants, HIER
/// solutions against the independent SolutionValidator, the hierarchy
/// bound vs the flat LAYERED optimum, closed-loop bit-determinism of the
/// per-shard metrics across worker counts, and an 8-thread cross-shard
/// commit battery over the sharded ledger (conservation after release-all).

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/layered.hpp"
#include "core/validator.hpp"
#include "shard/driver.hpp"
#include "shard/hier.hpp"
#include "shard/ledger.hpp"
#include "shard/partition.hpp"
#include "shard/service.hpp"
#include "shard/substrate.hpp"
#include "sim/regional.hpp"
#include "sim/scenario.hpp"

namespace dagsfc {
namespace {

shard::ShardWorkloadConfig small_workload_config(std::size_t regions,
                                                 std::size_t nodes_per_region,
                                                 std::size_t arrivals) {
  shard::ShardWorkloadConfig cfg;
  cfg.regional.base.catalog_size = 8;
  cfg.regional.base.sfc_size = 3;
  cfg.regional.base.trials = 1;
  cfg.regional.regions.regions = regions;
  cfg.regional.regions.nodes_per_region = nodes_per_region;
  cfg.num_arrivals = arrivals;
  return cfg;
}

sim::RegionalScenario small_scenario(std::size_t regions,
                                     std::size_t nodes_per_region,
                                     std::uint64_t seed) {
  Rng rng(seed);
  auto cfg = small_workload_config(regions, nodes_per_region, 1);
  return sim::make_regional_scenario(rng, cfg.regional);
}

shard::ShardedSubstrate make_substrate(const sim::RegionalScenario& s) {
  return {s.network, shard::RegionPartition::from_labels(s.region_of)};
}

// ------------------------------------------------------------ partition --

TEST(Partition, StripeBlocksCoverEveryNodeAndValidate) {
  const graph::Graph g(10);
  const shard::RegionPartition p = shard::partition_stripe(g, 3);
  EXPECT_EQ(p.num_regions(), 3u);
  p.validate(g);
  // ceil(10/3) = 4: blocks of 4, 4, 2, contiguous.
  EXPECT_EQ(p.members[0].size(), 4u);
  EXPECT_EQ(p.members[1].size(), 4u);
  EXPECT_EQ(p.members[2].size(), 2u);
  EXPECT_EQ(p.region(0), 0u);
  EXPECT_EQ(p.region(4), 1u);
  EXPECT_EQ(p.region(9), 2u);
}

TEST(Partition, StripeDegenerateCounts) {
  const graph::Graph g(5);
  const shard::RegionPartition one = shard::partition_stripe(g, 1);
  EXPECT_EQ(one.num_regions(), 1u);
  one.validate(g);
  const shard::RegionPartition each = shard::partition_stripe(g, 5);
  EXPECT_EQ(each.num_regions(), 5u);
  each.validate(g);
}

TEST(Partition, BfsIsDeterministicCoversAndValidates) {
  Rng rng(7);
  graph::WaxmanOptions w;
  w.num_nodes = 40;
  const graph::Graph g = graph::make_waxman(rng, w);
  const shard::RegionPartition a = shard::partition_bfs(g, 4);
  const shard::RegionPartition b = shard::partition_bfs(g, 4);
  EXPECT_EQ(a.region_of, b.region_of);
  EXPECT_EQ(a.num_regions(), 4u);
  a.validate(g);
  for (const auto& members : a.members) EXPECT_FALSE(members.empty());
}

TEST(Partition, FromLabelsRoundTripsAndDispatches) {
  const graph::Graph g(6);
  const std::vector<std::uint32_t> labels{1, 0, 1, 2, 0, 2};
  const shard::RegionPartition p =
      shard::make_partition(g, 3, shard::PartitionScheme::kLabels, labels);
  p.validate(g);
  for (graph::NodeId v = 0; v < 6; ++v) EXPECT_EQ(p.region(v), labels[v]);
  EXPECT_EQ(p.members[0], (std::vector<graph::NodeId>{1, 4}));
}

TEST(Partition, SchemeNamesRoundTripAndRejectUnknown) {
  using shard::PartitionScheme;
  for (const PartitionScheme s : {PartitionScheme::kLabels,
                                  PartitionScheme::kStripe,
                                  PartitionScheme::kBfs}) {
    EXPECT_EQ(shard::partition_scheme_from_string(shard::to_string(s)), s);
  }
  EXPECT_THROW((void)shard::partition_scheme_from_string("voronoi"),
               std::invalid_argument);
}

// ------------------------------------------------- substrate / contraction --

TEST(Substrate, OwnershipRuleIsTotalAndExact) {
  const sim::RegionalScenario s = small_scenario(3, 8, 11);
  const shard::ShardedSubstrate sub = make_substrate(s);
  const net::Network& net = s.network;

  std::size_t owned_links = 0, owned_instances = 0;
  std::set<net::EdgeId> seen_links;
  for (shard::RegionId r = 0; r < sub.num_regions(); ++r) {
    for (const net::EdgeId e : sub.links_owned_by(r)) {
      EXPECT_TRUE(seen_links.insert(e).second) << "link owned twice";
      EXPECT_EQ(sub.owner_of_link(e), r);
      ++owned_links;
    }
    for (const net::InstanceId id : sub.instances_owned_by(r)) {
      EXPECT_EQ(sub.region_of_node(net.instance(id).node), r);
      ++owned_instances;
    }
  }
  EXPECT_EQ(owned_links, net.num_links());
  EXPECT_EQ(owned_instances, net.num_instances());

  for (net::EdgeId e = 0; e < net.num_links(); ++e) {
    const graph::Edge& edge = net.topology().edge(e);
    const shard::RegionId ru = sub.region_of_node(edge.u);
    const shard::RegionId rv = sub.region_of_node(edge.v);
    EXPECT_EQ(sub.is_border_link(e), ru != rv);
    EXPECT_EQ(sub.owner_of_link(e), std::min(ru, rv));
  }
}

TEST(Substrate, RegionGraphWeightsMatchTheSummaryFormula) {
  const sim::RegionalScenario s = small_scenario(4, 8, 23);
  const shard::ShardedSubstrate sub = make_substrate(s);
  const graph::Graph& rg = sub.region_graph();
  EXPECT_EQ(rg.num_nodes(), sub.num_regions());
  EXPECT_GE(rg.num_edges(), sub.num_regions() - 1);  // the connecting ring

  // Independently recompute transit prices (mean intra-region link price).
  std::vector<double> sum(sub.num_regions(), 0.0);
  std::vector<std::size_t> cnt(sub.num_regions(), 0);
  for (net::EdgeId e = 0; e < s.network.num_links(); ++e) {
    if (sub.is_border_link(e)) continue;
    const shard::RegionId r = sub.owner_of_link(e);
    sum[r] += s.network.link_price(e);
    ++cnt[r];
  }
  for (shard::RegionId r = 0; r < sub.num_regions(); ++r) {
    const double want = cnt[r] ? sum[r] / static_cast<double>(cnt[r]) : 0.0;
    EXPECT_DOUBLE_EQ(sub.transit_price(r), want);
  }

  for (graph::EdgeId arc = 0; arc < rg.num_edges(); ++arc) {
    const graph::Edge& a = rg.edge(arc);
    const auto ra = static_cast<shard::RegionId>(a.u);
    const auto rb = static_cast<shard::RegionId>(a.v);
    const auto borders = sub.border_links(ra, rb);
    ASSERT_FALSE(borders.empty());
    double min_price = std::numeric_limits<double>::infinity();
    for (const net::EdgeId e : borders) {
      min_price = std::min(min_price, s.network.link_price(e));
    }
    const double want =
        min_price + 0.5 * (sub.transit_price(ra) + sub.transit_price(rb));
    EXPECT_DOUBLE_EQ(a.weight, want);
  }
}

TEST(Substrate, RefreshSummariesTracksRepricing) {
  sim::RegionalScenario s = small_scenario(3, 8, 31);
  shard::ShardedSubstrate sub = make_substrate(s);
  const std::uint64_t epoch0 = sub.summary_epoch();
  EXPECT_EQ(epoch0, 1u);

  // Halve every border price: every arc summary must drop accordingly.
  std::vector<double> before(sub.region_graph().num_edges());
  for (graph::EdgeId arc = 0; arc < before.size(); ++arc) {
    before[arc] = sub.region_graph().edge(arc).weight;
  }
  for (net::EdgeId e = 0; e < s.network.num_links(); ++e) {
    if (sub.is_border_link(e)) {
      s.network.set_link_price(e, s.network.link_price(e) * 0.5);
    }
  }
  sub.refresh_summaries();
  EXPECT_EQ(sub.summary_epoch(), epoch0 + 1);
  for (graph::EdgeId arc = 0; arc < before.size(); ++arc) {
    EXPECT_LT(sub.region_graph().edge(arc).weight, before[arc]);
  }
}

TEST(Substrate, RegionPathsAreDeterministicAndAnchored) {
  const sim::RegionalScenario s = small_scenario(4, 8, 43);
  const shard::ShardedSubstrate sub = make_substrate(s);
  const graph::NodeId src = 0;                       // region 0
  const graph::NodeId dst = 3 * 8;                   // region 3
  const auto paths = sub.region_paths(src, dst, 4);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) {
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), sub.region_of_node(src));
    EXPECT_EQ(p.back(), sub.region_of_node(dst));
  }
  EXPECT_EQ(paths, sub.region_paths(src, dst, 4));
  // Same-region pair: the one singleton sequence.
  const auto same = sub.region_paths(1, 2, 4);
  ASSERT_EQ(same.size(), 1u);
  EXPECT_EQ(same[0], std::vector<shard::RegionId>{0});
}

TEST(Substrate, FatTreeRegionsAreCoreAndPods) {
  const graph::RegionalGraph rg = graph::make_regional_fat_tree(4, 4.0);
  EXPECT_EQ(rg.num_regions, 5u);  // core cloud + 4 pods
  const shard::RegionPartition p =
      shard::RegionPartition::from_labels(rg.region_of);
  p.validate(rg.graph);
  EXPECT_EQ(p.members[0].size(), 4u);  // (k/2)^2 cores
  for (std::size_t pod = 1; pod < 5; ++pod) {
    EXPECT_EQ(p.members[pod].size(), 4u);  // k/2 agg + k/2 edge
  }
  // Border links (core<->agg) carry the price multiplier as weight.
  for (graph::EdgeId e = 0; e < rg.graph.num_edges(); ++e) {
    const graph::Edge& edge = rg.graph.edge(e);
    const bool border = rg.region_of[edge.u] != rg.region_of[edge.v];
    EXPECT_DOUBLE_EQ(edge.weight, border ? 4.0 : 1.0);
  }
}

// ------------------------------------------------------------------ HIER --

TEST(Hier, EverySolutionPassesTheIndependentValidator) {
  const sim::RegionalScenario s = small_scenario(3, 10, 57);
  const shard::ShardedSubstrate sub = make_substrate(s);
  const shard::HierarchicalEmbedder hier(sub);
  Rng rng(99);
  auto cfg = small_workload_config(3, 10, 1);

  std::size_t solved = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const sfc::DagSfc dag =
        sim::make_sfc(rng, s.network.catalog(), cfg.regional.base);
    const auto src = static_cast<graph::NodeId>(rng.index(s.network.num_nodes()));
    auto dst = static_cast<graph::NodeId>(rng.index(s.network.num_nodes()));
    if (dst == src) dst = static_cast<graph::NodeId>((dst + 1) % s.network.num_nodes());
    core::EmbeddingProblem problem;
    problem.network = &s.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{src, dst, 1.0, 1.0};
    const core::ModelIndex index(problem);
    Rng solve_rng(1000 + trial);
    const core::SolveResult r = hier.solve_fresh(index, solve_rng);
    if (!r.ok()) continue;
    ++solved;
    const core::SolutionValidator validator(index);
    const net::CapacityLedger fresh(s.network);
    const auto audit = validator.check(r, fresh);
    EXPECT_TRUE(audit.ok()) << audit.to_string();
  }
  EXPECT_GE(solved, 10u) << "HIER should admit most small instances";
}

TEST(Hier, NeverBeatsTheFlatLayeredOptimum) {
  const sim::RegionalScenario s = small_scenario(3, 6, 71);
  const shard::ShardedSubstrate sub = make_substrate(s);
  shard::HierOptions opts;
  opts.inner = shard::InnerAlgorithm::kLayered;
  const shard::HierarchicalEmbedder hier(sub, opts);
  const core::LayeredEmbedder layered;
  Rng rng(5);
  auto cfg = small_workload_config(3, 6, 1);

  std::size_t compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const sfc::DagSfc dag =
        sim::make_sfc(rng, s.network.catalog(), cfg.regional.base);
    const auto n = s.network.num_nodes();
    const auto src = static_cast<graph::NodeId>(rng.index(n));
    auto dst = static_cast<graph::NodeId>(rng.index(n));
    if (dst == src) dst = static_cast<graph::NodeId>((dst + 1) % n);
    core::EmbeddingProblem problem;
    problem.network = &s.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{src, dst, 1.0, 1.0};
    const core::ModelIndex index(problem);
    Rng r1(trial), r2(trial);
    const core::SolveResult flat = layered.solve_fresh(index, r1);
    const core::SolveResult restricted = hier.solve_fresh(index, r2);
    if (!flat.ok() || !restricted.ok()) continue;
    ++compared;
    // A restricted search space cannot beat the unrestricted optimum.
    EXPECT_GE(restricted.cost, flat.cost - 1e-9);
  }
  EXPECT_GE(compared, 5u);
}

TEST(Hier, InnerAlgorithmNamesRoundTripAndRejectUnknown) {
  using shard::InnerAlgorithm;
  for (const InnerAlgorithm a : {InnerAlgorithm::kBbe, InnerAlgorithm::kMbbe,
                                 InnerAlgorithm::kLayered}) {
    EXPECT_EQ(shard::inner_algorithm_from_string(shard::to_string(a)), a);
  }
  EXPECT_THROW((void)shard::inner_algorithm_from_string("exact"),
               std::invalid_argument);
}

// --------------------------------------------------------------- service --

void expect_same_metrics(const shard::ShardMetricsSnapshot& a,
                         const shard::ShardMetricsSnapshot& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected_infeasible, b.rejected_infeasible);
  EXPECT_EQ(a.rejected_queue_full, b.rejected_queue_full);
  EXPECT_EQ(a.shed_deadline, b.shed_deadline);
  EXPECT_EQ(a.lost_conflict, b.lost_conflict);
  EXPECT_EQ(a.fast_commits, b.fast_commits);
  EXPECT_EQ(a.stamp_commits, b.stamp_commits);
  EXPECT_EQ(a.validated_commits, b.validated_commits);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.cross_region_requests, b.cross_region_requests);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].commits, b.shards[i].commits)
        << "shard " << i << " commit counter diverged";
    EXPECT_EQ(a.shards[i].conflicts, b.shards[i].conflicts);
  }
}

TEST(ShardService, ClosedLoopMetricsAreBitIdenticalAcrossWorkerCounts) {
  const auto cfg = small_workload_config(3, 8, 60);
  const shard::ShardWorkload workload = shard::make_shard_workload(cfg, 77);
  const shard::ShardedSubstrate substrate(
      workload.scenario.network,
      shard::RegionPartition::from_labels(workload.scenario.region_of));

  shard::ShardedEmbeddingService::Options one;
  one.workers_per_shard = 1;
  shard::ShardedEmbeddingService::Options four = one;
  four.workers_per_shard = 4;

  const shard::ShardDriverResult a =
      shard::run_sharded_closed_loop(workload, substrate, one);
  const shard::ShardDriverResult b =
      shard::run_sharded_closed_loop(workload, substrate, four);
  EXPECT_TRUE(a.conserved);
  EXPECT_TRUE(b.conserved);
  EXPECT_GT(a.metrics.accepted, 0u);
  expect_same_metrics(a.metrics, b.metrics);
}

TEST(ShardService, PerShardGaugesReachThePrometheusExposition) {
  const auto cfg = small_workload_config(2, 8, 30);
  const shard::ShardWorkload workload = shard::make_shard_workload(cfg, 13);
  const shard::ShardedSubstrate substrate(
      workload.scenario.network,
      shard::RegionPartition::from_labels(workload.scenario.region_of));

  std::string exposition;
  shard::ShardServiceTuning tuning;
  tuning.on_finish = [&exposition](shard::ShardedEmbeddingService& s) {
    exposition = s.metrics_registry().expose_prometheus();
  };
  const shard::ShardDriverResult r = shard::run_sharded_closed_loop(
      workload, substrate, shard::ShardedEmbeddingService::Options{}, tuning);
  EXPECT_TRUE(r.conserved);
  EXPECT_NE(exposition.find("dagsfc_shard_commits_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("dagsfc_shard_commits_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("dagsfc_shard_queue_depth{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("dagsfc_shard_submitted_total"),
            std::string::npos);
}

TEST(ShardService, OpenLoopConservesAfterReleaseAll) {
  const auto cfg = small_workload_config(3, 8, 80);
  const shard::ShardWorkload workload = shard::make_shard_workload(cfg, 29);
  const shard::ShardedSubstrate substrate(
      workload.scenario.network,
      shard::RegionPartition::from_labels(workload.scenario.region_of));
  shard::ShardOpenLoopConfig open;
  open.producers = 4;
  open.service.workers_per_shard = 2;
  const shard::ShardOpenLoopResult r =
      shard::run_sharded_open_loop(workload, substrate, open);
  EXPECT_TRUE(r.conserved);
  EXPECT_EQ(r.metrics.completed(), 80u);
}

// ---------------------------------------------------------- ledger battery --

/// 8 threads race footprints that each span two adjacent shards; every
/// accepted commit is released afterwards, and the residuals must return
/// to nominal — the cross-shard mirror of the flat MVCC battery.
TEST(ShardLedgerThreads, EightThreadCrossShardCommitBattery) {
  const sim::RegionalScenario s = small_scenario(4, 8, 101);
  const shard::ShardedSubstrate sub = make_substrate(s);
  shard::ShardedLedger ledger(sub);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 200;
  const double rate = 1.0;

  // Per-thread footprint: one owned link from each of two adjacent
  // regions (thread t spans regions t%4 and (t+1)%4), shared across
  // threads so commits genuinely contend.
  std::vector<core::ResourceUsage> usages(kThreads);
  std::vector<std::vector<shard::RegionId>> spans(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    const auto ra = static_cast<shard::RegionId>(t % 4);
    const auto rb = static_cast<shard::RegionId>((t + 1) % 4);
    usages[t].link_uses.assign(s.network.num_links(), 0);
    usages[t].instance_uses.assign(s.network.num_instances(), 0);
    usages[t].link_uses[sub.links_owned_by(ra).front()] = 1;
    usages[t].link_uses[sub.links_owned_by(rb).front()] = 1;
    usages[t].instance_uses[sub.instances_owned_by(ra).front()] = 1;
    spans[t] = {std::min(ra, rb), std::max(ra, rb)};
  }

  std::atomic<std::uint64_t> committed{0}, conflicted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::uint64_t> epochs;
      std::uint64_t held = 0;
      for (std::size_t i = 0; i < kIters; ++i) {
        ledger.snapshot_epochs(spans[t], epochs);
        const shard::CommitResult r =
            ledger.try_commit(usages[t], rate, spans[t], epochs);
        if (r.ok) {
          ++held;
          committed.fetch_add(1);
          EXPECT_EQ(r.touched, spans[t]);
          // Hold a few flows before releasing, to overlap lifetimes.
          if (held >= 3) {
            ledger.release(usages[t], rate);
            --held;
          }
        } else {
          conflicted.fetch_add(1);
          ASSERT_NE(r.conflict_region, shard::kInvalidRegion);
        }
      }
      while (held > 0) {
        ledger.release(usages[t], rate);
        --held;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_GT(committed.load(), 0u);
  EXPECT_TRUE(ledger.residuals_nominal())
      << "residuals did not return to nominal after release-all "
      << "(committed " << committed.load() << ", conflicted "
      << conflicted.load() << ")";
}

}  // namespace
}  // namespace dagsfc
