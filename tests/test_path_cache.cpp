/// Tests for the epoch-keyed shortest-path cache: PathCache unit behavior,
/// ledger epoch/caching integration, and the differential harness required
/// by the cache's core contract — every embedder produces bit-identical
/// solutions with the cache on and off, across the serialized corpus and
/// 200 random seeded instances.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "graph/path_cache.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

graph::Graph diamond() {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 2.0);
  return g;
}

// ---------------------------------------------------------------------------
// PathCache unit behavior

TEST(PathCache, TreeHitsOnRepeatAndMissesAcrossVersions) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;

  const auto t1 = cache.tree(g, 0, /*version=*/7, /*context=*/0, {}, c);
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.dijkstra_calls, 1u);
  const auto t2 = cache.tree(g, 0, 7, 0, {}, c);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.dijkstra_calls, 1u);  // served from cache, not recomputed
  EXPECT_EQ(t1.get(), t2.get());    // same shared entry

  const auto t3 = cache.tree(g, 0, /*version=*/8, 0, {}, c);
  EXPECT_EQ(c.cache_misses, 2u);
  EXPECT_NE(t1.get(), t3.get());
  EXPECT_EQ(t1->dist[3], 2.0);
}

TEST(PathCache, ContextSeparatesEntries) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  (void)cache.tree(g, 0, 1, /*context=*/10, {}, c);
  (void)cache.tree(g, 0, 1, /*context=*/20, {}, c);
  EXPECT_EQ(c.cache_misses, 2u);  // different contexts never share
  EXPECT_EQ(cache.num_trees(), 2u);
}

TEST(PathCache, KPathsCachedPerEndpointAndK) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  const auto p1 = cache.k_paths(g, 0, 3, 2, 1, 0, {}, c);
  ASSERT_EQ(p1->size(), 2u);
  EXPECT_EQ(c.yen_calls, 1u);
  (void)cache.k_paths(g, 0, 3, 2, 1, 0, {}, c);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.yen_calls, 1u);
  (void)cache.k_paths(g, 0, 3, 3, 1, 0, {}, c);  // different k ⇒ miss
  EXPECT_EQ(c.yen_calls, 2u);
}

TEST(PathCache, EvictsStaleVersionsFirstThenEverything) {
  const graph::Graph g = diamond();
  graph::PathCache cache(/*max_entries=*/2);
  graph::PathQueryCounters c;
  (void)cache.tree(g, 0, /*version=*/1, 0, {}, c);
  (void)cache.tree(g, 1, /*version=*/1, 0, {}, c);
  EXPECT_EQ(cache.num_trees(), 2u);
  // Insert at a newer version: the two version-1 entries are evicted.
  (void)cache.tree(g, 2, /*version=*/2, 0, {}, c);
  EXPECT_EQ(c.evictions, 2u);
  EXPECT_EQ(cache.num_trees(), 1u);
  // Fill up at the current version; next insert wipes the (current) store.
  (void)cache.tree(g, 3, /*version=*/2, 0, {}, c);
  (void)cache.tree(g, 0, /*version=*/2, 0, {}, c);
  EXPECT_EQ(c.evictions, 4u);
  // A held entry stays valid across eviction of its cache slot.
  const auto held = cache.tree(g, 1, /*version=*/3, 0, {}, c);
  (void)cache.tree(g, 2, /*version=*/4, 0, {}, c);
  (void)cache.tree(g, 3, /*version=*/4, 0, {}, c);
  EXPECT_EQ(held->source, 1u);
  EXPECT_EQ(held->dist[0], 1.0);
}

TEST(PathCache, CountersAggregateAndReportHitRate) {
  graph::PathQueryCounters a{10, 2, 5, 3, 6, 4, 1};
  graph::PathQueryCounters b{1, 1, 2, 1, 2, 0, 0};
  a += b;
  EXPECT_EQ(a.dijkstra_calls, 11u);
  EXPECT_EQ(a.yen_calls, 3u);
  EXPECT_EQ(a.bfs_calls, 7u);
  EXPECT_EQ(a.steiner_calls, 4u);
  EXPECT_EQ(a.cache_hits, 8u);
  EXPECT_EQ(a.cache_misses, 4u);
  EXPECT_EQ(a.evictions, 1u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(graph::PathQueryCounters{}.hit_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Differential harness: cache on vs cache off, identical results everywhere.

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_same_path(const graph::Path& a, const graph::Path& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.cost, b.cost);
}

/// Cache-on and cache-off solves must agree bit for bit: same outcome, same
/// cost, same placements, same real-paths, same search effort.
void expect_identical(const core::SolveResult& on,
                      const core::SolveResult& off) {
  ASSERT_EQ(on.ok(), off.ok()) << on.failure_reason << " vs "
                               << off.failure_reason;
  EXPECT_EQ(on.failure_reason, off.failure_reason);
  EXPECT_EQ(on.expanded_sub_solutions, off.expanded_sub_solutions);
  EXPECT_EQ(on.candidate_solutions, off.candidate_solutions);
  if (!on.ok()) return;
  EXPECT_EQ(on.cost, off.cost);  // bit-identical, not approximate
  ASSERT_TRUE(off.solution.has_value());
  EXPECT_EQ(on.solution->placement, off.solution->placement);
  ASSERT_EQ(on.solution->inter_paths.size(), off.solution->inter_paths.size());
  for (std::size_t i = 0; i < on.solution->inter_paths.size(); ++i) {
    expect_same_path(on.solution->inter_paths[i], off.solution->inter_paths[i]);
  }
  ASSERT_EQ(on.solution->inner_paths.size(), off.solution->inner_paths.size());
  for (std::size_t i = 0; i < on.solution->inner_paths.size(); ++i) {
    expect_same_path(on.solution->inner_paths[i], off.solution->inner_paths[i]);
  }
}

core::SolveResult solve_with(const core::Embedder& algo,
                             const core::ModelIndex& index, bool cache_on,
                             std::uint64_t rng_seed,
                             graph::PathQueryCounters* tally = nullptr) {
  net::CapacityLedger ledger(index.problem().net());
  ledger.set_cache_enabled(cache_on);
  Rng rng(rng_seed);
  core::SolveResult r = algo.solve(index, ledger, rng);
  if (tally != nullptr) *tally += r.path_queries;
  return r;
}

struct EmbedderSet {
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  core::ExactEmbedder exact{core::ExactOptions{50'000'000}};

  [[nodiscard]] std::vector<const core::Embedder*> all() const {
    return {&ranv, &minv, &bbe, &mbbe, &exact};
  }
};

void run_differential(const core::ModelIndex& index, std::uint64_t seed,
                      graph::PathQueryCounters* on_tally) {
  const EmbedderSet set;
  for (const core::Embedder* algo : set.all()) {
    SCOPED_TRACE(algo->name());
    const auto on = solve_with(*algo, index, true, seed, on_tally);
    const auto off = solve_with(*algo, index, false, seed);
    // The cache-off arm never touches the cache.
    EXPECT_EQ(off.path_queries.cache_hits, 0u);
    EXPECT_EQ(off.path_queries.cache_misses, 0u);
    expect_identical(on, off);
  }
}

class CorpusDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusDifferential, CacheOnOffIdentical) {
  const std::string dir = std::string(DAGSFC_CORPUS_DIR) + "/";
  net::Network network =
      net::network_from_text(slurp(dir + GetParam() + std::string(".net.txt")));
  const sfc::SfcFile file =
      sfc::sfc_from_text(slurp(dir + GetParam() + std::string(".sfc.txt")));
  ASSERT_TRUE(file.flow.has_value());

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  run_differential(index, /*seed=*/1, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Instances, CorpusDifferential,
                         ::testing::Values("ring12", "leafspine14", "waxman20",
                                           "tightline5"),
                         [](const auto& info) { return info.param; });

TEST(PathCacheDifferential, TwoHundredRandomInstances) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;

  graph::PathQueryCounters on_tally;
  Rng seeder(0xd1ffe7e57ull);
  for (int i = 0; i < 200; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    run_differential(index, /*seed=*/1000 + i, &on_tally);
    if (::testing::Test::HasFailure()) break;  // one instance is enough
  }
  // The equivalence above must not be vacuous: the cached arm has to have
  // actually reused entries somewhere across the 200 instances.
  EXPECT_GT(on_tally.cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Ledger integration

TEST(LedgerPathCache, CacheSpansSolvesUntilTheLedgerChanges) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  const core::MbbeEmbedder mbbe;
  Rng rng(1);

  const auto first = mbbe.solve(*fx->index, ledger, rng);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.path_queries.cache_misses, 0u);

  // Same ledger, same epoch: the second solve reuses the first's entries.
  const auto second = mbbe.solve(*fx->index, ledger, rng);
  EXPECT_EQ(second.path_queries.cache_misses, 0u);
  EXPECT_GT(second.path_queries.cache_hits, 0u);
  expect_identical(second, first);

  // Any debit bumps the epoch: previously cached routes are stale now.
  ledger.consume_link(0, 1.0);
  const auto third = mbbe.solve(*fx->index, ledger, rng);
  EXPECT_GT(third.path_queries.cache_misses, 0u);
}

TEST(LedgerPathCache, CachingReducesDijkstraComputations) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 50;
  cfg.catalog_size = 6;
  cfg.sfc_size = 4;
  Rng rng(99);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
  core::EmbeddingProblem problem;
  problem.network = &scenario.network;
  problem.sfc = &dag;
  problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
  const core::ModelIndex index(problem);

  const core::MbbeEmbedder mbbe;
  const auto on = solve_with(mbbe, index, true, 1);
  const auto off = solve_with(mbbe, index, false, 1);
  expect_identical(on, off);
  EXPECT_GT(on.path_queries.cache_hits, 0u);
  EXPECT_LT(on.path_queries.dijkstra_calls, off.path_queries.dijkstra_calls);
}

}  // namespace
}  // namespace dagsfc
