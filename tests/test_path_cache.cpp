/// Tests for the footprint-invalidated shortest-path cache: PathCache unit
/// behavior (flip-gated eviction through the on_link_* hooks), ledger
/// integration, and the differential harness required by the cache's core
/// contract — every embedder produces bit-identical solutions with the
/// cache on and off, across the serialized corpus and 200 random seeded
/// instances.

#include <gtest/gtest.h>

#include <bit>
#include <fstream>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "core/validator.hpp"
#include "graph/path_cache.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

graph::Graph diamond() {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 2.0);
  return g;
}

// ---------------------------------------------------------------------------
// PathCache unit behavior

constexpr double kEps = 1e-9;

/// The cache's context convention: the flow rate, bit-cast.
std::uint64_t ctx(double rate) { return std::bit_cast<std::uint64_t>(rate); }

TEST(PathCache, TreeHitsOnRepeatAndSurvivesNonFlipDebits) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;

  const auto t1 = cache.tree(g, 0, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.dijkstra_calls, 1u);
  const auto t2 = cache.tree(g, 0, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.dijkstra_calls, 1u);  // served from cache, not recomputed
  EXPECT_EQ(t1.get(), t2.get());    // same shared entry

  // A debit that leaves the edge usable at rate 1.0 is not a flip: the
  // usable-edge set — and therefore every cached result — is unchanged.
  cache.on_link_debit(0, 10.0, 5.0, kEps);
  (void)cache.tree(g, 0, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_hits, 2u);
  EXPECT_EQ(cache.invalidation_stats().flips, 0u);
  EXPECT_EQ(cache.invalidation_stats().trees_evicted, 0u);

  // Draining edge 0 below the rate flips it unusable; the tree from node 0
  // carries edge 0 in its parent footprint, so it must go.
  cache.on_link_debit(0, 5.0, 0.5, kEps);
  EXPECT_EQ(cache.invalidation_stats().flips, 1u);
  EXPECT_EQ(cache.invalidation_stats().trees_evicted, 1u);
  const auto t3 = cache.tree(g, 0, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_misses, 2u);
  EXPECT_NE(t1.get(), t3.get());
  EXPECT_EQ(t1->dist[3], 2.0);  // held entry stays valid after eviction
}

TEST(PathCache, DebitFlipSparesTreesOutsideTheFootprint) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  (void)cache.tree(g, 0, ctx(1.0), {}, c);  // parent edges {0, 1, 2}
  (void)cache.tree(g, 2, ctx(1.0), {}, c);  // parent edges {0, 2, 3}
  ASSERT_EQ(cache.num_trees(), 2u);

  // Edge 1 (1–3) flips unusable: only the tree from node 0 routes through
  // it, so the tree from node 2 survives and keeps hitting.
  cache.on_link_debit(1, 1.0, 0.0, kEps);
  EXPECT_EQ(cache.invalidation_stats().trees_evicted, 1u);
  EXPECT_EQ(cache.num_trees(), 1u);
  (void)cache.tree(g, 2, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_hits, 1u);
  (void)cache.tree(g, 0, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_misses, 3u);
}

TEST(PathCache, ContextSeparatesEntriesAndFlipsAreRateScoped) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  (void)cache.tree(g, 0, ctx(1.0), {}, c);
  (void)cache.tree(g, 0, ctx(2.0), {}, c);
  EXPECT_EQ(c.cache_misses, 2u);  // different rates never share
  EXPECT_EQ(cache.num_trees(), 2u);

  // 2.5 → 1.5 flips edge 0 at rate 2.0 only; the rate-1.0 entry survives.
  cache.on_link_debit(0, 2.5, 1.5, kEps);
  EXPECT_EQ(cache.invalidation_stats().flips, 1u);
  EXPECT_EQ(cache.num_trees(), 1u);
  (void)cache.tree(g, 0, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_hits, 1u);
}

TEST(PathCache, KPathsCachedPerEndpointAndK) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  const auto p1 = cache.k_paths(g, 0, 3, 2, ctx(1.0), {}, c);
  ASSERT_EQ(p1->size(), 2u);
  EXPECT_EQ(c.yen_calls, 1u);
  (void)cache.k_paths(g, 0, 3, 2, ctx(1.0), {}, c);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.yen_calls, 1u);
  (void)cache.k_paths(g, 0, 3, 3, ctx(1.0), {}, c);  // different k ⇒ miss
  EXPECT_EQ(c.yen_calls, 2u);
}

TEST(PathCache, DebitFlipEvictsAllKPathListsAtThatRate) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  (void)cache.k_paths(g, 0, 3, 2, ctx(1.0), {}, c);
  // Yen entries are evicted wholesale on a flip even when their paths avoid
  // the edge: a vanished edge can unmask equal-cost candidates, so keeping
  // "non-intersecting" lists would not be bit-exact.
  cache.on_link_debit(3, 1.0, 0.0, kEps);
  EXPECT_EQ(cache.invalidation_stats().yens_evicted, 1u);
  EXPECT_EQ(cache.num_k_paths(), 0u);
  // A non-flip debit, by contrast, spares them.
  (void)cache.k_paths(g, 0, 3, 2, ctx(1.0), {}, c);
  cache.on_link_debit(3, 10.0, 5.0, kEps);
  EXPECT_EQ(cache.num_k_paths(), 1u);
}

TEST(PathCache, CreditFlipEvictsEverythingAtThatRate) {
  const graph::Graph g = diamond();
  graph::PathCache cache;
  graph::PathQueryCounters c;
  (void)cache.tree(g, 0, ctx(1.0), {}, c);
  (void)cache.k_paths(g, 0, 3, 2, ctx(1.0), {}, c);

  // A credit that keeps the edge unusable flips nothing.
  cache.on_link_credit(0, 0.2, 0.6, kEps);
  EXPECT_EQ(cache.invalidation_stats().flips, 0u);
  EXPECT_EQ(cache.num_trees(), 1u);
  EXPECT_EQ(cache.num_k_paths(), 1u);

  // Flipping an edge usable can improve paths anywhere — every rate-1.0
  // entry goes, footprints notwithstanding.
  cache.on_link_credit(0, 0.6, 2.0, kEps);
  EXPECT_EQ(cache.invalidation_stats().flips, 1u);
  EXPECT_EQ(cache.num_trees(), 0u);
  EXPECT_EQ(cache.num_k_paths(), 0u);
}

TEST(PathCache, EvictsEverythingWhenFull) {
  const graph::Graph g = diamond();
  graph::PathCache cache(/*max_entries=*/2);
  graph::PathQueryCounters c;
  (void)cache.tree(g, 0, ctx(1.0), {}, c);
  (void)cache.tree(g, 1, ctx(1.0), {}, c);
  EXPECT_EQ(cache.num_trees(), 2u);
  // All entries are current under event invalidation, so a full store is
  // simply wiped to make room.
  (void)cache.tree(g, 2, ctx(1.0), {}, c);
  EXPECT_EQ(c.evictions, 2u);
  EXPECT_EQ(cache.num_trees(), 1u);
  // A held entry stays valid across eviction of its cache slot.
  const auto held = cache.tree(g, 1, ctx(1.0), {}, c);
  (void)cache.tree(g, 3, ctx(1.0), {}, c);
  EXPECT_EQ(c.evictions, 4u);
  EXPECT_EQ(held->source, 1u);
  EXPECT_EQ(held->dist[0], 1.0);
}

TEST(PathCache, CountersAggregateAndReportHitRate) {
  graph::PathQueryCounters a{10, 2, 5, 3, 6, 4, 1};
  graph::PathQueryCounters b{1, 1, 2, 1, 2, 0, 0};
  a += b;
  EXPECT_EQ(a.dijkstra_calls, 11u);
  EXPECT_EQ(a.yen_calls, 3u);
  EXPECT_EQ(a.bfs_calls, 7u);
  EXPECT_EQ(a.steiner_calls, 4u);
  EXPECT_EQ(a.cache_hits, 8u);
  EXPECT_EQ(a.cache_misses, 4u);
  EXPECT_EQ(a.evictions, 1u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(graph::PathQueryCounters{}.hit_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Differential harness: cache on vs cache off, identical results everywhere.

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_same_path(const graph::Path& a, const graph::Path& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.cost, b.cost);
}

/// Cache-on and cache-off solves must agree bit for bit: same outcome, same
/// cost, same placements, same real-paths, same search effort.
void expect_identical(const core::SolveResult& on,
                      const core::SolveResult& off) {
  ASSERT_EQ(on.ok(), off.ok()) << on.failure_reason << " vs "
                               << off.failure_reason;
  EXPECT_EQ(on.failure_reason, off.failure_reason);
  EXPECT_EQ(on.expanded_sub_solutions, off.expanded_sub_solutions);
  EXPECT_EQ(on.candidate_solutions, off.candidate_solutions);
  if (!on.ok()) return;
  EXPECT_EQ(on.cost, off.cost);  // bit-identical, not approximate
  ASSERT_TRUE(off.solution.has_value());
  EXPECT_EQ(on.solution->placement, off.solution->placement);
  ASSERT_EQ(on.solution->inter_paths.size(), off.solution->inter_paths.size());
  for (std::size_t i = 0; i < on.solution->inter_paths.size(); ++i) {
    expect_same_path(on.solution->inter_paths[i], off.solution->inter_paths[i]);
  }
  ASSERT_EQ(on.solution->inner_paths.size(), off.solution->inner_paths.size());
  for (std::size_t i = 0; i < on.solution->inner_paths.size(); ++i) {
    expect_same_path(on.solution->inner_paths[i], off.solution->inner_paths[i]);
  }
}

core::SolveResult solve_with(const core::Embedder& algo,
                             const core::ModelIndex& index, bool cache_on,
                             std::uint64_t rng_seed,
                             graph::PathQueryCounters* tally = nullptr) {
  net::CapacityLedger ledger(index.problem().net());
  ledger.set_cache_enabled(cache_on);
  Rng rng(rng_seed);
  core::SolveResult r = algo.solve(index, ledger, rng);
  if (tally != nullptr) *tally += r.path_queries;
  return r;
}

struct EmbedderSet {
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  core::ExactEmbedder exact{core::ExactOptions{50'000'000}};
  core::LayeredEmbedder layered{core::LayeredOptions{
      .delay_budget_ms = std::nullopt,
      .delay_model = {},
      .max_work = 50'000'000,
      .max_labels = 2'000'000}};

  [[nodiscard]] std::vector<const core::Embedder*> all() const {
    return {&ranv, &minv, &bbe, &mbbe, &exact, &layered};
  }
};

void run_differential(const core::ModelIndex& index, std::uint64_t seed,
                      graph::PathQueryCounters* on_tally) {
  const EmbedderSet set;
  const core::SolutionValidator validator(index);
  for (const core::Embedder* algo : set.all()) {
    SCOPED_TRACE(algo->name());
    const auto on = solve_with(*algo, index, true, seed, on_tally);
    const auto off = solve_with(*algo, index, false, seed);
    // The cache-off arm never touches the cache.
    EXPECT_EQ(off.path_queries.cache_hits, 0u);
    EXPECT_EQ(off.path_queries.cache_misses, 0u);
    expect_identical(on, off);
    // Independent admissibility oracle over the returned solution, with its
    // bitwise cost recomputation.
    const net::CapacityLedger fresh(index.problem().net());
    const auto audit = validator.check(on, fresh);
    EXPECT_TRUE(audit.ok()) << audit.to_string();
  }
}

class CorpusDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusDifferential, CacheOnOffIdentical) {
  const std::string dir = std::string(DAGSFC_CORPUS_DIR) + "/";
  net::Network network =
      net::network_from_text(slurp(dir + GetParam() + std::string(".net.txt")));
  const sfc::SfcFile file =
      sfc::sfc_from_text(slurp(dir + GetParam() + std::string(".sfc.txt")));
  ASSERT_TRUE(file.flow.has_value());

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  run_differential(index, /*seed=*/1, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Instances, CorpusDifferential,
                         ::testing::Values("ring12", "leafspine14", "waxman20",
                                           "tightline5"),
                         [](const auto& info) { return info.param; });

TEST(PathCacheDifferential, TwoHundredRandomInstances) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;

  graph::PathQueryCounters on_tally;
  Rng seeder(0xd1ffe7e57ull);
  for (int i = 0; i < 200; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    Rng rng(seeder.fork_seed());
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    run_differential(index, /*seed=*/1000 + i, &on_tally);
    if (::testing::Test::HasFailure()) break;  // one instance is enough
  }
  // The equivalence above must not be vacuous: the cached arm has to have
  // actually reused entries somewhere across the 200 instances.
  EXPECT_GT(on_tally.cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Ledger integration

TEST(LedgerPathCache, CacheSurvivesNonFlipDebitsAndEvictsOnFlips) {
  auto fx = test::canonical_fixture();
  net::CapacityLedger ledger(fx->network);
  const core::MbbeEmbedder mbbe;
  Rng rng(1);

  const auto first = mbbe.solve(*fx->index, ledger, rng);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.path_queries.cache_misses, 0u);

  // Same ledger, unchanged residuals: the second solve reuses everything.
  const auto second = mbbe.solve(*fx->index, ledger, rng);
  EXPECT_EQ(second.path_queries.cache_misses, 0u);
  EXPECT_GT(second.path_queries.cache_hits, 0u);
  expect_identical(second, first);

  // A debit that keeps link 0 usable at the flow rate (100 → 99, rate 1)
  // flips nothing: cached routes stay live across the mutation. The
  // epoch-keyed design this replaces dropped the whole cache here.
  ledger.consume_link(0, 1.0);
  const auto third = mbbe.solve(*fx->index, ledger, rng);
  EXPECT_EQ(third.path_queries.cache_misses, 0u);
  EXPECT_GT(third.path_queries.cache_hits, 0u);
  expect_identical(third, first);

  // Draining the link below the rate is a flip: affected entries go and
  // the next solve recomputes.
  ledger.consume_link(0, 98.5);
  const auto fourth = mbbe.solve(*fx->index, ledger, rng);
  EXPECT_GT(fourth.path_queries.cache_misses, 0u);
}

/// The MVCC-replica scenario: one long-lived cache-on ledger survives a
/// random stream of committed footprints (applies) and departures
/// (unapplies) between solves. After every mutation batch the next solve
/// must be bit-identical to a cache-off solve over the same residuals —
/// proving the event-driven invalidation evicted everything a mutation
/// could have affected (soundness) while whatever survived is still valid.
TEST(LedgerPathCache, InvalidationDifferentialAcrossCommitsAndDepartures) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 16;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;
  cfg.vnf_capacity = 6.0;
  cfg.link_capacity = 4.0;  // small: commits actually flip link usability
  Rng rng(0xcafe);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);

  net::CapacityLedger live(scenario.network);  // cache on, never reset
  const core::MbbeEmbedder mbbe;

  struct Committed {
    core::ResourceUsage usage;
    double rate = 0.0;
  };
  std::vector<Committed> in_service;
  std::uint64_t total_hits = 0;

  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    auto src = static_cast<graph::NodeId>(rng.index(cfg.network_size));
    auto dst = static_cast<graph::NodeId>(rng.index(cfg.network_size));
    if (dst == src) {
      dst = static_cast<graph::NodeId>((dst + 1) % cfg.network_size);
    }
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{src, dst, 1.0, 1.0};
    const core::ModelIndex index(problem);

    // Reference arm: identical residuals (copied from the live ledger),
    // cache off. The copy never shares the live cache, so the only thing
    // under test is whether the survivors in the live cache are stale.
    net::CapacityLedger fresh(live);
    fresh.set_cache_enabled(false);

    Rng on_rng(7000 + round);
    Rng off_rng(7000 + round);
    const auto on = mbbe.solve(index, live, on_rng);
    const auto off = mbbe.solve(index, fresh, off_rng);
    expect_identical(on, off);
    if (::testing::Test::HasFailure()) break;
    total_hits += on.path_queries.cache_hits;

    if (on.ok()) {
      // Commit: debits fire the footprint-scoped eviction hooks.
      core::ResourceUsage usage = core::Evaluator(index).usage(*on.solution);
      live.apply(usage.link_uses, usage.instance_uses, 1.0);
      in_service.push_back(Committed{std::move(usage), 1.0});
    }
    if (in_service.size() > 4) {
      // Departure: credits flip links back to usable; the conservative
      // credit eviction must keep the survivors coherent too.
      const std::size_t pick = rng.index(in_service.size());
      const Committed gone = in_service[pick];
      in_service[pick] = in_service.back();
      in_service.pop_back();
      live.unapply(gone.usage.link_uses, gone.usage.instance_uses, gone.rate);
    }
  }
  // Not vacuous: entries must actually have survived mutations and been
  // reused across rounds.
  EXPECT_GT(total_hits, 0u);
}

TEST(LedgerPathCache, CachingReducesDijkstraComputations) {
  sim::ExperimentConfig cfg;
  cfg.network_size = 50;
  cfg.catalog_size = 6;
  cfg.sfc_size = 4;
  Rng rng(99);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
  core::EmbeddingProblem problem;
  problem.network = &scenario.network;
  problem.sfc = &dag;
  problem.flow = core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
  const core::ModelIndex index(problem);

  const core::MbbeEmbedder mbbe;
  const auto on = solve_with(mbbe, index, true, 1);
  const auto off = solve_with(mbbe, index, false, 1);
  expect_identical(on, off);
  EXPECT_GT(on.path_queries.cache_hits, 0u);
  EXPECT_LT(on.path_queries.dijkstra_calls, off.path_queries.dijkstra_calls);
}

}  // namespace
}  // namespace dagsfc
