/// End-to-end integration tests: generated scenarios, all algorithms, cost
/// evaluation and feasibility checked through the whole stack.

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

namespace dagsfc {
namespace {

sim::ExperimentConfig small_config() {
  sim::ExperimentConfig cfg;
  cfg.network_size = 40;
  cfg.network_connectivity = 4.0;
  cfg.catalog_size = 8;
  cfg.sfc_size = 5;
  cfg.trials = 5;
  return cfg;
}

core::ModelIndex make_index(const sim::Scenario& scenario,
                            const sfc::DagSfc& dag,
                            core::EmbeddingProblem& problem) {
  problem.network = &scenario.network;
  problem.sfc = &dag;
  problem.flow =
      core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
  return core::ModelIndex(problem);
}

TEST(Integration, AllAlgorithmsProduceValidSolutionsOnGeneratedScenario) {
  Rng rng(7);
  const auto cfg = small_config();
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  const sfc::DagSfc dag = sim::make_sfc(rng, scenario.network.catalog(), cfg);
  core::EmbeddingProblem problem;
  const core::ModelIndex index = make_index(scenario, dag, problem);
  const core::Evaluator evaluator(index);

  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  const std::vector<const core::Embedder*> algos{&ranv, &minv, &bbe, &mbbe};

  for (const auto* algo : algos) {
    SCOPED_TRACE(algo->name());
    const core::SolveResult r = algo->solve_fresh(index, rng);
    ASSERT_TRUE(r.ok()) << r.failure_reason;
    EXPECT_TRUE(evaluator.validate(*r.solution).empty());
    EXPECT_NEAR(evaluator.cost(*r.solution), r.cost, 1e-9);
    EXPECT_GT(r.cost, 0.0);
  }
}

TEST(Integration, HeuristicsNeverBeatExactOnTinyInstances) {
  core::ExactEmbedder exact;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  Rng rng(11);
  sim::ExperimentConfig cfg;
  cfg.network_size = 12;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 5;
  cfg.sfc_size = 4;
  cfg.trials = 1;
  for (int t = 0; t < 8; ++t) {
    const sim::Scenario scenario = sim::make_scenario(rng, cfg);
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    core::EmbeddingProblem problem;
    const core::ModelIndex index = make_index(scenario, dag, problem);

    const auto re = exact.solve_fresh(index, rng);
    ASSERT_TRUE(re.ok()) << re.failure_reason;
    for (const core::Embedder* h :
         std::vector<const core::Embedder*>{&bbe, &mbbe}) {
      const auto rh = h->solve_fresh(index, rng);
      ASSERT_TRUE(rh.ok()) << h->name() << ": " << rh.failure_reason;
      EXPECT_GE(rh.cost + 1e-9, re.cost)
          << h->name() << " beat the exact optimum — evaluator inconsistency";
    }
  }
}

TEST(Integration, RunnerAggregatesAllAlgorithms) {
  const auto cfg = small_config();
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::MbbeEmbedder mbbe;
  const auto stats =
      sim::run_comparison(cfg, {&ranv, &minv, &mbbe}, sim::RunOptions{2});
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    SCOPED_TRACE(s.name);
    EXPECT_EQ(s.successes + s.failures, cfg.trials);
    if (s.successes > 0) EXPECT_GT(s.cost.mean(), 0.0);
  }
  // MBBE should be no worse on average than random placement.
  EXPECT_LE(stats[2].cost.mean(), stats[0].cost.mean());
}

TEST(Integration, RunnerIsDeterministicAcrossThreadCounts) {
  auto cfg = small_config();
  cfg.trials = 6;
  core::MinvEmbedder minv;
  core::MbbeEmbedder mbbe;
  const auto a =
      sim::run_comparison(cfg, {&minv, &mbbe}, sim::RunOptions{1});
  const auto b =
      sim::run_comparison(cfg, {&minv, &mbbe}, sim::RunOptions{4});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cost.mean(), b[i].cost.mean());
    EXPECT_EQ(a[i].successes, b[i].successes);
  }
}

TEST(Integration, SequentialAdmissionDepletesCapacity) {
  // Tight instance: every VNF/link capacity fits exactly two embeddings.
  test::NetBuilder b(4, 2);
  b.link(0, 1, 1.0, 2.0).link(1, 2, 1.0, 2.0).link(2, 3, 1.0, 2.0);
  b.put(1, 1, 5.0, 2.0).put(2, 2, 5.0, 2.0);
  auto fx = test::make_fixture(
      b.build(), sfc::DagSfc({sfc::Layer{{1}}, sfc::Layer{{2}}}),
      core::Flow{0, 3, 1.0, 1.0});
  const core::Evaluator evaluator(*fx->index);
  core::MbbeEmbedder mbbe;
  Rng rng(3);
  net::CapacityLedger ledger(fx->network);

  for (int admitted = 0; admitted < 2; ++admitted) {
    const auto r = mbbe.solve(*fx->index, ledger, rng);
    ASSERT_TRUE(r.ok()) << "admission " << admitted << ": "
                        << r.failure_reason;
    evaluator.commit(evaluator.usage(*r.solution), ledger);
  }
  const auto r = mbbe.solve(*fx->index, ledger, rng);
  EXPECT_FALSE(r.ok()) << "third admission should exceed capacity";
}

}  // namespace
}  // namespace dagsfc
