/// Tests for the observability subsystem: util::TraceRecorder (ring buffer,
/// spans, worker-lane tagging, Chrome export), core::EmbeddingTrace (typed
/// solve events), and the three contracts the tracing design rests on:
///   1. tracing never changes a solve (disabled-trace solves bit-identical),
///   2. traces are deterministic (byte-stable Chrome JSON across runs and
///      thread counts),
///   3. the Cost events reproduce objective (1) bitwise, and cache-on vs
///      cache-off traces differ only in Cache-category events.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/trace.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

// ---------------------------------------------------------------------------
// util::TraceRecorder

TEST(TraceRecorder, LogicalClockStampsSequentially) {
  util::TraceRecorder rec;
  rec.instant("a");
  rec.instant("b", "cat");
  rec.instant("c");
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].ts, 0u);
  EXPECT_EQ(events[1].ts, 1u);
  EXPECT_EQ(events[1].cat, "cat");
  EXPECT_EQ(events[2].ts, 2u);
}

TEST(TraceRecorder, RingDropsOldestAndCounts) {
  util::TraceRecorder rec(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) rec.instant(std::to_string(i));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "2");  // oldest surviving
  EXPECT_EQ(events[2].name, "4");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, DisabledRecorderIgnoresEvents) {
  util::TraceRecorder rec;
  rec.set_enabled(false);
  rec.instant("dropped");
  { util::TraceSpan span(&rec, "also dropped"); }
  EXPECT_EQ(rec.size(), 0u);
  rec.set_enabled(true);
  rec.instant("kept");
  EXPECT_EQ(rec.size(), 1u);
}

TEST(TraceRecorder, SpanRecordsBeginEndPair) {
  util::TraceRecorder rec;
  {
    util::TraceSpan span(&rec, "work", "phase");
    rec.instant("inside");
  }
  { util::TraceSpan null_span(nullptr, "noop"); }  // must not crash
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[1].name, "inside");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[2].name, "work");
}

TEST(TraceRecorder, TagsPoolWorkerLanes) {
  EXPECT_EQ(ThreadPool::current_worker_id(), 0u);  // main thread
  util::TraceRecorder rec;
  ThreadPool pool(3);
  parallel_for(pool, 16, [&](std::size_t i) {
    rec.instant("task " + std::to_string(i));
  });
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (const auto& e : events) {
    EXPECT_GE(e.tid, 1u);
    EXPECT_LE(e.tid, 3u);
  }
}

TEST(TraceRecorder, ChromeExportIsWellFormed) {
  util::TraceRecorder rec;
  util::TraceEvent e;
  e.name = "say \"hi\"";
  e.cat = "test";
  e.phase = 'i';
  e.num_args.emplace_back("count", 3.0);
  e.str_args.emplace_back("why", "line\nbreak");
  rec.record(std::move(e));
  rec.instant("plain");

  const std::string json = util::to_chrome_trace(rec.snapshot(), /*pid=*/7);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"count\":3,\"why\":\"line\\nbreak\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  // Events without a category get the "default" bucket.
  EXPECT_NE(json.find("\"cat\":\"default\""), std::string::npos);
}

TEST(TraceRecorder, GlobalRecorderInstallUninstall) {
  EXPECT_EQ(util::global_trace(), nullptr);
  auto& rec = util::install_global_trace(64);
  EXPECT_EQ(util::global_trace(), &rec);
  rec.instant("hello");
  EXPECT_EQ(rec.size(), 1u);
  util::uninstall_global_trace();
  EXPECT_EQ(util::global_trace(), nullptr);
}

#ifdef DAGSFC_TRACE
TEST(TraceRecorder, AmbientMacrosTargetGlobalRecorder) {
  auto& rec = util::install_global_trace(64);
  {
    DAGSFC_TRACE_SCOPE("scoped");
    DAGSFC_TRACE_INSTANT("instant");
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].name, "instant");
  EXPECT_EQ(events[2].phase, 'E');
  util::uninstall_global_trace();
}
#else
TEST(TraceRecorder, AmbientMacrosCompileToNothingWhenDisabled) {
  auto& rec = util::install_global_trace(64);
  {
    DAGSFC_TRACE_SCOPE("scoped");
    DAGSFC_TRACE_INSTANT("instant");
  }
  EXPECT_EQ(rec.size(), 0u);
  util::uninstall_global_trace();
}
#endif

// ---------------------------------------------------------------------------
// core::EmbeddingTrace on the canonical fixture

core::SolveResult solve_traced(const core::Embedder& algo,
                               const core::ModelIndex& index, bool cache_on,
                               std::uint64_t seed,
                               core::EmbeddingTrace* trace) {
  net::CapacityLedger ledger(index.problem().net());
  ledger.set_cache_enabled(cache_on);
  Rng rng(seed);
  return algo.solve(index, ledger, rng, trace);
}

TEST(EmbeddingTrace, SolveEnvelopeAndBitwiseReconstruction) {
  auto fx = test::canonical_fixture();
  const core::MbbeEmbedder mbbe;
  core::EmbeddingTrace trace;
  const auto r = solve_traced(mbbe, *fx->index, true, 1, &trace);
  ASSERT_TRUE(r.ok());

  const auto& events = trace.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().kind, core::TraceEventKind::SolveBegin);
  EXPECT_EQ(events.front().s0, "MBBE");
  EXPECT_EQ(events.back().kind, core::TraceEventKind::SolveEnd);
  EXPECT_EQ(events.back().i0, 1);
  EXPECT_EQ(events.back().v0, r.cost);  // bitwise

  // The per-term reconstruction of objective (1) must be *bitwise* equal to
  // the evaluator's reported cost — same terms, same summation order.
  EXPECT_EQ(trace.reconstructed_cost(), r.cost);

  const core::TraceCounts c = trace.counts();
  EXPECT_GT(c.decision_events, 0u);
  EXPECT_GT(c.forward_searches, 0u);
  EXPECT_GT(c.backward_searches, 0u);
  EXPECT_GT(c.candidate_children, 0u);
  EXPECT_GT(c.vnf_terms, 0u);
  EXPECT_GT(c.link_terms, 0u);

  const std::string s = trace.summary();
  EXPECT_NE(s.find("MBBE"), std::string::npos);
  EXPECT_NE(s.find("ok"), std::string::npos);
}

TEST(EmbeddingTrace, FailureSolvesCarryTheReason) {
  // Destination 4 exists but no merger-capable parallel embedding below: use
  // a layer type that is nowhere deployed by cloning the canonical fixture
  // with an SFC that asks for type 3 twice the network cannot satisfy — the
  // simplest robust failure is an SFC requiring a type with no instances.
  test::NetBuilder b(4, 2);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(2, 3, 1.0);
  b.put(1, 1, 5.0);  // type 2 never deployed
  auto fx = test::make_fixture(b.build(), sfc::DagSfc({sfc::Layer{{2}}}),
                               core::Flow{0, 3, 1.0, 1.0});
  const core::MbbeEmbedder mbbe;
  core::EmbeddingTrace trace;
  const auto r = solve_traced(mbbe, *fx->index, true, 1, &trace);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(trace.events().back().kind, core::TraceEventKind::SolveEnd);
  EXPECT_EQ(trace.events().back().i0, 0);
  EXPECT_EQ(trace.events().back().s0, r.failure_reason);
  EXPECT_NE(trace.summary().find("FAILED"), std::string::npos);
}

TEST(EmbeddingTrace, TraceCountsAreAdditive) {
  core::TraceCounts a;
  a.forward_searches = 2;
  a.vnf_terms = 3;
  a.multicast_shared_uses = 1;
  core::TraceCounts b;
  b.forward_searches = 5;
  b.link_terms = 4;
  a += b;
  EXPECT_EQ(a.forward_searches, 7u);
  EXPECT_EQ(a.vnf_terms, 3u);
  EXPECT_EQ(a.link_terms, 4u);
  EXPECT_EQ(a.multicast_shared_uses, 1u);
}

// ---------------------------------------------------------------------------
// Corpus contracts

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct CorpusInstance {
  net::Network network;
  sfc::SfcFile file;
  core::EmbeddingProblem problem;
  std::unique_ptr<core::ModelIndex> index;

  explicit CorpusInstance(const std::string& name)
      : network(net::network_from_text(
            slurp(std::string(DAGSFC_CORPUS_DIR) + "/" + name + ".net.txt"))),
        file(sfc::sfc_from_text(
            slurp(std::string(DAGSFC_CORPUS_DIR) + "/" + name + ".sfc.txt"))) {
    if (!file.flow.has_value()) {
      throw std::runtime_error("corpus instance lacks a flow line");
    }
    problem.network = &network;
    problem.sfc = &file.dag;
    problem.flow = core::Flow{file.flow->source, file.flow->destination,
                              file.flow->rate, file.flow->size};
    index = std::make_unique<core::ModelIndex>(problem);
  }
};

struct EmbedderSet {
  core::RanvEmbedder ranv;
  core::MinvEmbedder minv;
  core::BbeEmbedder bbe;
  core::MbbeEmbedder mbbe;
  core::ExactEmbedder exact{core::ExactOptions{50'000'000}};

  [[nodiscard]] std::vector<const core::Embedder*> all() const {
    return {&ranv, &minv, &bbe, &mbbe, &exact};
  }
};

void expect_same_path(const graph::Path& a, const graph::Path& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.cost, b.cost);
}

void expect_identical(const core::SolveResult& a, const core::SolveResult& b) {
  ASSERT_EQ(a.ok(), b.ok()) << a.failure_reason << " vs " << b.failure_reason;
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.expanded_sub_solutions, b.expanded_sub_solutions);
  EXPECT_EQ(a.candidate_solutions, b.candidate_solutions);
  if (!a.ok()) return;
  EXPECT_EQ(a.cost, b.cost);  // bit-identical
  EXPECT_EQ(a.solution->placement, b.solution->placement);
  ASSERT_EQ(a.solution->inter_paths.size(), b.solution->inter_paths.size());
  for (std::size_t i = 0; i < a.solution->inter_paths.size(); ++i) {
    expect_same_path(a.solution->inter_paths[i], b.solution->inter_paths[i]);
  }
  ASSERT_EQ(a.solution->inner_paths.size(), b.solution->inner_paths.size());
  for (std::size_t i = 0; i < a.solution->inner_paths.size(); ++i) {
    expect_same_path(a.solution->inner_paths[i], b.solution->inner_paths[i]);
  }
}

class CorpusTrace : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusTrace, TracedSolveIsBitIdenticalToUntraced) {
  const CorpusInstance inst(GetParam());
  const EmbedderSet set;
  for (const core::Embedder* algo : set.all()) {
    SCOPED_TRACE(algo->name());
    core::EmbeddingTrace trace;
    const auto traced = solve_traced(*algo, *inst.index, true, 1, &trace);
    const auto plain = solve_traced(*algo, *inst.index, true, 1, nullptr);
    expect_identical(traced, plain);
  }
}

TEST_P(CorpusTrace, CostEventsReconstructObjectiveBitwise) {
  const CorpusInstance inst(GetParam());
  const EmbedderSet set;
  for (const core::Embedder* algo : set.all()) {
    SCOPED_TRACE(algo->name());
    core::EmbeddingTrace trace;
    const auto r = solve_traced(*algo, *inst.index, true, 1, &trace);
    if (!r.ok()) continue;
    EXPECT_EQ(trace.reconstructed_cost(), r.cost);
    // Charged link uses never exceed the raw path incidences, and VNF terms
    // are never discounted.
    for (const core::SolveEvent& e : trace.events()) {
      if (e.kind == core::TraceEventKind::LinkTerm) {
        EXPECT_LE(e.i1, e.i2);
      }
      if (e.kind == core::TraceEventKind::VnfTerm) {
        EXPECT_GE(e.i1, 1);
      }
    }
  }
}

TEST_P(CorpusTrace, ChromeJsonIsByteStableAcrossThreadCounts) {
  const CorpusInstance inst(GetParam());
  const core::MbbeEmbedder mbbe;

  auto traced_json = [&]() {
    core::EmbeddingTrace trace;
    (void)solve_traced(mbbe, *inst.index, true, 1, &trace);
    return trace.to_chrome_json();
  };

  const std::string main_thread = traced_json();
  EXPECT_FALSE(main_thread.empty());
  // Re-run on pool workers: logical clocks and pinned tid/pid make the
  // document identical byte for byte regardless of which thread solves.
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::string> outputs(threads * 2);
    parallel_for(pool, outputs.size(),
                 [&](std::size_t i) { outputs[i] = traced_json(); });
    for (const std::string& out : outputs) EXPECT_EQ(out, main_thread);
  }
}

TEST_P(CorpusTrace, CacheOnOffDifferOnlyInCacheEvents) {
  const CorpusInstance inst(GetParam());
  const EmbedderSet set;
  for (const core::Embedder* algo : set.all()) {
    SCOPED_TRACE(algo->name());
    core::EmbeddingTrace on;
    core::EmbeddingTrace off;
    (void)solve_traced(*algo, *inst.index, true, 1, &on);
    (void)solve_traced(*algo, *inst.index, false, 1, &off);

    auto non_cache = [](const core::EmbeddingTrace& t) {
      std::vector<core::SolveEvent> out;
      for (const core::SolveEvent& e : t.events()) {
        if (core::category(e.kind) != core::TraceCategory::Cache) {
          out.push_back(e);
        }
      }
      return out;
    };
    // Decision/Meta/Cost streams are identical — caching may never change
    // what the solver decides, only how the shortest-path work is served.
    EXPECT_EQ(non_cache(on), non_cache(off));

    // The cache-off arm reports zero cache traffic.
    for (const core::SolveEvent& e : off.events()) {
      if (e.kind == core::TraceEventKind::CacheStats) {
        EXPECT_EQ(e.i0, 0);
        EXPECT_EQ(e.i1, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, CorpusTrace,
                         ::testing::Values("ring12", "leafspine14", "waxman20",
                                           "tightline5"),
                         [](const auto& param_info) { return param_info.param; });

// ---------------------------------------------------------------------------
// sim runner aggregation

TEST(RunnerTraces, CollectTracesAggregatesDeterministically) {
  sim::ExperimentConfig cfg;
  cfg.trials = 8;
  cfg.network_size = 14;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 3;
  cfg.seed = 0x7ace;

  const core::MinvEmbedder minv;
  const core::MbbeEmbedder mbbe;
  const std::vector<const core::Embedder*> algos{&minv, &mbbe};

  sim::RunOptions with_traces;
  with_traces.collect_traces = true;
  with_traces.threads = 1;
  const auto serial = sim::run_comparison(cfg, algos, with_traces);
  with_traces.threads = 4;
  const auto parallel = sim::run_comparison(cfg, algos, with_traces);

  ASSERT_EQ(serial.size(), 2u);
  for (std::size_t a = 0; a < serial.size(); ++a) {
    SCOPED_TRACE(serial[a].name);
    // Trace roll-ups are sums of integers reduced in trial order: identical
    // for any thread count.
    EXPECT_EQ(serial[a].trace, parallel[a].trace);
    EXPECT_GT(serial[a].trace.vnf_terms, 0u);
  }
  // MBBE performs ring searches; MINV does not.
  EXPECT_EQ(serial[0].trace.forward_searches, 0u);
  EXPECT_GT(serial[1].trace.forward_searches, 0u);

  // Tracing must not perturb the results themselves.
  sim::RunOptions plain;
  plain.threads = 2;
  const auto untraced = sim::run_comparison(cfg, algos, plain);
  for (std::size_t a = 0; a < serial.size(); ++a) {
    EXPECT_EQ(untraced[a].trace, core::TraceCounts{});
    EXPECT_EQ(untraced[a].successes, serial[a].successes);
    EXPECT_DOUBLE_EQ(untraced[a].cost.mean(), serial[a].cost.mean());
    EXPECT_EQ(untraced[a].path_queries.dijkstra_calls,
              serial[a].path_queries.dijkstra_calls);
  }
}

}  // namespace
}  // namespace dagsfc
