#include "sfc/transform.hpp"

#include <gtest/gtest.h>

namespace dagsfc::sfc {
namespace {

MatrixOracle all_parallel(std::size_t n) {
  MatrixOracle m(n);
  for (net::VnfTypeId a = 1; a <= n; ++a) {
    for (net::VnfTypeId b = a + 1; b <= n; ++b) m.set_parallel(a, b);
  }
  return m;
}

TEST(Transform, FullyParallelChainCollapsesToOneLayer) {
  const auto oracle = all_parallel(4);
  const DagSfc dag = transform(SequentialSfc{{1, 2, 3, 4}}, oracle);
  ASSERT_EQ(dag.num_layers(), 1u);
  EXPECT_EQ(dag.layer(0).vnfs, (std::vector<net::VnfTypeId>{1, 2, 3, 4}));
  EXPECT_TRUE(dag.layer(0).has_merger());
}

TEST(Transform, FullySequentialChainKeepsAllLayers) {
  const MatrixOracle oracle(4);  // nothing parallel
  const DagSfc dag = transform(SequentialSfc{{1, 2, 3, 4}}, oracle);
  EXPECT_EQ(dag.num_layers(), 4u);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(dag.layer(l).width(), 1u);
    EXPECT_FALSE(dag.layer(l).has_merger());
  }
}

TEST(Transform, Fig2StyleMixedChain) {
  // 1 ∥ nothing; {2,3,4,5} mutually parallel; {6,7} mutually parallel.
  MatrixOracle m(7);
  for (net::VnfTypeId a = 2; a <= 5; ++a) {
    for (net::VnfTypeId b = a + 1; b <= 5; ++b) m.set_parallel(a, b);
  }
  m.set_parallel(6, 7);
  const DagSfc dag = transform(SequentialSfc{{1, 2, 3, 4, 5, 6, 7}}, m);
  ASSERT_EQ(dag.num_layers(), 3u);
  EXPECT_EQ(dag.layer(0).vnfs, (std::vector<net::VnfTypeId>{1}));
  EXPECT_EQ(dag.layer(1).vnfs, (std::vector<net::VnfTypeId>{2, 3, 4, 5}));
  EXPECT_EQ(dag.layer(2).vnfs, (std::vector<net::VnfTypeId>{6, 7}));
}

TEST(Transform, AbsorbRequiresParallelWithWholeLayer) {
  // 1∥2 and 2∥3 but 1∦3: 3 must open a new layer.
  MatrixOracle m(3);
  m.set_parallel(1, 2);
  m.set_parallel(2, 3);
  const DagSfc dag = transform(SequentialSfc{{1, 2, 3}}, m);
  ASSERT_EQ(dag.num_layers(), 2u);
  EXPECT_EQ(dag.layer(0).vnfs, (std::vector<net::VnfTypeId>{1, 2}));
  EXPECT_EQ(dag.layer(1).vnfs, (std::vector<net::VnfTypeId>{3}));
}

TEST(Transform, WidthCapSplitsLayers) {
  const auto oracle = all_parallel(6);
  TransformOptions opts;
  opts.max_layer_width = 3;
  const DagSfc dag = transform(SequentialSfc{{1, 2, 3, 4, 5, 6}}, oracle,
                               opts);
  ASSERT_EQ(dag.num_layers(), 2u);
  EXPECT_EQ(dag.layer(0).width(), 3u);
  EXPECT_EQ(dag.layer(1).width(), 3u);
}

TEST(Transform, RepeatedTypeNeverSharesItsOwnLayer) {
  const auto oracle = all_parallel(2);
  const DagSfc dag = transform(SequentialSfc{{1, 1}}, oracle);
  ASSERT_EQ(dag.num_layers(), 2u);  // a parallel set is a set
}

TEST(Transform, EmptyChainGivesEmptyDag) {
  const MatrixOracle oracle(2);
  const DagSfc dag = transform(SequentialSfc{{}}, oracle);
  EXPECT_EQ(dag.num_layers(), 0u);
  EXPECT_EQ(dag.size(), 0u);
}

TEST(Transform, SingleVnfChain) {
  const MatrixOracle oracle(2);
  const DagSfc dag = transform(SequentialSfc{{2}}, oracle);
  ASSERT_EQ(dag.num_layers(), 1u);
  EXPECT_FALSE(dag.layer(0).has_merger());
}

TEST(Transform, PreservesVnfMultiset) {
  const auto oracle = all_parallel(5);
  const SequentialSfc chain{{3, 1, 4, 1, 5}};
  const DagSfc dag = transform(chain, oracle);
  std::multiset<net::VnfTypeId> want(chain.chain.begin(), chain.chain.end());
  std::multiset<net::VnfTypeId> got;
  for (const Layer& l : dag.layers()) {
    got.insert(l.vnfs.begin(), l.vnfs.end());
  }
  EXPECT_EQ(got, want);
}

TEST(TransformMinLayers, MatchesGreedyOnEasyChains) {
  const auto oracle = all_parallel(4);
  const SequentialSfc chain{{1, 2, 3, 4}};
  const DagSfc greedy = transform(chain, oracle);
  const DagSfc optimal = transform_min_layers(chain, oracle);
  EXPECT_EQ(optimal.num_layers(), greedy.num_layers());
  EXPECT_EQ(optimal.num_layers(), 1u);
}

TEST(TransformMinLayers, BeatsGreedyWhenGreedyOverCommits) {
  // 1∥2 but 2∥3 only: greedy grabs {1,2} then {3},{4} when 3∦4 — 3 layers.
  // The optimum is {1},{2,3},{4}… both 3. Construct a genuine gap:
  // width cap 2, chain 1 2 3 with 1∥2 and 2∥3, 1∦3:
  //   greedy: {1,2},{3} = 2 — already minimal. Need a case where deferring
  // pays: chain a b c d with a∥b, b∥c, c∥d, a∦c, b∦d:
  //   greedy: {a,b},{c,d} = 2 (minimal).
  // True gaps need a later boundary penalty; classic example:
  // chain 1 2 3 4, pairs: 1∥2, 3∥4, 2∥3, 1∦3, 2∦4... greedy {1,2},{3,4}=2.
  // Greedy IS optimal for interval partitions of a chain when growth is
  // only blocked by conflicts — a known exchange argument — EXCEPT when the
  // width cap interacts: cap 2 on an all-parallel 3-chain: greedy {1,2},{3}
  // = optimal 2 as well. So assert the DP never does WORSE than greedy
  // across randomized oracles instead (the provable property).
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    RandomOracle oracle(8, rng, 0.5);
    std::vector<net::VnfTypeId> c;
    for (int i = 0; i < 7; ++i) {
      c.push_back(static_cast<net::VnfTypeId>(1 + rng.index(8)));
    }
    for (std::size_t cap : {0u, 2u, 3u}) {
      TransformOptions opts;
      opts.max_layer_width = cap;
      const DagSfc greedy = transform(SequentialSfc{c}, oracle, opts);
      const DagSfc optimal =
          transform_min_layers(SequentialSfc{c}, oracle, opts);
      EXPECT_LE(optimal.num_layers(), greedy.num_layers());
      EXPECT_EQ(optimal.size(), c.size());
    }
  }
}

TEST(TransformMinLayers, SegmentsAreValidParallelSets) {
  Rng rng(19);
  const RandomOracle oracle(6, rng, 0.6);
  const SequentialSfc chain{{1, 2, 3, 4, 5, 6}};
  const DagSfc dag = transform_min_layers(chain, oracle);
  for (const Layer& l : dag.layers()) {
    for (std::size_t a = 0; a < l.vnfs.size(); ++a) {
      for (std::size_t b = a + 1; b < l.vnfs.size(); ++b) {
        EXPECT_TRUE(oracle.parallel(l.vnfs[a], l.vnfs[b]));
      }
    }
  }
  // Concatenated layers reproduce the chain order.
  std::vector<net::VnfTypeId> flat;
  for (const Layer& l : dag.layers()) {
    flat.insert(flat.end(), l.vnfs.begin(), l.vnfs.end());
  }
  EXPECT_EQ(flat, chain.chain);
}

TEST(TransformMinLayers, WidthCapRespected) {
  const auto oracle = all_parallel(6);
  TransformOptions opts;
  opts.max_layer_width = 2;
  const DagSfc dag =
      transform_min_layers(SequentialSfc{{1, 2, 3, 4, 5, 6}}, oracle, opts);
  EXPECT_EQ(dag.num_layers(), 3u);
  EXPECT_EQ(dag.max_width(), 2u);
}

TEST(TransformMinLayers, EmptyAndSingleton) {
  const MatrixOracle oracle(2);
  EXPECT_EQ(transform_min_layers(SequentialSfc{{}}, oracle).num_layers(), 0u);
  EXPECT_EQ(transform_min_layers(SequentialSfc{{2}}, oracle).num_layers(),
            1u);
}

TEST(TransformMinLayers, DuplicatesForceBoundaries) {
  const auto oracle = all_parallel(2);
  const DagSfc dag = transform_min_layers(SequentialSfc{{1, 1, 1}}, oracle);
  EXPECT_EQ(dag.num_layers(), 3u);
}

TEST(Transform, OrderWithinChainRespectedAcrossLayers) {
  // With nothing parallel, layer order must equal chain order.
  const MatrixOracle oracle(5);
  const SequentialSfc chain{{5, 3, 1}};
  const DagSfc dag = transform(chain, oracle);
  ASSERT_EQ(dag.num_layers(), 3u);
  EXPECT_EQ(dag.layer(0).vnfs[0], 5u);
  EXPECT_EQ(dag.layer(1).vnfs[0], 3u);
  EXPECT_EQ(dag.layer(2).vnfs[0], 1u);
}

}  // namespace
}  // namespace dagsfc::sfc
