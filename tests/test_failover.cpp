#include "sim/failover.hpp"

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"

namespace dagsfc::sim {
namespace {

FailoverConfig small() {
  FailoverConfig cfg;
  cfg.base.network_size = 30;
  cfg.base.network_connectivity = 4.0;
  cfg.base.catalog_size = 6;
  cfg.base.sfc_size = 3;
  cfg.base.vnf_capacity = 50.0;
  cfg.base.link_capacity = 50.0;
  cfg.num_flows = 20;
  return cfg;
}

TEST(Failover, AccountingIsConsistent) {
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(small(), mbbe, 1);
  EXPECT_LE(r.embedded, 20u);
  EXPECT_LE(r.affected, r.embedded);
  EXPECT_LE(r.recovered, r.affected);
  EXPECT_EQ(r.original_cost.count(), r.affected);
  EXPECT_EQ(r.recovery_cost.count(), r.recovered);
  EXPECT_NE(r.failed_link, graph::kInvalidEdge);
}

TEST(Failover, MostLoadedLinkActuallyCarriesFlows) {
  // On a populated network the most-loaded link must affect someone —
  // otherwise no link carries anything, contradicting embedded > 0.
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(small(), mbbe, 2);
  ASSERT_GT(r.embedded, 0u);
  EXPECT_GT(r.affected, 0u);
}

TEST(Failover, GenerousNetworkRecoversEveryone) {
  FailoverConfig cfg = small();
  cfg.base.network_connectivity = 6.0;  // plenty of alternative routes
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(cfg, mbbe, 3);
  EXPECT_EQ(r.recovered, r.affected);
}

TEST(Failover, DeterministicForFixedSeed) {
  const core::MbbeEmbedder mbbe;
  const FailoverResult a = run_failover(small(), mbbe, 5);
  const FailoverResult b = run_failover(small(), mbbe, 5);
  EXPECT_EQ(a.embedded, b.embedded);
  EXPECT_EQ(a.affected, b.affected);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.failed_link, b.failed_link);
}

TEST(Failover, RandomLinkModeRuns) {
  FailoverConfig cfg = small();
  cfg.fail_most_loaded = false;
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(cfg, mbbe, 6);
  EXPECT_GT(r.embedded, 0u);  // failure mode may or may not affect flows
}

TEST(Failover, RecoveryRatioBounds) {
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(small(), mbbe, 7);
  EXPECT_GE(r.recovery_ratio(), 0.0);
  EXPECT_LE(r.recovery_ratio(), 1.0);
  FailoverResult empty;
  EXPECT_DOUBLE_EQ(empty.recovery_ratio(), 1.0);  // nothing affected
}

TEST(Failover, NodeFailureKillsInstancesAndIncidentLinks) {
  FailoverConfig cfg = small();
  cfg.kind = FailureKind::kNode;
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(cfg, mbbe, 8);
  ASSERT_GT(r.embedded, 0u);
  EXPECT_NE(r.failed_node, graph::kInvalidNode);
  EXPECT_EQ(r.failed_link, graph::kInvalidEdge);
  // The most-loaded node carries VNFs, so someone must be affected.
  EXPECT_GT(r.affected, 0u);
  EXPECT_LE(r.recovered, r.affected);
}

TEST(Failover, NodeFailureRecoveryAvoidsTheDeadNode) {
  // Generous network: recovery should succeed and (by the engine's
  // feasibility screening) never touch the dead node again — asserted
  // internally by run_failover; here we just require full recovery.
  FailoverConfig cfg = small();
  cfg.kind = FailureKind::kNode;
  cfg.base.network_connectivity = 6.0;
  cfg.base.vnf_deploy_ratio = 0.7;  // plenty of replacement hosts
  const core::MbbeEmbedder mbbe;
  const FailoverResult r = run_failover(cfg, mbbe, 9);
  EXPECT_EQ(r.recovered + r.endpoint_lost, r.affected);
}

TEST(Failover, NodeFailureDeterministic) {
  FailoverConfig cfg = small();
  cfg.kind = FailureKind::kNode;
  const core::MbbeEmbedder mbbe;
  const FailoverResult a = run_failover(cfg, mbbe, 10);
  const FailoverResult b = run_failover(cfg, mbbe, 10);
  EXPECT_EQ(a.failed_node, b.failed_node);
  EXPECT_EQ(a.recovered, b.recovered);
}

TEST(Failover, ValidationCatchesBadConfig) {
  FailoverConfig cfg = small();
  cfg.num_flows = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

}  // namespace
}  // namespace dagsfc::sim
