#include "net/ledger.hpp"

#include <gtest/gtest.h>

namespace dagsfc::net {
namespace {

Network small() {
  graph::Graph g(2);
  (void)g.add_edge(0, 1, 1.0);
  Network n(std::move(g), VnfCatalog(1), 10.0);
  (void)n.deploy(0, 1, 5.0, 3.0);
  return n;
}

TEST(Ledger, StartsAtNominalCapacities) {
  const Network n = small();
  const CapacityLedger l(n);
  EXPECT_DOUBLE_EQ(l.link_residual(0), 10.0);
  EXPECT_DOUBLE_EQ(l.instance_residual(0), 3.0);
}

TEST(Ledger, ConsumeAndRelease) {
  const Network n = small();
  CapacityLedger l(n);
  l.consume_link(0, 4.0);
  EXPECT_DOUBLE_EQ(l.link_residual(0), 6.0);
  l.release_link(0, 4.0);
  EXPECT_DOUBLE_EQ(l.link_residual(0), 10.0);
  l.consume_instance(0, 1.0);
  EXPECT_DOUBLE_EQ(l.instance_residual(0), 2.0);
  l.release_instance(0, 1.0);
  EXPECT_DOUBLE_EQ(l.instance_residual(0), 3.0);
}

TEST(Ledger, PredicatesReflectResiduals) {
  const Network n = small();
  CapacityLedger l(n);
  EXPECT_TRUE(l.link_can_carry(0, 10.0));
  EXPECT_FALSE(l.link_can_carry(0, 10.5));
  l.consume_link(0, 9.5);
  EXPECT_TRUE(l.link_can_carry(0, 0.5));
  EXPECT_FALSE(l.link_can_carry(0, 1.0));
  EXPECT_TRUE(l.instance_can_process(0, 3.0));
  EXPECT_FALSE(l.instance_can_process(0, 3.1));
}

TEST(Ledger, OverSubscriptionRejected) {
  const Network n = small();
  CapacityLedger l(n);
  EXPECT_THROW(l.consume_link(0, 11.0), ContractViolation);
  EXPECT_THROW(l.consume_instance(0, 4.0), ContractViolation);
}

TEST(Ledger, OverReleaseRejected) {
  const Network n = small();
  CapacityLedger l(n);
  EXPECT_THROW(l.release_link(0, 0.5), ContractViolation);
  l.consume_link(0, 2.0);
  EXPECT_THROW(l.release_link(0, 2.5), ContractViolation);
}

TEST(Ledger, NodeOffersChecksTypeAndCapacity) {
  const Network n = small();
  CapacityLedger l(n);
  EXPECT_TRUE(l.node_offers(0, 1, 1.0));
  EXPECT_FALSE(l.node_offers(1, 1, 1.0));  // not deployed there
  EXPECT_FALSE(l.node_offers(0, 1, 5.0));  // beyond capacity
  l.consume_instance(0, 3.0);
  EXPECT_FALSE(l.node_offers(0, 1, 1.0));  // exhausted
}

TEST(Ledger, CopiesAreIndependent) {
  const Network n = small();
  CapacityLedger a(n);
  CapacityLedger b(a);
  a.consume_link(0, 5.0);
  EXPECT_DOUBLE_EQ(a.link_residual(0), 5.0);
  EXPECT_DOUBLE_EQ(b.link_residual(0), 10.0);
}

TEST(Ledger, EveryMutationBumpsTheEpoch) {
  const Network n = small();
  CapacityLedger l(n);
  const auto e0 = l.epoch();
  l.consume_link(0, 1.0);
  EXPECT_EQ(l.epoch(), e0 + 1);
  l.consume_instance(0, 1.0);
  EXPECT_EQ(l.epoch(), e0 + 2);
  l.release_link(0, 1.0);
  EXPECT_EQ(l.epoch(), e0 + 3);
  l.release_instance(0, 1.0);
  EXPECT_EQ(l.epoch(), e0 + 4);
  // Releasing back to nominal is still a new epoch: equal residuals do
  // not mean cached paths were computed against this state.
  EXPECT_DOUBLE_EQ(l.link_residual(0), 10.0);
  EXPECT_NE(l.epoch(), e0);
}

TEST(Ledger, CopyCarriesEpochButNotTheCache) {
  const Network n = small();
  CapacityLedger a(n);
  a.consume_link(0, 1.0);
  ASSERT_NE(a.path_cache(), nullptr);  // lazily created on first access
  const CapacityLedger b(a);
  EXPECT_EQ(b.epoch(), a.epoch());
  EXPECT_EQ(b.cache_enabled(), a.cache_enabled());
  // The copy gets its own (empty) cache object, not a shared one.
  EXPECT_NE(b.path_cache(), a.path_cache());
}

TEST(Ledger, DisablingTheCacheDropsIt) {
  const Network n = small();
  CapacityLedger l(n);
  l.set_cache_enabled(false);
  EXPECT_EQ(l.path_cache(), nullptr);
  l.set_cache_enabled(true);
  EXPECT_NE(l.path_cache(), nullptr);
}

TEST(Ledger, TotalsTrackConsumption) {
  const Network n = small();
  CapacityLedger l(n);
  EXPECT_DOUBLE_EQ(l.total_link_consumed(), 0.0);
  l.consume_link(0, 2.5);
  l.consume_instance(0, 1.0);
  EXPECT_DOUBLE_EQ(l.total_link_consumed(), 2.5);
  EXPECT_DOUBLE_EQ(l.total_instance_consumed(), 1.0);
}

TEST(Ledger, EpsilonToleranceOnExactFit) {
  const Network n = small();
  CapacityLedger l(n);
  // Many small consumes summing to the capacity must not spuriously fail.
  for (int i = 0; i < 10; ++i) l.consume_link(0, 1.0);
  EXPECT_NEAR(l.link_residual(0), 0.0, 1e-9);
  EXPECT_FALSE(l.link_can_carry(0, 0.1));
}

}  // namespace
}  // namespace dagsfc::net
