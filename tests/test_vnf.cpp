#include "net/vnf.hpp"

#include <gtest/gtest.h>

namespace dagsfc::net {
namespace {

TEST(VnfCatalog, NumberingMatchesPaper) {
  const VnfCatalog c(4);  // f(0)=dummy, f(1..4), f(5)=merger
  EXPECT_EQ(c.num_regular(), 4u);
  EXPECT_EQ(c.num_types(), 6u);
  EXPECT_EQ(VnfCatalog::dummy(), 0u);
  EXPECT_EQ(c.merger(), 5u);
  EXPECT_EQ(c.regular(1), 1u);
  EXPECT_EQ(c.regular(4), 4u);
}

TEST(VnfCatalog, Classification) {
  const VnfCatalog c(3);
  EXPECT_TRUE(c.is_dummy(0));
  EXPECT_FALSE(c.is_regular(0));
  for (VnfTypeId t = 1; t <= 3; ++t) {
    EXPECT_TRUE(c.is_regular(t)) << t;
    EXPECT_FALSE(c.is_merger(t)) << t;
    EXPECT_FALSE(c.is_dummy(t)) << t;
  }
  EXPECT_TRUE(c.is_merger(4));
  EXPECT_FALSE(c.is_regular(4));
}

TEST(VnfCatalog, ValidityBounds) {
  const VnfCatalog c(2);
  EXPECT_TRUE(c.valid(0));
  EXPECT_TRUE(c.valid(3));
  EXPECT_FALSE(c.valid(4));
}

TEST(VnfCatalog, DefaultNames) {
  const VnfCatalog c(2);
  EXPECT_EQ(c.name(0), "dummy");
  EXPECT_EQ(c.name(1), "f1");
  EXPECT_EQ(c.name(2), "f2");
  EXPECT_EQ(c.name(3), "merger");
}

TEST(VnfCatalog, CustomNames) {
  const VnfCatalog c({"firewall", "ids"});
  EXPECT_EQ(c.num_regular(), 2u);
  EXPECT_EQ(c.name(1), "firewall");
  EXPECT_EQ(c.name(2), "ids");
  EXPECT_EQ(c.name(c.merger()), "merger");
}

TEST(VnfCatalog, RegularIds) {
  const VnfCatalog c(3);
  EXPECT_EQ(c.regular_ids(), (std::vector<VnfTypeId>{1, 2, 3}));
}

TEST(VnfCatalog, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(VnfCatalog(0), ContractViolation);
  EXPECT_THROW(VnfCatalog(std::vector<std::string>{}), ContractViolation);
  const VnfCatalog c(2);
  EXPECT_THROW((void)c.regular(0), ContractViolation);
  EXPECT_THROW((void)c.regular(3), ContractViolation);
  EXPECT_THROW((void)c.name(9), ContractViolation);
}

}  // namespace
}  // namespace dagsfc::net
