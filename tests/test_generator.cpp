#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include "graph/dot.hpp"

namespace dagsfc::graph {
namespace {

TEST(Generator, ProducesRequestedSize) {
  Rng rng(1);
  RandomGraphOptions opts;
  opts.num_nodes = 100;
  opts.average_degree = 6.0;
  const Graph g = random_connected_graph(rng, opts);
  EXPECT_EQ(g.num_nodes(), 100u);
}

TEST(Generator, AlwaysConnected) {
  Rng rng(2);
  for (double degree : {2.0, 4.0, 8.0}) {
    for (int trial = 0; trial < 5; ++trial) {
      RandomGraphOptions opts;
      opts.num_nodes = 60;
      opts.average_degree = degree;
      EXPECT_TRUE(is_connected(random_connected_graph(rng, opts)));
    }
  }
}

TEST(Generator, HitsTargetAverageDegree) {
  Rng rng(3);
  RandomGraphOptions opts;
  opts.num_nodes = 200;
  opts.average_degree = 6.0;
  const Graph g = random_connected_graph(rng, opts);
  EXPECT_NEAR(g.average_degree(), 6.0, 0.1);
}

TEST(Generator, LowDegreeClampsToTree) {
  Rng rng(4);
  RandomGraphOptions opts;
  opts.num_nodes = 50;
  opts.average_degree = 0.0;  // below tree minimum
  const Graph g = random_connected_graph(rng, opts);
  EXPECT_EQ(g.num_edges(), 49u);  // spanning tree
  EXPECT_TRUE(is_connected(g));
}

TEST(Generator, HighDegreeClampsToCompleteGraph) {
  Rng rng(5);
  RandomGraphOptions opts;
  opts.num_nodes = 8;
  opts.average_degree = 100.0;
  const Graph g = random_connected_graph(rng, opts);
  EXPECT_EQ(g.num_edges(), 28u);  // 8*7/2
}

TEST(Generator, SingleNode) {
  Rng rng(6);
  RandomGraphOptions opts;
  opts.num_nodes = 1;
  const Graph g = random_connected_graph(rng, opts);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generator, ZeroNodesRejected) {
  Rng rng(7);
  RandomGraphOptions opts;
  opts.num_nodes = 0;
  EXPECT_THROW((void)random_connected_graph(rng, opts), ContractViolation);
}

TEST(Generator, DeterministicForFixedSeed) {
  RandomGraphOptions opts;
  opts.num_nodes = 40;
  opts.average_degree = 5.0;
  Rng r1(99);
  Rng r2(99);
  const Graph a = random_connected_graph(r1, opts);
  const Graph b = random_connected_graph(r2, opts);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  RandomGraphOptions opts;
  opts.num_nodes = 40;
  opts.average_degree = 5.0;
  Rng r1(1);
  Rng r2(2);
  const Graph a = random_connected_graph(r1, opts);
  const Graph b = random_connected_graph(r2, opts);
  bool any_diff = a.num_edges() != b.num_edges();
  for (EdgeId e = 0; !any_diff && e < a.num_edges(); ++e) {
    any_diff = a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dot, RendersNodesAndEdges) {
  Graph g(2);
  (void)g.add_edge(0, 1, 2.5);
  const std::string dot = to_dot(g, "tiny");
  EXPECT_NE(dot.find("graph \"tiny\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("2.50"), std::string::npos);
}

TEST(Dot, CustomLabeler) {
  Graph g(1);
  const std::string dot =
      to_dot(g, "x", [](NodeId) { return std::string("host-a"); });
  EXPECT_NE(dot.find("host-a"), std::string::npos);
}

}  // namespace
}  // namespace dagsfc::graph
