#include "sfc/dag_sfc.hpp"

#include <gtest/gtest.h>

namespace dagsfc::sfc {
namespace {

/// Fig. 2's layering: [1] -> [2,3,4,5] -> [6,7] (mergers implied).
DagSfc fig2(const net::VnfCatalog& c) {
  return DagSfc({Layer{{c.regular(1)}},
                 Layer{{c.regular(2), c.regular(3), c.regular(4),
                        c.regular(5)}},
                 Layer{{c.regular(6), c.regular(7)}}});
}

TEST(DagSfc, StructureAccessors) {
  const net::VnfCatalog c(7);
  const DagSfc dag = fig2(c);
  EXPECT_EQ(dag.num_layers(), 3u);
  EXPECT_EQ(dag.size(), 7u);        // VNFs, mergers excluded
  EXPECT_EQ(dag.num_mergers(), 2u);  // layers 2 and 3
  EXPECT_EQ(dag.max_width(), 4u);
  EXPECT_EQ(dag.layer(0).width(), 1u);
  EXPECT_FALSE(dag.layer(0).has_merger());
  EXPECT_TRUE(dag.layer(1).has_merger());
}

TEST(DagSfc, DistinctTypes) {
  const net::VnfCatalog c(7);
  const DagSfc dag({Layer{{1}}, Layer{{2, 3}}, Layer{{1}}});
  EXPECT_EQ(dag.distinct_types(), (std::vector<net::VnfTypeId>{1, 2, 3}));
}

TEST(DagSfc, ValidateAcceptsFig2) {
  const net::VnfCatalog c(7);
  EXPECT_NO_THROW(fig2(c).validate(c));
}

TEST(DagSfc, ValidateRejectsEmptyDag) {
  const net::VnfCatalog c(3);
  EXPECT_THROW(DagSfc(std::vector<Layer>{}).validate(c), ContractViolation);
}

TEST(DagSfc, ValidateRejectsEmptyLayer) {
  const net::VnfCatalog c(3);
  EXPECT_THROW(DagSfc({Layer{{}}}).validate(c), ContractViolation);
}

TEST(DagSfc, ValidateRejectsDummyAndMergerInLayers) {
  const net::VnfCatalog c(3);
  EXPECT_THROW(DagSfc({Layer{{net::VnfCatalog::dummy()}}}).validate(c),
               ContractViolation);
  EXPECT_THROW(DagSfc({Layer{{c.merger()}}}).validate(c), ContractViolation);
}

TEST(DagSfc, ValidateRejectsDuplicateInsideLayer) {
  const net::VnfCatalog c(3);
  EXPECT_THROW(DagSfc({Layer{{1, 1}}}).validate(c), ContractViolation);
}

TEST(DagSfc, ValidateAcceptsRepeatAcrossLayers) {
  const net::VnfCatalog c(3);
  EXPECT_NO_THROW(DagSfc({Layer{{1}}, Layer{{1}}}).validate(c));
}

TEST(DagSfc, ToStringShowsStructure) {
  const net::VnfCatalog c(7);
  EXPECT_EQ(fig2(c).to_string(c),
            "[f1] -> [f2|f3|f4|f5 +m] -> [f6|f7 +m]");
}

TEST(DagSfc, ToDotHasMergersAndEndpoints) {
  const net::VnfCatalog c(7);
  const std::string dot = fig2(c).to_dot(c, "fig2");
  EXPECT_NE(dot.find("src"), std::string::npos);
  EXPECT_NE(dot.find("dst"), std::string::npos);
  EXPECT_NE(dot.find("merger"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // inner-layer
}

TEST(SequentialSfc, SizeIsChainLength) {
  SequentialSfc s{{1, 2, 3}};
  EXPECT_EQ(s.size(), 3u);
}

}  // namespace
}  // namespace dagsfc::sfc
