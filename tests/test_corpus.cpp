/// Regression corpus: serialized instances under tests/corpus/ with golden
/// costs. Any change to the cost model, the search, or the serializers that
/// shifts these numbers is a behavioural change and must be deliberate.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/exact.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"

#ifndef DAGSFC_CORPUS_DIR
#error "DAGSFC_CORPUS_DIR must be defined by the build"
#endif

namespace dagsfc {
namespace {

struct Golden {
  std::string name;
  double mbbe_cost;         // < 0 ⇒ MBBE expected to fail
  double exact_cost;        // < 0 ⇒ exact expected to refuse/fail
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing corpus file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class Corpus : public ::testing::TestWithParam<Golden> {};

TEST_P(Corpus, GoldenCostsHold) {
  const Golden& g = GetParam();
  const std::string dir = std::string(DAGSFC_CORPUS_DIR) + "/";
  net::Network network =
      net::network_from_text(slurp(dir + g.name + ".net.txt"));
  const sfc::SfcFile file =
      sfc::sfc_from_text(slurp(dir + g.name + ".sfc.txt"));
  ASSERT_TRUE(file.flow.has_value());
  file.dag.validate(network.catalog());

  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &file.dag;
  problem.flow = core::Flow{file.flow->source, file.flow->destination,
                            file.flow->rate, file.flow->size};
  const core::ModelIndex index(problem);
  const core::Evaluator evaluator(index);
  Rng rng(1);

  const core::MbbeEmbedder mbbe;
  const auto rm = mbbe.solve_fresh(index, rng);
  if (g.mbbe_cost < 0) {
    EXPECT_FALSE(rm.ok());
  } else {
    ASSERT_TRUE(rm.ok()) << rm.failure_reason;
    EXPECT_NEAR(rm.cost, g.mbbe_cost, 1e-2);
    EXPECT_TRUE(evaluator.validate(*rm.solution).empty());
  }

  const core::ExactEmbedder exact(core::ExactOptions{50'000'000});
  const auto re = exact.solve_fresh(index, rng);
  if (g.exact_cost < 0) {
    EXPECT_FALSE(re.ok());
  } else {
    ASSERT_TRUE(re.ok()) << re.failure_reason;
    EXPECT_NEAR(re.cost, g.exact_cost, 1e-2);
    if (rm.ok()) EXPECT_GE(rm.cost + 1e-9, re.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, Corpus,
    ::testing::Values(
        Golden{"ring12", 451.16, 412.49},
        Golden{"leafspine14", 632.40, 617.16},
        Golden{"waxman20", 523.88, 523.88},
        // Exact refuses: its uncapacitated optimum reuses the cheap f1
        // instance beyond its capacity; MBBE packs feasibly at 82.
        Golden{"tightline5", 82.0, -1.0}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dagsfc
