#pragma once
/// Shared fixtures for the test suite: hand-crafted tiny networks with known
/// optimal embeddings, plus a lifetime-stable problem bundle.

#include <memory>
#include <vector>

#include "core/model.hpp"
#include "net/network.hpp"
#include "sfc/dag_sfc.hpp"

namespace dagsfc::test {

/// Incremental builder for small explicit networks.
class NetBuilder {
 public:
  NetBuilder(std::size_t nodes, std::size_t catalog_regular)
      : g_(nodes), catalog_(catalog_regular) {}

  NetBuilder& link(graph::NodeId u, graph::NodeId v, double price,
                   double capacity = 100.0) {
    const graph::EdgeId e = g_.add_edge(u, v, price);
    caps_.push_back({e, capacity});
    return *this;
  }

  /// Deploys VNF type \p t (1..n regular; use merger() for the merger).
  NetBuilder& put(graph::NodeId v, net::VnfTypeId t, double price,
                  double capacity = 100.0) {
    deploys_.push_back({v, t, price, capacity});
    return *this;
  }

  [[nodiscard]] net::VnfTypeId merger() const { return catalog_.merger(); }

  [[nodiscard]] net::Network build() {
    net::Network n(std::move(g_), catalog_);
    for (const auto& [e, c] : caps_) n.set_link_capacity(e, c);
    for (const auto& d : deploys_) {
      (void)n.deploy(d.node, d.type, d.price, d.capacity);
    }
    return n;
  }

 private:
  struct Deploy {
    graph::NodeId node;
    net::VnfTypeId type;
    double price;
    double capacity;
  };
  graph::Graph g_;
  net::VnfCatalog catalog_;
  std::vector<std::pair<graph::EdgeId, double>> caps_;
  std::vector<Deploy> deploys_;
};

/// Bundles a network, a DAG-SFC and the derived problem/index with stable
/// addresses (heap-allocated, non-movable members referenced by pointers).
struct Fixture {
  net::Network network;
  sfc::DagSfc dag;
  core::EmbeddingProblem problem;
  std::unique_ptr<core::ModelIndex> index;

  Fixture(net::Network n, sfc::DagSfc d, core::Flow flow)
      : network(std::move(n)), dag(std::move(d)) {
    problem.network = &network;
    problem.sfc = &dag;
    problem.flow = flow;
    index = std::make_unique<core::ModelIndex>(problem);
  }
};

[[nodiscard]] inline std::unique_ptr<Fixture> make_fixture(net::Network n,
                                                           sfc::DagSfc d,
                                                           core::Flow flow) {
  return std::make_unique<Fixture>(std::move(n), std::move(d), flow);
}

/// The canonical tiny instance used across algorithm tests: a 6-node path
/// with a shortcut, uniform link price 1, one parallel layer.
///
///     0 --- 1 --- 2 --- 3 --- 4
///            \----- 5 -----/
///
/// f1 on node 1 (price 10), f2 on nodes 2 (price 12) and 5 (price 8),
/// f3 on nodes 2 (price 9) and 3 (price 7), merger on nodes 3 (5) and 5 (6).
/// SFC: [f1] -> [f2 | f3].  Flow 0 -> 4.
[[nodiscard]] inline std::unique_ptr<Fixture> canonical_fixture() {
  NetBuilder b(6, 3);
  b.link(0, 1, 1.0).link(1, 2, 1.0).link(2, 3, 1.0).link(3, 4, 1.0);
  b.link(1, 5, 1.0).link(5, 3, 1.0);
  b.put(1, 1, 10.0);
  b.put(2, 2, 12.0).put(5, 2, 8.0);
  b.put(2, 3, 9.0).put(3, 3, 7.0);
  b.put(3, b.merger(), 5.0).put(5, b.merger(), 6.0);
  sfc::DagSfc dag({sfc::Layer{{1}}, sfc::Layer{{2, 3}}});
  return make_fixture(b.build(), std::move(dag),
                      core::Flow{0, 4, 1.0, 1.0});
}

}  // namespace dagsfc::test
