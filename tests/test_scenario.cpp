#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace dagsfc::sim {
namespace {

ExperimentConfig small() {
  ExperimentConfig cfg;
  cfg.network_size = 60;
  cfg.network_connectivity = 4.0;
  cfg.catalog_size = 6;
  cfg.sfc_size = 4;
  return cfg;
}

TEST(Config, DefaultsMatchPaperTable2) {
  const ExperimentConfig cfg;
  EXPECT_EQ(cfg.network_size, 500u);
  EXPECT_DOUBLE_EQ(cfg.network_connectivity, 6.0);
  EXPECT_DOUBLE_EQ(cfg.vnf_deploy_ratio, 0.5);
  EXPECT_DOUBLE_EQ(cfg.average_price_ratio, 0.2);
  EXPECT_DOUBLE_EQ(cfg.vnf_price_fluctuation, 0.05);
  EXPECT_EQ(cfg.sfc_size, 5u);
  EXPECT_EQ(cfg.trials, 100u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, ValidationCatchesBadFields) {
  ExperimentConfig cfg;
  cfg.sfc_size = 20;  // > catalog_size 12
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = ExperimentConfig{};
  cfg.vnf_deploy_ratio = 0.0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = ExperimentConfig{};
  cfg.network_size = 1;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = ExperimentConfig{};
  cfg.trials = 0;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(Config, SummaryMentionsKeyKnobs) {
  const std::string s = ExperimentConfig{}.summary();
  EXPECT_NE(s.find("n=500"), std::string::npos);
  EXPECT_NE(s.find("sfc=5"), std::string::npos);
}

TEST(Scenario, TopologyMatchesConfig) {
  Rng rng(1);
  const Scenario s = make_scenario(rng, small());
  EXPECT_EQ(s.network.num_nodes(), 60u);
  EXPECT_TRUE(graph::is_connected(s.network.topology()));
  EXPECT_NEAR(s.network.topology().average_degree(), 4.0, 0.5);
}

TEST(Scenario, EveryCategoryIncludingMergerIsDeployed) {
  Rng rng(2);
  const Scenario s = make_scenario(rng, small());
  const auto& c = s.network.catalog();
  for (net::VnfTypeId t : c.regular_ids()) {
    EXPECT_FALSE(s.network.nodes_with(t).empty()) << "type " << t;
  }
  EXPECT_FALSE(s.network.nodes_with(c.merger()).empty());
}

TEST(Scenario, DeployRatioIsRespected) {
  Rng rng(3);
  ExperimentConfig cfg = small();
  cfg.network_size = 400;
  cfg.vnf_deploy_ratio = 0.3;
  const Scenario s = make_scenario(rng, cfg);
  // Expect ≈ 0.3·400 deployments per category.
  for (net::VnfTypeId t : s.network.catalog().regular_ids()) {
    const double n = static_cast<double>(s.network.nodes_with(t).size());
    EXPECT_NEAR(n, 120.0, 35.0) << "type " << t;
  }
}

TEST(Scenario, SparseRatioStillGuaranteesOneHostPerType) {
  Rng rng(4);
  ExperimentConfig cfg = small();
  cfg.network_size = 30;
  cfg.vnf_deploy_ratio = 0.01;  // coin flips will miss some types entirely
  const Scenario s = make_scenario(rng, cfg);
  for (net::VnfTypeId t : s.network.catalog().regular_ids()) {
    EXPECT_GE(s.network.nodes_with(t).size(), 1u);
  }
}

TEST(Scenario, PricesRespectFluctuationBand) {
  Rng rng(5);
  ExperimentConfig cfg = small();
  cfg.vnf_price_fluctuation = 0.10;
  const Scenario s = make_scenario(rng, cfg);
  for (net::InstanceId id = 0; id < s.network.num_instances(); ++id) {
    const double p = s.network.instance(id).price;
    EXPECT_GE(p, cfg.base_vnf_price * 0.9 - 1e-9);
    EXPECT_LE(p, cfg.base_vnf_price * 1.1 + 1e-9);
  }
}

TEST(Scenario, LinkPricesFollowAveragePriceRatio) {
  Rng rng(6);
  ExperimentConfig cfg = small();
  cfg.average_price_ratio = 0.25;
  const Scenario s = make_scenario(rng, cfg);
  EXPECT_NEAR(s.network.mean_link_price(),
              cfg.base_vnf_price * 0.25,
              cfg.base_vnf_price * 0.25 * 0.1);
  EXPECT_NEAR(s.network.mean_vnf_price(), cfg.base_vnf_price, 5.0);
}

TEST(Scenario, FlowEndpointsDistinctAndInRange) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Scenario s = make_scenario(rng, small());
    EXPECT_NE(s.source, s.destination);
    EXPECT_LT(s.source, 60u);
    EXPECT_LT(s.destination, 60u);
  }
}

TEST(Scenario, CapacitiesApplied) {
  Rng rng(8);
  ExperimentConfig cfg = small();
  cfg.vnf_capacity = 7.0;
  cfg.link_capacity = 9.0;
  const Scenario s = make_scenario(rng, cfg);
  EXPECT_DOUBLE_EQ(s.network.instance(0).capacity, 7.0);
  EXPECT_DOUBLE_EQ(s.network.link_capacity(0), 9.0);
}

TEST(Scenario, DeterministicForFixedSeed) {
  ExperimentConfig cfg = small();
  Rng r1(9);
  Rng r2(9);
  const Scenario a = make_scenario(r1, cfg);
  const Scenario b = make_scenario(r2, cfg);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.network.num_instances(), b.network.num_instances());
  EXPECT_DOUBLE_EQ(a.network.mean_vnf_price(), b.network.mean_vnf_price());
}

TEST(MakeSfc, FollowsConfig) {
  Rng rng(10);
  const ExperimentConfig cfg = small();
  const net::VnfCatalog c(cfg.catalog_size);
  const sfc::DagSfc dag = make_sfc(rng, c, cfg);
  EXPECT_EQ(dag.size(), cfg.sfc_size);
  EXPECT_LE(dag.max_width(), cfg.max_layer_width);
  EXPECT_NO_THROW(dag.validate(c));
}

}  // namespace
}  // namespace dagsfc::sim
