#include "graph/topologies.hpp"

#include <gtest/gtest.h>

namespace dagsfc::graph {
namespace {

TEST(Topologies, Ring) {
  const Graph g = make_ring(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW((void)make_ring(2), ContractViolation);
}

TEST(Topologies, Star) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_THROW((void)make_star(1), ContractViolation);
}

TEST(Topologies, Line) {
  const Graph g = make_line(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  const Graph single = make_line(1);
  EXPECT_EQ(single.num_edges(), 0u);
}

TEST(Topologies, GridFlat) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // Edges: 3·3 horizontal + 2·4 vertical = 17.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Topologies, GridTorusAddsWraps) {
  const Graph g = make_grid(3, 3, /*wrap=*/true);
  EXPECT_EQ(g.num_edges(), 18u);  // 2·n for a torus
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW((void)make_grid(2, 3, true), ContractViolation);
}

TEST(Topologies, LeafSpine) {
  const Graph g = make_leaf_spine(10, 3);
  EXPECT_EQ(g.num_edges(), 21u);  // 7 leaves × 3 spines
  for (NodeId s = 0; s < 3; ++s) EXPECT_EQ(g.degree(s), 7u);
  for (NodeId l = 3; l < 10; ++l) EXPECT_EQ(g.degree(l), 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW((void)make_leaf_spine(5, 5), ContractViolation);
}

TEST(Topologies, FatTreeK4) {
  const Graph g = make_fat_tree(4);
  // k=4: 4 cores + 4 pods × 4 switches = 20 nodes.
  EXPECT_EQ(g.num_nodes(), 20u);
  // Edges: per pod 2·2 agg-edge + 2·2 agg-core = 8 → 32.
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_TRUE(is_connected(g));
  // Every core has degree k (one per pod).
  for (NodeId c = 0; c < 4; ++c) EXPECT_EQ(g.degree(c), 4u);
  EXPECT_THROW((void)make_fat_tree(3), ContractViolation);
}

TEST(Topologies, FatTreeK2Degenerate) {
  const Graph g = make_fat_tree(2);
  EXPECT_EQ(g.num_nodes(), 5u);  // 1 core + 2 pods × 2
  EXPECT_TRUE(is_connected(g));
}

TEST(Topologies, WaxmanConnectedAndSeeded) {
  WaxmanOptions opts;
  opts.num_nodes = 60;
  Rng r1(5);
  Rng r2(5);
  const Graph a = make_waxman(r1, opts);
  const Graph b = make_waxman(r2, opts);
  EXPECT_TRUE(is_connected(a));
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_GE(a.num_edges(), 59u);
}

TEST(Topologies, WaxmanDensityGrowsWithAlpha) {
  WaxmanOptions sparse;
  sparse.num_nodes = 80;
  sparse.alpha = 0.05;
  WaxmanOptions dense = sparse;
  dense.alpha = 0.9;
  Rng r1(9);
  Rng r2(9);
  const Graph gs = make_waxman(r1, sparse);
  const Graph gd = make_waxman(r2, dense);
  EXPECT_LT(gs.num_edges(), gd.num_edges());
}

TEST(Topologies, AllUnitWeights) {
  for (const Graph& g :
       {make_ring(5), make_star(5), make_grid(2, 2), make_leaf_spine(6, 2),
        make_fat_tree(4)}) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(g.edge(e).weight, 1.0);
    }
  }
}

}  // namespace
}  // namespace dagsfc::graph
