/// Cross-algorithm optimality checks on randomized small instances: the
/// exact DP is the oracle; every heuristic must stay within sanity bounds
/// of it and never beat it (which would reveal an evaluator inconsistency).

#include <gtest/gtest.h>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "graph/dijkstra.hpp"
#include "sim/scenario.hpp"

namespace dagsfc::core {
namespace {

struct Instance {
  sim::Scenario scenario;
  sfc::DagSfc dag;
  EmbeddingProblem problem;
  std::unique_ptr<ModelIndex> index;
};

std::unique_ptr<Instance> random_instance(Rng& rng, std::size_t nodes,
                                          std::size_t sfc_size) {
  sim::ExperimentConfig cfg;
  cfg.network_size = nodes;
  cfg.network_connectivity = 3.0;
  cfg.catalog_size = std::max<std::size_t>(sfc_size, 4);
  cfg.sfc_size = sfc_size;
  cfg.vnf_deploy_ratio = 0.6;  // dense enough that exact stays tractable
  auto inst = std::make_unique<Instance>(Instance{
      sim::make_scenario(rng, cfg), sfc::DagSfc{}, EmbeddingProblem{}, {}});
  inst->dag = sim::make_sfc(rng, inst->scenario.network.catalog(), cfg);
  inst->problem.network = &inst->scenario.network;
  inst->problem.sfc = &inst->dag;
  inst->problem.flow = Flow{inst->scenario.source,
                            inst->scenario.destination, 1.0, 1.0};
  inst->index = std::make_unique<ModelIndex>(inst->problem);
  return inst;
}

class OptimalityGap : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OptimalityGap, HeuristicsBoundedByExact) {
  const std::size_t sfc_size = GetParam();
  Rng rng(1000 + sfc_size);
  const ExactEmbedder exact(ExactOptions{20'000'000});
  const BbeEmbedder bbe;
  const MbbeEmbedder mbbe;
  const MinvEmbedder minv;
  const RanvEmbedder ranv;

  int solved = 0;
  for (int trial = 0; trial < 6; ++trial) {
    auto inst = random_instance(rng, 10, sfc_size);
    const auto re = exact.solve_fresh(*inst->index, rng);
    if (!re.ok()) continue;  // exact may refuse oversized enumeration
    ++solved;
    for (const Embedder* h : std::initializer_list<const Embedder*>{
             &bbe, &mbbe, &minv, &ranv}) {
      const auto rh = h->solve_fresh(*inst->index, rng);
      if (!rh.ok()) continue;  // heuristics may legitimately fail
      EXPECT_GE(rh.cost + 1e-9, re.cost)
          << h->name() << " beat the optimum at sfc_size=" << sfc_size;
      EXPECT_LE(rh.cost, 10.0 * re.cost)
          << h->name() << " wildly above optimum";
    }
  }
  EXPECT_GT(solved, 0) << "exact solver never ran — test is vacuous";
}

INSTANTIATE_TEST_SUITE_P(SfcSizes, OptimalityGap,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Optimality, MbbeTracksBbeClosely) {
  // The paper's headline for §4.5: no apparent degradation. Averaged over
  // random instances, MBBE must stay within a few percent of BBE.
  Rng rng(77);
  const BbeEmbedder bbe;
  const MbbeEmbedder mbbe;
  double bbe_total = 0.0;
  double mbbe_total = 0.0;
  int both = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto inst = random_instance(rng, 30, 5);
    const auto rb = bbe.solve_fresh(*inst->index, rng);
    const auto rm = mbbe.solve_fresh(*inst->index, rng);
    if (!rb.ok() || !rm.ok()) continue;
    ++both;
    bbe_total += rb.cost;
    mbbe_total += rm.cost;
  }
  ASSERT_GT(both, 5);
  EXPECT_LE(mbbe_total, bbe_total * 1.10)
      << "MBBE degraded more than 10% vs BBE on average";
}

TEST(Optimality, MbbeBeatsBaselinesOnAverage) {
  Rng rng(88);
  const MbbeEmbedder mbbe;
  const MinvEmbedder minv;
  const RanvEmbedder ranv;
  double m = 0.0;
  double v = 0.0;
  double r = 0.0;
  int all = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto inst = random_instance(rng, 40, 5);
    const auto rm = mbbe.solve_fresh(*inst->index, rng);
    const auto rv = minv.solve_fresh(*inst->index, rng);
    const auto rr = ranv.solve_fresh(*inst->index, rng);
    if (!rm.ok() || !rv.ok() || !rr.ok()) continue;
    ++all;
    m += rm.cost;
    v += rv.cost;
    r += rr.cost;
  }
  ASSERT_GT(all, 5);
  EXPECT_LT(m, v);
  EXPECT_LT(m, r);
}

TEST(Optimality, ExactMatchesBruteForceOnOneLayerInstances) {
  // For single-VNF SFCs the optimum is easy to brute force directly:
  // min over hosts of (rental + dist(s,host) + dist(host,t)).
  Rng rng(99);
  const ExactEmbedder exact;
  for (int trial = 0; trial < 10; ++trial) {
    auto inst = random_instance(rng, 15, 1);
    const auto re = exact.solve_fresh(*inst->index, rng);
    ASSERT_TRUE(re.ok()) << re.failure_reason;

    const net::Network& net = inst->scenario.network;
    const auto from_s = graph::dijkstra(net.topology(),
                                        inst->problem.flow.source);
    const auto from_t = graph::dijkstra(net.topology(),
                                        inst->problem.flow.destination);
    const net::VnfTypeId t = inst->dag.layer(0).vnfs[0];
    double best = graph::kInfCost;
    for (graph::NodeId v : net.nodes_with(t)) {
      const double price = net.instance(*net.find_instance(v, t)).price;
      best = std::min(best, price + from_s.dist[v] + from_t.dist[v]);
    }
    EXPECT_NEAR(re.cost, best, 1e-6);
  }
}

}  // namespace
}  // namespace dagsfc::core
