#include "core/search_tree.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dagsfc::core {
namespace {

/// Path 0-1-2-3 plus branch 1-4 (same shape as the BFS tests).
graph::Graph branchy() {
  graph::Graph g(5);
  (void)g.add_edge(0, 1, 1.0);
  (void)g.add_edge(1, 2, 1.0);
  (void)g.add_edge(2, 3, 1.0);
  (void)g.add_edge(1, 4, 1.0);
  return g;
}

SearchTree full_tree(const graph::Graph& g, graph::NodeId start) {
  graph::RingExpander e(g, start);
  while (!e.expand().empty()) {
  }
  return SearchTree::from_expander(e);
}

TEST(SearchTree, RootIsStartNode) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  EXPECT_EQ(t.root_network_node(), 0u);
  EXPECT_EQ(t.node(t.root()).father, SearchTree::kNone);
  EXPECT_EQ(t.node(t.root()).ring, 0u);
}

TEST(SearchTree, ContainsAllReachedNodes) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  EXPECT_EQ(t.size(), 5u);
  for (graph::NodeId v = 0; v < 5; ++v) EXPECT_TRUE(t.contains(v)) << v;
  EXPECT_FALSE(t.contains(99));
  const auto nodes = t.network_nodes();
  EXPECT_EQ(std::set<graph::NodeId>(nodes.begin(), nodes.end()).size(), 5u);
}

TEST(SearchTree, FathersFollowBfsParents) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  const auto i3 = t.find(3);
  ASSERT_NE(i3, SearchTree::kNone);
  EXPECT_EQ(t.node(i3).ring, 3u);
  EXPECT_EQ(t.node(t.node(i3).father).network_node, 2u);
}

TEST(SearchTree, PathToRootWalksFatherPointers) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  const graph::Path p = t.path_to_root(g, 3);
  EXPECT_EQ(p.nodes, (std::vector<graph::NodeId>{3, 2, 1, 0}));
  EXPECT_TRUE(g.path_valid(p));
  EXPECT_DOUBLE_EQ(p.cost, 3.0);
}

TEST(SearchTree, PathFromRootIsReversed) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  const graph::Path p = t.path_from_root(g, 4);
  EXPECT_EQ(p.nodes, (std::vector<graph::NodeId>{0, 1, 4}));
  EXPECT_TRUE(g.path_valid(p));
}

TEST(SearchTree, PathToRootOfRootIsTrivial) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  const graph::Path p = t.path_to_root(g, 0);
  EXPECT_EQ(p.nodes, std::vector<graph::NodeId>{0});
  EXPECT_TRUE(p.edges.empty());
}

TEST(SearchTree, UnknownNodeRejected) {
  graph::Graph g(3);
  (void)g.add_edge(0, 1, 1.0);  // node 2 disconnected
  const SearchTree t = full_tree(g, 0);
  EXPECT_THROW((void)t.path_to_root(g, 2), ContractViolation);
}

TEST(SearchTree, BinaryViewTable1Layout) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  const auto bin = t.binary_view();
  ASSERT_EQ(bin.size(), t.size());
  // Root: left child = first node of ring 1, no right sibling.
  EXPECT_EQ(bin[0].father, SearchTree::kNone);
  ASSERT_NE(bin[0].left_child, SearchTree::kNone);
  EXPECT_EQ(t.node(bin[0].left_child).ring, 1u);
  EXPECT_EQ(bin[0].right_child, SearchTree::kNone);
  // Ring-2 nodes {2,4} are right-siblings of each other (contiguous).
  const auto i2 = t.find(2);
  const auto i4 = t.find(4);
  const auto first = std::min(i2, i4);
  const auto second = std::max(i2, i4);
  EXPECT_EQ(bin[first].right_child, second);
  EXPECT_EQ(bin[second].right_child, SearchTree::kNone);
  // Every non-root binary node's father matches the n-ary father.
  for (SearchTree::TreeIndex i = 0; i < bin.size(); ++i) {
    EXPECT_EQ(bin[i].father, t.node(i).father);
    EXPECT_EQ(bin[i].network_node, t.node(i).network_node);
  }
}

TEST(SearchTree, BinaryViewLeftChildIsFirstChild) {
  const graph::Graph g = branchy();
  const SearchTree t = full_tree(g, 0);
  const auto bin = t.binary_view();
  const auto i1 = t.find(1);
  ASSERT_FALSE(t.node(i1).children.empty());
  EXPECT_EQ(bin[i1].left_child, t.node(i1).children.front());
}

TEST(SearchTree, RestrictedExpanderYieldsSubtree) {
  const graph::Graph g = branchy();
  graph::RingExpander e(g, 0, [](graph::NodeId v) { return v != 2; });
  while (!e.expand().empty()) {
  }
  const SearchTree t = SearchTree::from_expander(e);
  EXPECT_TRUE(t.contains(4));
  EXPECT_FALSE(t.contains(2));
  EXPECT_FALSE(t.contains(3));
}

}  // namespace
}  // namespace dagsfc::core
