#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"

namespace dagsfc {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, CellBeforeRowRejected) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), ContractViolation);
}

TEST(Table, RowOverflowRejected) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_THROW(t.cell("3"), ContractViolation);
}

TEST(Table, IncompleteRowRejectedOnNextRow) {
  Table t({"a", "b"});
  t.row().cell("1");
  EXPECT_THROW(t.row(), ContractViolation);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "v"});
  t.row().cell("x").cell("1");
  t.row().cell("longer").cell("22");
  const std::string out = t.ascii();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  EXPECT_NE(out.find("|      x |"), std::string::npos);
}

TEST(Table, NumericFormatting) {
  Table t({"d", "i"});
  t.row().cell(3.14159, 3).cell(static_cast<std::size_t>(42));
  EXPECT_NE(t.ascii().find("3.142"), std::string::npos);
  EXPECT_NE(t.ascii().find("42"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.row().cell("hello, world");
  t.row().cell("quote\"inside");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RowAndColumnCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("x").cell("y").cell("z");
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace dagsfc
