/// dagsfc_cli — embed a DAG-SFC described in files into a network described
/// in a file, with any of the library's algorithms:
///
///   ./dagsfc_cli --network net.txt --sfc chain.txt --algorithm mbbe
///
/// When no files are given the tool writes a demo pair to the chosen paths
/// first, so `./dagsfc_cli` alone is a self-contained demo. File formats:
/// net/io.hpp and sfc/io.hpp.

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/delay.hpp"
#include "core/exact.hpp"
#include "core/ilp.hpp"
#include "core/layered.hpp"
#include "core/report.hpp"
#include "graph/oracle.hpp"
#include "net/io.hpp"
#include "sfc/io.hpp"
#include "shard/hier.hpp"
#include "util/build_info.hpp"
#include "util/flags.hpp"

using namespace dagsfc;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
}

void write_demo(const std::string& net_path, const std::string& sfc_path) {
  write_file(net_path,
             "# demo network: 6-node path+chord, 3 categories\n"
             "catalog 3\n"
             "name 1 firewall\nname 2 ids\nname 3 cache\n"
             "nodes 6\n"
             "link 0 1 1 100\nlink 1 2 1 100\nlink 2 3 1 100\n"
             "link 3 4 1 100\nlink 1 5 1 100\nlink 5 3 1 100\n"
             "vnf 1 1 10 100\n"
             "vnf 2 2 12 100\nvnf 5 2 8 100\n"
             "vnf 2 3 9 100\nvnf 3 3 7 100\n"
             "vnf 3 merger 5 100\nvnf 5 merger 6 100\n");
  write_file(sfc_path,
             "# demo SFC: firewall, then ids || cache\n"
             "layer 1\nlayer 2 3\nflow 0 4 1 1\n");
}

/// Builds the chosen solver. "hier" additionally partitions the loaded
/// network and parks the ShardedSubstrate in \p substrate, which must
/// outlive the returned embedder.
std::unique_ptr<core::Embedder> make_algorithm(
    const Flags& flags, const net::Network& network,
    std::unique_ptr<shard::ShardedSubstrate>& substrate) {
  const std::string name = flags.get("algorithm");
  const double delay_budget_ms = flags.get_double("delay-budget");
  if (delay_budget_ms > 0.0 && name != "layered") {
    throw std::invalid_argument(
        "--delay-budget is only honoured by the layered algorithm");
  }
  if (name == "ranv") return std::make_unique<core::RanvEmbedder>();
  if (name == "minv") return std::make_unique<core::MinvEmbedder>();
  if (name == "bbe") return std::make_unique<core::BbeEmbedder>();
  if (name == "mbbe") return std::make_unique<core::MbbeEmbedder>();
  if (name == "exact") return std::make_unique<core::ExactEmbedder>();
  if (name == "layered") {
    core::LayeredOptions opts;
    if (delay_budget_ms > 0.0) opts.delay_budget_ms = delay_budget_ms;
    return std::make_unique<core::LayeredEmbedder>(opts);
  }
  if (name == "hier") {
    const auto scheme =
        shard::partition_scheme_from_string(flags.get("partition"));
    if (scheme == shard::PartitionScheme::kLabels) {
      throw std::invalid_argument(
          "network files carry no region labels; use --partition stripe "
          "or --partition bfs");
    }
    const auto shards = static_cast<std::size_t>(flags.get_int("shards"));
    shard::HierOptions opts;
    opts.region_paths =
        static_cast<std::size_t>(flags.get_int("hier-paths"));
    opts.inner = shard::inner_algorithm_from_string(flags.get("hier-inner"));
    opts.flat_fallback = flags.get_bool("hier-flat-fallback");
    substrate = std::make_unique<shard::ShardedSubstrate>(
        network,
        shard::make_partition(network.topology(), shards, scheme));
    return std::make_unique<shard::HierarchicalEmbedder>(*substrate, opts);
  }
  throw std::invalid_argument(
      "unknown algorithm '" + name +
      "' (expected ranv|minv|bbe|mbbe|exact|layered|hier)");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("network", "demo_network.txt", "network description file")
      .define("sfc", "demo_sfc.txt", "DAG-SFC (+flow) description file")
      .define("algorithm", "mbbe", "ranv|minv|bbe|mbbe|exact|layered|hier")
      .define_int("shards", 4, "regions of the sharded substrate (hier)")
      .define("partition", "stripe",
              "node->region scheme for hier: stripe|bfs")
      .define("hier-inner", "mbbe", "hier stage-two solver: bbe|mbbe|layered")
      .define_int("hier-paths", 4,
                  "hier stage-one candidates (k of k-shortest region paths)")
      .define_bool("hier-flat-fallback", false,
                   "retry hier unrestricted when every candidate fails")
      .define_double("delay-budget", 0.0,
                     "end-to-end delay budget in ms (layered algorithm "
                     "only); 0 disables")
      .define("oracle", "off",
              "goal-directed path queries: off, or alt (epoch-keyed ALT "
              "landmark distance oracle; identical results, pruned search)")
      .define_int("landmarks", 16, "ALT landmark budget for --oracle=alt")
      .define_int("seed", 42, "RNG seed (randomized algorithms)")
      .define_bool("demo", false, "write demo input files before running")
      .define_bool("delay", true, "also report the end-to-end delay model")
      .define("emit-lp", "",
              "write the instance's ILP (Sec. 3.3, CPLEX LP format) to this "
              "path for an external MIP solver")
      .define("emit-dot", "",
              "write a Graphviz overlay of the solution on the topology to "
              "this path")
      .define("trace", "",
              "record the structured solve trace and write it to this path "
              "as Chrome trace_event JSON (load in Perfetto / "
              "chrome://tracing); also prints a trace summary")
      .define_log_level();
  try {
    flags.parse(argc, argv);
    flags.apply_log_level();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  // Process identity (dagsfc_build_info + dagsfc_uptime_seconds) on the
  // default registry, same as the serving CLI.
  const util::ProcessMetrics process_metrics;
  process_metrics.update();

  try {
    const std::string net_path = flags.get("network");
    const std::string sfc_path = flags.get("sfc");
    if (flags.get_bool("demo") || !std::ifstream(net_path)) {
      std::cerr << "writing demo instance to " << net_path << " and "
                << sfc_path << "\n";
      write_demo(net_path, sfc_path);
    }

    net::Network network = net::network_from_text(read_file(net_path));
    const sfc::SfcFile file = sfc::sfc_from_text(read_file(sfc_path));
    if (!file.flow.has_value()) {
      throw std::runtime_error("the SFC file must carry a flow line");
    }
    file.dag.validate(network.catalog());

    core::EmbeddingProblem problem;
    problem.network = &network;
    problem.sfc = &file.dag;
    problem.flow = core::Flow{file.flow->source, file.flow->destination,
                              file.flow->rate, file.flow->size};
    const core::ModelIndex index(problem);

    if (!flags.get("emit-lp").empty()) {
      net::CapacityLedger ledger(network);
      core::IlpBuilder builder(index, ledger);
      write_file(flags.get("emit-lp"), builder.build().to_lp());
      std::cout << "ILP written to " << flags.get("emit-lp") << "\n";
    }

    std::unique_ptr<shard::ShardedSubstrate> substrate;
    const auto algo = make_algorithm(flags, network, substrate);
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

    // Optional ALT oracle: built once over the loaded topology, attached to
    // a lent workspace so every path query the solve runs is goal-directed.
    // Results are bit-identical with or without it.
    std::unique_ptr<graph::DistanceOracle> oracle;
    graph::SearchWorkspace lent_ws;
    graph::SearchWorkspace* ws = nullptr;
    const std::string oracle_mode = flags.get("oracle");
    if (oracle_mode == "alt") {
      graph::DistanceOracle::Options oopts;
      oopts.landmarks =
          static_cast<std::size_t>(flags.get_int("landmarks"));
      oracle = std::make_unique<graph::DistanceOracle>(network.topology(),
                                                       oopts);
      lent_ws.set_distance_oracle(oracle.get());
      ws = &lent_ws;
      std::cout << "oracle: alt, " << oracle->num_landmarks() << " landmarks"
                << (oracle->active()
                        ? ""
                        : " (inactive: disconnected topology, no pruning)")
                << "\n";
    } else if (oracle_mode != "off") {
      throw std::invalid_argument("unknown --oracle '" + oracle_mode +
                                  "' (expected off|alt)");
    }

    std::cout << "DAG-SFC: " << file.dag.to_string(network.catalog())
              << "\nalgorithm: " << algo->name() << "\n";
    if (substrate != nullptr) {
      std::cout << "shards: " << substrate->num_regions() << " ("
                << flags.get("partition") << " partition), inner "
                << flags.get("hier-inner") << ", " << flags.get_int("hier-paths")
                << " region paths\n";
    }
    std::cout << "\n";
    const std::string trace_path = flags.get("trace");
    core::EmbeddingTrace trace;
    core::TraceSink* sink = trace_path.empty() ? nullptr : &trace;
    const core::SolveResult r = algo->solve_fresh(index, rng, sink, ws);
    if (sink != nullptr) {
      write_file(trace_path, trace.to_chrome_json());
      std::cout << trace.summary() << "trace written to " << trace_path
                << " (" << trace.events().size() << " events)\n\n";
    }
    if (!r.ok()) {
      std::cerr << "embedding failed: " << r.failure_reason << "\n";
      return 2;
    }
    if (sink != nullptr && trace.reconstructed_cost() != r.cost) {
      std::cerr << "warning: trace cost terms do not reproduce the reported "
                   "objective\n";
    }
    const core::Evaluator evaluator(index);
    std::cout << core::describe(evaluator, *r.solution);
    std::cout << core::describe_search(r) << "\n";
    if (!flags.get("emit-dot").empty()) {
      write_file(flags.get("emit-dot"),
                 core::to_dot(evaluator, *r.solution, "embedding"));
      std::cout << "DOT overlay written to " << flags.get("emit-dot")
                << "\n";
    }
    if (flags.get_bool("delay")) {
      std::cout << "delay: "
                << core::end_to_end_delay(evaluator, *r.solution)
                << " ms parallel vs "
                << core::serialized_delay(evaluator, *r.solution)
                << " ms serialized (1ms/hop, 1ms/VNF, 0.2ms merger)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
