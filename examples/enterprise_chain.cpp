/// Enterprise security chain — the paper's motivating workload.
///
/// A classic enterprise SFC (NAT -> firewall -> IDS -> load balancer ->
/// WAN optimizer) is analyzed for VNF parallelism from per-NF packet
/// read/write profiles (the NFP-style analysis of §3.1), standardized into a
/// DAG-SFC, and embedded into a randomly generated 80-node provider network.
/// The example contrasts:
///   * the hybrid (DAG) embedding vs the purely sequential embedding —
///     showing the latency proxy improvement parallelism buys, and
///   * MBBE vs the MINV baseline on cost.

#include <algorithm>
#include <iostream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/report.hpp"
#include "sfc/transform.hpp"
#include "sim/scenario.hpp"

using namespace dagsfc;

namespace {

/// Latency proxy: hops the *critical path* of the embedding traverses —
/// per layer, the longest inter-layer path plus the longest inner-layer
/// path (parallel branches overlap in time; the slowest dominates).
std::size_t critical_path_hops(const core::ModelIndex& index,
                               const core::EmbeddingSolution& sol) {
  std::size_t total = 0;
  for (std::size_t g = 0; g < index.num_inter_groups(); ++g) {
    const auto [first, last] = index.inter_group_range(g);
    std::size_t worst = 0;
    for (std::size_t i = first; i < last; ++i) {
      worst = std::max(worst, sol.inter_paths[i].length());
    }
    total += worst;
  }
  for (std::size_t l = 0; l < index.problem().dag().num_layers(); ++l) {
    const auto [first, last] = index.inner_layer_range(l);
    std::size_t worst = 0;
    for (std::size_t i = first; i < last; ++i) {
      worst = std::max(worst, sol.inner_paths[i].length());
    }
    total += worst;
  }
  return total;
}

/// Processing-delay proxy in "VNF units": the VNFs of a layer process the
/// packet simultaneously (1 unit for the whole layer) and the merger is a
/// lightweight re-assembly step (0.2 units) — the overlap NFP [17] exploits.
double processing_stages(const sfc::DagSfc& dag) {
  double units = 0.0;
  for (const sfc::Layer& layer : dag.layers()) {
    units += 1.0;
    if (layer.has_merger()) units += 0.2;
  }
  return units;
}

}  // namespace

int main() {
  net::VnfCatalog catalog(
      {"nat", "firewall", "ids", "load_balancer", "wan_optimizer"});

  // Packet-operation profiles (reads/writes/may-drop) per category.
  using sfc::PacketField;
  std::vector<sfc::NfProfile> profiles(5);
  profiles[0] = {/*nat*/ sfc::to_mask(PacketField::kSrcAddr),
                 PacketField::kSrcAddr | PacketField::kTransportPorts, false};
  profiles[1] = {/*firewall*/
                 PacketField::kSrcAddr | PacketField::kDstAddr,
                 0, true};
  profiles[2] = {/*ids*/ sfc::to_mask(PacketField::kPayload), 0, true};
  profiles[3] = {/*lb*/ sfc::to_mask(PacketField::kFlowState),
                 sfc::to_mask(PacketField::kDstAddr), false};
  profiles[4] = {/*wanopt*/ sfc::to_mask(PacketField::kPayload),
                 sfc::to_mask(PacketField::kPayload), false};
  const sfc::ProfileOracle oracle(catalog, profiles);

  sfc::SequentialSfc chain{{catalog.regular(1), catalog.regular(2),
                            catalog.regular(3), catalog.regular(4),
                            catalog.regular(5)}};
  const sfc::DagSfc hybrid = sfc::transform(chain, oracle);
  // The DP layering is provably minimal; on this chain it should agree
  // with the greedy standardization (and we print both to show it).
  const sfc::DagSfc minimal = sfc::transform_min_layers(chain, oracle);

  // The all-sequential rendering of the same chain, for comparison.
  std::vector<sfc::Layer> serial_layers;
  for (net::VnfTypeId t : chain.chain) serial_layers.push_back({{t}});
  const sfc::DagSfc serial(std::move(serial_layers));

  std::cout << "sequential SFC: " << serial.to_string(catalog)
            << "  (processing " << processing_stages(serial) << " units)\n";
  std::cout << "hybrid DAG-SFC: " << hybrid.to_string(catalog)
            << "  (processing " << processing_stages(hybrid)
            << " units — parallel layers overlap)\n";
  std::cout << "min-layer DP:   " << minimal.to_string(catalog) << "  ("
            << minimal.num_layers() << " layers, provably minimal)\n\n";

  // Provider network: random 80-node topology, all five categories plus the
  // merger deployed at 40%.
  sim::ExperimentConfig cfg;
  cfg.network_size = 80;
  cfg.network_connectivity = 5.0;
  cfg.catalog_size = 5;
  cfg.vnf_deploy_ratio = 0.4;
  cfg.sfc_size = 5;
  Rng rng(2026);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);

  const core::MbbeEmbedder mbbe;
  const core::MinvEmbedder minv;
  for (const auto& [label, dag] :
       {std::pair<const char*, const sfc::DagSfc&>{"hybrid", hybrid},
        std::pair<const char*, const sfc::DagSfc&>{"sequential", serial}}) {
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow =
        core::Flow{scenario.source, scenario.destination, 1.0, 1.0};
    const core::ModelIndex index(problem);
    const core::Evaluator evaluator(index);

    std::cout << "== " << label << " embedding ==\n";
    for (const core::Embedder* algo :
         std::initializer_list<const core::Embedder*>{&mbbe, &minv}) {
      const auto r = algo->solve_fresh(index, rng);
      if (!r.ok()) {
        std::cout << algo->name() << ": failed (" << r.failure_reason
                  << ")\n";
        continue;
      }
      std::cout << algo->name() << ": cost " << r.cost
                << ", critical-path hops "
                << critical_path_hops(index, *r.solution) << "\n";
      if (algo == &mbbe) {
        std::cout << core::describe(evaluator, *r.solution);
      }
    }
    std::cout << "\n";
  }
  std::cout << "note: parallel layers overlap in processing time, so the\n"
               "hybrid form needs fewer sequential VNF stages than the\n"
               "chain — the delay benefit NFP [17] measured — while the\n"
               "merger rental is the (small) price of that parallelism.\n"
               "MBBE minimizes the total rental+link cost either way.\n";
  return 0;
}
