/// Topology study: how the embedding cost of the same DAG-SFC varies across
/// structured network shapes (ring, star, 2-D grid, two-tier leaf/spine) —
/// the kind of what-if a provider would run before placing VNF inventory.
/// Every topology gets identical VNF inventory (same types, prices drawn
/// from the same distribution, same deploy ratio) so the differences come
/// from the wiring alone.

#include <functional>
#include <iostream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "graph/topologies.hpp"
#include "sim/config.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dagsfc;

namespace {

constexpr double kLinkPrice = 20.0;

/// Library topologies come with unit weights; price every link uniformly.
graph::Graph priced(graph::Graph g) {
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, kLinkPrice);
  }
  return g;
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 36;
  constexpr std::size_t kCatalog = 5;
  const std::vector<std::pair<std::string, std::function<graph::Graph()>>>
      topologies{
          {"ring", [] { return priced(graph::make_ring(kNodes)); }},
          {"star", [] { return priced(graph::make_star(kNodes)); }},
          {"grid 6x6", [] { return priced(graph::make_grid(6, 6)); }},
          {"torus 6x6",
           [] { return priced(graph::make_grid(6, 6, /*wrap=*/true)); }},
          {"leaf-spine (4 spines)",
           [] { return priced(graph::make_leaf_spine(kNodes, 4)); }},
          {"fat-tree k=4 (20 nodes)",
           [] { return priced(graph::make_fat_tree(4)); }},
          {"waxman",
           [] {
             Rng rng(7);
             graph::WaxmanOptions o;
             o.num_nodes = kNodes;
             return priced(graph::make_waxman(rng, o));
           }},
      };

  net::VnfCatalog catalog(kCatalog);
  const sfc::DagSfc dag({
      sfc::Layer{{catalog.regular(1)}},
      sfc::Layer{{catalog.regular(2), catalog.regular(3),
                  catalog.regular(4)}},
      sfc::Layer{{catalog.regular(5)}},
  });
  std::cout << "DAG-SFC: " << dag.to_string(catalog) << "\n\n";

  const core::MbbeEmbedder mbbe;
  const core::MinvEmbedder minv;
  Table t({"topology", "avg degree", "MBBE cost", "MINV cost",
           "MBBE saving %"});

  for (const auto& [name, make] : topologies) {
    // Same inventory process on every topology: identical RNG seed so each
    // node hosts the same types at the same prices.
    Rng rng(99);
    net::Network network(make(), catalog);
    std::vector<net::VnfTypeId> all = catalog.regular_ids();
    all.push_back(catalog.merger());
    for (net::VnfTypeId type : all) {
      for (graph::NodeId v = 0; v < network.num_nodes(); ++v) {
        if (rng.bernoulli(0.35)) {
          (void)network.deploy(v, type, rng.uniform_real(80.0, 120.0), 100.0);
        }
      }
      if (network.nodes_with(type).empty()) {
        (void)network.deploy(
            static_cast<graph::NodeId>(rng.index(network.num_nodes())), type,
            100.0, 100.0);
      }
    }

    core::EmbeddingProblem problem;
    problem.network = &network;
    problem.sfc = &dag;
    problem.flow = core::Flow{
        static_cast<graph::NodeId>(network.num_nodes() - 1),
        static_cast<graph::NodeId>(network.num_nodes() / 2), 1.0, 1.0};
    const core::ModelIndex index(problem);

    const auto rm = mbbe.solve_fresh(index, rng);
    const auto rv = minv.solve_fresh(index, rng);
    t.row().cell(name).cell(network.topology().average_degree(), 2);
    t.cell(rm.ok() ? rm.cost : -1.0, 1);
    t.cell(rv.ok() ? rv.cost : -1.0, 1);
    t.cell(rm.ok() && rv.ok() && rv.cost > 0
               ? (1.0 - rm.cost / rv.cost) * 100.0
               : 0.0,
           1);
  }
  std::cout << t.ascii();
  std::cout << "\nDenser wiring (grid, leaf-spine) shrinks real-paths and\n"
               "with them the link share of the embedding cost — the same\n"
               "effect the paper measures in Fig. 6(c).\n";
  return 0;
}
