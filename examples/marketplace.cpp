/// VNF marketplace under contention — sequential multi-tenant admission.
///
/// The paper frames embedding from the consumer's perspective in a cloud
/// where third parties rent out VNF instances (§1). This example simulates
/// that marketplace end to end: tenants arrive one by one, each with a
/// random hybrid SFC and flow, and the operator admits them while capacity
/// lasts (the capacity ledger is shared across tenants). Run twice — once
/// embedding with MBBE, once with MINV — it shows that cost-aware embedding
/// admits more tenants *and* spends less per tenant.

#include <iostream>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

using namespace dagsfc;

namespace {

struct MarketOutcome {
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  double total_cost = 0.0;
};

MarketOutcome run_market(const core::Embedder& algo,
                         const sim::ExperimentConfig& cfg,
                         std::size_t tenants, std::uint64_t seed) {
  Rng rng(seed);
  const sim::Scenario scenario = sim::make_scenario(rng, cfg);
  net::CapacityLedger ledger(scenario.network);

  MarketOutcome out;
  for (std::size_t tenant = 0; tenant < tenants; ++tenant) {
    const sfc::DagSfc dag =
        sim::make_sfc(rng, scenario.network.catalog(), cfg);
    // Each tenant has its own random flow endpoints.
    const auto s = static_cast<graph::NodeId>(rng.index(cfg.network_size));
    auto t = static_cast<graph::NodeId>(rng.index(cfg.network_size));
    if (t == s) t = (t + 1) % static_cast<graph::NodeId>(cfg.network_size);

    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{s, t, cfg.flow_rate, cfg.flow_size};
    const core::ModelIndex index(problem);

    const auto r = algo.solve(index, ledger, rng);
    if (!r.ok()) {
      ++out.rejected;
      continue;  // tenant walks away; later (smaller) tenants may still fit
    }
    const core::Evaluator evaluator(index);
    evaluator.commit(evaluator.usage(*r.solution), ledger);
    ++out.admitted;
    out.total_cost += r.cost;
  }
  return out;
}

}  // namespace

int main() {
  sim::ExperimentConfig cfg;
  cfg.network_size = 100;
  cfg.network_connectivity = 5.0;
  cfg.catalog_size = 8;
  cfg.sfc_size = 4;
  cfg.vnf_deploy_ratio = 0.3;
  cfg.vnf_capacity = 6.0;   // each instance serves at most 6 rate units
  cfg.link_capacity = 8.0;  // links congest under contention
  const std::size_t tenants = 80;

  std::cout << "== VNF marketplace: " << tenants
            << " tenants arriving on a shared 100-node network ==\n"
            << "(instance capacity 6, link capacity 8 — contention is real)"
            << "\n\n";

  const core::MbbeEmbedder mbbe;
  const core::MinvEmbedder minv;
  const core::RanvEmbedder ranv;

  Table t({"algorithm", "admitted", "rejected", "total cost",
           "mean cost/tenant"});
  for (const core::Embedder* algo :
       std::initializer_list<const core::Embedder*>{&mbbe, &minv, &ranv}) {
    const MarketOutcome o = run_market(*algo, cfg, tenants, 777);
    t.row().cell(algo->name());
    t.cell(o.admitted).cell(o.rejected).cell(o.total_cost, 1);
    t.cell(o.admitted ? o.total_cost / static_cast<double>(o.admitted) : 0.0,
           1);
  }
  std::cout << t.ascii();
  std::cout << "\nMBBE both admits more tenants (it spreads load across\n"
               "nearby instances) and pays less per admitted tenant.\n";
  return 0;
}
