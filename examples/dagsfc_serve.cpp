/// dagsfc_serve — the online embedding service as a CLI demo.
///
/// Generates a seeded workload (Poisson arrivals of random DAG-SFCs with
/// exponential holding times) and serves it through serve::EmbeddingService
/// in one of two modes:
///
///   * open-loop (default): --producers submitting threads keep up to a
///     window of requests in flight each while releasing their oldest
///     accepted flows — workers race their optimistic commits, so the
///     validated-commit / conflict / retry counters come alive;
///   * --closed-loop: the deterministic driver (one request in flight,
///     virtual departures) whose metrics are bit-identical for any
///     --workers value and either --pipeline.
///
/// --pipeline selects the commit protocol: mvcc (default; per-worker
/// replica sync, footprint-stamp validation, group commit) or mutex
/// (the legacy full-copy baseline) — see DESIGN.md §10.
///
/// Prints a human-readable summary plus a machine-readable `JSON:` line
/// like the bench binaries.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "core/backtracking.hpp"
#include "core/baselines.hpp"
#include "core/exact.hpp"
#include "core/layered.hpp"
#include "graph/oracle.hpp"
#include "serve/driver.hpp"
#include "serve/http.hpp"
#include "serve/trace.hpp"
#include "shard/driver.hpp"
#include "util/build_info.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

/// SIGUSR1 → dump the live flight recorder. A signal handler may only flip
/// a flag, so a tiny poller thread does the actual I/O; the service hooks
/// publish the recorder through g_flight for the duration of the run.
volatile std::sig_atomic_t g_dump_requested = 0;
void on_sigusr1(int) { g_dump_requested = 1; }
std::atomic<const dagsfc::serve::FlightRecorder*> g_flight{nullptr};

/// Owns the poller thread and joins it on every exit path.
struct SignalPoller {
  std::atomic<bool> stop{false};
  std::thread thread;

  void start() {
    std::signal(SIGUSR1, on_sigusr1);
    thread = std::thread([this] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (g_dump_requested == 0) continue;
        g_dump_requested = 0;
        if (const auto* f = g_flight.load(std::memory_order_acquire)) {
          std::cerr << "SIGUSR1 flight dump: " << f->to_json() << "\n";
        }
      }
    });
  }
  ~SignalPoller() {
    stop.store(true, std::memory_order_relaxed);
    if (thread.joinable()) thread.join();
  }
};

/// --flight-dump: the retained traces as Chrome trace-event JSON, written
/// at exit while the service (and its recorder) is still alive.
void dump_flight(const std::string& path,
                 const dagsfc::serve::FlightRecorder* flight) {
  if (path.empty() || flight == nullptr) return;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "flight-dump: cannot open " << path << "\n";
    return;
  }
  out << flight->to_chrome();
  std::cerr << "flight-dump: " << flight->promoted()
            << " promoted trace(s); chrome trace written to " << path
            << " (open in Perfetto or chrome://tracing)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dagsfc;

  Flags flags;
  flags.define_workers(4)
      .define_int("arrivals", 400, "requests in the generated workload")
      .define_int("producers", 2, "submitting threads (open-loop mode)")
      .define_double("load", 24.0,
                     "target concurrent flows in service (open-loop) / "
                     "offered load in Erlangs (closed-loop)")
      .define_int("network-size", 60, "nodes in the generated network")
      .define_int("sfc-size", 4, "VNFs per request SFC")
      .define_double("vnf-capacity", 8.0, "per-instance capacity")
      .define_double("link-capacity", 10.0, "per-link capacity")
      .define_int("queue-cap", 256, "bounded request-queue capacity")
      .define_int("retries", 3, "re-solves after a commit conflict")
      .define_duration("backoff", "50us", "base retry backoff (doubles)")
      .define_duration("deadline", "0s",
                       "per-request deadline after submit; 0s disables")
      .define_bool("closed-loop", false,
                   "run the deterministic closed-loop driver instead")
      .define("algorithm", "mbbe",
              "worker solver: ranv|minv|bbe|mbbe|exact|layered, or hier "
              "(sharded service, one worker pool per shard)")
      .define_int("shards", 4, "regions of the sharded substrate (hier)")
      .define("partition", "labels",
              "node->region scheme for hier: labels|stripe|bfs (labels = "
              "the regional generator's own)")
      .define("hier-inner", "mbbe", "hier stage-two solver: bbe|mbbe|layered")
      .define_int("hier-paths", 4,
                  "hier stage-one candidates (k of k-shortest region paths)")
      .define("pipeline", "mvcc",
              "commit pipeline: mvcc (replica sync + stamp validation + "
              "group commit) or mutex (legacy full-copy baseline)")
      .define("oracle", "off",
              "goal-directed path queries in the workers: off, or alt "
              "(epoch-keyed ALT landmark oracle over the workload network; "
              "identical results, pruned searches; flat algorithms only)")
      .define_int("landmarks", 16, "ALT landmark budget for --oracle=alt")
      .define_int("metrics-port", 0,
                  "serve GET /metrics (Prometheus) and /metrics.json on "
                  "127.0.0.1:<port> for the duration of the run; 0 disables")
      .define_duration("slow-solve-threshold", "0s",
                       "warn once (and count dagsfc_serve_slow_solves_total) "
                       "for any request processed longer than this; 0s "
                       "disables the watchdog")
      .define("flight-dump", "",
              "enable request-lifecycle tracing and write the flight "
              "recorder's retained traces as Chrome trace-event JSON to "
              "this path at exit (open in Perfetto / chrome://tracing)")
      .define_bool("trace", false,
                   "request-lifecycle tracing without a dump file (the "
                   "flight recorder serves on /debug/traces.json and "
                   "SIGUSR1 dumps it to stderr); implied by --flight-dump")
      .define_duration("trace-latency-over", "0s",
                       "also promote traces whose submit->finish latency "
                       "exceeds this; 0s disables the latency trigger")
      .define_bool("trace-refusals", false,
                   "also promote refused requests (infeasible, queue-full, "
                   "deadline-shed)")
      .define_log_level()
      .define_int("seed", 0x5eed5e, "workload + solver RNG seed");
  try {
    flags.parse(argc, argv);
    flags.apply_log_level();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << "online embedding service demo\n\n" << flags.usage(argv[0]);
    return 0;
  }

  sim::DynamicConfig cfg;
  cfg.base.network_size =
      static_cast<std::size_t>(flags.get_int("network-size"));
  cfg.base.catalog_size = 8;
  cfg.base.sfc_size = static_cast<std::size_t>(flags.get_int("sfc-size"));
  cfg.base.vnf_capacity = flags.get_double("vnf-capacity");
  cfg.base.link_capacity = flags.get_double("link-capacity");
  cfg.base.trials = 1;
  cfg.arrival_rate =
      std::max(0.1, flags.get_double("load")) / cfg.mean_holding_time;
  cfg.num_arrivals = static_cast<std::size_t>(flags.get_int("arrivals"));

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::size_t workers = flags.get_workers();

  serve::AdmissionPolicy admission;
  admission.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap"));
  admission.max_retries = static_cast<std::uint32_t>(flags.get_int("retries"));
  admission.retry_backoff = flags.get_duration("backoff");

  // Process identity on the default registry (dagsfc_build_info +
  // dagsfc_uptime_seconds). The scrape endpoint serves the service's own
  // registry, so on_start registers a second ProcessMetrics there — that is
  // the copy a scraper actually sees, kept fresh via before_scrape.
  const util::ProcessMetrics process_metrics;

  const std::string flight_dump = flags.get("flight-dump");
  serve::TracingOptions tracing;
  tracing.enabled = flags.get_bool("trace") || !flight_dump.empty();
  tracing.latency_over = flags.get_duration("trace-latency-over");
  tracing.on_refusal = flags.get_bool("trace-refusals");

  SignalPoller poller;
  if (tracing.enabled) poller.start();

  const std::string oracle_mode = flags.get("oracle");
  if (oracle_mode != "off" && oracle_mode != "alt") {
    std::cerr << "unknown oracle '" << oracle_mode << "' (off|alt)\n";
    return 1;
  }
  if (oracle_mode == "alt" && flags.get("algorithm") == "hier") {
    std::cerr << "--oracle=alt applies to the flat service only; the "
                 "sharded plane runs its own per-region summaries\n";
    return 1;
  }

  // --- sharded mode: --algorithm hier routes through the shard plane ------
  if (flags.get("algorithm") == "hier") {
    std::unique_ptr<serve::MetricsHttpServer> endpoint;
    std::unique_ptr<util::ProcessMetrics> scrape_identity;
    const int metrics_port = flags.get_int("metrics-port");
    const auto shards = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("shards")));
    shard::ShardWorkloadConfig scfg;
    scfg.regional.base = cfg.base;
    scfg.regional.regions.regions = shards;
    scfg.regional.regions.nodes_per_region =
        std::max<std::size_t>(2, cfg.base.network_size / shards);
    scfg.arrival_rate = cfg.arrival_rate;
    scfg.mean_holding_time = cfg.mean_holding_time;
    scfg.num_arrivals = cfg.num_arrivals;

    std::cerr << "generating regional workload (" << scfg.num_arrivals
              << " arrivals, " << scfg.regional.total_nodes() << " nodes, "
              << shards << " regions)...\n";
    const shard::ShardWorkload workload =
        shard::make_shard_workload(scfg, seed);
    const auto scheme =
        shard::partition_scheme_from_string(flags.get("partition"));
    const shard::ShardedSubstrate substrate(
        workload.scenario.network,
        shard::make_partition(workload.scenario.network.topology(), shards,
                              scheme, workload.scenario.region_of));

    shard::ShardedEmbeddingService::Options sopts;
    sopts.workers_per_shard = workers;  // --workers is per shard here
    sopts.admission = admission;
    sopts.hier.region_paths =
        static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("hier-paths")));
    sopts.hier.inner =
        shard::inner_algorithm_from_string(flags.get("hier-inner"));
    sopts.seed = seed;
    sopts.tracing = tracing;

    shard::ShardServiceTuning stuning;
    stuning.on_start = [&](shard::ShardedEmbeddingService& s) {
      g_flight.store(s.flight_recorder(), std::memory_order_release);
      if (metrics_port > 0) {
        scrape_identity =
            std::make_unique<util::ProcessMetrics>(s.metrics_registry());
        serve::MetricsHttpServer::Options mopts;
        mopts.flight = s.flight_recorder();
        mopts.before_scrape = [&scrape_identity] { scrape_identity->update(); };
        endpoint = std::make_unique<serve::MetricsHttpServer>(
            s.metrics_registry(), static_cast<std::uint16_t>(metrics_port),
            std::move(mopts));
        std::cerr << "metrics: curl http://127.0.0.1:" << endpoint->port()
                  << "/metrics\n";
      }
    };
    // The endpoint scrapes the service's registry and the flight dump reads
    // its recorder, so both must detach before the service is destroyed.
    stuning.on_finish = [&](shard::ShardedEmbeddingService& s) {
      g_flight.store(nullptr, std::memory_order_release);
      endpoint.reset();
      scrape_identity.reset();
      dump_flight(flight_dump, s.flight_recorder());
    };

    if (flags.get_bool("closed-loop")) {
      const shard::ShardDriverResult r =
          shard::run_sharded_closed_loop(workload, substrate, sopts, stuning);
      const auto& m = r.metrics;
      std::cout << "== dagsfc_serve (closed loop, hier, " << shards
                << " shards x " << workers << " workers) ==\n"
                << "accepted " << m.accepted << " / " << m.submitted
                << " (ratio " << m.acceptance_ratio() << "), cross-region "
                << m.cross_region_requests << ", conserved="
                << (r.conserved ? "yes" : "no") << "\n";
      std::cout << "JSON: {\"mode\":\"closed-loop\",\"algorithm\":\"hier\""
                << ",\"shards\":" << shards << ",\"workers_per_shard\":"
                << workers << ",\"conserved\":"
                << (r.conserved ? "true" : "false")
                << ",\"metrics\":" << m.to_json() << "}\n";
      return 0;
    }

    shard::ShardOpenLoopConfig open;
    open.producers = std::max<std::size_t>(
        1, static_cast<std::size_t>(flags.get_int("producers")));
    open.target_load =
        static_cast<std::size_t>(std::max(1.0, flags.get_double("load")));
    open.window = std::max<std::size_t>(4, 2 * workers / open.producers);
    open.service = sopts;
    open.deadline = flags.get_duration("deadline");
    open.tuning = stuning;

    const shard::ShardOpenLoopResult r =
        shard::run_sharded_open_loop(workload, substrate, open);
    const auto& m = r.metrics;
    std::cout << "== dagsfc_serve (open loop, hier, " << shards
              << " shards x " << workers << " workers, " << open.producers
              << " producers) ==\n"
              << "served " << m.completed() << " requests in "
              << r.wall_seconds << "s (" << r.throughput_rps() << " req/s)\n"
              << "accepted " << m.accepted << ", rejected "
              << m.rejected_infeasible << ", queue-full "
              << m.rejected_queue_full << ", shed " << m.shed_deadline
              << ", lost " << m.lost_conflict << ", cross-region "
              << m.cross_region_requests << "\n"
              << "commits: fast " << m.fast_commits << ", stamp "
              << m.stamp_commits << ", validated " << m.validated_commits
              << ", conflicts " << m.total_conflicts() << ", retries "
              << m.retries << "\n"
              << "conserved after drain: " << (r.conserved ? "yes" : "no")
              << "\n";
    std::cout << "JSON: {\"mode\":\"open-loop\",\"algorithm\":\"hier\""
              << ",\"shards\":" << shards << ",\"workers_per_shard\":"
              << workers << ",\"wall_s\":" << util::json_number(r.wall_seconds)
              << ",\"throughput_rps\":"
              << util::json_number(r.throughput_rps()) << ",\"conserved\":"
              << (r.conserved ? "true" : "false") << ",\"metrics\":"
              << m.to_json() << "}\n";
    return 0;
  }

  std::cerr << "generating workload (" << cfg.num_arrivals << " arrivals, "
            << cfg.base.network_size << " nodes)...\n";
  const serve::Workload workload = serve::make_workload(cfg, seed);

  std::unique_ptr<core::Embedder> algo;
  const std::string algo_name = flags.get("algorithm");
  if (algo_name == "ranv") {
    algo = std::make_unique<core::RanvEmbedder>();
  } else if (algo_name == "minv") {
    algo = std::make_unique<core::MinvEmbedder>();
  } else if (algo_name == "bbe") {
    algo = std::make_unique<core::BbeEmbedder>();
  } else if (algo_name == "mbbe") {
    algo = std::make_unique<core::MbbeEmbedder>();
  } else if (algo_name == "exact") {
    algo = std::make_unique<core::ExactEmbedder>();
  } else if (algo_name == "layered") {
    algo = std::make_unique<core::LayeredEmbedder>();
  } else {
    std::cerr << "unknown algorithm '" << algo_name
              << "' (ranv|minv|bbe|mbbe|exact|layered)\n";
    return 1;
  }
  const core::Embedder& embedder = *algo;

  // Observability: the drivers own the service, so the watchdog knobs ride
  // in via ServiceTuning and the /metrics endpoint attaches on_start (it
  // lives in `endpoint` out here so it serves for the whole run).
  serve::ServiceTuning tuning;
  tuning.slow_solve_threshold = flags.get_duration("slow-solve-threshold");
  // Optional ALT oracle: one immutable table set over the workload's
  // (static) topology, shared read-only by every worker. Results are
  // bit-identical to --oracle=off.
  std::unique_ptr<graph::DistanceOracle> oracle;
  if (oracle_mode == "alt") {
    graph::DistanceOracle::Options oopts;
    oopts.landmarks = static_cast<std::size_t>(flags.get_int("landmarks"));
    oracle = std::make_unique<graph::DistanceOracle>(
        workload.scenario.network.topology(), oopts);
    tuning.distance_oracle = oracle.get();
    std::cerr << "oracle: alt, " << oracle->num_landmarks() << " landmarks"
              << (oracle->active() ? "" : " (inactive: disconnected topology)")
              << "\n";
  }
  const std::string pipeline_name = flags.get("pipeline");
  if (pipeline_name == "mutex") {
    tuning.pipeline = serve::CommitPipeline::kMutex;
  } else if (pipeline_name == "mvcc") {
    tuning.pipeline = serve::CommitPipeline::kMvcc;
  } else {
    std::cerr << "unknown pipeline '" << pipeline_name << "' (mvcc|mutex)\n";
    return 1;
  }
  std::unique_ptr<serve::MetricsHttpServer> endpoint;
  std::unique_ptr<util::ProcessMetrics> scrape_identity;
  const int metrics_port = flags.get_int("metrics-port");
  tuning.tracing = tracing;
  tuning.on_start = [&](serve::EmbeddingService& s) {
    g_flight.store(s.flight_recorder(), std::memory_order_release);
    if (metrics_port > 0) {
      scrape_identity =
          std::make_unique<util::ProcessMetrics>(s.metrics_registry());
      serve::MetricsHttpServer::Options mopts;
      mopts.flight = s.flight_recorder();
      mopts.before_scrape = [&scrape_identity] { scrape_identity->update(); };
      endpoint = std::make_unique<serve::MetricsHttpServer>(
          s.metrics_registry(), static_cast<std::uint16_t>(metrics_port),
          std::move(mopts));
      std::cerr << "metrics: curl http://127.0.0.1:" << endpoint->port()
                << "/metrics\n";
    }
  };
  // The endpoint scrapes the service's registry and the flight dump reads
  // its recorder, so both must detach before the service is destroyed.
  tuning.on_finish = [&](serve::EmbeddingService& s) {
    g_flight.store(nullptr, std::memory_order_release);
    endpoint.reset();
    scrape_identity.reset();
    dump_flight(flight_dump, s.flight_recorder());
  };

  if (flags.get_bool("closed-loop")) {
    const serve::DriverResult r = serve::run_closed_loop(
        workload, embedder, workers, admission, seed, tuning);
    const auto& m = r.metrics;
    std::cout << "== dagsfc_serve (closed loop, " << workers
              << " workers, " << pipeline_name << " pipeline) ==\n"
              << "accepted " << m.accepted << " / " << m.submitted
              << " (ratio " << m.acceptance_ratio() << "), conserved="
              << (r.conserved ? "yes" : "no") << ", final epoch "
              << r.final_epoch << "\n";
    std::cout << "JSON: {\"mode\":\"closed-loop\",\"pipeline\":\""
              << pipeline_name << "\",\"workers\":" << workers
              << ",\"conserved\":" << (r.conserved ? "true" : "false")
              << ",\"metrics\":" << m.to_json() << "}\n";
    return 0;
  }

  serve::OpenLoopConfig open;
  open.workers = workers;
  open.producers = std::max<std::size_t>(
      1, static_cast<std::size_t>(flags.get_int("producers")));
  open.target_load =
      static_cast<std::size_t>(std::max(1.0, flags.get_double("load")));
  open.window = std::max<std::size_t>(4, 2 * workers / open.producers);
  open.admission = admission;
  open.seed = seed;
  open.deadline = flags.get_duration("deadline");
  open.tuning = tuning;

  const serve::OpenLoopResult r =
      serve::run_open_loop(workload, embedder, open);
  const auto& m = r.metrics;
  std::cout << "== dagsfc_serve (open loop, " << workers << " workers, "
            << open.producers << " producers, " << pipeline_name
            << " pipeline) ==\n"
            << "served " << m.completed() << " requests in " << r.wall_seconds
            << "s (" << r.throughput_rps() << " req/s)\n"
            << "accepted " << m.accepted << ", rejected "
            << m.rejected_infeasible << ", queue-full "
            << m.rejected_queue_full << ", shed " << m.shed_deadline
            << ", lost " << m.lost_conflict << "\n"
            << "commits: fast " << m.fast_commits << ", stamp "
            << m.stamp_commits << ", validated " << m.validated_commits
            << ", conflicts " << m.commit_conflicts << ", retries "
            << m.retries << "\n"
            << "latency ms p50/p95/p99: " << m.latency_ms.p50() << " / "
            << m.latency_ms.p95() << " / " << m.latency_ms.p99() << "\n"
            << "conserved after drain: " << (r.conserved ? "yes" : "no")
            << "\n";
  std::cout << "JSON: {\"mode\":\"open-loop\",\"pipeline\":\""
            << pipeline_name << "\",\"workers\":" << workers
            << ",\"wall_s\":" << util::json_number(r.wall_seconds)
            << ",\"throughput_rps\":" << util::json_number(r.throughput_rps())
            << ",\"conserved\":" << (r.conserved ? "true" : "false")
            << ",\"metrics\":" << m.to_json() << "}\n";
  return 0;
}
