/// Quickstart: build a small priced cloud network by hand, standardize a
/// hybrid SFC into a DAG-SFC, embed it with MBBE, and print the solution.
///
///   ./quickstart
///
/// This walks the whole public API surface in ~100 lines: VnfCatalog,
/// Network, DagSfc, EmbeddingProblem/ModelIndex, MbbeEmbedder, Evaluator.

#include <iostream>

#include "core/backtracking.hpp"
#include "core/report.hpp"

using namespace dagsfc;

int main() {
  // A 3-category catalog: f1=firewall, f2=IDS, f3=cache (plus the implicit
  // dummy and merger types the library manages).
  net::VnfCatalog catalog({"firewall", "ids", "cache"});

  // Topology: a 6-node ring with one chord; edge weights are link prices
  // per unit of traffic rate.
  graph::Graph g(6);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 1.5);
  g.add_edge(2, 3, 2.5);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 2.0);
  g.add_edge(5, 0, 3.0);
  g.add_edge(1, 4, 4.0);  // the chord

  net::Network network(std::move(g), catalog, /*default_link_capacity=*/10.0);

  // VNF instances offered on the nodes: (node, type, rental price, capacity).
  network.deploy(1, catalog.regular(1), 12.0, 5.0);  // firewall @1
  network.deploy(4, catalog.regular(1), 9.0, 5.0);   // firewall @4
  network.deploy(2, catalog.regular(2), 7.0, 5.0);   // ids @2
  network.deploy(3, catalog.regular(3), 6.0, 5.0);   // cache @3
  network.deploy(3, catalog.merger(), 2.0, 5.0);     // merger @3
  network.deploy(2, catalog.merger(), 3.0, 5.0);     // merger @2

  // The hybrid SFC: firewall first, then IDS and cache in parallel
  // (they touch disjoint packet state), merged before delivery.
  sfc::DagSfc dag({
      sfc::Layer{{catalog.regular(1)}},
      sfc::Layer{{catalog.regular(2), catalog.regular(3)}},
  });
  std::cout << "DAG-SFC: " << dag.to_string(catalog) << "\n\n";

  // The flow to embed: node 0 -> node 5, 1 unit of rate, size 1.
  core::EmbeddingProblem problem;
  problem.network = &network;
  problem.sfc = &dag;
  problem.flow = core::Flow{0, 5, 1.0, 1.0};
  const core::ModelIndex index(problem);

  const core::MbbeEmbedder mbbe;
  Rng rng(42);
  const core::SolveResult result = mbbe.solve_fresh(index, rng);
  if (!result.ok()) {
    std::cerr << "embedding failed: " << result.failure_reason << "\n";
    return 1;
  }

  const core::Evaluator evaluator(index);
  std::cout << core::describe(evaluator, *result.solution);
  return 0;
}
