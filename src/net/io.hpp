#pragma once
/// \file io.hpp
/// Plain-text serialization of priced networks, so instances can be saved,
/// versioned, and re-run exactly (the CLI example and regression corpora
/// use this). The format is line-oriented:
///
///   # comments and blank lines are ignored
///   catalog <num_regular>
///   name <type_id> <identifier>          # optional category names
///   nodes <count>
///   link <u> <v> <price> <capacity>
///   vnf <node> <type> <price> <capacity> # type: 1..n or "merger"
///
/// Declarations may appear in any order except that `catalog` and `nodes`
/// must precede the lines that depend on them.

#include <string>

#include "net/network.hpp"

namespace dagsfc::net {

/// Serializes the network (topology, prices, capacities, deployments).
[[nodiscard]] std::string to_text(const Network& network);

/// Parses a network from to_text()'s format. Throws std::invalid_argument
/// with a line number on malformed input.
[[nodiscard]] Network network_from_text(const std::string& text);

}  // namespace dagsfc::net
