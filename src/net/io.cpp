#include "net/io.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dagsfc::net {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("network text, line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

std::string to_text(const Network& network) {
  std::ostringstream os;
  os.precision(17);
  const VnfCatalog& c = network.catalog();
  os << "# dagsfc network v1\n";
  os << "catalog " << c.num_regular() << '\n';
  for (VnfTypeId t = 1; t <= c.num_regular(); ++t) {
    if (c.name(t) != "f" + std::to_string(t)) {
      os << "name " << t << ' ' << c.name(t) << '\n';
    }
  }
  os << "nodes " << network.num_nodes() << '\n';
  for (graph::EdgeId e = 0; e < network.num_links(); ++e) {
    const graph::Edge& ed = network.topology().edge(e);
    os << "link " << ed.u << ' ' << ed.v << ' ' << ed.weight << ' '
       << network.link_capacity(e) << '\n';
  }
  for (InstanceId id = 0; id < network.num_instances(); ++id) {
    const VnfInstance& inst = network.instance(id);
    os << "vnf " << inst.node << ' ';
    if (c.is_merger(inst.type)) {
      os << "merger";
    } else {
      os << inst.type;
    }
    os << ' ' << inst.price << ' ' << inst.capacity << '\n';
  }
  return os.str();
}

Network network_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;

  std::optional<std::size_t> num_regular;
  std::optional<std::size_t> num_nodes;
  std::vector<std::pair<VnfTypeId, std::string>> names;
  struct LinkDecl {
    graph::NodeId u, v;
    double price, capacity;
    std::size_t line;
  };
  struct VnfDecl {
    graph::NodeId node;
    std::string type;
    double price, capacity;
    std::size_t line;
  };
  std::vector<LinkDecl> links;
  std::vector<VnfDecl> vnfs;

  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "catalog") {
      std::size_t n = 0;
      if (!(ls >> n) || n == 0) fail(lineno, "catalog needs a positive size");
      num_regular = n;
    } else if (keyword == "name") {
      VnfTypeId t = 0;
      std::string n;
      if (!(ls >> t >> n)) fail(lineno, "name needs <type_id> <identifier>");
      if (!num_regular) fail(lineno, "name before catalog");
      if (t < 1 || t > *num_regular) fail(lineno, "type id out of range");
      names.emplace_back(t, n);
    } else if (keyword == "nodes") {
      std::size_t n = 0;
      if (!(ls >> n) || n == 0) fail(lineno, "nodes needs a positive count");
      num_nodes = n;
    } else if (keyword == "link") {
      LinkDecl d{};
      if (!(ls >> d.u >> d.v >> d.price >> d.capacity)) {
        fail(lineno, "link needs <u> <v> <price> <capacity>");
      }
      d.line = lineno;
      if (!num_nodes) fail(lineno, "link before nodes");
      links.push_back(d);
    } else if (keyword == "vnf") {
      VnfDecl d{};
      if (!(ls >> d.node >> d.type >> d.price >> d.capacity)) {
        fail(lineno, "vnf needs <node> <type> <price> <capacity>");
      }
      d.line = lineno;
      if (!num_nodes) fail(lineno, "vnf before nodes");
      vnfs.push_back(d);
    } else {
      fail(lineno, "unknown keyword '" + keyword + "'");
    }
  }
  if (!num_regular) fail(lineno, "missing catalog declaration");
  if (!num_nodes) fail(lineno, "missing nodes declaration");

  std::vector<std::string> regular_names;
  for (std::size_t i = 1; i <= *num_regular; ++i) {
    regular_names.push_back("f" + std::to_string(i));
  }
  for (const auto& [t, n] : names) regular_names[t - 1] = n;
  VnfCatalog catalog(std::move(regular_names));

  graph::Graph g(*num_nodes);
  std::vector<double> caps;
  for (const LinkDecl& d : links) {
    if (d.u >= *num_nodes || d.v >= *num_nodes) {
      fail(d.line, "link endpoint out of range");
    }
    try {
      (void)g.add_edge(d.u, d.v, d.price);
    } catch (const ContractViolation& e) {
      fail(d.line, e.what());
    }
    caps.push_back(d.capacity);
  }

  Network network(std::move(g), catalog);
  for (graph::EdgeId e = 0; e < caps.size(); ++e) {
    if (caps[e] < 0) fail(links[e].line, "negative link capacity");
    network.set_link_capacity(e, caps[e]);
  }
  for (const VnfDecl& d : vnfs) {
    if (d.node >= *num_nodes) fail(d.line, "vnf node out of range");
    VnfTypeId type;
    if (d.type == "merger") {
      type = catalog.merger();
    } else {
      try {
        const unsigned long parsed = std::stoul(d.type);
        type = static_cast<VnfTypeId>(parsed);
      } catch (const std::exception&) {
        fail(d.line, "vnf type must be a category id or 'merger'");
      }
      if (!catalog.is_regular(type)) fail(d.line, "vnf type out of range");
    }
    try {
      (void)network.deploy(d.node, type, d.price, d.capacity);
    } catch (const ContractViolation& e) {
      fail(d.line, e.what());
    }
  }
  return network;
}

}  // namespace dagsfc::net
