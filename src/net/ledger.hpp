#pragma once
/// \file ledger.hpp
/// Residual-capacity tracking — the "real-time network graph G_l" of
/// Algorithm 1.
///
/// A CapacityLedger starts from a Network's nominal capacities and is
/// debited as embeddings commit resources: every use of a VNF instance
/// consumes the flow rate R of its processing capability (constraint (2)),
/// and every traversal of a link consumes R of its bandwidth (constraint
/// (3)). Ledgers are value types — candidate exploration copies them; the
/// sequential multi-flow examples keep one long-lived ledger across
/// admissions.

#include <vector>

#include "net/network.hpp"

namespace dagsfc::net {

class CapacityLedger {
 public:
  explicit CapacityLedger(const Network& network);

  [[nodiscard]] const Network& network() const noexcept { return *net_; }

  [[nodiscard]] double link_residual(EdgeId e) const {
    DAGSFC_CHECK(e < link_residual_.size());
    return link_residual_[e];
  }
  [[nodiscard]] double instance_residual(InstanceId id) const {
    DAGSFC_CHECK(id < instance_residual_.size());
    return instance_residual_[id];
  }

  [[nodiscard]] bool link_can_carry(EdgeId e, double rate) const {
    return link_residual(e) >= rate - kEps;
  }
  [[nodiscard]] bool instance_can_process(InstanceId id, double rate) const {
    return instance_residual(id) >= rate - kEps;
  }

  /// True iff \p node hosts an instance of \p type with ≥ \p rate residual.
  [[nodiscard]] bool node_offers(NodeId node, VnfTypeId type,
                                 double rate) const;

  /// Debits. Contract-checked against over-subscription; call the predicate
  /// first when admission can fail.
  void consume_link(EdgeId e, double rate);
  void consume_instance(InstanceId id, double rate);

  /// Credits (used when a tentative reservation is rolled back).
  void release_link(EdgeId e, double rate);
  void release_instance(InstanceId id, double rate);

  /// Sum of capacity already consumed (diagnostics).
  [[nodiscard]] double total_link_consumed() const;
  [[nodiscard]] double total_instance_consumed() const;

 private:
  static constexpr double kEps = 1e-9;

  const Network* net_;
  std::vector<double> link_residual_;
  std::vector<double> instance_residual_;
};

}  // namespace dagsfc::net
