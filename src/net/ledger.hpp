#pragma once
/// \file ledger.hpp
/// Residual-capacity tracking — the "real-time network graph G_l" of
/// Algorithm 1.
///
/// A CapacityLedger starts from a Network's nominal capacities and is
/// debited as embeddings commit resources: every use of a VNF instance
/// consumes the flow rate R of its processing capability (constraint (2)),
/// and every traversal of a link consumes R of its bandwidth (constraint
/// (3)). Ledgers are value types — candidate exploration copies them; the
/// sequential multi-flow examples keep one long-lived ledger across
/// admissions.
///
/// ## MVCC state
///
/// Every debit or credit bumps a monotonic epoch() counter *and* stamps the
/// touched resource with the new epoch value (link_stamp / instance_stamp).
/// The global epoch orders all mutations; the per-resource stamps let a
/// commit validate only the footprint it touches: if every resource a
/// solution uses carries a stamp at or below the epoch its solving snapshot
/// was taken at, the residuals the solver saw for that footprint are still
/// the live residuals — the commit is valid without re-checking capacities
/// (footprint_unchanged_since). That is the serve layer's stamp-validated
/// commit path.
///
/// A ledger can additionally journal its mutations (enable_journal): a
/// fixed ring of (resource, residual-after) records indexed by epoch.
/// Replicas then catch up with sync_from(master) by replaying only the
/// delta instead of copying the whole residual state — and, crucially,
/// the replay feeds the replica's PathCache the footprint-scoped
/// invalidations, so cached routes survive commits that cannot have
/// affected them (see path_cache.hpp for the exactness argument).
///
/// ## Path-cache coupling
///
/// The ledger owns a per-instance graph::PathCache. Link debits and
/// credits forward (edge, residual-before/after, kEps) to the cache, which
/// evicts exactly the entries whose results a usability flip could change;
/// instance mutations never touch the cache (edge usability depends only
/// on link residuals). Copies inherit residuals, stamps and epoch but
/// start with a fresh, empty cache and no journal (caches are never shared
/// — they are not thread-safe).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/path_cache.hpp"
#include "net/network.hpp"

namespace dagsfc::net {

class CapacityLedger {
 public:
  explicit CapacityLedger(const Network& network);

  CapacityLedger(const CapacityLedger& other);
  CapacityLedger& operator=(const CapacityLedger& other);
  CapacityLedger(CapacityLedger&&) noexcept = default;
  CapacityLedger& operator=(CapacityLedger&&) noexcept = default;

  [[nodiscard]] const Network& network() const noexcept { return *net_; }

  [[nodiscard]] double link_residual(EdgeId e) const {
    DAGSFC_CHECK(e < link_residual_.size());
    return link_residual_[e];
  }
  [[nodiscard]] double instance_residual(InstanceId id) const {
    DAGSFC_CHECK(id < instance_residual_.size());
    return instance_residual_[id];
  }

  [[nodiscard]] bool link_can_carry(EdgeId e, double rate) const {
    return link_residual(e) >= rate - kEps;
  }
  [[nodiscard]] bool instance_can_process(InstanceId id, double rate) const {
    return instance_residual(id) >= rate - kEps;
  }

  /// True iff \p node hosts an instance of \p type with ≥ \p rate residual.
  [[nodiscard]] bool node_offers(NodeId node, VnfTypeId type,
                                 double rate) const;

  /// Debits. Contract-checked against over-subscription; call the predicate
  /// first when admission can fail.
  void consume_link(EdgeId e, double rate);
  void consume_instance(InstanceId id, double rate);

  /// Credits (used when a tentative reservation is rolled back).
  void release_link(EdgeId e, double rate);
  void release_instance(InstanceId id, double rate);

  /// Sets one resource's residual to exactly \p residual (bitwise — no
  /// subtraction round-trip), going through the normal mutation epilogue so
  /// the epoch, per-resource stamp, journal, and path-cache invalidation
  /// all observe the change. Residual must lie in [0, nominal capacity].
  /// This is the shard layer's view-composition primitive: a scratch ledger
  /// is overwritten with each owner shard's live residuals (and zeros for
  /// everything outside the allowed regions) before a restricted solve.
  void set_link_residual(EdgeId e, double residual);
  void set_instance_residual(InstanceId id, double residual);

  /// Bulk counterparts over a whole embedding's reuse counts (the α vectors
  /// of core::ResourceUsage, indexed by EdgeId / InstanceId; entries beyond
  /// the vectors' lengths are implicitly zero). Each counted use costs
  /// \p rate; these are the one shared implementation behind
  /// Evaluator::feasible/commit/release, the dynamic sim's departures, and
  /// the serve layer's optimistic commits.
  [[nodiscard]] bool can_apply(std::span<const std::uint32_t> link_uses,
                               std::span<const std::uint32_t> instance_uses,
                               double rate) const;
  /// Debits every counted use. Contract-checked; call can_apply() first
  /// when admission may fail.
  void apply(std::span<const std::uint32_t> link_uses,
             std::span<const std::uint32_t> instance_uses, double rate);
  /// Credits every counted use — the exact inverse of apply().
  void unapply(std::span<const std::uint32_t> link_uses,
               std::span<const std::uint32_t> instance_uses, double rate);

  /// Sum of capacity already consumed (diagnostics).
  [[nodiscard]] double total_link_consumed() const;
  [[nodiscard]] double total_instance_consumed() const;

  /// Monotonic version of the residual state: bumped by every consume_* /
  /// release_*. Two equal epochs of one ledger instance imply identical
  /// residuals everywhere.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // --- MVCC stamps --------------------------------------------------------

  /// Epoch of the last mutation of one resource (0 = never mutated). Stamps
  /// are monotone per resource and never exceed epoch().
  [[nodiscard]] std::uint64_t link_stamp(EdgeId e) const {
    DAGSFC_CHECK(e < link_stamp_.size());
    return link_stamp_[e];
  }
  [[nodiscard]] std::uint64_t instance_stamp(InstanceId id) const {
    DAGSFC_CHECK(id < instance_stamp_.size());
    return instance_stamp_[id];
  }

  /// Footprint-scoped MVCC validation: true iff no resource counted in the
  /// footprint has been mutated after \p since_epoch — i.e. a snapshot
  /// taken at since_epoch saw, for this footprint, exactly the live
  /// residuals, so a solution feasible against the snapshot is feasible
  /// now without re-checking capacities.
  [[nodiscard]] bool footprint_unchanged_since(
      std::span<const std::uint32_t> link_uses,
      std::span<const std::uint32_t> instance_uses,
      std::uint64_t since_epoch) const;

  // --- Mutation journal + replica sync ------------------------------------

  /// Starts journaling this ledger's mutations into a ring of \p capacity
  /// records (one per epoch bump), enabling O(delta) sync_from on replicas
  /// that fall at most \p capacity mutations behind. Journaling is off by
  /// default and never inherited by copies.
  void enable_journal(std::size_t capacity);
  [[nodiscard]] bool journal_enabled() const noexcept {
    return journal_capacity_ > 0;
  }

  /// Catches this ledger (a replica) up to \p master — both must view the
  /// same Network. When the master's journal covers the gap, replays only
  /// the delta: residuals and stamps are overwritten with the master's
  /// bitwise values and the replica's path cache receives the same
  /// footprint-scoped invalidations a direct mutation would have issued,
  /// so unaffected cached routes survive. Otherwise falls back to a full
  /// residual copy and drops the cache. Returns true on the delta path.
  /// Either way the replica ends bit-equal to the master's residual state.
  bool sync_from(const CapacityLedger& master);

  /// The ledger's shortest-path cache, lazily created; nullptr when caching
  /// is disabled for this ledger. The cache is logically state — it never
  /// changes observable results — hence usable through const ledgers.
  [[nodiscard]] graph::PathCache* path_cache() const;

  /// Per-ledger override of the process-wide default (set_cache_default).
  void set_cache_enabled(bool enabled);
  [[nodiscard]] bool cache_enabled() const noexcept { return cache_enabled_; }

  /// Process-wide default for newly constructed ledgers (on out of the
  /// box). Flip before spawning worker threads; reads are unsynchronized.
  static void set_cache_default(bool enabled) noexcept;
  [[nodiscard]] static bool cache_default() noexcept;

 private:
  static constexpr double kEps = 1e-9;

  /// One journaled mutation: the resource touched and its residual after.
  /// The epoch field guards ring-slot reuse (slot = epoch % capacity).
  struct JournalEntry {
    std::uint64_t epoch = 0;
    std::uint32_t id = 0;
    bool is_link = false;
    double after = 0.0;
  };

  /// Shared epilogue of every link mutation: stamp, journal, and forward
  /// the residual change to the cache's footprint-scoped invalidation.
  void note_link_changed(EdgeId e, double before, double after);
  void note_instance_changed(InstanceId id, double after);
  void journal_record(bool is_link, std::uint32_t id, double after);

  const Network* net_;
  std::vector<double> link_residual_;
  std::vector<double> instance_residual_;
  std::vector<std::uint64_t> link_stamp_;
  std::vector<std::uint64_t> instance_stamp_;
  std::uint64_t epoch_ = 0;

  /// Ring of the last journal_capacity_ mutations, indexed epoch % capacity;
  /// journal_start_ is the epoch journaling began at (entries exist for
  /// epochs in (max(journal_start_, epoch_ - capacity), epoch_]).
  std::vector<JournalEntry> journal_;
  std::size_t journal_capacity_ = 0;
  std::uint64_t journal_start_ = 0;

  bool cache_enabled_ = cache_default();
  mutable std::unique_ptr<graph::PathCache> cache_;
};

}  // namespace dagsfc::net
