#pragma once
/// \file ledger.hpp
/// Residual-capacity tracking — the "real-time network graph G_l" of
/// Algorithm 1.
///
/// A CapacityLedger starts from a Network's nominal capacities and is
/// debited as embeddings commit resources: every use of a VNF instance
/// consumes the flow rate R of its processing capability (constraint (2)),
/// and every traversal of a link consumes R of its bandwidth (constraint
/// (3)). Ledgers are value types — candidate exploration copies them; the
/// sequential multi-flow examples keep one long-lived ledger across
/// admissions.
///
/// Every debit or credit bumps a monotonic epoch() counter. The epoch keys
/// the per-ledger graph::PathCache: shortest-path results memoized at one
/// epoch are never served at another, so cached routes invalidate exactly
/// when the usable-edge set may have changed (a commit, a release, a
/// backtracked reservation). Copies inherit the residuals and epoch but
/// start with a fresh, empty cache (caches are never shared — they are not
/// thread-safe).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/path_cache.hpp"
#include "net/network.hpp"

namespace dagsfc::net {

class CapacityLedger {
 public:
  explicit CapacityLedger(const Network& network);

  CapacityLedger(const CapacityLedger& other);
  CapacityLedger& operator=(const CapacityLedger& other);
  CapacityLedger(CapacityLedger&&) noexcept = default;
  CapacityLedger& operator=(CapacityLedger&&) noexcept = default;

  [[nodiscard]] const Network& network() const noexcept { return *net_; }

  [[nodiscard]] double link_residual(EdgeId e) const {
    DAGSFC_CHECK(e < link_residual_.size());
    return link_residual_[e];
  }
  [[nodiscard]] double instance_residual(InstanceId id) const {
    DAGSFC_CHECK(id < instance_residual_.size());
    return instance_residual_[id];
  }

  [[nodiscard]] bool link_can_carry(EdgeId e, double rate) const {
    return link_residual(e) >= rate - kEps;
  }
  [[nodiscard]] bool instance_can_process(InstanceId id, double rate) const {
    return instance_residual(id) >= rate - kEps;
  }

  /// True iff \p node hosts an instance of \p type with ≥ \p rate residual.
  [[nodiscard]] bool node_offers(NodeId node, VnfTypeId type,
                                 double rate) const;

  /// Debits. Contract-checked against over-subscription; call the predicate
  /// first when admission can fail.
  void consume_link(EdgeId e, double rate);
  void consume_instance(InstanceId id, double rate);

  /// Credits (used when a tentative reservation is rolled back).
  void release_link(EdgeId e, double rate);
  void release_instance(InstanceId id, double rate);

  /// Bulk counterparts over a whole embedding's reuse counts (the α vectors
  /// of core::ResourceUsage, indexed by EdgeId / InstanceId; entries beyond
  /// the vectors' lengths are implicitly zero). Each counted use costs
  /// \p rate; these are the one shared implementation behind
  /// Evaluator::feasible/commit/release, the dynamic sim's departures, and
  /// the serve layer's epoch-validated commits.
  [[nodiscard]] bool can_apply(std::span<const std::uint32_t> link_uses,
                               std::span<const std::uint32_t> instance_uses,
                               double rate) const;
  /// Debits every counted use. Contract-checked; call can_apply() first
  /// when admission may fail.
  void apply(std::span<const std::uint32_t> link_uses,
             std::span<const std::uint32_t> instance_uses, double rate);
  /// Credits every counted use — the exact inverse of apply().
  void unapply(std::span<const std::uint32_t> link_uses,
               std::span<const std::uint32_t> instance_uses, double rate);

  /// Sum of capacity already consumed (diagnostics).
  [[nodiscard]] double total_link_consumed() const;
  [[nodiscard]] double total_instance_consumed() const;

  /// Monotonic version of the residual state: bumped by every consume_* /
  /// release_*. Two equal epochs of one ledger instance imply an identical
  /// usable-edge set, which is what makes path-cache entries reusable.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// The ledger's shortest-path cache, lazily created; nullptr when caching
  /// is disabled for this ledger. The cache is logically state — it never
  /// changes observable results — hence usable through const ledgers.
  [[nodiscard]] graph::PathCache* path_cache() const;

  /// Per-ledger override of the process-wide default (set_cache_default).
  void set_cache_enabled(bool enabled);
  [[nodiscard]] bool cache_enabled() const noexcept { return cache_enabled_; }

  /// Process-wide default for newly constructed ledgers (on out of the
  /// box). Flip before spawning worker threads; reads are unsynchronized.
  static void set_cache_default(bool enabled) noexcept;
  [[nodiscard]] static bool cache_default() noexcept;

 private:
  static constexpr double kEps = 1e-9;

  const Network* net_;
  std::vector<double> link_residual_;
  std::vector<double> instance_residual_;
  std::uint64_t epoch_ = 0;
  bool cache_enabled_ = cache_default();
  mutable std::unique_ptr<graph::PathCache> cache_;
};

}  // namespace dagsfc::net
