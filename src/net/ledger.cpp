#include "net/ledger.hpp"

namespace dagsfc::net {

namespace {
bool g_cache_default = true;
}  // namespace

void CapacityLedger::set_cache_default(bool enabled) noexcept {
  g_cache_default = enabled;
}

bool CapacityLedger::cache_default() noexcept { return g_cache_default; }

CapacityLedger::CapacityLedger(const Network& network) : net_(&network) {
  link_residual_.reserve(network.num_links());
  for (EdgeId e = 0; e < network.num_links(); ++e) {
    link_residual_.push_back(network.link_capacity(e));
  }
  instance_residual_.reserve(network.num_instances());
  for (InstanceId id = 0; id < network.num_instances(); ++id) {
    instance_residual_.push_back(network.instance(id).capacity);
  }
}

CapacityLedger::CapacityLedger(const CapacityLedger& other)
    : net_(other.net_),
      link_residual_(other.link_residual_),
      instance_residual_(other.instance_residual_),
      epoch_(other.epoch_),
      cache_enabled_(other.cache_enabled_) {}

CapacityLedger& CapacityLedger::operator=(const CapacityLedger& other) {
  if (this != &other) {
    net_ = other.net_;
    link_residual_ = other.link_residual_;
    instance_residual_ = other.instance_residual_;
    epoch_ = other.epoch_;
    cache_enabled_ = other.cache_enabled_;
    cache_.reset();  // caches are per-instance, never shared
  }
  return *this;
}

graph::PathCache* CapacityLedger::path_cache() const {
  if (!cache_enabled_) return nullptr;
  if (!cache_) cache_ = std::make_unique<graph::PathCache>();
  return cache_.get();
}

void CapacityLedger::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) cache_.reset();
}

bool CapacityLedger::node_offers(NodeId node, VnfTypeId type,
                                 double rate) const {
  const auto id = net_->find_instance(node, type);
  return id.has_value() && instance_can_process(*id, rate);
}

void CapacityLedger::consume_link(EdgeId e, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK_MSG(link_can_carry(e, rate), "link over-subscribed");
  link_residual_[e] -= rate;
  ++epoch_;
}

void CapacityLedger::consume_instance(InstanceId id, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK_MSG(instance_can_process(id, rate), "VNF over-subscribed");
  instance_residual_[id] -= rate;
  ++epoch_;
}

void CapacityLedger::release_link(EdgeId e, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK(e < link_residual_.size());
  link_residual_[e] += rate;
  ++epoch_;
  DAGSFC_CHECK_MSG(
      link_residual_[e] <= net_->link_capacity(e) + kEps,
      "release exceeds nominal link capacity");
}

void CapacityLedger::release_instance(InstanceId id, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK(id < instance_residual_.size());
  instance_residual_[id] += rate;
  ++epoch_;
  DAGSFC_CHECK_MSG(
      instance_residual_[id] <= net_->instance(id).capacity + kEps,
      "release exceeds nominal instance capacity");
}

bool CapacityLedger::can_apply(std::span<const std::uint32_t> link_uses,
                               std::span<const std::uint32_t> instance_uses,
                               double rate) const {
  DAGSFC_CHECK(link_uses.size() <= link_residual_.size());
  DAGSFC_CHECK(instance_uses.size() <= instance_residual_.size());
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] == 0) continue;
    if (!instance_can_process(id,
                              static_cast<double>(instance_uses[id]) * rate)) {
      return false;
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] == 0) continue;
    if (!link_can_carry(e, static_cast<double>(link_uses[e]) * rate)) {
      return false;
    }
  }
  return true;
}

void CapacityLedger::apply(std::span<const std::uint32_t> link_uses,
                           std::span<const std::uint32_t> instance_uses,
                           double rate) {
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] > 0) {
      consume_instance(id, static_cast<double>(instance_uses[id]) * rate);
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] > 0) {
      consume_link(e, static_cast<double>(link_uses[e]) * rate);
    }
  }
}

void CapacityLedger::unapply(std::span<const std::uint32_t> link_uses,
                             std::span<const std::uint32_t> instance_uses,
                             double rate) {
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] > 0) {
      release_instance(id, static_cast<double>(instance_uses[id]) * rate);
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] > 0) {
      release_link(e, static_cast<double>(link_uses[e]) * rate);
    }
  }
}

double CapacityLedger::total_link_consumed() const {
  double total = 0.0;
  for (EdgeId e = 0; e < link_residual_.size(); ++e) {
    total += net_->link_capacity(e) - link_residual_[e];
  }
  return total;
}

double CapacityLedger::total_instance_consumed() const {
  double total = 0.0;
  for (InstanceId id = 0; id < instance_residual_.size(); ++id) {
    total += net_->instance(id).capacity - instance_residual_[id];
  }
  return total;
}

}  // namespace dagsfc::net
