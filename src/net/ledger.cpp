#include "net/ledger.hpp"

namespace dagsfc::net {

namespace {
bool g_cache_default = true;
}  // namespace

void CapacityLedger::set_cache_default(bool enabled) noexcept {
  g_cache_default = enabled;
}

bool CapacityLedger::cache_default() noexcept { return g_cache_default; }

CapacityLedger::CapacityLedger(const Network& network) : net_(&network) {
  link_residual_.reserve(network.num_links());
  for (EdgeId e = 0; e < network.num_links(); ++e) {
    link_residual_.push_back(network.link_capacity(e));
  }
  instance_residual_.reserve(network.num_instances());
  for (InstanceId id = 0; id < network.num_instances(); ++id) {
    instance_residual_.push_back(network.instance(id).capacity);
  }
  link_stamp_.assign(network.num_links(), 0);
  instance_stamp_.assign(network.num_instances(), 0);
}

CapacityLedger::CapacityLedger(const CapacityLedger& other)
    : net_(other.net_),
      link_residual_(other.link_residual_),
      instance_residual_(other.instance_residual_),
      link_stamp_(other.link_stamp_),
      instance_stamp_(other.instance_stamp_),
      epoch_(other.epoch_),
      cache_enabled_(other.cache_enabled_) {}

CapacityLedger& CapacityLedger::operator=(const CapacityLedger& other) {
  if (this != &other) {
    net_ = other.net_;
    link_residual_ = other.link_residual_;
    instance_residual_ = other.instance_residual_;
    link_stamp_ = other.link_stamp_;
    instance_stamp_ = other.instance_stamp_;
    epoch_ = other.epoch_;
    cache_enabled_ = other.cache_enabled_;
    cache_.reset();  // caches are per-instance, never shared
    journal_.clear();  // journals too: copies start un-journaled
    journal_capacity_ = 0;
    journal_start_ = 0;
  }
  return *this;
}

graph::PathCache* CapacityLedger::path_cache() const {
  if (!cache_enabled_) return nullptr;
  if (!cache_) cache_ = std::make_unique<graph::PathCache>();
  return cache_.get();
}

void CapacityLedger::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) cache_.reset();
}

bool CapacityLedger::node_offers(NodeId node, VnfTypeId type,
                                 double rate) const {
  const auto id = net_->find_instance(node, type);
  return id.has_value() && instance_can_process(*id, rate);
}

void CapacityLedger::journal_record(bool is_link, std::uint32_t id,
                                    double after) {
  if (journal_capacity_ == 0) return;
  journal_[epoch_ % journal_capacity_] = JournalEntry{epoch_, id, is_link,
                                                      after};
}

void CapacityLedger::note_link_changed(EdgeId e, double before, double after) {
  link_stamp_[e] = epoch_;
  journal_record(/*is_link=*/true, static_cast<std::uint32_t>(e), after);
  if (cache_) {
    if (after < before) {
      cache_->on_link_debit(e, before, after, kEps);
    } else if (after > before) {
      cache_->on_link_credit(e, before, after, kEps);
    }
  }
}

void CapacityLedger::note_instance_changed(InstanceId id, double after) {
  // Instance capacities never enter the usable-edge predicate, so the path
  // cache is left alone — only the stamp and journal record the mutation.
  instance_stamp_[id] = epoch_;
  journal_record(/*is_link=*/false, static_cast<std::uint32_t>(id), after);
}

void CapacityLedger::consume_link(EdgeId e, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK_MSG(link_can_carry(e, rate), "link over-subscribed");
  const double before = link_residual_[e];
  link_residual_[e] -= rate;
  ++epoch_;
  note_link_changed(e, before, link_residual_[e]);
}

void CapacityLedger::consume_instance(InstanceId id, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK_MSG(instance_can_process(id, rate), "VNF over-subscribed");
  instance_residual_[id] -= rate;
  ++epoch_;
  note_instance_changed(id, instance_residual_[id]);
}

void CapacityLedger::release_link(EdgeId e, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK(e < link_residual_.size());
  const double before = link_residual_[e];
  link_residual_[e] += rate;
  ++epoch_;
  DAGSFC_CHECK_MSG(
      link_residual_[e] <= net_->link_capacity(e) + kEps,
      "release exceeds nominal link capacity");
  note_link_changed(e, before, link_residual_[e]);
}

void CapacityLedger::release_instance(InstanceId id, double rate) {
  DAGSFC_CHECK(rate >= 0.0);
  DAGSFC_CHECK(id < instance_residual_.size());
  instance_residual_[id] += rate;
  ++epoch_;
  DAGSFC_CHECK_MSG(
      instance_residual_[id] <= net_->instance(id).capacity + kEps,
      "release exceeds nominal instance capacity");
  note_instance_changed(id, instance_residual_[id]);
}

void CapacityLedger::set_link_residual(EdgeId e, double residual) {
  DAGSFC_CHECK(e < link_residual_.size());
  DAGSFC_CHECK(residual >= 0.0);
  DAGSFC_CHECK_MSG(residual <= net_->link_capacity(e) + kEps,
                   "residual exceeds nominal link capacity");
  const double before = link_residual_[e];
  if (before == residual) return;  // no mutation, no epoch bump
  link_residual_[e] = residual;
  ++epoch_;
  note_link_changed(e, before, residual);
}

void CapacityLedger::set_instance_residual(InstanceId id, double residual) {
  DAGSFC_CHECK(id < instance_residual_.size());
  DAGSFC_CHECK(residual >= 0.0);
  DAGSFC_CHECK_MSG(residual <= net_->instance(id).capacity + kEps,
                   "residual exceeds nominal instance capacity");
  if (instance_residual_[id] == residual) return;
  instance_residual_[id] = residual;
  ++epoch_;
  note_instance_changed(id, residual);
}

bool CapacityLedger::can_apply(std::span<const std::uint32_t> link_uses,
                               std::span<const std::uint32_t> instance_uses,
                               double rate) const {
  DAGSFC_CHECK(link_uses.size() <= link_residual_.size());
  DAGSFC_CHECK(instance_uses.size() <= instance_residual_.size());
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] == 0) continue;
    if (!instance_can_process(id,
                              static_cast<double>(instance_uses[id]) * rate)) {
      return false;
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] == 0) continue;
    if (!link_can_carry(e, static_cast<double>(link_uses[e]) * rate)) {
      return false;
    }
  }
  return true;
}

void CapacityLedger::apply(std::span<const std::uint32_t> link_uses,
                           std::span<const std::uint32_t> instance_uses,
                           double rate) {
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] > 0) {
      consume_instance(id, static_cast<double>(instance_uses[id]) * rate);
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] > 0) {
      consume_link(e, static_cast<double>(link_uses[e]) * rate);
    }
  }
}

void CapacityLedger::unapply(std::span<const std::uint32_t> link_uses,
                             std::span<const std::uint32_t> instance_uses,
                             double rate) {
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] > 0) {
      release_instance(id, static_cast<double>(instance_uses[id]) * rate);
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] > 0) {
      release_link(e, static_cast<double>(link_uses[e]) * rate);
    }
  }
}

bool CapacityLedger::footprint_unchanged_since(
    std::span<const std::uint32_t> link_uses,
    std::span<const std::uint32_t> instance_uses,
    std::uint64_t since_epoch) const {
  DAGSFC_CHECK(link_uses.size() <= link_stamp_.size());
  DAGSFC_CHECK(instance_uses.size() <= instance_stamp_.size());
  for (InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] != 0 && instance_stamp_[id] > since_epoch) {
      return false;
    }
  }
  for (EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] != 0 && link_stamp_[e] > since_epoch) return false;
  }
  return true;
}

void CapacityLedger::enable_journal(std::size_t capacity) {
  DAGSFC_CHECK(capacity > 0);
  journal_capacity_ = capacity;
  journal_.assign(capacity, JournalEntry{});
  journal_start_ = epoch_;
}

bool CapacityLedger::sync_from(const CapacityLedger& master) {
  DAGSFC_CHECK_MSG(net_ == master.net_,
                   "sync_from requires ledgers over the same Network");
  if (epoch_ == master.epoch_) return true;
  const std::uint64_t target = master.epoch_;
  // The delta path is sound only for a replica whose state is a snapshot of
  // the master's mutation stream at epoch_; anything else (replica ahead,
  // gap not covered by the ring) takes the full copy.
  const bool covered = master.journal_capacity_ > 0 && epoch_ < target &&
                       epoch_ >= master.journal_start_ &&
                       target - epoch_ <= master.journal_capacity_;
  if (covered) {
    bool ok = true;
    for (std::uint64_t ep = epoch_ + 1; ep <= target && ok; ++ep) {
      const JournalEntry& entry =
          master.journal_[ep % master.journal_capacity_];
      if (entry.epoch != ep) {
        ok = false;  // slot reused since we checked coverage
        break;
      }
      epoch_ = ep;
      if (entry.is_link) {
        const double before = link_residual_[entry.id];
        link_residual_[entry.id] = entry.after;
        note_link_changed(entry.id, before, entry.after);
      } else {
        instance_residual_[entry.id] = entry.after;
        note_instance_changed(entry.id, entry.after);
      }
    }
    if (ok) return true;
  }
  // Full resync: residuals/stamps become bitwise copies of the master's,
  // and the cache (whose entries can no longer be trusted — we do not know
  // which edges changed) starts over.
  link_residual_ = master.link_residual_;
  instance_residual_ = master.instance_residual_;
  link_stamp_ = master.link_stamp_;
  instance_stamp_ = master.instance_stamp_;
  epoch_ = master.epoch_;
  if (cache_) cache_->clear();
  return false;
}

double CapacityLedger::total_link_consumed() const {
  double total = 0.0;
  for (EdgeId e = 0; e < link_residual_.size(); ++e) {
    total += net_->link_capacity(e) - link_residual_[e];
  }
  return total;
}

double CapacityLedger::total_instance_consumed() const {
  double total = 0.0;
  for (InstanceId id = 0; id < instance_residual_.size(); ++id) {
    total += net_->instance(id).capacity - instance_residual_[id];
  }
  return total;
}

}  // namespace dagsfc::net
