#pragma once
/// \file vnf.hpp
/// VNF type catalog (paper §3.2, "Model of VNF Deployment").
///
/// The catalog mirrors the paper's numbering exactly: with n regular VNF
/// categories, type 0 is the dummy VNF f(0) assigned to the stretched SFC's
/// source/destination layers, types 1..n are the regular categories
/// f(1)..f(n), and type n+1 is the merger f(n+1) that integrates the outputs
/// of a parallel VNF set.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace dagsfc::net {

using VnfTypeId = std::uint32_t;

class VnfCatalog {
 public:
  /// Catalog with \p num_regular regular categories and default names
  /// "f1".."fn". Requires num_regular >= 1.
  explicit VnfCatalog(std::size_t num_regular);

  /// Catalog with named regular categories (e.g. "firewall", "ids").
  explicit VnfCatalog(std::vector<std::string> regular_names);

  [[nodiscard]] std::size_t num_regular() const noexcept {
    return names_.size() - 2;
  }
  /// Total number of type ids including dummy and merger.
  [[nodiscard]] std::size_t num_types() const noexcept {
    return names_.size();
  }

  [[nodiscard]] static constexpr VnfTypeId dummy() noexcept { return 0; }
  [[nodiscard]] VnfTypeId merger() const noexcept {
    return static_cast<VnfTypeId>(names_.size() - 1);
  }
  /// Id of the i-th regular category, i in [1, num_regular] (paper's f(i)).
  [[nodiscard]] VnfTypeId regular(std::size_t i) const {
    DAGSFC_CHECK(i >= 1 && i <= num_regular());
    return static_cast<VnfTypeId>(i);
  }

  [[nodiscard]] bool valid(VnfTypeId t) const noexcept {
    return t < names_.size();
  }
  [[nodiscard]] bool is_regular(VnfTypeId t) const noexcept {
    return t >= 1 && t + 1 < names_.size();
  }
  [[nodiscard]] bool is_dummy(VnfTypeId t) const noexcept { return t == 0; }
  [[nodiscard]] bool is_merger(VnfTypeId t) const noexcept {
    return t + 1 == names_.size();
  }

  [[nodiscard]] const std::string& name(VnfTypeId t) const {
    DAGSFC_CHECK(valid(t));
    return names_[t];
  }

  /// Ids of all regular categories, in order.
  [[nodiscard]] std::vector<VnfTypeId> regular_ids() const;

 private:
  std::vector<std::string> names_;  // [dummy, f1..fn, merger]
};

}  // namespace dagsfc::net
