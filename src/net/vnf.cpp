#include "net/vnf.hpp"

namespace dagsfc::net {

VnfCatalog::VnfCatalog(std::size_t num_regular) {
  DAGSFC_CHECK_MSG(num_regular >= 1, "catalog needs at least one category");
  names_.reserve(num_regular + 2);
  names_.emplace_back("dummy");
  for (std::size_t i = 1; i <= num_regular; ++i) {
    names_.push_back("f" + std::to_string(i));
  }
  names_.emplace_back("merger");
}

VnfCatalog::VnfCatalog(std::vector<std::string> regular_names) {
  DAGSFC_CHECK_MSG(!regular_names.empty(),
                   "catalog needs at least one category");
  names_.reserve(regular_names.size() + 2);
  names_.emplace_back("dummy");
  for (auto& n : regular_names) names_.push_back(std::move(n));
  names_.emplace_back("merger");
}

std::vector<VnfTypeId> VnfCatalog::regular_ids() const {
  std::vector<VnfTypeId> ids;
  ids.reserve(num_regular());
  for (std::size_t i = 1; i <= num_regular(); ++i) {
    ids.push_back(static_cast<VnfTypeId>(i));
  }
  return ids;
}

}  // namespace dagsfc::net
