#pragma once
/// \file network.hpp
/// The priced cloud network (paper §3.2, "Model of Target Network").
///
/// A Network wraps a graph::Graph whose edge weights are the per-unit-rate
/// link prices c_e, adds per-link bandwidth capacities r_e, and records which
/// VNF instances are deployed on each node: instance f_v(i) with rental price
/// c_{v,f(i)} and processing capacity r_{v,f(i)}. At most one instance of a
/// type exists per node, matching the paper's f_v(i) notation.
///
/// Instances get dense ids so residual-capacity tracking (ledger.hpp) is two
/// flat arrays. Per-type node sets V_i are maintained incrementally because
/// every embedding algorithm iterates them.

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "net/vnf.hpp"

namespace dagsfc::net {

using graph::EdgeId;
using graph::NodeId;

using InstanceId = std::uint32_t;
inline constexpr InstanceId kInvalidInstance = static_cast<InstanceId>(-1);

/// A deployed VNF instance f_v(i).
struct VnfInstance {
  NodeId node = graph::kInvalidNode;
  VnfTypeId type = 0;
  double price = 0.0;     ///< c_{v,f(i)} per unit of traffic rate
  double capacity = 0.0;  ///< r_{v,f(i)} total processable rate
};

class Network {
 public:
  /// Takes ownership of the topology. Edge weights of \p g are interpreted
  /// as link prices. Every link starts with \p default_link_capacity.
  Network(graph::Graph g, VnfCatalog catalog,
          double default_link_capacity = 1e9);

  [[nodiscard]] const graph::Graph& topology() const noexcept { return g_; }
  [[nodiscard]] const VnfCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return g_.num_nodes();
  }
  [[nodiscard]] std::size_t num_links() const noexcept {
    return g_.num_edges();
  }
  [[nodiscard]] std::size_t num_instances() const noexcept {
    return instances_.size();
  }

  // --- links -------------------------------------------------------------

  [[nodiscard]] double link_price(EdgeId e) const {
    return g_.edge(e).weight;
  }
  void set_link_price(EdgeId e, double price) { g_.set_weight(e, price); }
  [[nodiscard]] double link_capacity(EdgeId e) const {
    DAGSFC_CHECK(e < link_capacity_.size());
    return link_capacity_[e];
  }
  void set_link_capacity(EdgeId e, double capacity);

  // --- VNF deployment ----------------------------------------------------

  /// Deploys an instance of \p type on \p node. Requires the type to be
  /// valid and not the dummy (the dummy VNF is never deployed — it only
  /// marks the stretched SFC's endpoints), and no existing instance of the
  /// same type on the node. Returns the new instance id.
  InstanceId deploy(NodeId node, VnfTypeId type, double price,
                    double capacity);

  [[nodiscard]] const VnfInstance& instance(InstanceId id) const {
    DAGSFC_CHECK(id < instances_.size());
    return instances_[id];
  }

  /// Reprices a deployed instance (scenario knobs; metamorphic tests scale
  /// every price by a constant).
  void set_instance_price(InstanceId id, double price) {
    DAGSFC_CHECK(id < instances_.size());
    instances_[id].price = price;
  }

  /// Instance of \p type on \p node, if deployed.
  [[nodiscard]] std::optional<InstanceId> find_instance(NodeId node,
                                                        VnfTypeId type) const;

  [[nodiscard]] bool has_vnf(NodeId node, VnfTypeId type) const {
    return find_instance(node, type).has_value();
  }

  /// All instance ids deployed on \p node (the node's F_v).
  [[nodiscard]] std::span<const InstanceId> instances_on(NodeId node) const;

  /// The node set V_i hosting \p type, in deployment order.
  [[nodiscard]] const std::vector<NodeId>& nodes_with(VnfTypeId type) const;

  /// Mean link price / mean instance price — diagnostics for the pricing
  /// knobs ("average price ratio" in §5.1). Zero when undefined.
  [[nodiscard]] double mean_link_price() const;
  [[nodiscard]] double mean_vnf_price() const;

 private:
  graph::Graph g_;
  VnfCatalog catalog_;
  std::vector<double> link_capacity_;
  std::vector<VnfInstance> instances_;
  std::vector<std::vector<InstanceId>> node_instances_;  // by node
  std::vector<std::vector<NodeId>> type_nodes_;          // V_i by type
};

}  // namespace dagsfc::net
