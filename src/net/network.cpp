#include "net/network.hpp"

namespace dagsfc::net {

Network::Network(graph::Graph g, VnfCatalog catalog,
                 double default_link_capacity)
    : g_(std::move(g)),
      catalog_(std::move(catalog)),
      link_capacity_(g_.num_edges(), default_link_capacity),
      node_instances_(g_.num_nodes()),
      type_nodes_(catalog_.num_types()) {
  DAGSFC_CHECK(default_link_capacity >= 0.0);
}

void Network::set_link_capacity(EdgeId e, double capacity) {
  DAGSFC_CHECK(e < link_capacity_.size());
  DAGSFC_CHECK(capacity >= 0.0);
  link_capacity_[e] = capacity;
}

InstanceId Network::deploy(NodeId node, VnfTypeId type, double price,
                           double capacity) {
  DAGSFC_CHECK(g_.has_node(node));
  DAGSFC_CHECK(catalog_.valid(type));
  DAGSFC_CHECK_MSG(!catalog_.is_dummy(type), "the dummy VNF is not deployable");
  DAGSFC_CHECK(price >= 0.0 && capacity >= 0.0);
  DAGSFC_CHECK_MSG(!find_instance(node, type).has_value(),
                   "node already hosts an instance of this type");
  const auto id = static_cast<InstanceId>(instances_.size());
  instances_.push_back(VnfInstance{node, type, price, capacity});
  node_instances_[node].push_back(id);
  type_nodes_[type].push_back(node);
  return id;
}

std::optional<InstanceId> Network::find_instance(NodeId node,
                                                 VnfTypeId type) const {
  DAGSFC_CHECK(g_.has_node(node));
  DAGSFC_CHECK(catalog_.valid(type));
  for (InstanceId id : node_instances_[node]) {
    if (instances_[id].type == type) return id;
  }
  return std::nullopt;
}

std::span<const InstanceId> Network::instances_on(NodeId node) const {
  DAGSFC_CHECK(g_.has_node(node));
  return node_instances_[node];
}

const std::vector<NodeId>& Network::nodes_with(VnfTypeId type) const {
  DAGSFC_CHECK(catalog_.valid(type));
  return type_nodes_[type];
}

double Network::mean_link_price() const {
  if (g_.num_edges() == 0) return 0.0;
  double total = 0.0;
  for (EdgeId e = 0; e < g_.num_edges(); ++e) total += g_.edge(e).weight;
  return total / static_cast<double>(g_.num_edges());
}

double Network::mean_vnf_price() const {
  if (instances_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& inst : instances_) total += inst.price;
  return total / static_cast<double>(instances_.size());
}

}  // namespace dagsfc::net
