#pragma once
/// \file failover.hpp
/// Link-failure recovery — a survivability extension of the paper's model
/// (availability-aware SFC mapping is its reference [3]).
///
/// A population of flows is embedded and committed onto one network. Then a
/// link fails: every flow whose solution traverses that link is torn down
/// (its resources released, the failed link zeroed out) and re-embedded on
/// the degraded network. Reported: how many flows were affected, how many
/// recovered, and the cost delta of the recovered embeddings — cost-aware
/// embedders both strand fewer flows on hot links and re-embed them more
/// cheaply.

#include "core/embedder.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace dagsfc::sim {

enum class FailureKind {
  kLink,  ///< one link loses all bandwidth
  kNode,  ///< a node fails: all its VNF instances and incident links die
};

struct FailoverConfig {
  ExperimentConfig base;
  std::size_t num_flows = 30;  ///< flows embedded before the failure
  FailureKind kind = FailureKind::kLink;
  /// Fail the most-loaded link/node (worst case) instead of a random one.
  bool fail_most_loaded = true;

  void validate() const;
};

struct FailoverResult {
  std::size_t embedded = 0;      ///< flows committed before the failure
  std::size_t affected = 0;      ///< flows using the failed element
  std::size_t recovered = 0;     ///< affected flows re-embedded successfully
  /// Affected flows whose source/destination *is* the failed node — no
  /// re-embedding can save those (kNode mode only).
  std::size_t endpoint_lost = 0;
  RunningStats original_cost;    ///< affected flows, before the failure
  RunningStats recovery_cost;    ///< the same flows, after re-embedding
  graph::EdgeId failed_link = graph::kInvalidEdge;  ///< kLink mode
  graph::NodeId failed_node = graph::kInvalidNode;  ///< kNode mode

  [[nodiscard]] double recovery_ratio() const {
    return affected ? static_cast<double>(recovered) /
                          static_cast<double>(affected)
                    : 1.0;
  }
};

/// Runs one embed → fail → recover episode. Deterministic in \p seed.
[[nodiscard]] FailoverResult run_failover(const FailoverConfig& cfg,
                                          const core::Embedder& embedder,
                                          std::uint64_t seed);

}  // namespace dagsfc::sim
