#pragma once
/// \file sweep.hpp
/// Parameter-sweep driver shared by every figure bench: runs one
/// run_comparison() per sweep point and renders the paper's series (mean
/// total cost per algorithm vs the swept parameter) plus success rates and
/// timing as an ASCII table and CSV.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "util/table.hpp"

namespace dagsfc::sim {

struct SweepPoint {
  std::string label;  ///< x-axis value as printed (e.g. "500", "20%")
  ExperimentConfig config;
};

struct SweepResult {
  /// label × algorithm grid of the paper's series.
  Table cost_table;
  /// success rate / mean wall-clock / mean expanded sub-solutions /
  /// path-cache hit rate.
  Table detail_table;
  /// Raw per-point statistics (outer: sweep point, inner: algorithm, same
  /// order as the inputs) for machine-readable output (bench JSON).
  std::vector<std::vector<AlgorithmStats>> point_stats;
  /// Sweep point labels, parallel to point_stats.
  std::vector<std::string> labels;
};

/// Runs all points sequentially (each point parallelizes its trials) and
/// reports progress on \p progress (one line per point) when non-null.
[[nodiscard]] SweepResult run_sweep(
    const std::string& x_name, const std::vector<SweepPoint>& points,
    const std::vector<const core::Embedder*>& algorithms,
    const RunOptions& opts = {}, std::ostream* progress = nullptr);

/// Convenience used by the figure benches: builds points by mutating a base
/// config per value.
[[nodiscard]] std::vector<SweepPoint> make_points(
    const ExperimentConfig& base, const std::vector<double>& values,
    const std::function<void(ExperimentConfig&, double)>& apply,
    const std::function<std::string(double)>& label);

}  // namespace dagsfc::sim
