#pragma once
/// \file scenario.hpp
/// Scenario generation: wires the topology generator, the pricing model and
/// the VNF deployment process into a ready-to-embed Network, plus a random
/// source/destination flow — the paper's "simulated network" recipe (§5.1).
///
/// Deployment: every VNF category (the merger included — it is rentable
/// like any VNF, see DESIGN.md) is deployed on each node with probability
/// vnf_deploy_ratio. When the coin flips leave a category entirely
/// undeployed, it is force-deployed on one random node so every generated
/// instance admits *some* embedding — otherwise all algorithms would fail
/// identically and the trial would carry no information.
///
/// Prices: VNF prices are uniform on [µ(1−f), µ(1+f)] with µ =
/// base_vnf_price and f = vnf_price_fluctuation, matching the paper's
/// definition f = (max−min)/2 / mean. Link prices use µ·average_price_ratio
/// and the (small, fixed) link fluctuation.

#include "net/network.hpp"
#include "sfc/dag_sfc.hpp"
#include "sfc/generator.hpp"
#include "sim/config.hpp"
#include "util/rng.hpp"

namespace dagsfc::sim {

struct Scenario {
  net::Network network;
  graph::NodeId source;
  graph::NodeId destination;
};

/// Generates topology, prices, deployments, and a random s≠t pair.
[[nodiscard]] Scenario make_scenario(Rng& rng, const ExperimentConfig& cfg);

/// Generates the trial's DAG-SFC with the paper's fixed-structure rule.
[[nodiscard]] sfc::DagSfc make_sfc(Rng& rng, const net::VnfCatalog& catalog,
                                   const ExperimentConfig& cfg);

}  // namespace dagsfc::sim
