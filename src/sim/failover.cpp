#include "sim/failover.hpp"

#include <algorithm>
#include <memory>

namespace dagsfc::sim {

void FailoverConfig::validate() const {
  base.validate();
  DAGSFC_CHECK(num_flows >= 1);
}

FailoverResult run_failover(const FailoverConfig& cfg,
                            const core::Embedder& embedder,
                            std::uint64_t seed) {
  cfg.validate();
  Rng rng(seed);
  const Scenario scenario = make_scenario(rng, cfg.base);
  net::CapacityLedger ledger(scenario.network);

  struct Committed {
    std::unique_ptr<sfc::DagSfc> dag;
    core::Flow flow;
    core::ResourceUsage usage;
    double cost = 0.0;
  };
  std::vector<Committed> committed;

  FailoverResult result;
  graph::SearchWorkspace ws;  // warm buffers across all solves

  // ---- Phase 1: populate the network ------------------------------------
  for (std::size_t i = 0; i < cfg.num_flows; ++i) {
    auto dag = std::make_unique<sfc::DagSfc>(
        make_sfc(rng, scenario.network.catalog(), cfg.base));
    auto src = static_cast<graph::NodeId>(rng.index(cfg.base.network_size));
    auto dst = static_cast<graph::NodeId>(rng.index(cfg.base.network_size));
    if (dst == src) dst = (dst + 1) % cfg.base.network_size;
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = dag.get();
    problem.flow =
        core::Flow{src, dst, cfg.base.flow_rate, cfg.base.flow_size};
    const core::ModelIndex index(problem);
    const core::SolveResult r = embedder.solve(index, ledger, rng, nullptr,
                                               &ws);
    if (!r.ok()) continue;
    const core::Evaluator evaluator(index);
    core::ResourceUsage usage = evaluator.usage(*r.solution);
    evaluator.commit(usage, ledger);
    committed.push_back(Committed{std::move(dag), problem.flow,
                                  std::move(usage), r.cost});
    ++result.embedded;
  }

  // ---- Phase 2: fail an element -------------------------------------------
  const graph::Graph& topo = scenario.network.topology();
  std::vector<graph::EdgeId> dead_links;
  std::vector<net::InstanceId> dead_instances;
  if (cfg.kind == FailureKind::kLink) {
    graph::EdgeId failed = graph::kInvalidEdge;
    if (cfg.fail_most_loaded) {
      double worst = -1.0;
      for (graph::EdgeId e = 0; e < scenario.network.num_links(); ++e) {
        const double load =
            scenario.network.link_capacity(e) - ledger.link_residual(e);
        if (load > worst) {
          worst = load;
          failed = e;
        }
      }
    } else {
      failed = static_cast<graph::EdgeId>(
          rng.index(scenario.network.num_links()));
    }
    result.failed_link = failed;
    dead_links.push_back(failed);
  } else {
    graph::NodeId failed = graph::kInvalidNode;
    if (cfg.fail_most_loaded) {
      // Most-loaded node by processing consumption.
      std::vector<double> load(scenario.network.num_nodes(), 0.0);
      for (net::InstanceId id = 0; id < scenario.network.num_instances();
           ++id) {
        load[scenario.network.instance(id).node] +=
            scenario.network.instance(id).capacity -
            ledger.instance_residual(id);
      }
      failed = static_cast<graph::NodeId>(
          std::max_element(load.begin(), load.end()) - load.begin());
    } else {
      failed = static_cast<graph::NodeId>(
          rng.index(scenario.network.num_nodes()));
    }
    result.failed_node = failed;
    for (const graph::Incidence& inc : topo.neighbors(failed)) {
      dead_links.push_back(inc.edge);
    }
    for (net::InstanceId id : scenario.network.instances_on(failed)) {
      dead_instances.push_back(id);
    }
  }

  // Tear down every flow using a dead element, then kill those elements.
  auto flow_is_affected = [&](const core::ResourceUsage& usage) {
    for (graph::EdgeId e : dead_links) {
      if (usage.link_uses[e] > 0) return true;
    }
    for (net::InstanceId id : dead_instances) {
      if (usage.instance_uses[id] > 0) return true;
    }
    return false;
  };
  std::vector<std::size_t> affected;
  for (std::size_t i = 0; i < committed.size(); ++i) {
    if (flow_is_affected(committed[i].usage)) affected.push_back(i);
  }
  result.affected = affected.size();
  for (std::size_t i : affected) {
    const Committed& c = committed[i];
    for (net::InstanceId id = 0; id < c.usage.instance_uses.size(); ++id) {
      if (c.usage.instance_uses[id] > 0) {
        ledger.release_instance(
            id, static_cast<double>(c.usage.instance_uses[id]) * c.flow.rate);
      }
    }
    for (graph::EdgeId e = 0; e < c.usage.link_uses.size(); ++e) {
      if (c.usage.link_uses[e] > 0) {
        ledger.release_link(
            e, static_cast<double>(c.usage.link_uses[e]) * c.flow.rate);
      }
    }
    result.original_cost.add(c.cost);
  }
  for (graph::EdgeId e : dead_links) {
    ledger.consume_link(e, ledger.link_residual(e));
  }
  for (net::InstanceId id : dead_instances) {
    ledger.consume_instance(id, ledger.instance_residual(id));
  }

  // ---- Phase 3: recover --------------------------------------------------
  for (std::size_t i : affected) {
    const Committed& c = committed[i];
    if (cfg.kind == FailureKind::kNode &&
        (c.flow.source == result.failed_node ||
         c.flow.destination == result.failed_node)) {
      ++result.endpoint_lost;  // the tenant itself is gone
      continue;
    }
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = c.dag.get();
    problem.flow = c.flow;
    const core::ModelIndex index(problem);
    const core::SolveResult r = embedder.solve(index, ledger, rng, nullptr,
                                               &ws);
    if (!r.ok()) continue;
    const core::Evaluator evaluator(index);
    const core::ResourceUsage usage = evaluator.usage(*r.solution);
    DAGSFC_ASSERT(!flow_is_affected(usage));
    evaluator.commit(usage, ledger);
    ++result.recovered;
    result.recovery_cost.add(r.cost);
  }
  return result;
}

}  // namespace dagsfc::sim
