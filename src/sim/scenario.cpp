#include "sim/scenario.hpp"

#include "graph/generator.hpp"

namespace dagsfc::sim {

Scenario make_scenario(Rng& rng, const ExperimentConfig& cfg) {
  cfg.validate();

  graph::RandomGraphOptions gopts;
  gopts.num_nodes = cfg.network_size;
  gopts.average_degree = cfg.network_connectivity;
  graph::Graph topo = graph::random_connected_graph(rng, gopts);

  // Link prices.
  const double mean_link = cfg.base_vnf_price * cfg.average_price_ratio;
  const double lf = cfg.link_price_fluctuation;
  for (graph::EdgeId e = 0; e < topo.num_edges(); ++e) {
    topo.set_weight(e, rng.uniform_real(mean_link * (1.0 - lf),
                                        mean_link * (1.0 + lf)));
  }

  net::VnfCatalog catalog(cfg.catalog_size);
  net::Network network(std::move(topo), catalog, cfg.link_capacity);

  // Deploy every category (merger included) per the deploy ratio.
  const double f = cfg.vnf_price_fluctuation;
  auto draw_price = [&] {
    return rng.uniform_real(cfg.base_vnf_price * (1.0 - f),
                            cfg.base_vnf_price * (1.0 + f));
  };
  std::vector<net::VnfTypeId> all_types = catalog.regular_ids();
  all_types.push_back(catalog.merger());
  for (net::VnfTypeId t : all_types) {
    for (graph::NodeId v = 0; v < network.num_nodes(); ++v) {
      if (rng.bernoulli(cfg.vnf_deploy_ratio)) {
        (void)network.deploy(v, t, draw_price(), cfg.vnf_capacity);
      }
    }
    if (network.nodes_with(t).empty()) {
      const auto v = static_cast<graph::NodeId>(rng.index(network.num_nodes()));
      (void)network.deploy(v, t, draw_price(), cfg.vnf_capacity);
    }
  }

  Scenario s{std::move(network), 0, 0};
  s.source = static_cast<graph::NodeId>(rng.index(cfg.network_size));
  do {
    s.destination = static_cast<graph::NodeId>(rng.index(cfg.network_size));
  } while (s.destination == s.source);
  return s;
}

sfc::DagSfc make_sfc(Rng& rng, const net::VnfCatalog& catalog,
                     const ExperimentConfig& cfg) {
  sfc::RandomSfcOptions opts;
  opts.size = cfg.sfc_size;
  opts.max_layer_width = cfg.max_layer_width;
  return sfc::random_dag_sfc(rng, catalog, opts);
}

}  // namespace dagsfc::sim
