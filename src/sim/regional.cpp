#include "sim/regional.hpp"

#include <utility>

#include "util/check.hpp"

namespace dagsfc::sim {

void RegionalConfig::validate() const {
  base.validate();
  DAGSFC_CHECK_MSG(regions.regions >= 1, "need at least one region");
  DAGSFC_CHECK_MSG(regions.nodes_per_region >= 2,
                   "regions need at least two nodes");
  DAGSFC_CHECK_MSG(regions.inter_price_multiplier > 0.0,
                   "border price multiplier must be positive");
}

namespace {

/// Shared pricing + deployment epilogue: consumes the labeled topology,
/// prices intra links around mean_link and border links around
/// mean_link·multiplier, then deploys VNFs with make_scenario's recipe
/// (per-type bernoulli, force-deploy when a category lands nowhere).
RegionalScenario price_and_deploy(Rng& rng, graph::RegionalGraph&& regional,
                                  const ExperimentConfig& cfg,
                                  double inter_price_multiplier) {
  graph::Graph topo = std::move(regional.graph);
  const double mean_link = cfg.base_vnf_price * cfg.average_price_ratio;
  const double lf = cfg.link_price_fluctuation;
  for (graph::EdgeId e = 0; e < topo.num_edges(); ++e) {
    const graph::Edge& edge = topo.edge(e);
    const bool border =
        regional.region_of[edge.u] != regional.region_of[edge.v];
    const double mean = border ? mean_link * inter_price_multiplier
                               : mean_link;
    topo.set_weight(e, rng.uniform_real(mean * (1.0 - lf),
                                        mean * (1.0 + lf)));
  }

  net::VnfCatalog catalog(cfg.catalog_size);
  net::Network network(std::move(topo), catalog, cfg.link_capacity);

  const double f = cfg.vnf_price_fluctuation;
  auto draw_price = [&] {
    return rng.uniform_real(cfg.base_vnf_price * (1.0 - f),
                            cfg.base_vnf_price * (1.0 + f));
  };
  std::vector<net::VnfTypeId> all_types = catalog.regular_ids();
  all_types.push_back(catalog.merger());
  for (net::VnfTypeId t : all_types) {
    for (graph::NodeId v = 0; v < network.num_nodes(); ++v) {
      if (rng.bernoulli(cfg.vnf_deploy_ratio)) {
        (void)network.deploy(v, t, draw_price(), cfg.vnf_capacity);
      }
    }
    if (network.nodes_with(t).empty()) {
      const auto v =
          static_cast<graph::NodeId>(rng.index(network.num_nodes()));
      (void)network.deploy(v, t, draw_price(), cfg.vnf_capacity);
    }
  }

  return RegionalScenario{std::move(network), std::move(regional.region_of),
                          regional.num_regions};
}

}  // namespace

RegionalScenario make_regional_scenario(Rng& rng, const RegionalConfig& cfg) {
  cfg.validate();
  graph::RegionalGraph regional = graph::make_regional_waxman(rng, cfg.regions);
  return price_and_deploy(rng, std::move(regional), cfg.base,
                          cfg.regions.inter_price_multiplier);
}

RegionalScenario make_regional_fat_tree_scenario(
    Rng& rng, std::size_t k, const ExperimentConfig& base,
    double inter_price_multiplier) {
  base.validate();
  graph::RegionalGraph regional =
      graph::make_regional_fat_tree(k, inter_price_multiplier);
  return price_and_deploy(rng, std::move(regional), base,
                          inter_price_multiplier);
}

}  // namespace dagsfc::sim
