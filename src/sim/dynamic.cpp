#include "sim/dynamic.hpp"

#include <cmath>
#include <queue>

namespace dagsfc::sim {

void DynamicConfig::validate() const {
  base.validate();
  DAGSFC_CHECK(arrival_rate > 0.0);
  DAGSFC_CHECK(mean_holding_time > 0.0);
  DAGSFC_CHECK(num_arrivals >= 1);
}

namespace {

double exponential(Rng& rng, double mean) {
  // Inverse CDF; uniform_real is in [0,1), so the argument of log stays > 0.
  return -mean * std::log(1.0 - rng.uniform_real(0.0, 1.0));
}

/// A flow in service: departure time plus everything needed to release it.
struct InService {
  double departs;
  core::ResourceUsage usage;
  double rate;

  bool operator>(const InService& other) const {
    return departs > other.departs;
  }
};

}  // namespace

DynamicResult run_dynamic(const DynamicConfig& cfg,
                          const core::Embedder& embedder,
                          std::uint64_t seed) {
  cfg.validate();
  Rng rng(seed);
  const Scenario scenario = make_scenario(rng, cfg.base);
  net::CapacityLedger ledger(scenario.network);

  std::priority_queue<InService, std::vector<InService>, std::greater<>>
      in_service;
  DynamicResult result;
  double now = 0.0;

  auto release_up_to = [&](double t) {
    while (!in_service.empty() && in_service.top().departs <= t) {
      const InService& f = in_service.top();
      ledger.unapply(f.usage.link_uses, f.usage.instance_uses, f.rate);
      in_service.pop();
    }
  };

  graph::SearchWorkspace ws;  // warm buffers across arrivals
  for (std::size_t arrival = 0; arrival < cfg.num_arrivals; ++arrival) {
    now += exponential(rng, 1.0 / cfg.arrival_rate);
    release_up_to(now);
    result.concurrency.add(static_cast<double>(in_service.size()));

    const sfc::DagSfc dag = make_sfc(rng, scenario.network.catalog(),
                                     cfg.base);
    auto src = static_cast<graph::NodeId>(rng.index(cfg.base.network_size));
    auto dst = static_cast<graph::NodeId>(rng.index(cfg.base.network_size));
    if (dst == src) {
      dst = static_cast<graph::NodeId>(
          (dst + 1) % cfg.base.network_size);
    }
    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow =
        core::Flow{src, dst, cfg.base.flow_rate, cfg.base.flow_size};
    const core::ModelIndex index(problem);

    // Draw the holding time before solving so deterministic embedders
    // (MINV/BBE/MBBE) see bit-identical arrival streams — paired
    // comparisons. RANV necessarily perturbs the stream by drawing inside
    // solve().
    const double holding = exponential(rng, cfg.mean_holding_time);

    const core::SolveResult r = embedder.solve(index, ledger, rng, nullptr,
                                               &ws);
    if (!r.ok()) {
      ++result.rejected;
      continue;
    }
    const core::Evaluator evaluator(index);
    core::ResourceUsage usage = evaluator.usage(*r.solution);
    evaluator.commit(usage, ledger);
    in_service.push(
        InService{now + holding, std::move(usage), problem.flow.rate});
    ++result.accepted;
    result.cost.add(r.cost);
    result.cost_hist.add(r.cost);
  }
  result.simulated_time = now;
  return result;
}

}  // namespace dagsfc::sim
