#include "sim/config.hpp"

#include <sstream>

#include "util/check.hpp"

namespace dagsfc::sim {

void ExperimentConfig::validate() const {
  DAGSFC_CHECK(network_size >= 2);
  DAGSFC_CHECK(network_connectivity >= 0.0);
  DAGSFC_CHECK(vnf_deploy_ratio > 0.0 && vnf_deploy_ratio <= 1.0);
  DAGSFC_CHECK(average_price_ratio >= 0.0);
  DAGSFC_CHECK(vnf_price_fluctuation >= 0.0 && vnf_price_fluctuation < 1.0);
  DAGSFC_CHECK(link_price_fluctuation >= 0.0 && link_price_fluctuation < 1.0);
  DAGSFC_CHECK(sfc_size >= 1);
  DAGSFC_CHECK_MSG(catalog_size >= sfc_size,
                   "catalog must hold at least sfc_size categories");
  DAGSFC_CHECK(max_layer_width >= 1);
  DAGSFC_CHECK(base_vnf_price > 0.0);
  DAGSFC_CHECK(vnf_capacity > 0.0 && link_capacity > 0.0);
  DAGSFC_CHECK(flow_rate > 0.0 && flow_size > 0.0);
  DAGSFC_CHECK(trials >= 1);
}

std::string ExperimentConfig::summary() const {
  std::ostringstream os;
  os << "n=" << network_size << " deg=" << network_connectivity
     << " deploy=" << vnf_deploy_ratio * 100 << "%"
     << " price-ratio=" << average_price_ratio * 100 << "%"
     << " fluct=" << vnf_price_fluctuation * 100 << "%"
     << " sfc=" << sfc_size << " trials=" << trials;
  return os.str();
}

}  // namespace dagsfc::sim
