#include "sim/sweep.hpp"

#include <ostream>

#include "util/metrics.hpp"

namespace dagsfc::sim {

SweepResult run_sweep(const std::string& x_name,
                      const std::vector<SweepPoint>& points,
                      const std::vector<const core::Embedder*>& algorithms,
                      const RunOptions& opts, std::ostream* progress) {
  DAGSFC_CHECK(!points.empty());
  DAGSFC_CHECK(!algorithms.empty());

  std::vector<std::string> cost_cols{x_name};
  for (const auto* a : algorithms) cost_cols.push_back(a->name());
  std::vector<std::string> detail_cols{x_name};
  for (const auto* a : algorithms) {
    detail_cols.push_back(a->name() + " ok%");
    detail_cols.push_back(a->name() + " ms");
    detail_cols.push_back(a->name() + " expanded");
    detail_cols.push_back(a->name() + " cache%");
  }

  SweepResult out{Table(cost_cols), Table(detail_cols), {}, {}};
  out.point_stats.reserve(points.size());
  out.labels.reserve(points.size());
  for (const SweepPoint& point : points) {
    auto stats = run_comparison(point.config, algorithms, opts);
    // One registry snapshot per point: the detail table's derived-rate
    // cells render from the same telemetry plane the bench JSON exposes.
    util::MetricRegistry point_registry;
    fill_registry(stats, point_registry);
    const util::RegistrySnapshot snap = point_registry.snapshot();
    out.cost_table.row().cell(point.label);
    out.detail_table.row().cell(point.label);
    for (const AlgorithmStats& s : stats) {
      const util::MetricLabels algo{{"algo", s.name}};
      if (s.successes > 0) {
        out.cost_table.cell(s.cost.mean());
      } else {
        out.cost_table.cell("-");
      }
      out.detail_table.cell(util::format_percent(
          snap.gauge_value("dagsfc_solver_success_ratio", algo)));
      out.detail_table.cell(
          snap.gauge_value("dagsfc_solver_wall_ms_mean", algo), 3);
      out.detail_table.cell(
          snap.gauge_value("dagsfc_solver_expanded_mean", algo), 1);
      out.detail_table.cell(util::format_percent(
          snap.gauge_value("dagsfc_path_cache_hit_ratio", algo)));
    }
    out.point_stats.push_back(std::move(stats));
    out.labels.push_back(point.label);
    if (progress != nullptr) {
      *progress << x_name << "=" << point.label << " done ("
                << point.config.summary() << ")\n";
      progress->flush();
    }
  }
  return out;
}

std::vector<SweepPoint> make_points(
    const ExperimentConfig& base, const std::vector<double>& values,
    const std::function<void(ExperimentConfig&, double)>& apply,
    const std::function<std::string(double)>& label) {
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  for (double v : values) {
    SweepPoint p{label(v), base};
    apply(p.config, v);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace dagsfc::sim
