#pragma once
/// \file config.hpp
/// Experiment configuration — the knobs of the paper's §5.1 with the
/// Table 2 defaults. Every figure bench copies this struct and sweeps one
/// field.

#include <cstdint>
#include <string>

namespace dagsfc::sim {

struct ExperimentConfig {
  // ---- Table 2 ------------------------------------------------------------
  std::size_t network_size = 500;       ///< |V|
  double network_connectivity = 6.0;    ///< average node degree
  double vnf_deploy_ratio = 0.5;        ///< P(type deployed on a node)
  double average_price_ratio = 0.2;     ///< mean link price / mean VNF price
  double vnf_price_fluctuation = 0.05;  ///< (max−min)/2 over mean, per VNF
  std::size_t sfc_size = 5;             ///< VNFs in the SFC (mergers excluded)

  // ---- generator details the paper fixes implicitly ------------------------
  std::size_t max_layer_width = 3;  ///< "every three VNFs share a layer"
  std::size_t catalog_size = 12;    ///< regular categories n (≥ max SFC size 9)
  double base_vnf_price = 100.0;    ///< mean VNF rental price (cost unit)
  /// Link prices fluctuate around mean·average_price_ratio with the same
  /// relative half-spread; the paper only pins the mean, so we keep the
  /// spread small and fixed.
  double link_price_fluctuation = 0.05;

  // ---- capacities (paper: present in the model, non-binding in Fig. 6) -----
  double vnf_capacity = 100.0;   ///< r_{v,f(i)}, per instance
  double link_capacity = 100.0;  ///< r_e, per link

  // ---- flow -----------------------------------------------------------------
  double flow_rate = 1.0;  ///< R
  double flow_size = 1.0;  ///< z

  // ---- harness --------------------------------------------------------------
  std::size_t trials = 100;  ///< runs averaged per data point (paper: 100)
  std::uint64_t seed = 0x5fcdaa11u;

  /// Throws ContractViolation when fields are inconsistent (e.g. SFC larger
  /// than the catalog, non-positive sizes).
  void validate() const;

  /// One-line description for bench headers.
  [[nodiscard]] std::string summary() const;
};

}  // namespace dagsfc::sim
