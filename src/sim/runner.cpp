#include "sim/runner.hpp"

#include "util/timer.hpp"

namespace dagsfc::sim {

std::vector<AlgorithmStats> run_comparison(
    const ExperimentConfig& cfg,
    const std::vector<const core::Embedder*>& algorithms,
    const RunOptions& opts) {
  cfg.validate();
  DAGSFC_CHECK_MSG(!algorithms.empty(), "no algorithms to compare");

  std::vector<AlgorithmStats> totals(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    totals[a].name = algorithms[a]->name();
  }

  // Pre-derive one seed per trial so the trial → stream mapping does not
  // depend on scheduling.
  Rng seeder(cfg.seed);
  std::vector<std::uint64_t> trial_seeds(cfg.trials);
  for (auto& s : trial_seeds) s = seeder.fork_seed();

  struct TrialRow {
    bool ok = false;
    double cost = 0.0;
    double vnf = 0.0;
    double link = 0.0;
    double ms = 0.0;
    double expanded = 0.0;
    graph::PathQueryCounters path_queries;
    core::TraceCounts trace;
  };
  // Each trial writes only its own slot; the reduction below runs in trial
  // order, so the accumulated statistics are bit-identical for any thread
  // count (floating-point addition is not associative).
  std::vector<std::vector<TrialRow>> results(
      cfg.trials, std::vector<TrialRow>(algorithms.size()));

  ThreadPool pool(opts.threads);
  // One search workspace per pool worker (slot 0 serves the caller thread
  // when the pool is size 0 / parallel_for degrades to inline execution),
  // so every trial on a worker reuses warm buffers.
  std::vector<graph::SearchWorkspace> workspaces(pool.size() + 1);
  parallel_for(pool, cfg.trials, [&](std::size_t trial) {
    graph::SearchWorkspace& ws = workspaces[ThreadPool::current_worker_id()];
    Rng rng(trial_seeds[trial]);
    const Scenario scenario = make_scenario(rng, cfg);
    const sfc::DagSfc dag = make_sfc(rng, scenario.network.catalog(), cfg);

    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination,
                              cfg.flow_rate, cfg.flow_size};
    const core::ModelIndex index(problem);

    const core::Evaluator evaluator(index);
    std::vector<TrialRow>& rows = results[trial];
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      core::EmbeddingTrace trace;
      core::TraceSink* sink = opts.collect_traces ? &trace : nullptr;
      WallTimer timer;
      const core::SolveResult r =
          algorithms[a]->solve_fresh(index, rng, sink, &ws);
      rows[a].ms = timer.elapsed_ms();
      if (sink != nullptr) rows[a].trace = trace.counts();
      rows[a].ok = r.ok();
      rows[a].cost = r.cost;
      rows[a].expanded = static_cast<double>(r.expanded_sub_solutions);
      rows[a].path_queries = r.path_queries;
      if (r.ok()) {
        const auto [vnf, link] =
            evaluator.cost_breakdown(evaluator.usage(*r.solution));
        rows[a].vnf = vnf;
        rows[a].link = link;
      }
    }
  });

  for (const auto& rows : results) {
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      totals[a].wall_ms.add(rows[a].ms);
      totals[a].expanded.add(rows[a].expanded);
      totals[a].path_queries += rows[a].path_queries;
      totals[a].trace += rows[a].trace;
      if (rows[a].ok) {
        totals[a].cost.add(rows[a].cost);
        totals[a].vnf_cost.add(rows[a].vnf);
        totals[a].link_cost.add(rows[a].link);
        ++totals[a].successes;
      } else {
        ++totals[a].failures;
      }
    }
  }

  return totals;
}

}  // namespace dagsfc::sim
