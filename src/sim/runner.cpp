#include "sim/runner.hpp"

#include "util/timer.hpp"

namespace dagsfc::sim {

std::vector<AlgorithmStats> run_comparison(
    const ExperimentConfig& cfg,
    const std::vector<const core::Embedder*>& algorithms,
    const RunOptions& opts) {
  cfg.validate();
  DAGSFC_CHECK_MSG(!algorithms.empty(), "no algorithms to compare");

  std::vector<AlgorithmStats> totals(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    totals[a].name = algorithms[a]->name();
  }

  // Pre-derive one seed per trial so the trial → stream mapping does not
  // depend on scheduling.
  Rng seeder(cfg.seed);
  std::vector<std::uint64_t> trial_seeds(cfg.trials);
  for (auto& s : trial_seeds) s = seeder.fork_seed();

  struct TrialRow {
    bool ok = false;
    double cost = 0.0;
    double vnf = 0.0;
    double link = 0.0;
    double ms = 0.0;
    double expanded = 0.0;
    graph::PathQueryCounters path_queries;
    core::TraceCounts trace;
  };
  // Each trial writes only its own slot; the reduction below runs in trial
  // order, so the accumulated statistics are bit-identical for any thread
  // count (floating-point addition is not associative).
  std::vector<std::vector<TrialRow>> results(
      cfg.trials, std::vector<TrialRow>(algorithms.size()));

  ThreadPool pool(opts.threads);
  // One search workspace per pool worker (slot 0 serves the caller thread
  // when the pool is size 0 / parallel_for degrades to inline execution),
  // so every trial on a worker reuses warm buffers.
  std::vector<graph::SearchWorkspace> workspaces(pool.size() + 1);
  parallel_for(pool, cfg.trials, [&](std::size_t trial) {
    graph::SearchWorkspace& ws = workspaces[ThreadPool::current_worker_id()];
    Rng rng(trial_seeds[trial]);
    const Scenario scenario = make_scenario(rng, cfg);
    const sfc::DagSfc dag = make_sfc(rng, scenario.network.catalog(), cfg);

    core::EmbeddingProblem problem;
    problem.network = &scenario.network;
    problem.sfc = &dag;
    problem.flow = core::Flow{scenario.source, scenario.destination,
                              cfg.flow_rate, cfg.flow_size};
    const core::ModelIndex index(problem);

    const core::Evaluator evaluator(index);
    std::vector<TrialRow>& rows = results[trial];
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      core::EmbeddingTrace trace;
      core::TraceSink* sink = opts.collect_traces ? &trace : nullptr;
      WallTimer timer;
      const core::SolveResult r =
          algorithms[a]->solve_fresh(index, rng, sink, &ws);
      rows[a].ms = timer.elapsed_ms();
      if (sink != nullptr) rows[a].trace = trace.counts();
      rows[a].ok = r.ok();
      rows[a].cost = r.cost;
      rows[a].expanded = static_cast<double>(r.expanded_sub_solutions);
      rows[a].path_queries = r.path_queries;
      if (r.ok()) {
        const auto [vnf, link] =
            evaluator.cost_breakdown(evaluator.usage(*r.solution));
        rows[a].vnf = vnf;
        rows[a].link = link;
      }
    }
  });

  for (const auto& rows : results) {
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      totals[a].wall_ms.add(rows[a].ms);
      totals[a].expanded.add(rows[a].expanded);
      totals[a].path_queries += rows[a].path_queries;
      totals[a].trace += rows[a].trace;
      if (rows[a].ok) {
        totals[a].cost.add(rows[a].cost);
        totals[a].vnf_cost.add(rows[a].vnf);
        totals[a].link_cost.add(rows[a].link);
        ++totals[a].successes;
      } else {
        ++totals[a].failures;
      }
    }
  }

  return totals;
}

void fill_registry(const std::vector<AlgorithmStats>& stats,
                   util::MetricRegistry& registry,
                   const std::string& point_label) {
  for (const AlgorithmStats& s : stats) {
    util::MetricLabels labels{{"algo", s.name}};
    if (!point_label.empty()) labels.emplace_back("point", point_label);

    registry.counter("dagsfc_solver_successes_total", labels)
        .inc(s.successes);
    registry.counter("dagsfc_solver_failures_total", labels).inc(s.failures);

    const graph::PathQueryCounters& q = s.path_queries;
    registry.counter("dagsfc_path_dijkstra_calls_total", labels)
        .inc(q.dijkstra_calls);
    registry.counter("dagsfc_path_yen_calls_total", labels).inc(q.yen_calls);
    registry.counter("dagsfc_path_bfs_calls_total", labels).inc(q.bfs_calls);
    registry.counter("dagsfc_path_steiner_calls_total", labels)
        .inc(q.steiner_calls);
    registry.counter("dagsfc_path_cache_hits_total", labels)
        .inc(q.cache_hits);
    registry.counter("dagsfc_path_cache_misses_total", labels)
        .inc(q.cache_misses);
    registry.counter("dagsfc_path_cache_evictions_total", labels)
        .inc(q.evictions);

    // Oracle pruning effectiveness, only when goal-directed searches ran —
    // with no oracle attached the family is absent, not zero.
    if (q.oracle_tested > 0) {
      registry.gauge("dagsfc_oracle_pruned_ratio", labels)
          .set(static_cast<double>(q.oracle_pruned) /
               static_cast<double>(q.oracle_tested));
    }

    registry.gauge("dagsfc_solver_success_ratio", labels)
        .set(s.success_rate());
    registry.gauge("dagsfc_path_cache_hit_ratio", labels)
        .set(s.cache_hit_rate());
    registry.gauge("dagsfc_solver_cost_mean", labels).set(s.cost.mean());
    registry.gauge("dagsfc_solver_vnf_cost_mean", labels)
        .set(s.vnf_cost.mean());
    registry.gauge("dagsfc_solver_link_cost_mean", labels)
        .set(s.link_cost.mean());
    registry.gauge("dagsfc_solver_wall_ms_mean", labels)
        .set(s.wall_ms.mean());
    registry.gauge("dagsfc_solver_expanded_mean", labels)
        .set(s.expanded.mean());

    // Trace counters only when tracing actually ran — all-zero trace
    // families would just be noise in the exposition.
    const core::TraceCounts& t = s.trace;
    if (t.decision_events || t.vnf_terms) {
      registry.counter("dagsfc_trace_decision_events_total", labels)
          .inc(t.decision_events);
      registry.counter("dagsfc_trace_forward_searches_total", labels)
          .inc(t.forward_searches);
      registry.counter("dagsfc_trace_backward_searches_total", labels)
          .inc(t.backward_searches);
      registry.counter("dagsfc_trace_uncapped_retries_total", labels)
          .inc(t.uncapped_retries);
      registry.counter("dagsfc_trace_candidate_children_total", labels)
          .inc(t.candidate_children);
      registry.counter("dagsfc_trace_children_dropped_total", labels)
          .inc(t.children_dropped);
      registry.counter("dagsfc_trace_pool_dropped_total", labels)
          .inc(t.pool_dropped);
      registry.counter("dagsfc_trace_final_candidates_total", labels)
          .inc(t.final_candidates);
      registry.counter("dagsfc_trace_vnf_terms_total", labels)
          .inc(t.vnf_terms);
      registry.counter("dagsfc_trace_link_terms_total", labels)
          .inc(t.link_terms);
      registry.counter("dagsfc_trace_multicast_shared_uses_total", labels)
          .inc(t.multicast_shared_uses);
    }
  }
}

}  // namespace dagsfc::sim
