#pragma once
/// \file dynamic.hpp
/// Dynamic flow admission — the operational regime the paper's single-shot
/// embedding feeds into (an extension beyond the paper's evaluation).
///
/// A fixed network receives a Poisson stream of flow requests; each carries
/// a fresh random DAG-SFC and endpoints, holds its resources for an
/// exponentially distributed time, and departs, returning capacity to the
/// ledger. An arrival is *accepted* when the embedder finds a feasible
/// solution against the current residual state; otherwise it is lost
/// (Erlang loss semantics, no queueing/retries). Acceptance ratio and mean
/// embedding cost under increasing offered load are the figures of merit —
/// a cheaper, better-packing embedder keeps accepting longer.

#include "core/embedder.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace dagsfc::sim {

struct DynamicConfig {
  ExperimentConfig base;            ///< network, SFC and pricing knobs
  double arrival_rate = 1.0;        ///< Poisson arrivals per time unit
  double mean_holding_time = 10.0;  ///< exponential holding mean
  std::size_t num_arrivals = 200;   ///< simulated arrivals

  /// Offered load in Erlangs (arrival_rate × mean_holding_time).
  [[nodiscard]] double offered_load() const {
    return arrival_rate * mean_holding_time;
  }

  void validate() const;
};

struct DynamicResult {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  RunningStats cost;         ///< per accepted flow
  /// Per-accepted-flow cost distribution (log-spaced buckets) for tail
  /// reporting: cost_hist.p50()/p95()/p99().
  Histogram cost_hist;
  RunningStats concurrency;  ///< flows in service, sampled at arrivals
  double simulated_time = 0.0;

  [[nodiscard]] double acceptance_ratio() const {
    const std::size_t n = accepted + rejected;
    return n ? static_cast<double>(accepted) / static_cast<double>(n) : 0.0;
  }
};

/// Runs one dynamic-admission simulation of \p embedder on a freshly
/// generated scenario. Deterministic in \p seed.
[[nodiscard]] DynamicResult run_dynamic(const DynamicConfig& cfg,
                                        const core::Embedder& embedder,
                                        std::uint64_t seed);

}  // namespace dagsfc::sim
