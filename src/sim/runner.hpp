#pragma once
/// \file runner.hpp
/// The Monte-Carlo comparison runner (paper §5.1–§5.2 methodology).
///
/// One data point = `cfg.trials` independent trials. Each trial generates a
/// fresh scenario (network + prices + deployments + s/t pair) and a fresh
/// DAG-SFC of the configured structure, then runs every algorithm on the
/// *same* instance — a paired comparison, like the paper's "100 times with
/// different SFCs … then set the average cost". Trials run in parallel on a
/// thread pool; each derives its own RNG stream from the base seed, so
/// results are bit-identical regardless of thread count.

#include <string>
#include <vector>

#include "core/embedder.hpp"
#include "sim/scenario.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dagsfc::sim {

struct AlgorithmStats {
  std::string name;
  RunningStats cost;         ///< over successful trials
  RunningStats vnf_cost;     ///< rental share of the objective (§5.2.5)
  RunningStats link_cost;    ///< link share of the objective
  RunningStats wall_ms;      ///< per-solve wall clock
  RunningStats expanded;     ///< expanded sub-solutions (search effort)
  std::size_t successes = 0;
  std::size_t failures = 0;
  /// Shortest-path query counters summed over all trials (solver
  /// observability: Dijkstra/Yen computations, path-cache hits/misses).
  graph::PathQueryCounters path_queries;
  /// Structured-trace roll-up summed over all trials (ring searches,
  /// pruning, multicast sharing — see core/trace.hpp). All zeros unless
  /// RunOptions::collect_traces was set.
  core::TraceCounts trace;

  [[nodiscard]] double success_rate() const noexcept {
    const std::size_t n = successes + failures;
    return n ? static_cast<double>(successes) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] double cache_hit_rate() const noexcept {
    return path_queries.hit_rate();
  }
};

struct RunOptions {
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Attach an EmbeddingTrace to every solve and aggregate the per-trial
  /// TraceCounts into AlgorithmStats::trace. Tracing never changes solve
  /// results; the only cost is event recording.
  bool collect_traces = false;
};

/// Runs the comparison for one configuration. Algorithm order in the result
/// matches the input order.
[[nodiscard]] std::vector<AlgorithmStats> run_comparison(
    const ExperimentConfig& cfg,
    const std::vector<const core::Embedder*>& algorithms,
    const RunOptions& opts = {});

/// Loads one comparison's statistics into a MetricRegistry, one label set
/// per algorithm (`algo="<name>"`, plus `point="<point_label>"` when the
/// label is non-empty). Counters carry run totals (solve outcomes,
/// shortest-path work), gauges carry the derived rates and per-trial means;
/// trace counters appear only when traces were collected. Intended for a
/// *fresh* registry per comparison — counters are monotonic, so re-filling
/// one registry with overlapping label sets double-counts.
void fill_registry(const std::vector<AlgorithmStats>& stats,
                   util::MetricRegistry& registry,
                   const std::string& point_label = "");

}  // namespace dagsfc::sim
