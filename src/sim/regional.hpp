#pragma once
/// \file regional.hpp
/// Regional scenario generation — the shard layer's substrate factory.
///
/// Wraps graph::make_regional_waxman / make_regional_fat_tree with the same
/// pricing and VNF deployment recipe as make_scenario (§5.1): VNF prices
/// uniform around base_vnf_price, link prices uniform around
/// base_vnf_price·average_price_ratio — except border links, whose price
/// band is scaled by RegionSpec::inter_price_multiplier. The price gap is
/// what gives the contracted region graph's summaries their signal: an
/// embedding that stays inside one region is visibly cheaper than one that
/// hops regions, so hierarchical stage one has something real to rank.
///
/// The per-node region labels ride along for shard::make_partition's
/// kLabels scheme; the generators' 5k–50k node range is exactly regions ×
/// nodes_per_region.

#include <cstdint>
#include <vector>

#include "graph/generator.hpp"
#include "net/network.hpp"
#include "sim/config.hpp"

namespace dagsfc::sim {

struct RegionalConfig {
  /// Pricing, deployment, capacity, SFC and flow knobs; network_size and
  /// network_connectivity are ignored (the RegionSpec owns the topology).
  ExperimentConfig base;
  graph::RegionSpec regions;

  [[nodiscard]] std::size_t total_nodes() const noexcept {
    return regions.regions * regions.nodes_per_region;
  }
  void validate() const;
};

struct RegionalScenario {
  net::Network network;
  std::vector<std::uint32_t> region_of;  ///< per NodeId — feed kLabels
  std::size_t num_regions = 0;
};

/// Regional Waxman substrate, priced and deployed. Deterministic in \p rng.
[[nodiscard]] RegionalScenario make_regional_scenario(
    Rng& rng, const RegionalConfig& cfg);

/// Region-labeled fat-tree variant (region 0 = cores, region 1+p = pod p),
/// priced and deployed with the same recipe.
[[nodiscard]] RegionalScenario make_regional_fat_tree_scenario(
    Rng& rng, std::size_t k, const ExperimentConfig& base,
    double inter_price_multiplier = 4.0);

}  // namespace dagsfc::sim
