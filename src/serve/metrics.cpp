#include "serve/metrics.hpp"

#include <sstream>
#include <utility>

#include "util/json.hpp"

namespace dagsfc::serve {

ServiceMetrics::ServiceMetrics()
    : registry_(std::make_unique<util::MetricRegistry>()) {
  util::MetricRegistry& r = *registry_;
  submitted_ = r.counter("dagsfc_serve_submitted_total");
  accepted_ = r.counter("dagsfc_serve_accepted_total");
  rejected_infeasible_ = r.counter("dagsfc_serve_rejected_infeasible_total");
  rejected_queue_full_ = r.counter("dagsfc_serve_rejected_queue_full_total");
  shed_deadline_ = r.counter("dagsfc_serve_shed_deadline_total");
  lost_conflict_ = r.counter("dagsfc_serve_lost_conflict_total");
  commit_conflicts_ = r.counter("dagsfc_serve_commit_conflicts_total");
  retries_ = r.counter("dagsfc_serve_retries_total");
  fast_commits_ = r.counter("dagsfc_serve_fast_commits_total");
  stamp_commits_ = r.counter("dagsfc_serve_stamp_commits_total");
  validated_commits_ = r.counter("dagsfc_serve_validated_commits_total");
  releases_ = r.counter("dagsfc_serve_releases_total");
  slow_solves_ = r.counter("dagsfc_serve_slow_solves_total");
  queue_depth_ = r.gauge("dagsfc_serve_queue_depth");
  workers_busy_ = r.gauge("dagsfc_serve_workers_busy");
  latency_ms_ = r.histogram("dagsfc_serve_latency_ms", {}, 1e-3, 1e6);
  solve_ms_ = r.histogram("dagsfc_serve_solve_ms", {}, 1e-3, 1e6);
  cost_ = r.histogram("dagsfc_serve_cost", {}, 1e-1, 1e9);
  group_commit_batch_ = r.histogram("dagsfc_serve_group_commit_batch", {},
                                    1.0, 1e4);
}

void ServiceMetrics::on_submitted() { submitted_.inc(); }

void ServiceMetrics::on_release() { releases_.inc(); }

void ServiceMetrics::on_slow_solve() { slow_solves_.inc(); }

void ServiceMetrics::on_group_commit(std::size_t size) {
  group_commit_batch_.observe(static_cast<double>(size));
}

void ServiceMetrics::set_queue_depth(std::size_t depth) {
  queue_depth_.set(static_cast<double>(depth));
}

void ServiceMetrics::add_workers_busy(double delta) {
  workers_busy_.add(delta);
}

void ServiceMetrics::on_response(const Response& r) {
  switch (r.outcome) {
    case Outcome::Accepted:
      accepted_.inc();
      cost_.observe(r.cost);
      if (!r.epoch_validated) {
        fast_commits_.inc();
      } else if (r.stamp_validated) {
        stamp_commits_.inc();
      } else {
        validated_commits_.inc();
      }
      break;
    case Outcome::RejectedInfeasible:
      rejected_infeasible_.inc();
      break;
    case Outcome::RejectedQueueFull:
      rejected_queue_full_.inc();
      break;
    case Outcome::SheddedDeadline:
      shed_deadline_.inc();
      break;
    case Outcome::LostConflict:
      lost_conflict_.inc();
      break;
  }
  commit_conflicts_.inc(r.conflicts);
  if (r.solves > 1) retries_.inc(r.solves - 1);
  // Exemplars: each latency bucket remembers the request id of its worst
  // observation, linking the histogram to the flight recorder. They live
  // registry-side only, so snapshot() above stays bitwise-comparable.
  latency_ms_.observe_exemplar(r.queue_ms + r.solve_ms, r.id);
  solve_ms_.observe_exemplar(r.solve_ms, r.id);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted_.value();
  s.accepted = accepted_.value();
  s.rejected_infeasible = rejected_infeasible_.value();
  s.rejected_queue_full = rejected_queue_full_.value();
  s.shed_deadline = shed_deadline_.value();
  s.lost_conflict = lost_conflict_.value();
  s.commit_conflicts = commit_conflicts_.value();
  s.retries = retries_.value();
  s.fast_commits = fast_commits_.value();
  s.stamp_commits = stamp_commits_.value();
  s.validated_commits = validated_commits_.value();
  s.releases = releases_.value();
  s.slow_solves = slow_solves_.value();
  s.queue_depth = queue_depth_.value();
  s.workers_busy = workers_busy_.value();
  s.latency_ms = latency_ms_.snapshot();
  s.solve_ms = solve_ms_.snapshot();
  s.cost = cost_.snapshot();
  s.group_commit_batch = group_commit_batch_.snapshot();
  return s;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"accepted\":" << accepted
     << ",\"rejected_infeasible\":" << rejected_infeasible
     << ",\"rejected_queue_full\":" << rejected_queue_full
     << ",\"shed_deadline\":" << shed_deadline
     << ",\"lost_conflict\":" << lost_conflict
     << ",\"acceptance_ratio\":" << util::json_number(acceptance_ratio())
     << ",\"commit_conflicts\":" << commit_conflicts
     << ",\"retries\":" << retries << ",\"fast_commits\":" << fast_commits
     << ",\"stamp_commits\":" << stamp_commits
     << ",\"validated_commits\":" << validated_commits
     << ",\"releases\":" << releases << ",\"slow_solves\":" << slow_solves
     << ",\"conflict_rate\":" << util::json_number(conflict_rate())
     << ",\"queue_depth\":" << util::json_number(queue_depth)
     << ",\"workers_busy\":" << util::json_number(workers_busy)
     << ",\"latency_ms\":{\"p50\":" << util::json_number(latency_ms.p50())
     << ",\"p95\":" << util::json_number(latency_ms.p95())
     << ",\"p99\":" << util::json_number(latency_ms.p99())
     << ",\"mean\":" << util::json_number(latency_ms.mean())
     << ",\"max\":" << util::json_number(latency_ms.max()) << "}"
     << ",\"solve_ms\":{\"p50\":" << util::json_number(solve_ms.p50())
     << ",\"p95\":" << util::json_number(solve_ms.p95())
     << ",\"p99\":" << util::json_number(solve_ms.p99()) << "}"
     << ",\"cost\":{\"count\":" << cost.count()
     << ",\"mean\":" << util::json_number(cost.mean())
     << ",\"p50\":" << util::json_number(cost.p50())
     << ",\"p95\":" << util::json_number(cost.p95())
     << ",\"p99\":" << util::json_number(cost.p99()) << "}"
     << ",\"group_commit_batch\":{\"count\":" << group_commit_batch.count()
     << ",\"mean\":" << util::json_number(group_commit_batch.mean())
     << ",\"max\":" << util::json_number(group_commit_batch.max()) << "}}";
  return os.str();
}

}  // namespace dagsfc::serve
