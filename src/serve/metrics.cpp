#include "serve/metrics.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace dagsfc::serve {

void ServiceMetrics::on_submitted() {
  std::lock_guard lock(mu_);
  ++data_.submitted;
}

void ServiceMetrics::on_release() {
  std::lock_guard lock(mu_);
  ++data_.releases;
}

void ServiceMetrics::on_response(const Response& r) {
  std::lock_guard lock(mu_);
  switch (r.outcome) {
    case Outcome::Accepted:
      ++data_.accepted;
      data_.cost.add(r.cost);
      if (r.epoch_validated) {
        ++data_.validated_commits;
      } else {
        ++data_.fast_commits;
      }
      break;
    case Outcome::RejectedInfeasible:
      ++data_.rejected_infeasible;
      break;
    case Outcome::RejectedQueueFull:
      ++data_.rejected_queue_full;
      break;
    case Outcome::SheddedDeadline:
      ++data_.shed_deadline;
      break;
    case Outcome::LostConflict:
      ++data_.lost_conflict;
      break;
  }
  data_.commit_conflicts += r.conflicts;
  if (r.solves > 1) data_.retries += r.solves - 1;
  data_.latency_ms.add(r.queue_ms + r.solve_ms);
  data_.solve_ms.add(r.solve_ms);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard lock(mu_);
  return data_;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"accepted\":" << accepted
     << ",\"rejected_infeasible\":" << rejected_infeasible
     << ",\"rejected_queue_full\":" << rejected_queue_full
     << ",\"shed_deadline\":" << shed_deadline
     << ",\"lost_conflict\":" << lost_conflict
     << ",\"acceptance_ratio\":" << util::json_number(acceptance_ratio())
     << ",\"commit_conflicts\":" << commit_conflicts
     << ",\"retries\":" << retries << ",\"fast_commits\":" << fast_commits
     << ",\"validated_commits\":" << validated_commits
     << ",\"releases\":" << releases
     << ",\"conflict_rate\":" << util::json_number(conflict_rate())
     << ",\"latency_ms\":{\"p50\":" << util::json_number(latency_ms.p50())
     << ",\"p95\":" << util::json_number(latency_ms.p95())
     << ",\"p99\":" << util::json_number(latency_ms.p99())
     << ",\"mean\":" << util::json_number(latency_ms.mean())
     << ",\"max\":" << util::json_number(latency_ms.max()) << "}"
     << ",\"solve_ms\":{\"p50\":" << util::json_number(solve_ms.p50())
     << ",\"p95\":" << util::json_number(solve_ms.p95())
     << ",\"p99\":" << util::json_number(solve_ms.p99()) << "}"
     << ",\"cost\":{\"count\":" << cost.count()
     << ",\"mean\":" << util::json_number(cost.mean())
     << ",\"p50\":" << util::json_number(cost.p50())
     << ",\"p95\":" << util::json_number(cost.p95())
     << ",\"p99\":" << util::json_number(cost.p99()) << "}}";
  return os.str();
}

}  // namespace dagsfc::serve
