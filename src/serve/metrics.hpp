#pragma once
/// \file metrics.hpp
/// Thread-safe service metrics: outcome counters, the optimistic-commit
/// accounting (fast vs stamp-validated vs residual-validated commits,
/// conflicts, retries, group-commit batch sizes), queue-depth
/// and worker-busy gauges, the slow-solve watchdog counter, and log-bucket
/// latency/cost histograms with p50/p95/p99 queries.
///
/// Since the telemetry-plane migration the instruments live in a
/// per-service util::MetricRegistry (per-instance, so multiple services in
/// one process never collide on names) and the hot path is lock-free:
/// counters stripe across cache lines, histograms update shared atomic
/// cells. MetricsSnapshot is materialized from the registry on demand.
///
/// Everything deterministic about a run — the counters and the histogram
/// bucket counts — depends only on the multiset of recorded responses, not
/// on recording order, which is what lets the closed-loop driver assert
/// bit-identical metrics across worker counts. (Histogram sums are float
/// additions and therefore order-sensitive; the closed-loop driver keeps at
/// most one request in flight, fixing the order.)

#include <cstdint>
#include <memory>
#include <string>

#include "serve/request.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace dagsfc::serve {

/// Immutable copy of the metrics at one instant.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t lost_conflict = 0;

  std::uint64_t commit_conflicts = 0;  ///< commits failing epoch validation
  std::uint64_t retries = 0;           ///< re-solves caused by conflicts
  std::uint64_t fast_commits = 0;      ///< epoch unchanged since snapshot
  std::uint64_t stamp_commits = 0;     ///< epoch moved, footprint stamps clean
  std::uint64_t validated_commits = 0; ///< epoch moved, residuals re-checked
  std::uint64_t releases = 0;          ///< departures applied to the ledger
  std::uint64_t slow_solves = 0;       ///< watchdog-flagged in-flight solves

  double queue_depth = 0.0;   ///< jobs waiting at snapshot time
  double workers_busy = 0.0;  ///< workers mid-request at snapshot time

  Histogram latency_ms{1e-3, 1e6};  ///< submit → terminal outcome
  Histogram solve_ms{1e-3, 1e6};    ///< dequeue → terminal outcome
  Histogram cost{1e-1, 1e9};        ///< accepted flows' objective (1)
  /// Commits applied per group-commit drain (MVCC pipeline only — the
  /// legacy mutex pipeline never records it).
  Histogram group_commit_batch{1.0, 1e4};

  [[nodiscard]] std::uint64_t completed() const noexcept {
    return accepted + rejected_infeasible + rejected_queue_full +
           shed_deadline + lost_conflict;
  }
  [[nodiscard]] double acceptance_ratio() const noexcept {
    const std::uint64_t n = completed();
    return n ? static_cast<double>(accepted) / static_cast<double>(n) : 0.0;
  }
  /// Conflicted commits per completed request.
  [[nodiscard]] double conflict_rate() const noexcept {
    const std::uint64_t n = completed();
    return n ? static_cast<double>(commit_conflicts) / static_cast<double>(n)
             : 0.0;
  }

  /// Single-line JSON object (no trailing newline) with every counter and
  /// the latency/cost percentiles — the payload of the `JSON:` lines the
  /// serve CLI and bench print.
  [[nodiscard]] std::string to_json() const;
};

class ServiceMetrics {
 public:
  ServiceMetrics();

  void on_submitted();
  /// Records a terminal response — the single sink for every outcome,
  /// including queue-full rejects (their latency is the ~0 submit path).
  void on_response(const Response& r);
  void on_release();
  /// Watchdog: one in-flight solve crossed the slow-solve threshold.
  void on_slow_solve();
  /// MVCC group commit: a leader drained and applied a batch of \p size
  /// pending commits in one critical section.
  void on_group_commit(std::size_t size);
  void set_queue_depth(std::size_t depth);
  /// +1 when a worker dequeues, -1 when it finishes.
  void add_workers_busy(double delta);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The backing registry — what the HTTP /metrics endpoint exposes. Owned
  /// by (and per-) service, so instrument names never collide across
  /// service instances in one process.
  [[nodiscard]] util::MetricRegistry& registry() noexcept {
    return *registry_;
  }
  [[nodiscard]] const util::MetricRegistry& registry() const noexcept {
    return *registry_;
  }

 private:
  /// unique_ptr so instrument handles stay valid if the owner moves.
  std::unique_ptr<util::MetricRegistry> registry_;

  util::Counter submitted_;
  util::Counter accepted_;
  util::Counter rejected_infeasible_;
  util::Counter rejected_queue_full_;
  util::Counter shed_deadline_;
  util::Counter lost_conflict_;
  util::Counter commit_conflicts_;
  util::Counter retries_;
  util::Counter fast_commits_;
  util::Counter stamp_commits_;
  util::Counter validated_commits_;
  util::Counter releases_;
  util::Counter slow_solves_;
  util::Gauge queue_depth_;
  util::Gauge workers_busy_;
  util::HistogramMetric latency_ms_;
  util::HistogramMetric solve_ms_;
  util::HistogramMetric cost_;
  util::HistogramMetric group_commit_batch_;
};

}  // namespace dagsfc::serve
