#pragma once
/// \file metrics.hpp
/// Thread-safe service metrics: outcome counters, the optimistic-commit
/// accounting (fast vs validated commits, conflicts, retries), and
/// log-bucket latency/cost histograms with p50/p95/p99 queries.
///
/// Everything deterministic about a run — the counters and the histogram
/// bucket counts — depends only on the multiset of recorded responses, not
/// on recording order, which is what lets the closed-loop driver assert
/// bit-identical metrics across worker counts. (Histogram sums are float
/// additions and therefore order-sensitive; the closed-loop driver keeps at
/// most one request in flight, fixing the order.)

#include <cstdint>
#include <mutex>
#include <string>

#include "serve/request.hpp"
#include "util/stats.hpp"

namespace dagsfc::serve {

/// Immutable copy of the metrics at one instant.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t lost_conflict = 0;

  std::uint64_t commit_conflicts = 0;  ///< commits failing epoch validation
  std::uint64_t retries = 0;           ///< re-solves caused by conflicts
  std::uint64_t fast_commits = 0;      ///< epoch unchanged since snapshot
  std::uint64_t validated_commits = 0; ///< epoch moved, residuals re-checked
  std::uint64_t releases = 0;          ///< departures applied to the ledger

  Histogram latency_ms{1e-3, 1e6};  ///< submit → terminal outcome
  Histogram solve_ms{1e-3, 1e6};    ///< dequeue → terminal outcome
  Histogram cost{1e-1, 1e9};        ///< accepted flows' objective (1)

  [[nodiscard]] std::uint64_t completed() const noexcept {
    return accepted + rejected_infeasible + rejected_queue_full +
           shed_deadline + lost_conflict;
  }
  [[nodiscard]] double acceptance_ratio() const noexcept {
    const std::uint64_t n = completed();
    return n ? static_cast<double>(accepted) / static_cast<double>(n) : 0.0;
  }
  /// Conflicted commits per completed request.
  [[nodiscard]] double conflict_rate() const noexcept {
    const std::uint64_t n = completed();
    return n ? static_cast<double>(commit_conflicts) / static_cast<double>(n)
             : 0.0;
  }

  /// Single-line JSON object (no trailing newline) with every counter and
  /// the latency/cost percentiles — the payload of the `JSON:` lines the
  /// serve CLI and bench print.
  [[nodiscard]] std::string to_json() const;
};

class ServiceMetrics {
 public:
  void on_submitted();
  /// Records a terminal response — the single sink for every outcome,
  /// including queue-full rejects (their latency is the ~0 submit path).
  void on_response(const Response& r);
  void on_release();

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  MetricsSnapshot data_;
};

}  // namespace dagsfc::serve
