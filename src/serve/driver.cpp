#include "serve/driver.hpp"

#include <cmath>
#include <deque>
#include <future>
#include <queue>
#include <thread>
#include <utility>

namespace dagsfc::serve {

namespace {

double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform_real(0.0, 1.0));
}

/// Virtual departure: ordered by time, ties broken by request id so the
/// release order is total and reproducible.
struct Departure {
  double at = 0.0;
  RequestId id = 0;

  bool operator>(const Departure& other) const {
    return at != other.at ? at > other.at : id > other.id;
  }
};

bool residuals_nominal(const net::CapacityLedger& ledger,
                       const net::Network& net) {
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    if (std::abs(ledger.link_residual(e) - net.link_capacity(e)) > 1e-6) {
      return false;
    }
  }
  for (net::InstanceId i = 0; i < net.num_instances(); ++i) {
    if (std::abs(ledger.instance_residual(i) - net.instance(i).capacity) >
        1e-6) {
      return false;
    }
  }
  return true;
}

}  // namespace

Workload make_workload(const sim::DynamicConfig& cfg, std::uint64_t seed) {
  cfg.validate();
  Rng rng(seed);
  Workload w{sim::make_scenario(rng, cfg.base), {}};
  w.arrivals.reserve(cfg.num_arrivals);
  double now = 0.0;
  for (std::size_t i = 0; i < cfg.num_arrivals; ++i) {
    now += exponential(rng, 1.0 / cfg.arrival_rate);
    TimedRequest t;
    t.at = now;
    sfc::DagSfc dag =
        sim::make_sfc(rng, w.scenario.network.catalog(), cfg.base);
    auto src = static_cast<graph::NodeId>(rng.index(cfg.base.network_size));
    auto dst = static_cast<graph::NodeId>(rng.index(cfg.base.network_size));
    if (dst == src) {
      dst = static_cast<graph::NodeId>((dst + 1) % cfg.base.network_size);
    }
    t.holding = exponential(rng, cfg.mean_holding_time);
    t.request.id = static_cast<RequestId>(i + 1);
    t.request.sfc = std::move(dag);
    t.request.flow =
        core::Flow{src, dst, cfg.base.flow_rate, cfg.base.flow_size};
    w.arrivals.push_back(std::move(t));
  }
  return w;
}

DriverResult run_closed_loop(const Workload& workload,
                             const core::Embedder& embedder,
                             std::size_t workers,
                             const AdmissionPolicy& admission,
                             std::uint64_t seed, const ServiceTuning& tuning) {
  EmbeddingService::Options opts;
  opts.workers = workers;
  opts.admission = admission;
  opts.seed = seed;
  opts.pipeline = tuning.pipeline;
  opts.slow_solve_threshold = tuning.slow_solve_threshold;
  opts.watchdog_period = tuning.watchdog_period;
  opts.distance_oracle = tuning.distance_oracle;
  opts.tracing = tuning.tracing;
  EmbeddingService service(workload.scenario.network, embedder, opts);
  if (tuning.on_start) tuning.on_start(service);

  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  DriverResult result;

  for (const TimedRequest& t : workload.arrivals) {
    while (!departures.empty() && departures.top().at <= t.at) {
      service.release(departures.top().id);
      departures.pop();
    }
    // Closed loop: wait for this request before admitting the next, so the
    // ledger-state sequence is independent of the worker count.
    const Response resp = service.submit(t.request).get();
    if (resp.accepted()) {
      departures.push(Departure{t.at + t.holding, t.request.id});
    }
    result.simulated_time = t.at;
  }

  while (!departures.empty()) {
    service.release(departures.top().id);
    departures.pop();
  }

  const net::CapacityLedger drained = service.ledger_snapshot();
  result.final_epoch = drained.epoch();
  result.conserved =
      residuals_nominal(drained, workload.scenario.network);
  result.metrics = service.metrics();
  if (tuning.on_finish) tuning.on_finish(service);
  return result;
}

OpenLoopResult run_open_loop(const Workload& workload,
                             const core::Embedder& embedder,
                             const OpenLoopConfig& cfg) {
  DAGSFC_CHECK(cfg.producers >= 1);
  DAGSFC_CHECK(cfg.window >= 1);
  EmbeddingService::Options opts;
  opts.workers = cfg.workers;
  opts.admission = cfg.admission;
  opts.seed = cfg.seed;
  opts.pipeline = cfg.tuning.pipeline;
  opts.slow_solve_threshold = cfg.tuning.slow_solve_threshold;
  opts.watchdog_period = cfg.tuning.watchdog_period;
  opts.distance_oracle = cfg.tuning.distance_oracle;
  opts.tracing = cfg.tuning.tracing;
  EmbeddingService service(workload.scenario.network, embedder, opts);
  if (cfg.tuning.on_start) cfg.tuning.on_start(service);

  const std::size_t per_producer_load =
      std::max<std::size_t>(1, cfg.target_load / cfg.producers);

  const auto t0 = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    producers.emplace_back([&, p] {
      // All state is thread-local: each producer submits its stride of the
      // schedule, settles its own futures, and releases its own flows.
      std::deque<std::pair<RequestId, std::future<Response>>> pending;
      std::deque<RequestId> in_service;
      auto settle_one = [&] {
        auto [id, fut] = std::move(pending.front());
        pending.pop_front();
        const Response r = fut.get();
        if (r.accepted()) in_service.push_back(id);
        while (in_service.size() > per_producer_load) {
          service.release(in_service.front());
          in_service.pop_front();
        }
      };
      for (std::size_t i = p; i < workload.arrivals.size();
           i += cfg.producers) {
        Request req = workload.arrivals[i].request;
        if (cfg.deadline.count() > 0) {
          req.deadline = Clock::now() + cfg.deadline;
        }
        const RequestId id = req.id;
        pending.emplace_back(id, service.submit(std::move(req)));
        if (pending.size() > cfg.window) settle_one();
      }
      while (!pending.empty()) settle_one();
      for (RequestId id : in_service) service.release(id);
    });
  }
  for (std::thread& t : producers) t.join();
  service.drain();

  OpenLoopResult result;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.metrics = service.metrics();
  result.conserved =
      residuals_nominal(service.ledger_snapshot(), workload.scenario.network);
  if (cfg.tuning.on_finish) cfg.tuning.on_finish(service);
  return result;
}

}  // namespace dagsfc::serve
