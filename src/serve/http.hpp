#pragma once
/// \file http.hpp
/// Minimal blocking HTTP/1.0 exposition endpoint for a MetricRegistry.
///
/// Deliberately tiny: plain POSIX sockets, one accept loop on a background
/// thread, one request per connection (`Connection: close`), four routes —
///
///   GET /metrics            → Prometheus text exposition (version 0.0.4)
///   GET /metrics.json       → the registry's JSON document
///   GET /healthz            → 200 + {"status":"ok","uptime_seconds":...}
///   GET /debug/traces.json  → the flight recorder's trace dump (404 when
///                             no recorder is attached)
///
/// Anything else is a 404; non-GET methods are a 405; a request line that
/// overflows the read buffer is a 400. The server binds 127.0.0.1 only —
/// this is an operator scrape port, not a public API — and `port 0` picks
/// an ephemeral port (read it back with port()), which is what the tests
/// use. Scrapes snapshot the registry per request, so a scrape never
/// blocks the solver hot path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/metrics.hpp"

namespace dagsfc::serve {

class FlightRecorder;

class MetricsHttpServer {
 public:
  struct Options {
    /// Enables GET /debug/traces.json. The recorder must outlive the
    /// server (it normally belongs to the service the registry does).
    const FlightRecorder* flight = nullptr;
    /// Invoked before every /metrics and /metrics.json scrape — the hook
    /// for freshness work like util::ProcessMetrics::update().
    std::function<void()> before_scrape;
  };

  /// Binds and starts serving immediately; throws util::ContractViolation
  /// if the socket cannot be bound. The registry must outlive the server.
  MetricsHttpServer(const util::MetricRegistry& registry, std::uint16_t port);
  MetricsHttpServer(const util::MetricRegistry& registry, std::uint16_t port,
                    Options options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound port — the actual one when constructed with port 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins the serving thread. Idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  const util::MetricRegistry* registry_;
  Options opts_;
  std::chrono::steady_clock::time_point started_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace dagsfc::serve
