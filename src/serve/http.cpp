#include "serve/http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "serve/trace.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace dagsfc::serve {

namespace {

/// Writes the whole buffer, retrying on short writes and EINTR. Returns
/// false on a hard error (peer went away — nothing useful to do).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string make_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(const util::MetricRegistry& registry,
                                     std::uint16_t port)
    : MetricsHttpServer(registry, port, Options{}) {}

MetricsHttpServer::MetricsHttpServer(const util::MetricRegistry& registry,
                                     std::uint16_t port, Options options)
    : registry_(&registry),
      opts_(std::move(options)),
      started_(std::chrono::steady_clock::now()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DAGSFC_CHECK_MSG(listen_fd_ >= 0, "metrics endpoint: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // operator-only: loopback
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    DAGSFC_CHECK_MSG(false, "metrics endpoint: cannot listen on 127.0.0.1:" +
                                std::to_string(port) + " (" +
                                std::strerror(err) + ")");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  thread_ = std::thread([this] { serve_loop(); });
  DAGSFC_INFO("metrics endpoint listening on 127.0.0.1:" << port_);
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (stop_.exchange(true)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve_loop() {
  // Poll with a short timeout so stop() is observed promptly; the accept
  // itself never blocks indefinitely.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void MetricsHttpServer::handle_connection(int client_fd) {
  // One small request per connection; 4 KiB is plenty for "GET /metrics".
  char buf[4096];
  const ssize_t n = ::read(client_fd, buf, sizeof(buf) - 1);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string request(buf);

  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos &&
      static_cast<std::size_t>(n) == sizeof(buf) - 1) {
    // The request line alone overflowed the buffer — reject rather than
    // parse a truncated path.
    write_all(client_fd, make_response(400, "Bad Request", "text/plain",
                                       "request line too long\n"));
    return;
  }
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  std::istringstream is(line);
  std::string method, path;
  is >> method >> path;

  std::string resp;
  if (method != "GET") {
    resp = make_response(405, "Method Not Allowed", "text/plain",
                         "method not allowed\n");
  } else if (path == "/metrics") {
    if (opts_.before_scrape) opts_.before_scrape();
    resp = make_response(200, "OK", "text/plain; version=0.0.4",
                         registry_->expose_prometheus());
  } else if (path == "/metrics.json") {
    if (opts_.before_scrape) opts_.before_scrape();
    resp = make_response(200, "OK", "application/json",
                         registry_->expose_json());
  } else if (path == "/healthz") {
    const double uptime = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started_)
                              .count();
    resp = make_response(200, "OK", "application/json",
                         "{\"status\":\"ok\",\"uptime_seconds\":" +
                             util::json_number(uptime) + "}");
  } else if (path == "/debug/traces.json" && opts_.flight != nullptr) {
    resp = make_response(200, "OK", "application/json",
                         opts_.flight->to_json());
  } else {
    resp = make_response(404, "Not Found", "text/plain", "not found\n");
  }
  write_all(client_fd, resp);
}

}  // namespace dagsfc::serve
