#pragma once
/// \file driver.hpp
/// Deterministic drivers for the embedding service.
///
/// Workload generation is *open-loop*: a seeded schedule of arrivals
/// (Poisson inter-arrival times, a fresh random DAG-SFC and endpoint pair
/// per arrival, exponential holding times) is materialized up front with
/// the same generator plumbing as sim::run_dynamic, so a workload is a pure
/// function of its config.
///
/// Replay is *closed-loop*: run_closed_loop() submits one arrival, waits
/// for its response, applies the virtual departures that fall before the
/// next arrival, and only then advances. At most one request is ever in
/// flight, so the sequence of ledger states — and therefore every counter
/// and histogram bucket in the metrics — is a pure function of the
/// workload, bit-identical across worker counts. That property is what the
/// determinism tests pin; the throughput bench replays the same workloads
/// open-loop (many in flight) to exercise the optimistic-commit machinery
/// instead.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/embedder.hpp"
#include "serve/service.hpp"
#include "sim/dynamic.hpp"
#include "sim/scenario.hpp"

namespace dagsfc::serve {

/// One scheduled arrival: virtual arrival instant, holding time, and the
/// fully materialized request.
struct TimedRequest {
  double at = 0.0;
  double holding = 0.0;
  Request request;
};

/// A reproducible serving workload: the scenario (network) plus the
/// arrival schedule. The network must outlive any service solving into it.
struct Workload {
  sim::Scenario scenario;
  std::vector<TimedRequest> arrivals;
};

/// Materializes the schedule for \p cfg (cfg.num_arrivals arrivals into a
/// cfg.base scenario). Deterministic in \p seed; uses the same scenario /
/// SFC generators as sim::run_dynamic.
[[nodiscard]] Workload make_workload(const sim::DynamicConfig& cfg,
                                     std::uint64_t seed);

/// Observability knobs forwarded to the EmbeddingService the drivers build
/// internally, plus a hook to reach the live service (e.g. to attach a
/// /metrics HTTP endpoint to its registry for the duration of the run).
struct ServiceTuning {
  std::chrono::nanoseconds slow_solve_threshold{0};  ///< 0 = watchdog off
  std::chrono::nanoseconds watchdog_period{0};       ///< 0 = threshold/4
  /// Commit machinery of the service under test; kMutex is the legacy
  /// baseline the bench A/Bs against.
  CommitPipeline pipeline = CommitPipeline::kMvcc;
  /// Forwarded to EmbeddingService::Options::distance_oracle: an ALT oracle
  /// over the workload's network topology, attached to every worker's
  /// search workspace. Caller-owned; must outlive the run. Null = off.
  const graph::DistanceOracle* distance_oracle = nullptr;
  /// Forwarded to EmbeddingService::Options::tracing — request-lifecycle
  /// spans + tail-sampled flight recorder. Reach the recorders through the
  /// service in on_start/on_finish.
  TracingOptions tracing;
  /// Called once, after the service starts and before any submit.
  std::function<void(EmbeddingService&)> on_start;
  /// Called once, after the drain and final metrics capture but before the
  /// service (and its registry) is destroyed — detach anything on_start
  /// attached here, or it dangles.
  std::function<void(EmbeddingService&)> on_finish;
};

struct DriverResult {
  MetricsSnapshot metrics;
  double simulated_time = 0.0;   ///< last arrival's virtual instant
  std::uint64_t final_epoch = 0; ///< ledger epoch after the full drain
  /// Residuals returned to nominal after every accepted flow departed —
  /// the conservation invariant, checked on every run.
  bool conserved = false;
};

/// Replays \p workload closed-loop through a fresh EmbeddingService with
/// \p workers solver threads, releasing departures in virtual time, then
/// drains the remaining in-service flows. Deterministic in the workload
/// and seed for any worker count.
[[nodiscard]] DriverResult run_closed_loop(
    const Workload& workload, const core::Embedder& embedder,
    std::size_t workers, const AdmissionPolicy& admission = {},
    std::uint64_t seed = 0x5eedbeefULL, const ServiceTuning& tuning = {});

/// Open-loop replay: contention mode for the bench and the CLI.
struct OpenLoopConfig {
  std::size_t workers = 4;
  /// Producer threads; each submits its stride of the schedule with up to
  /// `window` responses outstanding before it settles the oldest, so the
  /// service sees many concurrent requests (windowed open loop).
  std::size_t producers = 2;
  std::size_t window = 8;
  /// Target flows concurrently in service; each producer releases its own
  /// oldest accepted flows beyond its share, racing departures against the
  /// other producers' commits.
  std::size_t target_load = 16;
  AdmissionPolicy admission;
  std::uint64_t seed = 0x5eedbeefULL;
  /// Per-request deadline measured from submit; zero disables.
  std::chrono::nanoseconds deadline{0};
  ServiceTuning tuning;
};

struct OpenLoopResult {
  MetricsSnapshot metrics;
  double wall_seconds = 0.0;
  bool conserved = false;  ///< residuals nominal after the full drain

  [[nodiscard]] double throughput_rps() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(metrics.completed()) / wall_seconds
               : 0.0;
  }
};

/// Replays \p workload open-loop (cfg.producers submitting threads, many
/// requests in flight) through a fresh EmbeddingService. This is the mode
/// that actually exercises optimistic commits: snapshots go stale while
/// other workers commit, so the validated-commit and conflict counters are
/// live. Releases every flow and drains before returning.
[[nodiscard]] OpenLoopResult run_open_loop(const Workload& workload,
                                           const core::Embedder& embedder,
                                           const OpenLoopConfig& cfg);

}  // namespace dagsfc::serve
