#pragma once
/// \file request.hpp
/// The unit of work of the online embedding service: one flow request
/// carrying its own DAG-SFC, endpoints, and an optional wall-clock deadline,
/// and the structured response the service delivers for it.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "core/model.hpp"
#include "sfc/dag_sfc.hpp"

namespace dagsfc::serve {

using RequestId = std::uint64_t;
using Clock = std::chrono::steady_clock;

/// One embedding request. Unlike the offline harness, requests own their
/// SFC — the submitting thread hands the whole problem over and the service
/// may outlive the submitter's stack frame.
struct Request {
  RequestId id = 0;
  sfc::DagSfc sfc;
  core::Flow flow;  ///< endpoints into the service's network, rate R, size z
  /// Latest wall-clock instant at which starting to solve is still useful;
  /// requests found expired at dequeue are shed without solving.
  std::optional<Clock::time_point> deadline;
};

/// Terminal classification of a request.
enum class Outcome : std::uint8_t {
  Accepted,          ///< committed to the ledger; release(id) undoes it
  RejectedInfeasible,  ///< solver found no feasible embedding
  RejectedQueueFull,   ///< admission: bounded queue was full at submit
  SheddedDeadline,     ///< admission: deadline expired before solving
  LostConflict,        ///< feasible solves kept losing commit validation
};

[[nodiscard]] constexpr const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Accepted: return "accepted";
    case Outcome::RejectedInfeasible: return "rejected_infeasible";
    case Outcome::RejectedQueueFull: return "rejected_queue_full";
    case Outcome::SheddedDeadline: return "shed_deadline";
    case Outcome::LostConflict: return "lost_conflict";
  }
  return "unknown";
}

struct Response {
  RequestId id = 0;
  Outcome outcome = Outcome::RejectedInfeasible;
  double cost = 0.0;           ///< objective (1); meaningful iff Accepted
  std::uint32_t solves = 0;    ///< solver invocations (1 + retries)
  std::uint32_t conflicts = 0; ///< commits rejected by epoch validation
  /// Epoch the winning solve snapshotted at and the ledger epoch right
  /// after its commit (only meaningful when Accepted).
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t commit_epoch = 0;
  /// True when the ledger epoch had moved past snapshot_epoch at commit
  /// time, so the commit had to be validated; false for fast-path commits
  /// (epoch unchanged).
  bool epoch_validated = false;
  /// True when a moved epoch was reconciled by MVCC stamp validation alone
  /// (no resource in the solution's footprint changed since the snapshot,
  /// so the residuals the solver saw are still live — no capacity
  /// re-check). False for fast commits and for commits that needed the
  /// full residual re-check. Implies epoch_validated.
  bool stamp_validated = false;
  double queue_ms = 0.0;  ///< submit → dequeue
  double solve_ms = 0.0;  ///< dequeue → terminal outcome
  /// True when the slow-solve watchdog warned on this request while it was
  /// in flight — a tail-sampling trigger for the flight recorder.
  bool watchdog_flagged = false;

  [[nodiscard]] bool accepted() const noexcept {
    return outcome == Outcome::Accepted;
  }
};

}  // namespace dagsfc::serve
