#include "serve/admission.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dagsfc::serve {

void AdmissionPolicy::validate() const {
  DAGSFC_CHECK(queue_capacity >= 1);
  DAGSFC_CHECK(retry_backoff.count() >= 0);
}

std::chrono::nanoseconds AdmissionPolicy::backoff_before(
    std::uint32_t retry) const {
  DAGSFC_CHECK(retry >= 1);
  const std::uint32_t shift = std::min(retry - 1, 10u);
  return retry_backoff * (std::int64_t{1} << shift);
}

}  // namespace dagsfc::serve
