#pragma once
/// \file service.hpp
/// The concurrent online embedding service.
///
/// Lifecycle of a request (snapshot → solve → validate → commit):
///
///   1. submit() stamps the request, tries the bounded MPMC queue, and
///      returns a future; a full queue resolves it immediately as
///      RejectedQueueFull.
///   2. A worker dequeues, sheds the request if its deadline already
///      passed, then *snapshots* the shared CapacityLedger — a copy taken
///      under the commit mutex together with the ledger's epoch().
///   3. The embedder solves against the private snapshot, completely
///      outside the lock — this is where the milliseconds go, and why
///      workers scale.
///   4. Commit, under the mutex, with epoch validation:
///        - epoch unchanged → the residuals the solver saw are the live
///          residuals; apply directly (fast commit).
///        - epoch moved     → another request committed or departed in the
///          meantime; re-check the solution against the live residuals
///          (CapacityLedger::can_apply). Still fits → apply (validated
///          commit). Doesn't fit → commit conflict: drop the solution,
///          back off, and re-solve from a fresh snapshot, up to
///          AdmissionPolicy::max_retries times before the request counts
///          as LostConflict.
///   5. Accepted flows land in the committed-flow table; release(id)
///      (a departure) credits their exact usage back to the ledger.
///
/// The service never locks the ledger around a solve, so solutions are
/// optimistic by construction; validation at commit is what keeps the
/// ledger's no-oversubscription invariant exact under concurrency.
///
/// ## Commit pipelines
///
/// Step 2 and 4 above describe the legacy kMutex pipeline (a full ledger
/// copy per attempt, epoch check + full residual re-check at commit). The
/// default kMvcc pipeline replaces both ends:
///
///   * Snapshot: each worker keeps a persistent ledger *replica* and
///     catches it up under the lock with CapacityLedger::sync_from — an
///     O(delta) journal replay instead of an O(E+V) copy, which also
///     preserves the replica's warm path cache across requests (only
///     entries whose footprint a committed mutation flipped are evicted).
///   * Validation: a moved epoch no longer forces a full residual
///     re-check. If no resource in the solution's footprint changed since
///     the snapshot (per-resource version stamps,
///     footprint_unchanged_since), the residuals the solver saw are still
///     live and the commit applies directly — the stamp-validated commit.
///     Only footprint overlaps fall back to can_apply.
///   * Group commit: workers publish their validated solutions to a
///     pending list and the first one through the commit mutex becomes
///     the *leader*, draining and applying the whole batch in one critical
///     section while the followers wait at the mutex. A follower finding
///     its entry already decided simply returns; statuses are always
///     decided before the deciding leader releases the mutex, so no
///     condition variable is needed and every request terminates.
///
/// Both pipelines produce identical outcomes for identical interleavings —
/// stamp validation accepts exactly when can_apply would (unchanged
/// footprint residuals trivially re-admit the solution) — so the closed
/// loop determinism guarantee holds across pipelines and worker counts.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/embedder.hpp"
#include "net/ledger.hpp"
#include "serve/admission.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/trace.hpp"
#include "util/span_recorder.hpp"

namespace dagsfc::serve {

/// Which commit machinery the service runs (see the file comment).
enum class CommitPipeline : std::uint8_t {
  kMutex,  ///< legacy: per-attempt ledger copy, epoch + full residual check
  kMvcc,   ///< replica sync + stamp validation + group commit (default)
};

[[nodiscard]] constexpr const char* to_string(CommitPipeline p) noexcept {
  return p == CommitPipeline::kMutex ? "mutex" : "mvcc";
}

class EmbeddingService {
 public:
  struct Options {
    std::size_t workers = 1;
    AdmissionPolicy admission;
    CommitPipeline pipeline = CommitPipeline::kMvcc;
    /// Base seed of the per-request solver RNG streams: request id and
    /// retry number are mixed in, so results depend on (seed, id, retry)
    /// and never on which worker picked the job up.
    std::uint64_t seed = 0x5eedbeefULL;
    /// Slow-solve watchdog: when nonzero, a monitor thread samples the ages
    /// of in-flight requests and logs a one-time structured warning (and
    /// bumps dagsfc_serve_slow_solves_total) for each request whose
    /// processing exceeds the threshold. Zero disables the watchdog.
    std::chrono::nanoseconds slow_solve_threshold{0};
    /// Sampling period of the watchdog thread. Zero means threshold/4,
    /// clamped to [1ms, 250ms].
    std::chrono::nanoseconds watchdog_period{0};
    /// Optional ALT distance oracle over the serving network's topology
    /// (graph/oracle.hpp), attached to every worker's search workspace so
    /// solves run goal-directed path queries. The caller owns it, must keep
    /// it alive for the service's lifetime, and must only ensure_current()
    /// it while no solves are in flight (the per-query matches() gate makes
    /// a stale oracle fall back to unpruned searches, so forgetting costs
    /// speed, not correctness). Null means no pruning — the pre-oracle
    /// behaviour, bit for bit.
    const graph::DistanceOracle* distance_oracle = nullptr;
    /// Request-lifecycle tracing (serve/trace.hpp): when enabled, every
    /// request gets queue-wait / per-attempt solve / per-attempt commit /
    /// outcome spans in a per-worker ring, and trigger-matching requests
    /// are promoted to the flight recorder. Observation only — solve
    /// results and outcome counters are bit-identical with tracing on or
    /// off. Note queue-full rejects resolve on the submit path and never
    /// reach a worker lane, so they are counted but not traced.
    TracingOptions tracing;
  };

  /// The network and embedder must outlive the service. The embedder must
  /// be safe for concurrent solve() calls (all library embedders are —
  /// they are stateless; the Monte-Carlo runner already shares them across
  /// threads).
  EmbeddingService(const net::Network& network, const core::Embedder& embedder,
                   Options options);
  ~EmbeddingService();

  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// Hands the request to the worker pool. Always returns a valid future;
  /// queue-full rejections resolve it immediately.
  [[nodiscard]] std::future<Response> submit(Request req);

  /// Departure: credits the committed flow's exact resource usage back to
  /// the ledger (bumping the epoch). Returns false for ids that are not in
  /// service (never accepted, or already released).
  bool release(RequestId id);

  /// Flows currently holding resources.
  [[nodiscard]] std::size_t in_service() const;

  /// Blocks until every submitted request has a response. New submits
  /// during a drain are allowed and also waited for.
  void drain();

  /// Closes the queue and joins the workers; queued requests are still
  /// served. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// The service's metric registry — the source of the /metrics endpoint.
  /// Per-service, so two services in one process expose disjoint planes.
  [[nodiscard]] const util::MetricRegistry& metrics_registry() const noexcept {
    return metrics_.registry();
  }
  /// Mutable access, so callers can register extra instruments (e.g.
  /// util::ProcessMetrics) on the same registry the endpoint scrapes.
  [[nodiscard]] util::MetricRegistry& metrics_registry() noexcept {
    return metrics_.registry();
  }

  /// Consistent copy of the shared ledger (taken under the commit mutex).
  [[nodiscard]] net::CapacityLedger ledger_snapshot() const;
  [[nodiscard]] std::uint64_t epoch() const;

  [[nodiscard]] const net::Network& network() const noexcept { return *net_; }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// Tail-sampled trace store; null unless Options::tracing.enabled.
  [[nodiscard]] const FlightRecorder* flight_recorder() const noexcept {
    return flight_.get();
  }
  /// The always-on span ring; null unless Options::tracing.enabled.
  [[nodiscard]] const util::SpanRecorder* span_recorder() const noexcept {
    return spans_.get();
  }

 private:
  struct Job {
    Request req;
    std::promise<Response> promise;
    Clock::time_point submitted{};
  };

  struct CommittedFlow {
    core::ResourceUsage usage;
    double rate = 0.0;
  };

  /// Long-lived per-worker solver state: the warm search workspace and, in
  /// the MVCC pipeline, the ledger replica whose path cache survives
  /// across requests.
  struct WorkerState {
    graph::SearchWorkspace ws;
    std::unique_ptr<net::CapacityLedger> replica;
  };

  /// One solution queued for group commit. Lives on the submitting
  /// worker's stack; the worker blocks on commit_mu_ until some leader
  /// (possibly itself) has decided it, so the pointer in pending_ never
  /// dangles.
  struct PendingCommit {
    enum class Status : std::uint8_t { kWaiting, kCommitted, kConflict };
    RequestId id = 0;
    core::ResourceUsage usage;
    double rate = 0.0;
    std::uint64_t snapshot_epoch = 0;
    // Decided by the leader, read by the owner after it acquires
    // commit_mu_ (the leader wrote while holding it — no race).
    Status status = Status::kWaiting;
    std::uint64_t commit_epoch = 0;
    bool epoch_moved = false;
    bool stamp_validated = false;
  };

  /// One in-flight request per worker, watched by the monitor thread.
  struct WatchSlot {
    RequestId id = 0;
    Clock::time_point started{};
    bool active = false;
    bool warned = false;  ///< one-time: a slow request warns exactly once
  };

  void worker_loop(std::size_t slot);
  [[nodiscard]] Response process(Job& job, WorkerState& state,
                                 RequestTrace& trace);
  void finish(Job&& job, Response&& resp);
  /// Tail sampling: promotes \p trace to the flight recorder iff \p resp
  /// matches a TracingOptions trigger.
  void maybe_promote(const RequestTrace& trace, const Response& resp);

  /// MVCC snapshot: catches state.replica up to the shared ledger under
  /// commit_mu_ and returns the snapshot epoch.
  [[nodiscard]] std::uint64_t sync_replica(WorkerState& state);
  /// Queues \p pc and waits through commit_mu_ until it is decided —
  /// becoming the batch leader if it arrives undecided. Returns true iff
  /// committed.
  bool group_commit(PendingCommit& pc);
  /// Leader-side validate+apply of one pending commit. commit_mu_ held.
  void decide(PendingCommit& pc);

  void begin_watch(std::size_t slot, RequestId id);
  /// Deactivates the slot; returns true iff the watchdog warned on the
  /// request that just finished (the watchdog-fire tail-sampling trigger).
  bool end_watch(std::size_t slot);
  void watchdog_loop();
  [[nodiscard]] std::chrono::nanoseconds watchdog_period() const;

  const net::Network* net_;
  const core::Embedder* embedder_;
  Options opts_;

  /// Guards ledger_ and committed_ (commits, releases, snapshots).
  mutable std::mutex commit_mu_;
  net::CapacityLedger ledger_;
  std::unordered_map<RequestId, CommittedFlow> committed_;

  /// Group-commit intake. Lock order: commit_mu_ before pending_mu_ when
  /// both are needed; publishing holds only pending_mu_. Never acquire
  /// commit_mu_ while holding pending_mu_.
  std::mutex pending_mu_;
  std::vector<PendingCommit*> pending_;

  BoundedQueue<Job> queue_;
  ServiceMetrics metrics_;

  /// Tracing plane (null when Options::tracing.enabled is false): one ring
  /// lane per worker, plus the tail-sampled flight recorder.
  std::unique_ptr<util::SpanRecorder> spans_;
  std::unique_ptr<FlightRecorder> flight_;

  /// drain(): submitted-but-unanswered requests.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t outstanding_ = 0;

  /// Watchdog state: one slot per worker plus the monitor thread. Guarded
  /// by watch_mu_; the monitor wakes every watchdog_period() or on stop.
  mutable std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::vector<WatchSlot> watch_slots_;
  bool watch_stop_ = false;
  std::thread watchdog_;

  std::vector<std::thread> workers_;
  bool shut_down_ = false;
};

}  // namespace dagsfc::serve
