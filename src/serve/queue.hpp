#pragma once
/// \file queue.hpp
/// Bounded multi-producer/multi-consumer queue feeding the solver workers.
///
/// Deliberately a mutex+condvar queue, not a lock-free ring: the payload is
/// a whole embedding request (a DAG-SFC plus a promise) and each item buys
/// milliseconds of solver work, so queue overhead is noise. What matters is
/// the *bounded* part — try_push never blocks, so admission control can
/// reject-on-full instead of building unbounded backlog — and clean
/// shutdown semantics (close() wakes all consumers; pop() drains remaining
/// items first, then returns nullopt).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.hpp"

namespace dagsfc::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    DAGSFC_CHECK(capacity >= 1);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  /// Enqueues unless the queue is full or closed. Never blocks, and moves
  /// from \p item only on success — a rejected item is untouched and the
  /// caller may still use it.
  [[nodiscard]] bool try_push(T&& item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* empty.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes every blocked consumer. Items already
  /// queued are still drained by pop().
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dagsfc::serve
