#include "serve/trace.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace dagsfc::serve {

std::string trigger_names(std::uint8_t triggers) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (triggers & kTriggerLatency) append("latency");
  if (triggers & kTriggerLostConflict) append("lost_conflict");
  if (triggers & kTriggerRefusal) append("refusal");
  if (triggers & kTriggerWatchdog) append("watchdog");
  return out;
}

std::uint8_t evaluate_triggers(const TracingOptions& opts, Outcome outcome,
                               double latency_ms,
                               bool watchdog_fired) noexcept {
  std::uint8_t hit = 0;
  if (opts.latency_over.count() > 0 &&
      latency_ms >= std::chrono::duration<double, std::milli>(
                        opts.latency_over)
                        .count()) {
    hit |= kTriggerLatency;
  }
  if (opts.on_lost_conflict && outcome == Outcome::LostConflict) {
    hit |= kTriggerLostConflict;
  }
  if (opts.on_refusal && (outcome == Outcome::RejectedInfeasible ||
                          outcome == Outcome::RejectedQueueFull ||
                          outcome == Outcome::SheddedDeadline)) {
    hit |= kTriggerRefusal;
  }
  if (opts.on_watchdog && watchdog_fired) hit |= kTriggerWatchdog;
  return hit;
}

void RequestTrace::add(SpanKind kind, std::uint16_t attempt,
                       std::uint8_t detail, std::uint64_t t0, std::uint64_t t1,
                       std::uint64_t arg, double value) noexcept {
  if (recorder_ == nullptr) return;
  util::SpanRecord r;
  r.trace_id = id_;
  r.kind = static_cast<std::uint8_t>(kind);
  r.detail = detail;
  r.attempt = attempt;
  r.t0_ns = t0;
  r.t1_ns = t1;
  r.arg = arg;
  r.value = value;
  recorder_->emit(lane_, r);
  if (n_ < kMaxSpans) {
    spans_[n_++] = r;
  } else {
    ++overflow_;
  }
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  DAGSFC_CHECK_MSG(capacity > 0, "FlightRecorder capacity must be positive");
  traces_.reserve(capacity);
}

void FlightRecorder::promote(FlightTrace t) {
  std::lock_guard lock(mu_);
  ++promoted_;
  if (traces_.size() == capacity_) {
    traces_.erase(traces_.begin());
  }
  traces_.push_back(std::move(t));
}

std::uint64_t FlightRecorder::promoted() const {
  std::lock_guard lock(mu_);
  return promoted_;
}

std::vector<FlightTrace> FlightRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  return traces_;
}

namespace {

/// detail decoded per kind — "feasible"/"infeasible" for solve spans, the
/// commit class for commit spans, the outcome for outcome spans.
std::string span_detail(const util::SpanRecord& r) {
  switch (static_cast<SpanKind>(r.kind)) {
    case SpanKind::kQueueWait:
      return {};
    case SpanKind::kSolve:
      return r.detail != 0 ? "feasible" : "infeasible";
    case SpanKind::kCommit:
      return to_string(static_cast<CommitClass>(r.detail));
    case SpanKind::kOutcome:
      return to_string(static_cast<Outcome>(r.detail));
  }
  return {};
}

void render_span(std::ostringstream& os, const util::SpanRecord& r) {
  os << "{\"kind\":\"" << to_string(static_cast<SpanKind>(r.kind)) << '"';
  const std::string detail = span_detail(r);
  if (!detail.empty()) os << ",\"detail\":\"" << detail << '"';
  os << ",\"lane\":" << r.lane << ",\"attempt\":" << r.attempt
     << ",\"t0_ns\":" << r.t0_ns << ",\"t1_ns\":" << r.t1_ns;
  if (r.arg != 0) os << ",\"arg\":" << r.arg;
  if (r.value != 0.0) os << ",\"value\":" << util::json_number(r.value);
  os << '}';
}

}  // namespace

std::string FlightRecorder::to_json() const {
  std::vector<FlightTrace> traces;
  std::uint64_t promoted = 0;
  {
    std::lock_guard lock(mu_);
    traces = traces_;
    promoted = promoted_;
  }
  std::ostringstream os;
  os << "{\"promoted\":" << promoted << ",\"capacity\":" << capacity_
     << ",\"traces\":[";
  bool tf = true;
  for (const FlightTrace& t : traces) {
    if (!tf) os << ',';
    tf = false;
    os << "{\"trace_id\":" << t.trace_id << ",\"triggers\":[";
    bool gf = true;
    const std::uint8_t bits[] = {kTriggerLatency, kTriggerLostConflict,
                                 kTriggerRefusal, kTriggerWatchdog};
    for (std::uint8_t bit : bits) {
      if ((t.triggers & bit) == 0) continue;
      if (!gf) os << ',';
      gf = false;
      os << '"' << trigger_names(bit) << '"';
    }
    os << "],\"outcome\":\"" << to_string(t.outcome)
       << "\",\"latency_ms\":" << util::json_number(t.latency_ms);
    if (t.dropped_spans != 0) os << ",\"dropped_spans\":" << t.dropped_spans;
    os << ",\"spans\":[";
    bool sf = true;
    for (const util::SpanRecord& r : t.spans) {
      if (!sf) os << ',';
      sf = false;
      render_span(os, r);
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string FlightRecorder::to_chrome() const {
  const std::vector<FlightTrace> traces = snapshot();
  std::vector<util::TraceEvent> events;
  for (const FlightTrace& t : traces) {
    for (const util::SpanRecord& r : t.spans) {
      util::TraceEvent e;
      e.name = to_string(static_cast<SpanKind>(r.kind));
      const std::string detail = span_detail(r);
      if (!detail.empty()) {
        e.name += '/';
        e.name += detail;
      }
      e.cat = "serve";
      e.phase = 'X';
      e.ts = r.t0_ns / 1000;
      e.dur = r.t1_ns > r.t0_ns ? (r.t1_ns - r.t0_ns) / 1000 : 0;
      if (e.dur == 0) e.dur = 1;  // Perfetto hides zero-width slices
      e.tid = r.lane;
      e.num_args.emplace_back("trace_id",
                              static_cast<double>(r.trace_id));
      e.num_args.emplace_back("attempt", static_cast<double>(r.attempt));
      if (r.arg != 0) {
        e.num_args.emplace_back("arg", static_cast<double>(r.arg));
      }
      if (r.value != 0.0) e.num_args.emplace_back("value", r.value);
      events.push_back(std::move(e));
    }
  }
  return util::to_chrome_trace(events);
}

}  // namespace dagsfc::serve
