#pragma once
/// \file serve/trace.hpp
/// Request-lifecycle tracing for the serve/shard plane: the span vocabulary
/// (queue wait, solve attempt, commit attempt, outcome), the per-request
/// RequestTrace context worker threads thread through processing, and the
/// tail-sampled FlightRecorder that retains only the traces worth keeping.
///
/// The sampling model is Dapper/Canopy-style *tail-based* retention:
/// every request is traced into the util::SpanRecorder ring (cheap,
/// allocation-free, bounded, overwritten), and only when the request
/// *finishes badly* — latency over threshold, LostConflict, refusal,
/// watchdog fire — is its complete span set promoted into the flight
/// recorder (a mutex-guarded bounded store; promotion is the cold path by
/// construction, because triggers fire on the tail, not the body, of the
/// distribution). The ring answers "what is the service doing right now";
/// the flight recorder answers "what did the worst requests look like",
/// dumpable via GET /debug/traces.json, --flight-dump at exit, or SIGUSR1.
///
/// Determinism contract: tracing is observation only. No solver input,
/// RNG draw, or commit decision reads tracing state, so solve results and
/// outcome counters are bit-identical with tracing on or off (enforced by
/// the test_serve.cpp determinism battery).

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "util/span_recorder.hpp"

namespace dagsfc::serve {

/// Span vocabulary carried in util::SpanRecord::kind.
enum class SpanKind : std::uint8_t {
  kQueueWait = 1,  ///< submit → dequeue; arg unused
  kSolve = 2,      ///< one solver attempt; detail = feasible, arg = snapshot epoch
  kCommit = 3,     ///< one commit attempt; detail = CommitClass, arg = epoch / shard mask
  kOutcome = 4,    ///< whole request; detail = Outcome, value = cost
};

[[nodiscard]] constexpr const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kSolve: return "solve";
    case SpanKind::kCommit: return "commit";
    case SpanKind::kOutcome: return "outcome";
  }
  return "unknown";
}

/// How one commit attempt resolved — the serve-plane MVCC pipeline and the
/// shard ledger both classify into this set (shard::CommitPath maps 1:1).
enum class CommitClass : std::uint8_t {
  kFast = 0,       ///< epoch unmoved; committed without validation
  kStamp = 1,      ///< epoch moved; footprint stamps proved residuals live
  kValidated = 2,  ///< epoch moved; full residual re-check passed
  kConflict = 3,   ///< validation failed; the attempt was rejected
};

[[nodiscard]] constexpr const char* to_string(CommitClass c) noexcept {
  switch (c) {
    case CommitClass::kFast: return "fast";
    case CommitClass::kStamp: return "stamp";
    case CommitClass::kValidated: return "validated";
    case CommitClass::kConflict: return "conflict";
  }
  return "unknown";
}

/// Tail-sampling trigger bits (a trace can match several).
enum TraceTrigger : std::uint8_t {
  kTriggerLatency = 1u << 0,       ///< total latency over threshold
  kTriggerLostConflict = 1u << 1,  ///< request lost commit validation
  kTriggerRefusal = 1u << 2,       ///< infeasible / queue full / shed
  kTriggerWatchdog = 1u << 3,      ///< solve watchdog fired on this request
};

/// "latency,lost_conflict" — sorted by bit, empty string for 0.
[[nodiscard]] std::string trigger_names(std::uint8_t triggers);

/// Knobs threaded through serve::EmbeddingService::Options and
/// shard::ShardedEmbeddingService::Options.
struct TracingOptions {
  bool enabled = false;
  /// Span records per worker lane — the ring holds the most recent
  /// ring_capacity spans each worker emitted (~64 B per record).
  std::size_t ring_capacity = 256;
  /// Triggered traces retained; older promotions are evicted FIFO.
  std::size_t flight_capacity = 64;
  /// Promote traces whose submit→finish latency exceeds this; 0 disables
  /// the latency trigger.
  std::chrono::nanoseconds latency_over{0};
  bool on_lost_conflict = true;
  bool on_refusal = false;
  bool on_watchdog = true;
};

/// Which triggers \p outcome / \p latency_ms / \p watchdog_fired match
/// under \p opts. 0 means "do not promote".
[[nodiscard]] std::uint8_t evaluate_triggers(const TracingOptions& opts,
                                             Outcome outcome,
                                             double latency_ms,
                                             bool watchdog_fired) noexcept;

/// Per-request span accumulator, stack-allocated in the worker around
/// processing. Spans are pushed into fixed inline storage (so the hot path
/// never allocates) and simultaneously emitted into the ring; if the
/// request later matches a trigger, the inline copy — which, unlike the
/// ring, cannot have been overwritten by other lanes' traffic — is what
/// gets promoted. An inactive trace (null recorder) is a no-op sink, the
/// same pattern as the metric handles.
class RequestTrace {
 public:
  /// More spans than any sane retry budget produces: 1 queue wait +
  /// (solve + commit) per attempt + 1 outcome.
  static constexpr std::size_t kMaxSpans = 64;

  RequestTrace() = default;
  RequestTrace(util::SpanRecorder* recorder, std::size_t lane,
               RequestId id) noexcept
      : recorder_(recorder), lane_(lane), id_(id) {}

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  [[nodiscard]] bool active() const noexcept { return recorder_ != nullptr; }
  [[nodiscard]] RequestId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t lane() const noexcept { return lane_; }

  /// Recorder-timebase "now"; 0 when inactive.
  [[nodiscard]] std::uint64_t now() const noexcept {
    return recorder_ != nullptr ? recorder_->now_ns() : 0;
  }
  /// Recorder-timebase conversion for pre-captured instants (submit time).
  [[nodiscard]] std::uint64_t at(Clock::time_point t) const noexcept {
    return recorder_ != nullptr ? recorder_->to_ns(t) : 0;
  }

  void queue_wait(std::uint64_t t0, std::uint64_t t1) noexcept {
    add(SpanKind::kQueueWait, 0, 0, t0, t1, 0, 0.0);
  }
  void solve(std::uint16_t attempt, bool feasible, std::uint64_t t0,
             std::uint64_t t1, std::uint64_t snapshot_epoch,
             double cost) noexcept {
    add(SpanKind::kSolve, attempt, feasible ? 1 : 0, t0, t1, snapshot_epoch,
        cost);
  }
  void commit(std::uint16_t attempt, CommitClass cls, std::uint64_t t0,
              std::uint64_t t1, std::uint64_t arg) noexcept {
    add(SpanKind::kCommit, attempt, static_cast<std::uint8_t>(cls), t0, t1,
        arg, 0.0);
  }
  void outcome(Outcome o, std::uint64_t t0, std::uint64_t t1,
               double cost) noexcept {
    add(SpanKind::kOutcome, 0, static_cast<std::uint8_t>(o), t0, t1, 0,
        cost);
  }

  /// Spans recorded so far (inline copy, emission order).
  [[nodiscard]] std::span<const util::SpanRecord> spans() const noexcept {
    return {spans_.data(), n_};
  }
  /// Spans that did not fit in the inline buffer (still emitted to the
  /// ring; only the promoted copy is truncated).
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

 private:
  void add(SpanKind kind, std::uint16_t attempt, std::uint8_t detail,
           std::uint64_t t0, std::uint64_t t1, std::uint64_t arg,
           double value) noexcept;

  util::SpanRecorder* recorder_ = nullptr;
  std::size_t lane_ = 0;
  RequestId id_ = 0;
  std::array<util::SpanRecord, kMaxSpans> spans_;
  std::size_t n_ = 0;
  std::uint64_t overflow_ = 0;
};

/// One retained trace: the complete span set of a request that matched a
/// trigger, plus the terminal facts the triggers were evaluated against.
struct FlightTrace {
  RequestId trace_id = 0;
  std::uint8_t triggers = 0;  ///< TraceTrigger bits that fired
  Outcome outcome = Outcome::RejectedInfeasible;
  double latency_ms = 0.0;  ///< submit → finish
  std::uint64_t dropped_spans = 0;  ///< RequestTrace inline-buffer overflow
  std::vector<util::SpanRecord> spans;
};

/// Bounded store of promoted traces. promote() is the tail-sampled cold
/// path, so a plain mutex is the right tool; dumps are byte-stable for a
/// given retained set (deterministic rendering of stored data).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Retains \p t, evicting the oldest retained trace when full.
  void promote(FlightTrace t);

  /// Traces ever promoted (including evicted ones).
  [[nodiscard]] std::uint64_t promoted() const;
  /// Retained traces, oldest first.
  [[nodiscard]] std::vector<FlightTrace> snapshot() const;

  /// Single-line JSON document:
  /// {"promoted":N,"capacity":C,"traces":[{"trace_id":...,"triggers":[...],
  ///  "outcome":"...","latency_ms":...,"spans":[...]},...]}
  /// Byte-stable for a given retained set.
  [[nodiscard]] std::string to_json() const;

  /// Chrome trace_event JSON of the retained traces (spans as 'X' complete
  /// events, one Perfetto track per lane) — the --flight-dump format.
  [[nodiscard]] std::string to_chrome() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightTrace> traces_;  // oldest first
  std::uint64_t promoted_ = 0;
};

}  // namespace dagsfc::serve
