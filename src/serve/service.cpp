#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/log.hpp"

namespace dagsfc::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Solver RNG stream for (service seed, request, retry): splitmix64 over
/// the mixed words gives independent streams, so outcomes are a pure
/// function of the request identity — never of worker scheduling.
std::uint64_t solve_seed(std::uint64_t base, RequestId id,
                         std::uint32_t attempt) {
  std::uint64_t state = base ^ (id * 0x9e3779b97f4a7c15ULL) ^
                        (std::uint64_t{attempt} << 32);
  return splitmix64(state);
}

}  // namespace

EmbeddingService::EmbeddingService(const net::Network& network,
                                   const core::Embedder& embedder,
                                   Options options)
    : net_(&network),
      embedder_(&embedder),
      opts_(options),
      ledger_(network),
      queue_(options.admission.queue_capacity) {
  opts_.admission.validate();
  DAGSFC_CHECK(opts_.workers >= 1);
  DAGSFC_CHECK(opts_.slow_solve_threshold.count() >= 0);
  DAGSFC_CHECK(opts_.watchdog_period.count() >= 0);
  if (opts_.pipeline == CommitPipeline::kMvcc) {
    // Journal depth: enough to cover many full-footprint commits between a
    // worker's syncs, so replicas replay deltas instead of recopying.
    ledger_.enable_journal(std::max<std::size_t>(
        4096, 32 * (network.num_links() + network.num_instances())));
  }
  if (opts_.tracing.enabled) {
    spans_ = std::make_unique<util::SpanRecorder>(
        opts_.workers, opts_.tracing.ring_capacity);
    flight_ = std::make_unique<FlightRecorder>(opts_.tracing.flight_capacity);
  }
  watch_slots_.resize(opts_.workers);
  if (opts_.slow_solve_threshold.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  workers_.reserve(opts_.workers);
  for (std::size_t w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

EmbeddingService::~EmbeddingService() { shutdown(); }

std::future<Response> EmbeddingService::submit(Request req) {
  metrics_.on_submitted();
  {
    std::lock_guard lock(drain_mu_);
    ++outstanding_;
  }
  Job job;
  job.req = std::move(req);
  job.submitted = Clock::now();
  std::future<Response> fut = job.promise.get_future();
  if (queue_.try_push(std::move(job))) {
    metrics_.set_queue_depth(queue_.size());
  } else {
    // try_push moves from its argument only on success, so the job — and
    // the promise backing `fut` — is intact on the reject path.
    Response resp;
    resp.id = job.req.id;
    resp.outcome = Outcome::RejectedQueueFull;
    finish(std::move(job), std::move(resp));
  }
  return fut;
}

void EmbeddingService::finish(Job&& job, Response&& resp) {
  metrics_.on_response(resp);
  job.promise.set_value(std::move(resp));
  {
    std::lock_guard lock(drain_mu_);
    DAGSFC_CHECK(outstanding_ > 0);
    --outstanding_;
  }
  drain_cv_.notify_all();
}

void EmbeddingService::worker_loop(std::size_t slot) {
  // Per-worker solver state: solves run outside the commit lock, so each
  // worker warms its own search buffers — and, under MVCC, its ledger
  // replica's path cache — for the life of the thread. The shared distance
  // oracle (if any) rides along on the workspace; it is immutable while
  // solves run, so all workers may read it concurrently.
  WorkerState state;
  state.ws.set_distance_oracle(opts_.distance_oracle);
  const bool watched = opts_.slow_solve_threshold.count() > 0;
  while (auto job = queue_.pop()) {
    metrics_.set_queue_depth(queue_.size());
    metrics_.add_workers_busy(1.0);
    if (watched) begin_watch(slot, job->req.id);
    // This worker is the lane's single writer for the request's lifetime.
    RequestTrace trace(spans_.get(), slot, job->req.id);
    const std::uint64_t t_submit = trace.at(job->submitted);
    Response resp = process(*job, state, trace);
    if (watched) resp.watchdog_flagged = end_watch(slot);
    trace.outcome(resp.outcome, t_submit, trace.now(), resp.cost);
    maybe_promote(trace, resp);
    metrics_.add_workers_busy(-1.0);
    finish(std::move(*job), std::move(resp));
  }
}

void EmbeddingService::maybe_promote(const RequestTrace& trace,
                                     const Response& resp) {
  if (!flight_ || !trace.active()) return;
  const double latency_ms = resp.queue_ms + resp.solve_ms;
  const std::uint8_t hit = evaluate_triggers(opts_.tracing, resp.outcome,
                                             latency_ms,
                                             resp.watchdog_flagged);
  if (hit == 0) return;
  FlightTrace ft;
  ft.trace_id = resp.id;
  ft.triggers = hit;
  ft.outcome = resp.outcome;
  ft.latency_ms = latency_ms;
  ft.dropped_spans = trace.overflow();
  const std::span<const util::SpanRecord> spans = trace.spans();
  ft.spans.assign(spans.begin(), spans.end());
  // The inline copy never went through collect(), so stamp the lane here.
  for (util::SpanRecord& s : ft.spans) {
    s.lane = static_cast<std::uint32_t>(trace.lane());
  }
  flight_->promote(std::move(ft));
}

void EmbeddingService::begin_watch(std::size_t slot, RequestId id) {
  std::lock_guard lock(watch_mu_);
  watch_slots_[slot] =
      WatchSlot{id, Clock::now(), /*active=*/true, /*warned=*/false};
}

bool EmbeddingService::end_watch(std::size_t slot) {
  std::lock_guard lock(watch_mu_);
  watch_slots_[slot].active = false;
  return watch_slots_[slot].warned;
}

std::chrono::nanoseconds EmbeddingService::watchdog_period() const {
  if (opts_.watchdog_period.count() > 0) return opts_.watchdog_period;
  using std::chrono::nanoseconds;
  return std::clamp(opts_.slow_solve_threshold / 4,
                    nanoseconds(std::chrono::milliseconds(1)),
                    nanoseconds(std::chrono::milliseconds(250)));
}

void EmbeddingService::watchdog_loop() {
  const std::chrono::nanoseconds period = watchdog_period();
  std::unique_lock lock(watch_mu_);
  while (!watch_stop_) {
    watch_cv_.wait_for(lock, period, [&] { return watch_stop_; });
    if (watch_stop_) return;
    const Clock::time_point now = Clock::now();
    for (WatchSlot& slot : watch_slots_) {
      if (!slot.active || slot.warned) continue;
      const auto elapsed = now - slot.started;
      if (elapsed < opts_.slow_solve_threshold) continue;
      slot.warned = true;  // one warning per slow request, however long
      metrics_.on_slow_solve();
      using MsDouble = std::chrono::duration<double, std::milli>;
      const double elapsed_ms = MsDouble(elapsed).count();
      const double threshold_ms = MsDouble(opts_.slow_solve_threshold).count();
      DAGSFC_WARN("slow solve: request=" << slot.id << " solver="
                                         << embedder_->name() << " elapsed_ms="
                                         << elapsed_ms << " threshold_ms="
                                         << threshold_ms);
    }
  }
}

std::uint64_t EmbeddingService::sync_replica(WorkerState& state) {
  std::lock_guard lock(commit_mu_);
  if (!state.replica) {
    state.replica = std::make_unique<net::CapacityLedger>(ledger_);
  } else {
    state.replica->sync_from(ledger_);
  }
  return state.replica->epoch();
}

void EmbeddingService::decide(PendingCommit& p) {
  const bool moved = ledger_.epoch() != p.snapshot_epoch;
  p.epoch_moved = moved;
  bool admit = !moved;
  if (!admit && ledger_.footprint_unchanged_since(
                    p.usage.link_uses, p.usage.instance_uses,
                    p.snapshot_epoch)) {
    // Every resource this solution touches still carries the residual the
    // solver saw — feasible then implies feasible now, no re-check needed.
    admit = true;
    p.stamp_validated = true;
  }
  if (!admit) {
    admit = ledger_.can_apply(p.usage.link_uses, p.usage.instance_uses,
                              p.rate);
  }
  if (admit) {
    ledger_.apply(p.usage.link_uses, p.usage.instance_uses, p.rate);
    p.commit_epoch = ledger_.epoch();
    committed_.emplace(p.id, CommittedFlow{std::move(p.usage), p.rate});
    p.status = PendingCommit::Status::kCommitted;
  } else {
    p.status = PendingCommit::Status::kConflict;
  }
}

bool EmbeddingService::group_commit(PendingCommit& pc) {
  {
    std::lock_guard plock(pending_mu_);
    pending_.push_back(&pc);
  }
  // Block until the commit mutex is ours. A leader that drained our entry
  // in the meantime decided it before releasing the mutex, so an entry
  // still kWaiting here is guaranteed to still be in pending_.
  std::lock_guard lock(commit_mu_);
  std::vector<PendingCommit*> batch;
  {
    std::lock_guard plock(pending_mu_);
    if (pc.status == PendingCommit::Status::kWaiting) batch.swap(pending_);
  }
  if (!batch.empty()) {
    // Leader: validate and apply the whole batch (our own entry included)
    // in this one critical section. Entries are decided in arrival order
    // against the evolving ledger, so overlapping solutions within a batch
    // degrade to stamp/residual validation exactly like cross-batch ones.
    metrics_.on_group_commit(batch.size());
    for (PendingCommit* p : batch) decide(*p);
  }
  return pc.status == PendingCommit::Status::kCommitted;
}

Response EmbeddingService::process(Job& job, WorkerState& state,
                                   RequestTrace& trace) {
  const Clock::time_point dequeued = Clock::now();
  Response resp;
  resp.id = job.req.id;
  resp.queue_ms = ms_between(job.submitted, dequeued);
  trace.queue_wait(trace.at(job.submitted), trace.at(dequeued));

  if (opts_.admission.should_shed(job.req, dequeued)) {
    resp.outcome = Outcome::SheddedDeadline;
    resp.solve_ms = ms_between(dequeued, Clock::now());
    return resp;
  }

  core::EmbeddingProblem problem;
  problem.network = net_;
  problem.sfc = &job.req.sfc;
  problem.flow = job.req.flow;
  const core::ModelIndex index(problem);
  const core::Evaluator evaluator(index);
  const double rate = job.req.flow.rate;
  const bool mvcc = opts_.pipeline == CommitPipeline::kMvcc;

  const std::uint32_t max_attempts = 1 + opts_.admission.max_retries;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const auto backoff = opts_.admission.backoff_before(attempt);
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }

    // Snapshot: a private, consistent view of the shared residual state
    // plus the epoch it was taken at. MVCC syncs the worker's persistent
    // replica (O(delta) journal replay, warm path cache); the legacy
    // pipeline copies the whole ledger.
    const std::uint64_t t_solve0 = trace.now();
    std::uint64_t snapshot_epoch = 0;
    std::unique_ptr<net::CapacityLedger> snap;
    const net::CapacityLedger* view = nullptr;
    if (mvcc) {
      snapshot_epoch = sync_replica(state);
      view = state.replica.get();
    } else {
      std::lock_guard lock(commit_mu_);
      snapshot_epoch = ledger_.epoch();
      snap = std::make_unique<net::CapacityLedger>(ledger_);
      view = snap.get();
    }

    // Solve outside the lock — the expensive, parallel part. solve() takes
    // the ledger const, so the replica survives for the next request.
    Rng rng(solve_seed(opts_.seed, job.req.id, attempt));
    const core::SolveResult r =
        embedder_->solve(index, *view, rng, nullptr, &state.ws);
    ++resp.solves;
    const std::uint16_t att = static_cast<std::uint16_t>(attempt);
    trace.solve(att, r.ok(), t_solve0, trace.now(), snapshot_epoch,
                r.ok() ? r.cost : 0.0);
    if (!r.ok()) {
      // Infeasible against a consistent snapshot: a genuine reject, not a
      // race — retrying against an even fuller ledger cannot help.
      resp.outcome = Outcome::RejectedInfeasible;
      resp.solve_ms = ms_between(dequeued, Clock::now());
      return resp;
    }

    core::ResourceUsage usage = evaluator.usage(*r.solution);

    const std::uint64_t t_commit0 = trace.now();
    if (mvcc) {
      PendingCommit pc;
      pc.id = job.req.id;
      pc.usage = std::move(usage);
      pc.rate = rate;
      pc.snapshot_epoch = snapshot_epoch;
      if (group_commit(pc)) {
        trace.commit(att,
                     pc.stamp_validated ? CommitClass::kStamp
                     : pc.epoch_moved  ? CommitClass::kValidated
                                       : CommitClass::kFast,
                     t_commit0, trace.now(), pc.commit_epoch);
        resp.outcome = Outcome::Accepted;
        resp.cost = r.cost;
        resp.snapshot_epoch = snapshot_epoch;
        resp.commit_epoch = pc.commit_epoch;
        resp.epoch_validated = pc.epoch_moved;
        resp.stamp_validated = pc.stamp_validated;
        resp.solve_ms = ms_between(dequeued, Clock::now());
        return resp;
      }
    } else {
      // Legacy commit: epoch validation with a full residual re-check.
      bool committed = false;
      bool moved = false;
      std::uint64_t commit_epoch = 0;
      {
        std::lock_guard lock(commit_mu_);
        moved = ledger_.epoch() != snapshot_epoch;
        if (!moved || ledger_.can_apply(usage.link_uses,
                                        usage.instance_uses, rate)) {
          ledger_.apply(usage.link_uses, usage.instance_uses, rate);
          committed_.emplace(job.req.id,
                             CommittedFlow{std::move(usage), rate});
          committed = true;
          commit_epoch = ledger_.epoch();
        }
      }
      if (committed) {
        trace.commit(att,
                     moved ? CommitClass::kValidated : CommitClass::kFast,
                     t_commit0, trace.now(), commit_epoch);
        resp.outcome = Outcome::Accepted;
        resp.cost = r.cost;
        resp.snapshot_epoch = snapshot_epoch;
        resp.commit_epoch = commit_epoch;
        resp.epoch_validated = moved;
        resp.solve_ms = ms_between(dequeued, Clock::now());
        return resp;
      }
    }
    // The world changed under us and the solution no longer fits: commit
    // conflict. Loop back for a fresh snapshot.
    trace.commit(att, CommitClass::kConflict, t_commit0, trace.now(),
                 snapshot_epoch);
    ++resp.conflicts;
  }

  resp.outcome = Outcome::LostConflict;
  resp.solve_ms = ms_between(dequeued, Clock::now());
  return resp;
}

bool EmbeddingService::release(RequestId id) {
  CommittedFlow flow;
  {
    std::lock_guard lock(commit_mu_);
    auto it = committed_.find(id);
    if (it == committed_.end()) return false;
    flow = std::move(it->second);
    committed_.erase(it);
    ledger_.unapply(flow.usage.link_uses, flow.usage.instance_uses,
                    flow.rate);
  }
  metrics_.on_release();
  return true;
}

std::size_t EmbeddingService::in_service() const {
  std::lock_guard lock(commit_mu_);
  return committed_.size();
}

void EmbeddingService::drain() {
  std::unique_lock lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void EmbeddingService::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard lock(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

net::CapacityLedger EmbeddingService::ledger_snapshot() const {
  std::lock_guard lock(commit_mu_);
  return ledger_;
}

std::uint64_t EmbeddingService::epoch() const {
  std::lock_guard lock(commit_mu_);
  return ledger_.epoch();
}

}  // namespace dagsfc::serve
