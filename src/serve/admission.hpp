#pragma once
/// \file admission.hpp
/// Admission policy of the embedding service: how much backlog to hold, how
/// long to keep retrying optimistic commits that lose validation, and
/// whether to shed deadline-expired work before spending solver time on it.

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "serve/request.hpp"

namespace dagsfc::serve {

struct AdmissionPolicy {
  /// Bounded request queue: submits beyond this are rejected immediately
  /// (reject-on-full, no unbounded backlog).
  std::size_t queue_capacity = 1024;

  /// Re-solves granted after a commit loses epoch validation. The first
  /// solve is not a retry: a request is solved at most 1 + max_retries
  /// times before it is counted as lost.
  std::uint32_t max_retries = 3;

  /// Sleep before the k-th retry is retry_backoff << (k-1), capping the
  /// shift at 10 doublings. Zero disables backoff (tests, benches hunting
  /// for contention).
  std::chrono::nanoseconds retry_backoff{100'000};  // 100us

  /// Drop requests whose deadline already passed when a worker dequeues
  /// them, without solving.
  bool shed_expired = true;

  void validate() const;

  /// True when \p req should be shed at dequeue time \p now.
  [[nodiscard]] bool should_shed(const Request& req,
                                 Clock::time_point now) const {
    return shed_expired && req.deadline.has_value() && now > *req.deadline;
  }

  /// Backoff before retry number \p retry (1-based).
  [[nodiscard]] std::chrono::nanoseconds backoff_before(
      std::uint32_t retry) const;
};

}  // namespace dagsfc::serve
