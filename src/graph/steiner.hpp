#pragma once
/// \file steiner.hpp
/// Exact minimum Steiner tree (Dreyfus–Wagner DP).
///
/// Why the embedding library needs this: the paper's formula (9) charges each
/// network link at most once per layer for the *inter-layer multicast* from
/// the previous layer's end node to all VNFs of the next layer. The cheapest
/// such multicast is exactly a minimum Steiner tree whose terminals are
/// {start node} ∪ {layer VNF nodes}. The exact reference solver uses this DP
/// to price placements optimally; the heuristics only approximate it with
/// unions of shortest paths, and the gap is measured in tests and the
/// ablation bench.
///
/// Complexity O(3^k·n + 2^k·n log n·deg) for k terminals — fine for the
/// layer widths the paper uses (φ ≤ 5, so k ≤ 6) on small graphs.

#include <optional>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace dagsfc::graph {

struct SteinerTree {
  double cost = 0.0;
  std::vector<EdgeId> edges;  // unique edges of the tree
};

/// Minimum-weight tree connecting all \p terminals (duplicates allowed and
/// ignored). At most 14 distinct terminals. Returns nullopt when the
/// terminals are not mutually reachable through the filtered subgraph.
/// A single distinct terminal yields an empty zero-cost tree.
[[nodiscard]] std::optional<SteinerTree> steiner_tree(
    const Graph& g, const std::vector<NodeId>& terminals,
    const EdgeFilter& filter = {});

}  // namespace dagsfc::graph
