#pragma once
/// \file steiner.hpp
/// Exact minimum Steiner tree (Dreyfus–Wagner DP).
///
/// Why the embedding library needs this: the paper's formula (9) charges each
/// network link at most once per layer for the *inter-layer multicast* from
/// the previous layer's end node to all VNFs of the next layer. The cheapest
/// such multicast is exactly a minimum Steiner tree whose terminals are
/// {start node} ∪ {layer VNF nodes}. The exact reference solver uses this DP
/// to price placements optimally; the heuristics only approximate it with
/// unions of shortest paths, and the gap is measured in tests and the
/// ablation bench.
///
/// Complexity O(3^k·n + 2^k·n log n·deg) for k terminals — fine for the
/// layer widths the paper uses (φ ≤ 5, so k ≤ 6) on small graphs.

#include <optional>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace dagsfc::graph {

struct SteinerTree {
  double cost = 0.0;
  std::vector<EdgeId> edges;  // unique edges of the tree
};

/// Flat tier: minimum-weight tree connecting all \p terminals through the
/// masked subgraph (null mask ⇒ all edges), using \p ws for the base-case
/// Dijkstras and the subset relaxations' heap. The DP tables themselves are
/// still allocated per call — this entry point exists for mask/workspace
/// plumbing consistency, not allocation freedom (the DP dominates anyway).
/// Bit-identical to the legacy overload below.
[[nodiscard]] std::optional<SteinerTree> steiner_tree(
    const Graph& g, const std::vector<NodeId>& terminals, const EdgeMask* mask,
    SearchWorkspace& ws);

/// Legacy tier: minimum-weight tree connecting all \p terminals (duplicates
/// allowed and ignored). At most 14 distinct terminals. Returns nullopt when
/// the terminals are not mutually reachable through the filtered subgraph.
/// A single distinct terminal yields an empty zero-cost tree.
[[nodiscard]] std::optional<SteinerTree> steiner_tree(
    const Graph& g, const std::vector<NodeId>& terminals,
    const EdgeFilter& filter = {});

}  // namespace dagsfc::graph
