#pragma once
/// \file generator.hpp
/// Random network topology generator following the paper's recipe (§5.1):
/// first a random spanning tree guarantees connectivity, then extra random
/// edges are inserted until the requested average node degree ("network
/// connectivity") is met. Edge weights are created as 1.0 placeholders; the
/// net layer overwrites them with link prices.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dagsfc::graph {

struct RandomGraphOptions {
  std::size_t num_nodes = 500;   // paper Table 2 default
  double average_degree = 6.0;   // paper Table 2 default
};

/// Generates a connected simple graph. The achieved average degree is the
/// closest value ≤ the request that a simple graph of this size permits
/// (a tree already fixes the minimum at 2·(n−1)/n).
[[nodiscard]] Graph random_connected_graph(Rng& rng,
                                           const RandomGraphOptions& opts);

}  // namespace dagsfc::graph
