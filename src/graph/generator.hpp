#pragma once
/// \file generator.hpp
/// Random network topology generator following the paper's recipe (§5.1):
/// first a random spanning tree guarantees connectivity, then extra random
/// edges are inserted until the requested average node degree ("network
/// connectivity") is met. Edge weights are created as 1.0 placeholders; the
/// net layer overwrites them with link prices.

#include "graph/graph.hpp"
#include "graph/topologies.hpp"
#include "util/rng.hpp"

namespace dagsfc::graph {

struct RandomGraphOptions {
  std::size_t num_nodes = 500;   // paper Table 2 default
  double average_degree = 6.0;   // paper Table 2 default
};

/// Generates a connected simple graph. The achieved average degree is the
/// closest value ≤ the request that a simple graph of this size permits
/// (a tree already fixes the minimum at 2·(n−1)/n).
[[nodiscard]] Graph random_connected_graph(Rng& rng,
                                           const RandomGraphOptions& opts);

// --- region-labeled substrates (shard layer inputs) ------------------------

/// Knobs of the region-labeled generators: how many regions, how big each
/// is, how densely regions interconnect, and how much pricier the
/// inter-region (border) links are than intra-region ones. The price
/// multiplier is carried as the border links' placeholder edge weight
/// (intra links keep weight 1.0), so pricing layers can tell the two
/// classes apart without re-deriving the partition.
struct RegionSpec {
  std::size_t regions = 4;            ///< shard count
  std::size_t nodes_per_region = 64;  ///< region size (Waxman generator)
  /// Expected border links per connected region pair, beyond the one that
  /// guarantees inter-region connectivity (Waxman generator).
  double inter_region_degree = 2.0;
  /// Extra region-pair chords beyond the connecting ring, as a fraction of
  /// all remaining pairs (Waxman generator; 0 = ring of regions only).
  double inter_region_density = 0.25;
  /// Border-link placeholder weight (intra links carry 1.0); pricing layers
  /// scale border link prices by this factor.
  double inter_price_multiplier = 4.0;
  /// Waxman parameters of each region's internal topology.
  WaxmanOptions waxman;
};

/// A substrate plus its per-node region labels (dense ids 0..regions-1).
struct RegionalGraph {
  Graph graph;
  std::vector<std::uint32_t> region_of;  ///< per NodeId
  std::size_t num_regions = 0;
};

/// Region-labeled Waxman substrate: \p spec.regions independent Waxman
/// clouds of \p spec.nodes_per_region nodes each (contiguous id blocks),
/// connected by a ring of regions plus random chords, with
/// ~inter_region_degree random border links per connected pair. Always
/// connected; border links carry weight inter_price_multiplier.
[[nodiscard]] RegionalGraph make_regional_waxman(Rng& rng,
                                                 const RegionSpec& spec);

/// Region-labeled k-ary fat-tree: the topology of make_fat_tree(k) with
/// region 0 = the (k/2)² core switches (the "cloud"), region 1+p = pod p
/// (a "central office"). Aggregation↔core links are the border links and
/// carry weight \p inter_price_multiplier; everything else weighs 1.0.
[[nodiscard]] RegionalGraph make_regional_fat_tree(
    std::size_t k, double inter_price_multiplier = 4.0);

}  // namespace dagsfc::graph
