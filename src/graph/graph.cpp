#include "graph/graph.hpp"

#include <algorithm>

namespace dagsfc::graph {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double weight) {
  DAGSFC_CHECK(u < adjacency_.size() && v < adjacency_.size());
  DAGSFC_CHECK_MSG(u != v, "self loops are not allowed");
  DAGSFC_CHECK_MSG(weight >= 0.0, "edge weights (prices) must be >= 0");
  DAGSFC_CHECK_MSG(!find_edge(u, v).has_value(),
                   "parallel edges are not allowed");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  adjacency_[u].push_back(Incidence{id, v});
  adjacency_[v].push_back(Incidence{id, u});
  return id;
}

void Graph::set_weight(EdgeId e, double weight) {
  DAGSFC_CHECK(e < edges_.size());
  DAGSFC_CHECK(weight >= 0.0);
  edges_[e].weight = weight;
}

std::optional<EdgeId> Graph::find_edge(NodeId u, NodeId v) const {
  DAGSFC_CHECK(u < adjacency_.size() && v < adjacency_.size());
  // Scan the smaller incidence list.
  const NodeId probe = adjacency_[u].size() <= adjacency_[v].size() ? u : v;
  const NodeId want = probe == u ? v : u;
  for (const Incidence& inc : adjacency_[probe]) {
    if (inc.neighbor == want) return inc.edge;
  }
  return std::nullopt;
}

double Graph::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(adjacency_.size());
}

double Graph::path_cost(const Path& p) const {
  double total = 0.0;
  for (EdgeId e : p.edges) total += edge(e).weight;
  return total;
}

bool Graph::path_valid(const Path& p) const {
  if (p.nodes.empty()) return p.edges.empty();
  if (p.edges.size() + 1 != p.nodes.size()) return false;
  for (NodeId v : p.nodes) {
    if (!has_node(v)) return false;
  }
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    if (p.edges[i] >= edges_.size()) return false;
    const Edge& e = edges_[p.edges[i]];
    const NodeId a = p.nodes[i];
    const NodeId b = p.nodes[i + 1];
    if (!((e.u == a && e.v == b) || (e.u == b && e.v == a))) return false;
  }
  return true;
}

namespace {
std::size_t reachable_from(const Graph& g, NodeId start,
                           std::vector<char>& seen) {
  std::vector<NodeId> stack{start};
  seen[start] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++count;
    for (const Incidence& inc : g.neighbors(v)) {
      if (!seen[inc.neighbor]) {
        seen[inc.neighbor] = 1;
        stack.push_back(inc.neighbor);
      }
    }
  }
  return count;
}
}  // namespace

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  std::vector<char> seen(g.num_nodes(), 0);
  return reachable_from(g, 0, seen) == g.num_nodes();
}

std::size_t component_count(const Graph& g) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::size_t components = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!seen[v]) {
      ++components;
      (void)reachable_from(g, v, seen);
    }
  }
  return components;
}

}  // namespace dagsfc::graph
