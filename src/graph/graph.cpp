#include "graph/graph.hpp"

#include <algorithm>

namespace dagsfc::graph {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  csr_fresh_.store(false, std::memory_order_release);
  structure_rev_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double weight) {
  DAGSFC_CHECK(u < adjacency_.size() && v < adjacency_.size());
  DAGSFC_CHECK_MSG(u != v, "self loops are not allowed");
  DAGSFC_CHECK_MSG(weight >= 0.0, "edge weights (prices) must be >= 0");
  DAGSFC_CHECK_MSG(!find_edge(u, v).has_value(),
                   "parallel edges are not allowed");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  adjacency_[u].push_back(Incidence{id, v});
  adjacency_[v].push_back(Incidence{id, u});
  csr_fresh_.store(false, std::memory_order_release);
  structure_rev_.fetch_add(1, std::memory_order_relaxed);
  // A new edge also introduces a new weight.
  weight_rev_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

CsrView Graph::csr() const {
  if (!csr_fresh_.load(std::memory_order_acquire)) build_csr();
  return CsrView{csr_offsets_, csr_incidence_, csr_weights_};
}

void Graph::build_csr() const {
  std::lock_guard lock(csr_mu_);
  if (csr_fresh_.load(std::memory_order_relaxed)) return;
  const std::size_t n = adjacency_.size();
  csr_offsets_.resize(n + 1);
  csr_incidence_.clear();
  csr_incidence_.reserve(2 * edges_.size());
  csr_weights_.clear();
  csr_weights_.reserve(2 * edges_.size());
  csr_edge_slots_.assign(edges_.size(), {0, 0});
  std::uint32_t offset = 0;
  for (std::size_t v = 0; v < n; ++v) {
    csr_offsets_[v] = offset;
    // Row order = incidence-list insertion order, so CSR iteration visits
    // neighbors exactly as neighbors() does (determinism contract).
    for (const Incidence& inc : adjacency_[v]) {
      const auto slot = static_cast<std::uint32_t>(csr_incidence_.size());
      csr_incidence_.push_back(inc);
      csr_weights_.push_back(edges_[inc.edge].weight);
      // Each undirected edge appears in exactly two rows; record both slots
      // (in row order: u's first, then v's — the order doesn't matter).
      auto& slots = csr_edge_slots_[inc.edge];
      if (inc.neighbor == edges_[inc.edge].v) {
        slots[0] = slot;  // this is u's row
      } else {
        slots[1] = slot;  // this is v's row
      }
    }
    offset += static_cast<std::uint32_t>(adjacency_[v].size());
  }
  csr_offsets_[n] = offset;
  csr_fresh_.store(true, std::memory_order_release);
}

void Graph::set_weight(EdgeId e, double weight) {
  DAGSFC_CHECK(e < edges_.size());
  DAGSFC_CHECK(weight >= 0.0);
  edges_[e].weight = weight;
  if (csr_fresh_.load(std::memory_order_acquire)) {
    // Write the CSR weight mirror through so the packed view stays valid
    // without a rebuild. Mutating concurrently with readers is undefined
    // behaviour (same contract as every other mutator).
    const auto& slots = csr_edge_slots_[e];
    csr_weights_[slots[0]] = weight;
    csr_weights_[slots[1]] = weight;
  }
  weight_rev_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<EdgeId> Graph::find_edge(NodeId u, NodeId v) const {
  // Scan the smaller incidence list (checked inside the probe helper).
  const NodeId probe = find_edge_probe_endpoint(u, v);
  const NodeId want = probe == u ? v : u;
  for (const Incidence& inc : adjacency_[probe]) {
    if (inc.neighbor == want) return inc.edge;
  }
  return std::nullopt;
}

double Graph::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(adjacency_.size());
}

double Graph::path_cost(const Path& p) const {
  double total = 0.0;
  for (EdgeId e : p.edges) total += edge(e).weight;
  return total;
}

bool Graph::path_valid(const Path& p) const {
  if (p.nodes.empty()) return p.edges.empty();
  if (p.edges.size() + 1 != p.nodes.size()) return false;
  for (NodeId v : p.nodes) {
    if (!has_node(v)) return false;
  }
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    if (p.edges[i] >= edges_.size()) return false;
    const Edge& e = edges_[p.edges[i]];
    const NodeId a = p.nodes[i];
    const NodeId b = p.nodes[i + 1];
    if (!((e.u == a && e.v == b) || (e.u == b && e.v == a))) return false;
  }
  return true;
}

namespace {
std::size_t reachable_from(const Graph& g, NodeId start,
                           std::vector<char>& seen) {
  std::vector<NodeId> stack{start};
  seen[start] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++count;
    for (const Incidence& inc : g.neighbors(v)) {
      if (!seen[inc.neighbor]) {
        seen[inc.neighbor] = 1;
        stack.push_back(inc.neighbor);
      }
    }
  }
  return count;
}
}  // namespace

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  std::vector<char> seen(g.num_nodes(), 0);
  return reachable_from(g, 0, seen) == g.num_nodes();
}

std::size_t component_count(const Graph& g) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::size_t components = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!seen[v]) {
      ++components;
      (void)reachable_from(g, v, seen);
    }
  }
  return components;
}

}  // namespace dagsfc::graph
