#include "graph/yen.hpp"

#include <algorithm>
#include <set>

namespace dagsfc::graph {

namespace {

/// Lexicographic tie-break so results are deterministic across platforms.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = min_cost_path(g, source, target, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;  // dedupe by node sequence
  known.insert(result.front().nodes);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Each node of the previous path (except the last) spawns a spur.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];

      // Edges removed for this spur: (a) the i-th edge of every accepted
      // path sharing the root prefix, (b) edges internal to the root path so
      // the spur cannot revisit it.
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(p.nodes.begin(), p.nodes.begin() + i + 1,
                       prev.nodes.begin())) {
          banned_edges.insert(p.edges[i]);
        }
      }
      std::set<NodeId> banned_nodes(prev.nodes.begin(), prev.nodes.begin() + i);

      EdgeFilter spur_filter = [&](EdgeId e) {
        if (filter && !filter(e)) return false;
        if (banned_edges.count(e)) return false;
        const Edge& ed = g.edge(e);
        if (banned_nodes.count(ed.u) || banned_nodes.count(ed.v)) return false;
        return true;
      };

      auto spur = min_cost_path(g, spur_node, target, spur_filter);
      if (!spur) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + i);
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + i);
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(),
                         spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(),
                         spur->edges.end());
      total.cost = g.path_cost(total);
      if (known.insert(total.nodes).second) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace dagsfc::graph
