#include "graph/yen.hpp"

#include <algorithm>
#include <set>

#include "graph/reference.hpp"

namespace dagsfc::graph {

namespace {

/// Lexicographic tie-break so results are deterministic across platforms.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  }
};

}  // namespace

// Structurally the seed algorithm (see reference.cpp) with one change: the
// per-spur closure over fresh std::sets of banned edges/nodes becomes a
// word-copy of the base mask with the banned bits cleared. "Edge incident to
// a banned node" and "banned edge id" carve out exactly the edges the seed
// filter rejected, so every spur search sees the same admissible subgraph
// and the accepted paths are bit-identical.
namespace {

/// Shared body: \p alt == nullptr runs the plain kernels; otherwise every
/// inner point-to-point search goes through the goal-directed tier. The
/// spur searches always run masked, so the landmark-routed upper bound is
/// unusable there (it prices a path that may use masked edges); the
/// landmark lower bounds remain admissible under any mask.
///
/// What makes the spur searches prunable anyway is a Lawler-style bound.
/// Let need = k − |result|. Once the candidate set holds ≥ need entries,
/// any new path costlier than the need-th best candidate B can never be
/// selected: selection always takes the global minimum, so before such a
/// path could surface, the need cheaper candidates would already have been
/// taken and the algorithm would be done (candidates are never removed
/// except by selection, and later inserts only push it further back; a tie
/// with B is kept, so the PathLess node-sequence tie-break still sees it).
/// Hence B − prefix_cost is a valid *threshold* for the spur search: seed
/// it via AltQuery::threshold semantics, and discard any returned total
/// costlier than B. The kernel guarantees bit-identical results whenever
/// the true spur cost is within the threshold, and every over-threshold
/// result is discarded here — exactly the set the unpruned run could have
/// inserted but never selected — so the k returned paths are bitwise
/// identical to the oracle-off run's. The drop test compares the same
/// g.path_cost(total) doubles against the same candidate-cost doubles in
/// both arms, so no float slack is needed on it.
std::vector<Path> yen_flat(const Graph& g, NodeId source, NodeId target,
                           std::size_t k, const EdgeMask* mask,
                           SearchWorkspace& ws, const AltQuery* alt) {
  std::vector<Path> result;
  if (k == 0) return result;

  AltQuery spur_alt;
  if (alt != nullptr) {
    DAGSFC_CHECK(alt->target == target);
    spur_alt = *alt;
    spur_alt.seed_ub = kInfCost;
    spur_alt.threshold = true;
  }

  auto first = alt != nullptr
                   ? min_cost_path(g, source, target, ws, mask, *alt)
                   : min_cost_path(g, source, target, ws, mask);
  if (!first) return result;
  result.push_back(std::move(*first));

  EdgeMaskBuffer& base = ws.base_mask();
  if (mask != nullptr) {
    base.copy_from(*mask);
  } else {
    base.assign(g.num_edges(), true);
  }
  EdgeMaskBuffer& spur = ws.spur_mask();
  const CsrView csr = g.csr();

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;  // dedupe by node sequence
  known.insert(result.front().nodes);

  std::vector<double> prefix_cost;  // prefix_cost[i] = cost of prev[0..i]
  while (result.size() < k) {
    const Path& prev = result.back();
    if (alt != nullptr) {
      prefix_cost.resize(prev.nodes.size());
      prefix_cost[0] = 0.0;
      for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
        prefix_cost[i + 1] = prefix_cost[i] + g.edge(prev.edges[i]).weight;
      }
    }
    // Each node of the previous path (except the last) spawns a spur.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];

      // Lawler bound (see the function comment): the need-th best candidate
      // caps every total still worth generating. Recomputed per spur — the
      // set grows as the round progresses, and the bound only tightens.
      double bound = kInfCost;
      if (alt != nullptr) {
        const std::size_t need = k - result.size();
        if (candidates.size() >= need) {
          bound = std::next(candidates.begin(),
                            static_cast<std::ptrdiff_t>(need) - 1)
                      ->cost;
          if (prefix_cost[i] > bound) continue;  // no spur can qualify
        }
        spur_alt.seed_ub =
            bound == kInfCost ? kInfCost : bound - prefix_cost[i];
      }

      // Edges removed for this spur: (a) the i-th edge of every accepted
      // path sharing the root prefix, (b) edges internal to the root path so
      // the spur cannot revisit it — here "clear every edge incident to a
      // root-prefix node", which bans the same traversals the seed's
      // banned_nodes test did.
      spur.copy_from(base);
      for (const Path& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(p.nodes.begin(), p.nodes.begin() + i + 1,
                       prev.nodes.begin())) {
          spur.clear(p.edges[i]);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        for (const Incidence& inc : csr.row(prev.nodes[j])) {
          spur.clear(inc.edge);
        }
      }

      const EdgeMask spur_mask = spur.view();
      auto spur_path =
          alt != nullptr
              ? min_cost_path(g, spur_node, target, ws, &spur_mask, spur_alt)
              : min_cost_path(g, spur_node, target, ws, &spur_mask);
      if (!spur_path) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + i);
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + i);
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(),
                         spur_path->nodes.end());
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.cost = g.path_cost(total);
      // Over-threshold results are unreliable under a threshold seed and
      // unselectable regardless — drop before they touch known/candidates.
      if (total.cost > bound) continue;
      if (known.insert(total.nodes).second) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeMask* mask, SearchWorkspace& ws) {
  return yen_flat(g, source, target, k, mask, ws, nullptr);
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeMask* mask, SearchWorkspace& ws,
                                   const AltQuery& alt) {
  return yen_flat(g, source, target, k, mask, ws, &alt);
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeFilter& filter) {
  if (!flat_search_default()) {
    return reference::k_shortest_paths(g, source, target, k, filter);
  }
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return k_shortest_paths(g, source, target, k, nullptr, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return k_shortest_paths(g, source, target, k, &mask, ws);
}

}  // namespace dagsfc::graph
