#include "graph/yen.hpp"

#include <algorithm>
#include <set>

#include "graph/reference.hpp"

namespace dagsfc::graph {

namespace {

/// Lexicographic tie-break so results are deterministic across platforms.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  }
};

}  // namespace

// Structurally the seed algorithm (see reference.cpp) with one change: the
// per-spur closure over fresh std::sets of banned edges/nodes becomes a
// word-copy of the base mask with the banned bits cleared. "Edge incident to
// a banned node" and "banned edge id" carve out exactly the edges the seed
// filter rejected, so every spur search sees the same admissible subgraph
// and the accepted paths are bit-identical.
std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeMask* mask, SearchWorkspace& ws) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = min_cost_path(g, source, target, ws, mask);
  if (!first) return result;
  result.push_back(std::move(*first));

  EdgeMaskBuffer& base = ws.base_mask();
  if (mask != nullptr) {
    base.copy_from(*mask);
  } else {
    base.assign(g.num_edges(), true);
  }
  EdgeMaskBuffer& spur = ws.spur_mask();
  const CsrView csr = g.csr();

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;  // dedupe by node sequence
  known.insert(result.front().nodes);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Each node of the previous path (except the last) spawns a spur.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];

      // Edges removed for this spur: (a) the i-th edge of every accepted
      // path sharing the root prefix, (b) edges internal to the root path so
      // the spur cannot revisit it — here "clear every edge incident to a
      // root-prefix node", which bans the same traversals the seed's
      // banned_nodes test did.
      spur.copy_from(base);
      for (const Path& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(p.nodes.begin(), p.nodes.begin() + i + 1,
                       prev.nodes.begin())) {
          spur.clear(p.edges[i]);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        for (const Incidence& inc : csr.row(prev.nodes[j])) {
          spur.clear(inc.edge);
        }
      }

      const EdgeMask spur_mask = spur.view();
      auto spur_path = min_cost_path(g, spur_node, target, ws, &spur_mask);
      if (!spur_path) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + i);
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + i);
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(),
                         spur_path->nodes.end());
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.cost = g.path_cost(total);
      if (known.insert(total.nodes).second) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeFilter& filter) {
  if (!flat_search_default()) {
    return reference::k_shortest_paths(g, source, target, k, filter);
  }
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return k_shortest_paths(g, source, target, k, nullptr, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return k_shortest_paths(g, source, target, k, &mask, ws);
}

}  // namespace dagsfc::graph
