#include "graph/dijkstra.hpp"

#include "graph/reference.hpp"

namespace dagsfc::graph {

std::optional<Path> ShortestPathTree::path_to(NodeId target) const {
  if (!reached(target)) return std::nullopt;
  // One parent walk to count hops, then exact-size fills backwards — no
  // push_back growth, no reverse.
  std::size_t hops = 0;
  for (NodeId v = target; v != source; v = parent[v]) ++hops;
  Path p;
  p.cost = dist[target];
  p.nodes.resize(hops + 1);
  p.edges.resize(hops);
  NodeId v = target;
  for (std::size_t i = hops; i > 0; --i) {
    p.nodes[i] = v;
    p.edges[i - 1] = parent_edge[v];
    v = parent[v];
  }
  p.nodes[0] = source;
  return p;
}

namespace {

/// The flat relaxation loop, templated on the edge-admission test so the
/// unfiltered instantiation carries no per-edge branch on a mask pointer.
/// The scan streams the CSR incidence and weight arrays in lockstep — the
/// only random access left per arc is the neighbor's fused dist/stamp slot.
///
/// Bit-identity with reference::run_dijkstra: the loop structure (pop →
/// stale check → stop check → relax on strict improvement) is the same, CSR
/// rows replay the adjacency lists in insertion order, and the workspace
/// heap pops in the same (dist, node) lexicographic order as the seed's
/// std::priority_queue. Since a node is only re-pushed with a strictly
/// smaller dist, all live heap entries are distinct, so *any* correct
/// min-heap pops the identical sequence — neither the heap's layout nor its
/// integer key encoding can change a parent, a distance, or a tie-break.
template <typename Allow>
void run_flat(const Graph& g, NodeId source, SearchWorkspace& ws,
              const Allow& allow, NodeId stop_at) {
  DAGSFC_CHECK(g.has_node(source));
  const CsrView csr = g.csr();
  const std::uint32_t* const off = csr.offsets.data();
  const Incidence* const inc = csr.incidence.data();
  const double* const wt = csr.weights.data();
  ws.prepare(g);
  ws.start(source);
  while (!ws.heap_empty()) {
    const auto [d, v] = ws.heap_pop();
    if (d > ws.dist_unchecked(v)) continue;  // stale entry
    if (v == stop_at) break;
    const std::uint32_t row_end = off[v + 1];
    for (std::uint32_t s = off[v]; s != row_end; ++s) {
      const Incidence in = inc[s];
      if (!allow(in.edge)) continue;
      const double nd = d + wt[s];
      if (nd < ws.dist_if_live(in.neighbor)) {
        ws.relax(in.neighbor, nd, v, in.edge);
        ws.heap_push(nd, in.neighbor);
      }
    }
  }
}

}  // namespace

void dijkstra_into(const Graph& g, NodeId source, SearchWorkspace& ws,
                   const EdgeMask* mask, NodeId stop_at) {
  if (mask == nullptr) {
    run_flat(
        g, source, ws, [](EdgeId) { return true; }, stop_at);
  } else {
    DAGSFC_ASSERT(mask->num_edges() >= g.num_edges());
    const EdgeMask m = *mask;
    run_flat(
        g, source, ws, [m](EdgeId e) { return m.allows(e); }, stop_at);
  }
}

ShortestPathTree export_tree(const SearchWorkspace& ws, std::size_t n) {
  ShortestPathTree t;
  t.source = ws.source();
  t.dist.resize(n);
  t.parent.resize(n);
  t.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    t.dist[v] = ws.dist(v);
    t.parent[v] = ws.parent(v);
    t.parent_edge[v] = ws.parent_edge(v);
  }
  return t;
}

std::optional<Path> extract_path(const SearchWorkspace& ws, NodeId target) {
  if (!ws.reached(target)) return std::nullopt;
  const NodeId source = ws.source();
  std::size_t hops = 0;
  for (NodeId v = target; v != source; v = ws.parent(v)) ++hops;
  Path p;
  p.cost = ws.dist_unchecked(target);
  p.nodes.resize(hops + 1);
  p.edges.resize(hops);
  NodeId v = target;
  for (std::size_t i = hops; i > 0; --i) {
    p.nodes[i] = v;
    p.edges[i - 1] = ws.parent_edge(v);
    v = ws.parent(v);
  }
  p.nodes[0] = source;
  return p;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source, SearchWorkspace& ws,
                          const EdgeMask* mask) {
  dijkstra_into(g, source, ws, mask);
  return export_tree(ws, g.num_nodes());
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  SearchWorkspace& ws, const EdgeMask* mask) {
  DAGSFC_CHECK(g.has_node(target));
  dijkstra_into(g, source, ws, mask, target);
  return extract_path(ws, target);
}

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeFilter& filter) {
  if (!flat_search_default()) return reference::dijkstra(g, source, filter);
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return dijkstra(g, source, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return dijkstra(g, source, ws, &mask);
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeFilter& filter) {
  if (!flat_search_default()) {
    return reference::min_cost_path(g, source, target, filter);
  }
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return min_cost_path(g, source, target, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return min_cost_path(g, source, target, ws, &mask);
}

}  // namespace dagsfc::graph
