#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace dagsfc::graph {

std::optional<Path> ShortestPathTree::path_to(NodeId target) const {
  if (!reached(target)) return std::nullopt;
  Path p;
  p.cost = dist[target];
  NodeId v = target;
  while (v != source) {
    p.nodes.push_back(v);
    p.edges.push_back(parent_edge[v]);
    v = parent[v];
  }
  p.nodes.push_back(source);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  return p;
}

namespace {

ShortestPathTree run_dijkstra(const Graph& g, NodeId source,
                              const EdgeFilter& filter,
                              std::optional<NodeId> stop_at) {
  DAGSFC_CHECK(g.has_node(source));
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(g.num_nodes(), kInfCost);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.parent_edge.assign(g.num_nodes(), kInvalidEdge);

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > t.dist[v]) continue;  // stale entry
    if (stop_at && v == *stop_at) break;
    for (const Incidence& inc : g.neighbors(v)) {
      if (filter && !filter(inc.edge)) continue;
      const double nd = d + g.edge(inc.edge).weight;
      if (nd < t.dist[inc.neighbor]) {
        t.dist[inc.neighbor] = nd;
        t.parent[inc.neighbor] = v;
        t.parent_edge[inc.neighbor] = inc.edge;
        pq.emplace(nd, inc.neighbor);
      }
    }
  }
  return t;
}

}  // namespace

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeFilter& filter) {
  return run_dijkstra(g, source, filter, std::nullopt);
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeFilter& filter) {
  DAGSFC_CHECK(g.has_node(target));
  return run_dijkstra(g, source, filter, target).path_to(target);
}

}  // namespace dagsfc::graph
