#include "graph/dijkstra.hpp"

#include "graph/reference.hpp"

namespace dagsfc::graph {

std::optional<Path> ShortestPathTree::path_to(NodeId target) const {
  if (!reached(target)) return std::nullopt;
  // One parent walk to count hops, then exact-size fills backwards — no
  // push_back growth, no reverse.
  std::size_t hops = 0;
  for (NodeId v = target; v != source; v = parent[v]) ++hops;
  Path p;
  p.cost = dist[target];
  p.nodes.resize(hops + 1);
  p.edges.resize(hops);
  NodeId v = target;
  for (std::size_t i = hops; i > 0; --i) {
    p.nodes[i] = v;
    p.edges[i - 1] = parent_edge[v];
    v = parent[v];
  }
  p.nodes[0] = source;
  return p;
}

namespace {

/// The flat relaxation loop, templated on the edge-admission test so the
/// unfiltered instantiation carries no per-edge branch on a mask pointer.
/// The scan streams the CSR incidence and weight arrays in lockstep — the
/// only random access left per arc is the neighbor's fused dist/stamp slot.
///
/// Bit-identity with reference::run_dijkstra: the loop structure (pop →
/// stale check → stop check → relax on strict improvement) is the same, CSR
/// rows replay the adjacency lists in insertion order, and the workspace
/// heap pops in the same (dist, node) lexicographic order as the seed's
/// std::priority_queue. Since a node is only re-pushed with a strictly
/// smaller dist, all live heap entries are distinct, so *any* correct
/// min-heap pops the identical sequence — neither the heap's layout nor its
/// integer key encoding can change a parent, a distance, or a tie-break.
template <typename Allow>
void run_flat(const Graph& g, NodeId source, SearchWorkspace& ws,
              const Allow& allow, NodeId stop_at) {
  DAGSFC_CHECK(g.has_node(source));
  const CsrView csr = g.csr();
  const std::uint32_t* const off = csr.offsets.data();
  const Incidence* const inc = csr.incidence.data();
  const double* const wt = csr.weights.data();
  ws.prepare(g);
  ws.start(source);
  while (!ws.heap_empty()) {
    const auto [d, v] = ws.heap_pop();
    if (d > ws.dist_unchecked(v)) continue;  // stale entry
    if (v == stop_at) break;
    const std::uint32_t row_end = off[v + 1];
    for (std::uint32_t s = off[v]; s != row_end; ++s) {
      const Incidence in = inc[s];
      if (!allow(in.edge)) continue;
      const double nd = d + wt[s];
      if (nd < ws.dist_if_live(in.neighbor)) {
        ws.relax(in.neighbor, nd, v, in.edge);
        ws.heap_push(nd, in.neighbor);
      }
    }
  }
}

/// run_flat with ALT pruning toward stop_at. The loop is run_flat's, plus a
/// guard: candidates whose settled-or-tentative cost d plus the landmark
/// lower bound lb(v) = max_l |d(l,t) − d(l,v)| exceeds prune_guard(ub) are
/// skipped — a pop skips the row scan, a relaxation skips the write and
/// push. ub starts at alt.seed_ub (kInfCost when unseeded) and tightens to
/// the best tentative distance of stop_at each time it improves.
///
/// Why the surviving run is bitwise identical to run_flat's:
///   * Nothing is reordered. Keys, pushes, and the (key, node) pop order
///     are untouched; pruning only removes entries, and the relative order
///     of the survivors is the order run_flat would pop them in.
///   * The target's final parent chain survives intact. For any node w on
///     the eventual chain, its final write has value D(s,w) and
///     lb(w) ≤ d(w,t) ≤ (chain cost w→t), so value + lb(w) ≤ dist(t) ≤ ub
///     at every moment (ub is always ≥ the true distance D(t)); the 1e-9
///     relative slack in prune_guard absorbs the ulp-level difference
///     between the chain's summed doubles and the bound arithmetic. The
///     same holds for the pops expanding those writes.
///   * Dropped work stays dropped. The bound is consistent
///     (|lb(v) − lb(w)| ≤ w(v,w)), so every write derived from a pruned
///     candidate would itself fail the test — a pruned subtree cannot
///     resurface and influence a surviving slot.
/// Together: identical pops and writes along everything that can reach the
/// target at optimal cost, so extract_path(ws, stop_at) — nodes, edges, and
/// the summed cost — matches the unpruned kernel bit for bit (the
/// differential battery in tests/test_distance_oracle.cpp checks this over
/// every embedder).
template <typename Allow>
void run_flat_alt(const Graph& g, NodeId source, SearchWorkspace& ws,
                  const Allow& allow, NodeId stop_at, const AltQuery& alt) {
  DAGSFC_CHECK(g.has_node(source) && g.has_node(stop_at));
  DAGSFC_ASSERT(stop_at == alt.target);
  const CsrView csr = g.csr();
  const std::uint32_t* const off = csr.offsets.data();
  const Incidence* const inc = csr.incidence.data();
  const double* const wt = csr.weights.data();
  ws.prepare(g);
  ws.start(source);
  double guard = prune_guard(alt.seed_ub);  // inf-safe: stays +inf unseeded
  std::uint64_t tested = 0;
  std::uint64_t pruned = 0;
  while (!ws.heap_empty()) {
    const auto [d, v] = ws.heap_pop();
    if (d > ws.dist_unchecked(v)) continue;  // stale entry
    if (v == stop_at) break;
    ++tested;
    if (d + alt.lower_bound(v) > guard) {
      ++pruned;
      continue;
    }
    const std::uint32_t row_end = off[v + 1];
    for (std::uint32_t s = off[v]; s != row_end; ++s) {
      const Incidence in = inc[s];
      if (!allow(in.edge)) continue;
      const double nd = d + wt[s];
      if (nd < ws.dist_if_live(in.neighbor)) {
        ++tested;
        if (nd + alt.lower_bound(in.neighbor) > guard) {
          ++pruned;
          continue;
        }
        ws.relax(in.neighbor, nd, v, in.edge);
        ws.heap_push(nd, in.neighbor);
        if (in.neighbor == stop_at) {
          const double tightened = prune_guard(nd);
          if (tightened < guard) guard = tightened;
        }
      }
    }
  }
  if (alt.stats != nullptr) {
    alt.stats->tested += tested;
    alt.stats->pruned += pruned;
  }
}

}  // namespace

void dijkstra_into(const Graph& g, NodeId source, SearchWorkspace& ws,
                   const EdgeMask* mask, NodeId stop_at) {
  if (mask == nullptr) {
    run_flat(
        g, source, ws, [](EdgeId) { return true; }, stop_at);
  } else {
    DAGSFC_ASSERT(mask->num_edges() >= g.num_edges());
    const EdgeMask m = *mask;
    run_flat(
        g, source, ws, [m](EdgeId e) { return m.allows(e); }, stop_at);
  }
}

ShortestPathTree export_tree(const SearchWorkspace& ws, std::size_t n) {
  ShortestPathTree t;
  t.source = ws.source();
  t.dist.resize(n);
  t.parent.resize(n);
  t.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    t.dist[v] = ws.dist(v);
    t.parent[v] = ws.parent(v);
    t.parent_edge[v] = ws.parent_edge(v);
  }
  return t;
}

std::optional<Path> extract_path(const SearchWorkspace& ws, NodeId target) {
  if (!ws.reached(target)) return std::nullopt;
  const NodeId source = ws.source();
  std::size_t hops = 0;
  for (NodeId v = target; v != source; v = ws.parent(v)) ++hops;
  Path p;
  p.cost = ws.dist_unchecked(target);
  p.nodes.resize(hops + 1);
  p.edges.resize(hops);
  NodeId v = target;
  for (std::size_t i = hops; i > 0; --i) {
    p.nodes[i] = v;
    p.edges[i - 1] = ws.parent_edge(v);
    v = ws.parent(v);
  }
  p.nodes[0] = source;
  return p;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source, SearchWorkspace& ws,
                          const EdgeMask* mask) {
  dijkstra_into(g, source, ws, mask);
  return export_tree(ws, g.num_nodes());
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  SearchWorkspace& ws, const EdgeMask* mask) {
  DAGSFC_CHECK(g.has_node(target));
  dijkstra_into(g, source, ws, mask, target);
  return extract_path(ws, target);
}

void dijkstra_into(const Graph& g, NodeId source, SearchWorkspace& ws,
                   const EdgeMask* mask, NodeId stop_at, const AltQuery& alt) {
  if (alt.active == 0 && alt.seed_ub == kInfCost) {
    // Nothing to prune with — run the plain kernel (same results either
    // way; this just skips the per-candidate bound arithmetic).
    dijkstra_into(g, source, ws, mask, stop_at);
    return;
  }
  // A landmark-routed upper bound is the cost of a real path that may use
  // masked edges — seeding it under a mask would prune valid routes. The
  // exception is a caller-declared threshold seed (alt.threshold): the
  // caller promises to discard any result costlier than the seed, so
  // over-pruning beyond it is unobservable (see AltQuery::seed_ub).
  DAGSFC_CHECK(mask == nullptr || alt.seed_ub == kInfCost || alt.threshold);
  if (mask == nullptr) {
    run_flat_alt(
        g, source, ws, [](EdgeId) { return true; }, stop_at, alt);
  } else {
    DAGSFC_ASSERT(mask->num_edges() >= g.num_edges());
    const EdgeMask m = *mask;
    run_flat_alt(
        g, source, ws, [m](EdgeId e) { return m.allows(e); }, stop_at, alt);
  }
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  SearchWorkspace& ws, const EdgeMask* mask,
                                  const AltQuery& alt) {
  DAGSFC_CHECK(g.has_node(target));
  dijkstra_into(g, source, ws, mask, target, alt);
  return extract_path(ws, target);
}

namespace {

/// The layered multi-source loop shared by the masked and unmasked
/// instantiations. State ids are layer·|V| + node; layers run back to back
/// over one prepared slot bank, so the heap's working set never exceeds a
/// single standalone search and the CSR/weight streams stay hot across
/// layers. Every layer's pass *is* the standalone loop — only the slot
/// indices carry the layer offset — so per-layer results are bitwise the
/// standalone run's by construction.
template <typename Allow>
void run_flat_multi(const Graph& g, std::span<const NodeId> sources,
                    SearchWorkspace& ws, const Allow& allow) {
  const std::size_t n = g.num_nodes();
  const std::size_t k = sources.size();
  DAGSFC_CHECK(k > 0);
  DAGSFC_CHECK_MSG(k * n < static_cast<std::size_t>(kInvalidNode),
                   "layered state space must fit the node id type");
  const CsrView csr = g.csr();
  const std::uint32_t* const off = csr.offsets.data();
  const Incidence* const inc = csr.incidence.data();
  const double* const wt = csr.weights.data();
  for (const NodeId s : sources) DAGSFC_CHECK(g.has_node(s));
  ws.prepare_states(k * n, 2 * g.num_edges() + 2);
  for (std::size_t layer = 0; layer < k; ++layer) {
    const NodeId layer_base = static_cast<NodeId>(layer * n);
    const auto sv = static_cast<NodeId>(layer_base + sources[layer]);
    ws.relax(sv, 0.0, kInvalidNode, kInvalidEdge);
    ws.heap_push(0.0, sv);
    while (!ws.heap_empty()) {
      const auto [d, sv2] = ws.heap_pop();
      if (d > ws.dist_unchecked(sv2)) continue;  // stale entry
      const auto v = static_cast<NodeId>(sv2 - layer_base);
      const std::uint32_t row_end = off[v + 1];
      for (std::uint32_t s = off[v]; s != row_end; ++s) {
        const Incidence in = inc[s];
        if (!allow(in.edge)) continue;
        const double nd = d + wt[s];
        const NodeId w = layer_base + in.neighbor;
        if (nd < ws.dist_if_live(w)) {
          ws.relax(w, nd, sv2, in.edge);
          ws.heap_push(nd, w);
        }
      }
    }
  }
}

}  // namespace

void multi_source_dijkstra_into(const Graph& g, std::span<const NodeId> sources,
                                SearchWorkspace& ws, const EdgeMask* mask) {
  if (mask == nullptr) {
    run_flat_multi(g, sources, ws, [](EdgeId) { return true; });
  } else {
    DAGSFC_ASSERT(mask->num_edges() >= g.num_edges());
    const EdgeMask m = *mask;
    run_flat_multi(g, sources, ws, [m](EdgeId e) { return m.allows(e); });
  }
}

namespace {

template <typename Allow>
void run_flat_targets(const Graph& g, NodeId source,
                      std::span<const NodeId> targets, SearchWorkspace& ws,
                      const Allow& allow) {
  DAGSFC_CHECK(g.has_node(source));
  const CsrView csr = g.csr();
  const std::uint32_t* const off = csr.offsets.data();
  const Incidence* const inc = csr.incidence.data();
  const double* const wt = csr.weights.data();
  // Pending = targets not yet settled. Small list, so the per-pop membership
  // scan beats any indexed structure; removing *all* matches of a popped
  // node also makes duplicate target entries harmless.
  std::vector<NodeId>& pending = ws.scratch_nodes();
  pending.assign(targets.begin(), targets.end());
  for (const NodeId t : pending) DAGSFC_CHECK(g.has_node(t));
  ws.prepare(g);
  ws.start(source);
  while (!ws.heap_empty() && !pending.empty()) {
    const auto [d, v] = ws.heap_pop();
    if (d > ws.dist_unchecked(v)) continue;  // stale entry
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i] == v) {
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
    if (pending.empty()) break;  // last target settled; its row is moot
    const std::uint32_t row_end = off[v + 1];
    for (std::uint32_t s = off[v]; s != row_end; ++s) {
      const Incidence in = inc[s];
      if (!allow(in.edge)) continue;
      const double nd = d + wt[s];
      if (nd < ws.dist_if_live(in.neighbor)) {
        ws.relax(in.neighbor, nd, v, in.edge);
        ws.heap_push(nd, in.neighbor);
      }
    }
  }
}

}  // namespace

void dijkstra_into_targets(const Graph& g, NodeId source,
                           std::span<const NodeId> targets,
                           SearchWorkspace& ws, const EdgeMask* mask) {
  if (mask == nullptr) {
    run_flat_targets(g, source, targets, ws, [](EdgeId) { return true; });
  } else {
    DAGSFC_ASSERT(mask->num_edges() >= g.num_edges());
    const EdgeMask m = *mask;
    run_flat_targets(g, source, targets, ws,
                     [m](EdgeId e) { return m.allows(e); });
  }
}

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeFilter& filter) {
  if (!flat_search_default()) return reference::dijkstra(g, source, filter);
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return dijkstra(g, source, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return dijkstra(g, source, ws, &mask);
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeFilter& filter) {
  if (!flat_search_default()) {
    return reference::min_cost_path(g, source, target, filter);
  }
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return min_cost_path(g, source, target, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return min_cost_path(g, source, target, ws, &mask);
}

}  // namespace dagsfc::graph
