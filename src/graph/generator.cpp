#include "graph/generator.hpp"

#include <algorithm>

namespace dagsfc::graph {

Graph random_connected_graph(Rng& rng, const RandomGraphOptions& opts) {
  DAGSFC_CHECK_MSG(opts.num_nodes > 0, "network size must be positive");
  DAGSFC_CHECK_MSG(opts.average_degree >= 0.0, "degree must be non-negative");
  const std::size_t n = opts.num_nodes;
  Graph g(n);
  if (n == 1) return g;

  // Random spanning tree: attach each node to a uniformly random earlier
  // node, after shuffling ids so the attachment order is itself random.
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId parent = order[rng.index(i)];
    (void)g.add_edge(order[i], parent, 1.0);
  }

  // Densify to the target average degree d: |E| = d·n/2, clamped to the
  // complete graph.
  const auto max_edges = n * (n - 1) / 2;
  auto target_edges = static_cast<std::size_t>(
      opts.average_degree * static_cast<double>(n) / 2.0 + 0.5);
  target_edges = std::clamp(target_edges, g.num_edges(), max_edges);

  // Rejection sampling is fast while the graph is sparse; bail out to a
  // dense enumeration if the reject rate becomes pathological.
  std::size_t consecutive_rejects = 0;
  while (g.num_edges() < target_edges) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (u == v || g.find_edge(u, v).has_value()) {
      if (++consecutive_rejects > 50 * n) break;  // nearly complete graph
      continue;
    }
    consecutive_rejects = 0;
    (void)g.add_edge(u, v, 1.0);
  }
  if (g.num_edges() < target_edges) {
    // Dense fallback: enumerate missing pairs in random order.
    std::vector<std::pair<NodeId, NodeId>> missing;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (!g.find_edge(u, v).has_value()) missing.emplace_back(u, v);
      }
    }
    rng.shuffle(missing);
    for (const auto& [u, v] : missing) {
      if (g.num_edges() >= target_edges) break;
      (void)g.add_edge(u, v, 1.0);
    }
  }
  DAGSFC_ASSERT(is_connected(g));
  return g;
}

}  // namespace dagsfc::graph
