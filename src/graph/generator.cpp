#include "graph/generator.hpp"

#include <algorithm>
#include <utility>

#include "graph/topologies.hpp"

namespace dagsfc::graph {

Graph random_connected_graph(Rng& rng, const RandomGraphOptions& opts) {
  DAGSFC_CHECK_MSG(opts.num_nodes > 0, "network size must be positive");
  DAGSFC_CHECK_MSG(opts.average_degree >= 0.0, "degree must be non-negative");
  const std::size_t n = opts.num_nodes;
  Graph g(n);
  if (n == 1) return g;

  // Random spanning tree: attach each node to a uniformly random earlier
  // node, after shuffling ids so the attachment order is itself random.
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId parent = order[rng.index(i)];
    (void)g.add_edge(order[i], parent, 1.0);
  }

  // Densify to the target average degree d: |E| = d·n/2, clamped to the
  // complete graph.
  const auto max_edges = n * (n - 1) / 2;
  auto target_edges = static_cast<std::size_t>(
      opts.average_degree * static_cast<double>(n) / 2.0 + 0.5);
  target_edges = std::clamp(target_edges, g.num_edges(), max_edges);

  // Rejection sampling is fast while the graph is sparse; bail out to a
  // dense enumeration if the reject rate becomes pathological.
  std::size_t consecutive_rejects = 0;
  while (g.num_edges() < target_edges) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (u == v || g.find_edge(u, v).has_value()) {
      if (++consecutive_rejects > 50 * n) break;  // nearly complete graph
      continue;
    }
    consecutive_rejects = 0;
    (void)g.add_edge(u, v, 1.0);
  }
  if (g.num_edges() < target_edges) {
    // Dense fallback: enumerate missing pairs in random order.
    std::vector<std::pair<NodeId, NodeId>> missing;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (!g.find_edge(u, v).has_value()) missing.emplace_back(u, v);
      }
    }
    rng.shuffle(missing);
    for (const auto& [u, v] : missing) {
      if (g.num_edges() >= target_edges) break;
      (void)g.add_edge(u, v, 1.0);
    }
  }
  DAGSFC_ASSERT(is_connected(g));
  return g;
}

RegionalGraph make_regional_waxman(Rng& rng, const RegionSpec& spec) {
  DAGSFC_CHECK_MSG(spec.regions >= 1, "need at least one region");
  DAGSFC_CHECK_MSG(spec.nodes_per_region >= 1, "regions must be non-empty");
  DAGSFC_CHECK(spec.inter_region_degree >= 0.0);
  DAGSFC_CHECK(spec.inter_region_density >= 0.0 &&
               spec.inter_region_density <= 1.0);
  DAGSFC_CHECK(spec.inter_price_multiplier > 0.0);

  const std::size_t k = spec.regions;
  const std::size_t m = spec.nodes_per_region;
  RegionalGraph out;
  out.num_regions = k;
  out.graph = Graph(k * m);
  out.region_of.resize(k * m);

  // Each region is an independent Waxman cloud on a contiguous id block
  // [r·m, (r+1)·m).
  WaxmanOptions wopts = spec.waxman;
  wopts.num_nodes = m;
  for (std::size_t r = 0; r < k; ++r) {
    const auto base = static_cast<NodeId>(r * m);
    const Graph cloud = make_waxman(rng, wopts);
    for (std::size_t e = 0; e < cloud.num_edges(); ++e) {
      const Edge& edge = cloud.edge(static_cast<EdgeId>(e));
      (void)out.graph.add_edge(base + edge.u, base + edge.v, 1.0);
    }
    for (std::size_t i = 0; i < m; ++i) {
      out.region_of[r * m + i] = static_cast<std::uint32_t>(r);
    }
  }
  if (k == 1) return out;

  // Region pairs to connect: the ring 0—1—…—(k-1)—0 keeps the substrate
  // connected; chords over the remaining pairs follow the density knob.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t r = 0; r < k; ++r) {
    if (k == 2 && r == 1) break;  // 0—1 only once
    pairs.emplace_back(r, (r + 1) % k);
  }
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const bool on_ring = (b == a + 1) || (a == 0 && b == k - 1);
      if (on_ring) continue;
      if (rng.bernoulli(spec.inter_region_density)) pairs.emplace_back(a, b);
    }
  }

  // Border links: one guaranteed per connected pair, plus
  // ~inter_region_degree extra random endpoints.
  const auto extra = static_cast<std::size_t>(spec.inter_region_degree + 0.5);
  for (const auto& [a, b] : pairs) {
    const std::size_t want = 1 + extra;
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < want && attempts < 20 * want) {
      ++attempts;
      const auto u = static_cast<NodeId>(a * m + rng.index(m));
      const auto v = static_cast<NodeId>(b * m + rng.index(m));
      if (out.graph.find_edge(u, v).has_value()) continue;
      (void)out.graph.add_edge(u, v, spec.inter_price_multiplier);
      ++added;
    }
    DAGSFC_CHECK_MSG(added >= 1, "could not connect a region pair");
  }
  DAGSFC_ASSERT(is_connected(out.graph));
  return out;
}

RegionalGraph make_regional_fat_tree(std::size_t k,
                                     double inter_price_multiplier) {
  DAGSFC_CHECK_MSG(k >= 2 && k % 2 == 0, "fat-tree arity must be even");
  DAGSFC_CHECK(inter_price_multiplier > 0.0);
  RegionalGraph out;
  out.graph = make_fat_tree(k);
  const std::size_t cores = (k / 2) * (k / 2);
  out.num_regions = k + 1;
  out.region_of.resize(out.graph.num_nodes());
  for (std::size_t v = 0; v < out.graph.num_nodes(); ++v) {
    out.region_of[v] = v < cores
                           ? 0u
                           : static_cast<std::uint32_t>((v - cores) / k + 1);
  }
  // Border links are exactly the agg↔core links; mark them with the price
  // multiplier as their placeholder weight.
  for (EdgeId e = 0; e < out.graph.num_edges(); ++e) {
    const Edge& edge = out.graph.edge(e);
    if (out.region_of[edge.u] != out.region_of[edge.v]) {
      out.graph.set_weight(e, inter_price_multiplier);
    }
  }
  return out;
}

}  // namespace dagsfc::graph
