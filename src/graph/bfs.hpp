#pragma once
/// \file bfs.hpp
/// Breadth-first search in "rings", the primitive behind the paper's forward
/// and backward searches (§4.2, §4.3): iteration q of the search adds every
/// node adjacent to the set accumulated after iteration q−1.

#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Predicate limiting which nodes a search may enter. Returning false makes
/// the node invisible (used by the backward search, which is restricted to
/// the forward-search node set).
using NodeFilter = std::function<bool(NodeId)>;

/// Result of an expanding ring search.
struct BfsRings {
  /// rings[q] lists the nodes first reached in iteration q; rings[0] is the
  /// start node alone.
  std::vector<std::vector<NodeId>> rings;
  /// hop distance per node, or kUnreached.
  std::vector<std::uint32_t> depth;
  /// one BFS-tree parent per node (kInvalidNode for start/unreached).
  std::vector<NodeId> parent;

  static constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);

  [[nodiscard]] bool reached(NodeId v) const {
    return v < depth.size() && depth[v] != kUnreached;
  }
};

/// Full BFS from \p start. If \p filter is provided, nodes failing it are
/// never entered (the start node is always included).
[[nodiscard]] BfsRings bfs_rings(const Graph& g, NodeId start,
                                 const NodeFilter& filter = {});

/// Incremental ring expander: the caller pulls one ring at a time and stops
/// when its own coverage condition holds — exactly the shape of the paper's
/// forward search, which stops as soon as the accumulated node set hosts all
/// VNFs of the layer. Also supports a hard cap on the visited-set size
/// (MBBE strategy (1): |V^{F,l}| ≤ X_max).
class RingExpander {
 public:
  RingExpander(const Graph& g, NodeId start, NodeFilter filter = {});

  /// Expands one more ring. Returns the newly reached nodes; empty when the
  /// reachable (filtered) component is exhausted.
  const std::vector<NodeId>& expand();

  [[nodiscard]] const std::vector<NodeId>& current_ring() const noexcept {
    return current_ring_;
  }
  /// All nodes reached so far, in discovery order (start first).
  [[nodiscard]] const std::vector<NodeId>& visited() const noexcept {
    return visited_;
  }
  [[nodiscard]] bool contains(NodeId v) const {
    return v < seen_.size() && seen_[v];
  }
  /// Number of completed expand() calls; ring index of current_ring().
  [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] NodeId bfs_parent(NodeId v) const {
    DAGSFC_CHECK(v < parent_.size());
    return parent_[v];
  }

 private:
  const Graph& g_;
  NodeFilter filter_;
  std::vector<char> seen_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> visited_;
  std::vector<NodeId> current_ring_;
  std::vector<NodeId> scratch_;
  std::size_t iterations_ = 0;
};

}  // namespace dagsfc::graph
