#pragma once
/// \file bfs.hpp
/// Breadth-first search in "rings", the primitive behind the paper's forward
/// and backward searches (§4.2, §4.3): iteration q of the search adds every
/// node adjacent to the set accumulated after iteration q−1.

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/workspace.hpp"

namespace dagsfc::graph {

/// Predicate limiting which nodes a search may enter. Returning false makes
/// the node invisible (used by the backward search, which is restricted to
/// the forward-search node set).
using NodeFilter = std::function<bool(NodeId)>;

/// Result of an expanding ring search.
struct BfsRings {
  /// rings[q] lists the nodes first reached in iteration q; rings[0] is the
  /// start node alone.
  std::vector<std::vector<NodeId>> rings;
  /// hop distance per node, or kUnreached.
  std::vector<std::uint32_t> depth;
  /// one BFS-tree parent per node (kInvalidNode for start/unreached).
  std::vector<NodeId> parent;

  static constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);

  [[nodiscard]] bool reached(NodeId v) const {
    return v < depth.size() && depth[v] != kUnreached;
  }
};

/// Full BFS from \p start. If \p filter is provided, nodes failing it are
/// never entered (the start node is always included).
[[nodiscard]] BfsRings bfs_rings(const Graph& g, NodeId start,
                                 const NodeFilter& filter = {});

/// Incremental ring expander: the caller pulls one ring at a time and stops
/// when its own coverage condition holds — exactly the shape of the paper's
/// forward search, which stops as soon as the accumulated node set hosts all
/// VNFs of the layer. Also supports a hard cap on the visited-set size
/// (MBBE strategy (1): |V^{F,l}| ≤ X_max).
///
/// All working state lives in a SearchWorkspace's BFS section (stamps
/// instead of a per-construction O(V) seen array). Pass the solver's
/// workspace to reuse its buffers across the thousands of ring searches a
/// sweep performs; with no workspace the expander owns a private one. At
/// most one expander may use a given workspace at a time — the embedders
/// satisfy this because each ring search completes (and is copied out into a
/// SearchTree) before the next begins.
class RingExpander {
 public:
  explicit RingExpander(const Graph& g, NodeId start, NodeFilter filter = {},
                        SearchWorkspace* ws = nullptr);
  RingExpander(RingExpander&&) = delete;  // ws_ may point at own_ws_

  /// Expands one more ring. Returns the newly reached nodes; empty when the
  /// reachable (filtered) component is exhausted.
  const std::vector<NodeId>& expand();

  [[nodiscard]] const std::vector<NodeId>& current_ring() const noexcept {
    return ws_->bfs_ring();
  }
  /// All nodes reached so far, in discovery order (start first).
  [[nodiscard]] const std::vector<NodeId>& visited() const noexcept {
    return ws_->bfs_visited();
  }
  [[nodiscard]] bool contains(NodeId v) const { return ws_->bfs_seen(v); }
  /// Number of completed expand() calls; ring index of current_ring().
  [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] NodeId bfs_parent(NodeId v) const {
    DAGSFC_CHECK(g_.has_node(v));
    return ws_->bfs_parent(v);
  }

 private:
  const Graph& g_;
  NodeFilter filter_;
  SearchWorkspace own_ws_;  // used only when the caller passes none
  SearchWorkspace* ws_;     // mutable view even from const accessors
  std::size_t iterations_ = 0;
};

}  // namespace dagsfc::graph
