#pragma once
/// \file reference.hpp
/// The seed search implementations, preserved verbatim.
///
/// When the flat kernels (CSR + SearchWorkspace + EdgeMask) replaced these on
/// the hot path, the originals moved here instead of being deleted. They
/// serve two purposes:
///   1. Oracle for the differential tests (tests/test_search_flat.cpp): flat
///      search must be bit-identical to these for every query and for every
///      embedder's end-to-end SolveResult.
///   2. The honest "before" arm of bench/micro_graph, so the recorded
///      speedups compare against the real seed code, not a strawman.
///
/// They are also what the public EdgeFilter entry points fall back to when
/// set_flat_search_default(false) is in effect. Do not "optimize" anything in
/// this file — its value is being a frozen baseline.

#include <optional>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/steiner.hpp"

namespace dagsfc::graph::reference {

/// Seed Dijkstra: fresh O(V) arrays + std::priority_queue per call.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        const EdgeFilter& filter = {});

/// Seed point-to-point query with early exit at \p target.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                const EdgeFilter& filter = {});

/// Seed Yen: fresh closure + std::sets per spur candidate.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                                 NodeId target, std::size_t k,
                                                 const EdgeFilter& filter = {});

/// Seed Dreyfus–Wagner DP over the adjacency lists.
[[nodiscard]] std::optional<SteinerTree> steiner_tree(
    const Graph& g, const std::vector<NodeId>& terminals,
    const EdgeFilter& filter = {});

}  // namespace dagsfc::graph::reference
