#include "graph/steiner.hpp"

#include <algorithm>
#include <cstdint>
#include <set>

#include "graph/reference.hpp"

namespace dagsfc::graph {

namespace {

struct Choice {
  enum class Kind : std::uint8_t { None, Init, Merge, Extend };
  Kind kind = Kind::None;
  std::uint32_t split = 0;   // Merge: one proper subset S' (other is S\S')
  NodeId from = kInvalidNode;  // Extend: predecessor node u; Init: terminal
};

}  // namespace

// The seed Dreyfus–Wagner DP (see reference.cpp) with the flat kernels
// underneath: base-case trees come from dijkstra(ws) exports, the per-subset
// relaxation streams CSR rows and reuses the workspace's heap buffer, and
// the filter probe is a mask bit test. The DP recurrences and every
// tie-break are untouched, so results match the seed bit for bit (the
// workspace heap pops in the same (key, node) order as the seed's
// priority_queue — see dijkstra.cpp).
std::optional<SteinerTree> steiner_tree(const Graph& g,
                                        const std::vector<NodeId>& terminals,
                                        const EdgeMask* mask,
                                        SearchWorkspace& ws) {
  std::vector<NodeId> terms(terminals);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (NodeId t : terms) DAGSFC_CHECK(g.has_node(t));
  if (terms.empty()) return SteinerTree{};
  if (terms.size() == 1) return SteinerTree{};
  DAGSFC_CHECK_MSG(terms.size() <= 14, "too many Steiner terminals for DP");

  const std::size_t n = g.num_nodes();
  const std::size_t k = terms.size();
  const std::uint32_t full = (1u << k) - 1;
  const CsrView csr = g.csr();
  const Incidence* const arcs = csr.incidence.data();
  const double* const wt = csr.weights.data();

  // dp[S][v]: min weight of a tree containing node v and terminal subset S.
  std::vector<std::vector<double>> dp(full + 1,
                                      std::vector<double>(n, kInfCost));
  std::vector<std::vector<Choice>> how(full + 1, std::vector<Choice>(n));

  // Single-terminal base: dp[{i}][v] = shortest-path dist(t_i, v).
  std::vector<ShortestPathTree> term_sp;
  term_sp.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    term_sp.push_back(dijkstra(g, terms[i], ws, mask));
    const std::uint32_t bit = 1u << i;
    for (NodeId v = 0; v < n; ++v) {
      dp[bit][v] = term_sp[i].dist[v];
      how[bit][v] = Choice{Choice::Kind::Init, 0, terms[i]};
    }
  }

  for (std::uint32_t S = 1; S <= full; ++S) {
    if ((S & (S - 1)) == 0) continue;  // singletons done above
    auto& row = dp[S];
    auto& hrow = how[S];
    // Merge two complementary sub-trees at v.
    for (std::uint32_t sub = (S - 1) & S; sub > 0; sub = (sub - 1) & S) {
      const std::uint32_t rest = S ^ sub;
      if (sub > rest) continue;  // each unordered split once
      const auto& a = dp[sub];
      const auto& b = dp[rest];
      for (NodeId v = 0; v < n; ++v) {
        if (a[v] == kInfCost || b[v] == kInfCost) continue;
        const double c = a[v] + b[v];
        if (c < row[v]) {
          row[v] = c;
          hrow[v] = Choice{Choice::Kind::Merge, sub, kInvalidNode};
        }
      }
    }
    // Dijkstra-style relaxation: grow the tree along cheap paths. The dist
    // array is the DP row, so only the heap comes from the workspace.
    ws.heap_clear();
    for (NodeId v = 0; v < n; ++v) {
      if (row[v] < kInfCost) ws.heap_push(row[v], v);
    }
    while (!ws.heap_empty()) {
      const auto [d, v] = ws.heap_pop();
      if (d > row[v]) continue;
      const std::uint32_t row_end = csr.offsets[v + 1];
      for (std::uint32_t s = csr.offsets[v]; s != row_end; ++s) {
        const Incidence inc = arcs[s];
        if (mask != nullptr && !mask->allows(inc.edge)) continue;
        const double nd = d + wt[s];
        if (nd < row[inc.neighbor]) {
          row[inc.neighbor] = nd;
          hrow[inc.neighbor] = Choice{Choice::Kind::Extend, 0, v};
          ws.heap_push(nd, inc.neighbor);
        }
      }
    }
  }

  const NodeId root = terms[0];
  if (dp[full][root] == kInfCost) return std::nullopt;

  // Reconstruct the edge set by unwinding the DP choices.
  std::set<EdgeId> edges;
  std::vector<std::pair<std::uint32_t, NodeId>> stack{{full, root}};
  auto add_tree_path = [&](const ShortestPathTree& sp, NodeId v) {
    while (v != sp.source) {
      edges.insert(sp.parent_edge[v]);
      v = sp.parent[v];
    }
  };
  while (!stack.empty()) {
    auto [S, v] = stack.back();
    stack.pop_back();
    const Choice& c = how[S][v];
    switch (c.kind) {
      case Choice::Kind::Init: {
        // Path from terminal c.from to v along that terminal's SP tree.
        std::size_t ti = 0;
        while (terms[ti] != c.from) ++ti;
        add_tree_path(term_sp[ti], v);
        break;
      }
      case Choice::Kind::Merge:
        stack.emplace_back(c.split, v);
        stack.emplace_back(S ^ c.split, v);
        break;
      case Choice::Kind::Extend: {
        const auto e = g.find_edge(c.from, v);
        DAGSFC_ASSERT(e.has_value());
        edges.insert(*e);
        stack.emplace_back(S, c.from);
        break;
      }
      case Choice::Kind::None:
        DAGSFC_CHECK_MSG(false, "Steiner reconstruction hit an unset cell");
    }
  }

  SteinerTree out;
  out.edges.assign(edges.begin(), edges.end());
  for (EdgeId e : out.edges) out.cost += g.edge(e).weight;
  // Deduplication can only make the reconstruction cheaper; the DP value is
  // optimal, so equality must hold (up to float noise).
  DAGSFC_ASSERT(out.cost <= dp[full][root] + 1e-9);
  return out;
}

std::optional<SteinerTree> steiner_tree(const Graph& g,
                                        const std::vector<NodeId>& terminals,
                                        const EdgeFilter& filter) {
  if (!flat_search_default()) {
    return reference::steiner_tree(g, terminals, filter);
  }
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return steiner_tree(g, terminals, nullptr, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return steiner_tree(g, terminals, &mask, ws);
}

}  // namespace dagsfc::graph
