#include "graph/steiner.hpp"

#include <algorithm>
#include <cstdint>
#include <set>

#include "graph/reference.hpp"

namespace dagsfc::graph {

namespace {

// Backtrack cells, packed to one word so the (2^k × |V|) table is a single
// flat allocation-free scratch array: kind in the top two bits, a
// kind-specific aux field (merge split mask / base terminal index) in bits
// 32..61, and a 32-bit payload (the extend edge id) in the low word.
constexpr std::uint64_t kHowNone = 0;
constexpr std::uint64_t kHowInit = 1;
constexpr std::uint64_t kHowMerge = 2;
constexpr std::uint64_t kHowExtend = 3;

constexpr std::uint64_t pack_how(std::uint64_t kind, std::uint64_t aux,
                                 std::uint64_t payload) {
  return (kind << 62) | (aux << 32) | payload;
}
constexpr std::uint64_t how_kind(std::uint64_t h) { return h >> 62; }
constexpr std::uint32_t how_aux(std::uint64_t h) {
  return static_cast<std::uint32_t>((h >> 32) & 0x3fffffffu);
}
constexpr std::uint32_t how_payload(std::uint64_t h) {
  return static_cast<std::uint32_t>(h);
}

}  // namespace

// The seed Dreyfus–Wagner DP (see reference.cpp) with two accelerations on
// top of the flat kernels; both leave the returned tree bit-identical to
// the seed's (checked by the cross-kernel battery in
// tests/test_distance_oracle.cpp):
//
//   1. Batched base case. The k single-terminal rows dp[{i}][·] used to be
//      k independent Dijkstra exhaustions; they are now one
//      multi_source_dijkstra_into() pass whose layer i is bitwise the
//      standalone search from terms[i] (see dijkstra.hpp), read back
//      through the workspace bank both for the rows and for the
//      reconstruction parent walks.
//
//   2. Future-cost pruning. UB is the cost of a real Steiner candidate: the
//      Takahashi–Matsuyama greedy tree (start at the root, repeatedly
//      attach the nearest remaining terminal along its shortest path to the
//      tree, priced straight off the base-case rows), capped by the star
//      bound Σ_{i>0} d(root, t_i) — so the optimum is ≤ UB, and usually
//      within a few percent of it. For a cell (S, v), any completion to
//      (full, root) is a walk v→root (extension edges, cost W ≥ d(v, root))
//      with the merged sub-trees hanging off walk nodes: a missing terminal
//      t ∉ S sits in a sub-tree merged at some walk node u, so
//        completion ≥ W + d(t, u) ≥ d(v, u) + d(u, root) + d(t, u)
//                   ≥ min_u [d(v, u) + d(root, u) + d(t, u)] =: futplus_t(v)
//      — a per-terminal field computed by one Dijkstra-style pass seeded
//      with d(root, u) + d(t, u) at every u (a min-convolution with the
//      graph metric; k−1 passes total, amortized across all 2^k subsets).
//      futplus_t ≥ max(d(root, ·), d(t, ·)) always and approaches their
//      *sum*, which is what makes the small-|S| rows (many missing
//      terminals, the bulk of the DP) actually prune. Then
//        fut(S, v) = max(d(root, v), max_{t∉S} futplus_t(v))
//      lower-bounds the remaining cost and any write with
//      value + fut > prune_guard(UB) can be dropped. Dropped work stays
//      dropped: extensions of a pruned cell re-fail the test (fut is
//      1-Lipschitz across edges in exact arithmetic), and a merge with a
//      pruned ingredient dp[sub][v] re-fails it in the superset S = sub∪rest
//      because fut(sub, v) ≤ dp[rest][v] + fut(S, v): for t missing from S,
//      futplus_t ≤ fut(S, v); for t ∈ rest, futplus_t(v) ≤ d(root, v) +
//      d(t, v) ≤ fut(S, v) + dp[rest][v] (every finite dp value is the cost
//      of a real tree, hence ≥ d(t, v) for its terminals, and fut ≥
//      d(root, v) by construction). Divergent values are thereby confined
//      to prunable cells, and a guard-passing write c is always accepted
//      identically in both runs: any prunable value p at the same cell
//      satisfies c + fut ≤ guard < p + fut, i.e. c < p, so the `c < row[v]`
//      acceptance test cannot be flipped by a prunable occupant. Every cell
//      of the optimal derivation chain satisfies value + fut ≤ optimum ≤ UB
//      outright — per-cell admissibility with prune_guard's 1e-9 relative
//      slack absorbing the float rounding, independent of any other cell's
//      fate — so the chain's writes, their acceptance order, and the
//      backtrack entries reconstruction reads are untouched.
std::optional<SteinerTree> steiner_tree(const Graph& g,
                                        const std::vector<NodeId>& terminals,
                                        const EdgeMask* mask,
                                        SearchWorkspace& ws) {
  std::vector<NodeId> terms(terminals);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (NodeId t : terms) DAGSFC_CHECK(g.has_node(t));
  if (terms.empty()) return SteinerTree{};
  if (terms.size() == 1) return SteinerTree{};
  DAGSFC_CHECK_MSG(terms.size() <= 14, "too many Steiner terminals for DP");

  const std::size_t n = g.num_nodes();
  const std::size_t k = terms.size();
  const std::uint32_t full = (1u << k) - 1;
  const CsrView csr = g.csr();
  const Incidence* const arcs = csr.incidence.data();
  const double* const wt = csr.weights.data();

  // One batched pass replaces the k per-terminal exhaustions. The bank
  // (layer-strided slots in ws) stays valid for the whole call: the DP loop
  // below only reuses the workspace *heap*, never the slots.
  multi_source_dijkstra_into(g, terms, ws, mask);
  const MultiSourceView bank(ws, g, k);

  // Flat scratch layout: dp rows (full+1)·n, then the per-subset future
  // bound row (n), then a dense copy of the bank distances (k·n) so the DP
  // inner loops read plain doubles instead of stamp-checked slots, then the
  // per-terminal futplus fields (k·n; row 0 unused — the root's attachment
  // bound is the d(root, ·) base term).
  std::vector<double>& f64 = ws.scratch_f64();
  f64.assign((full + 1) * n + n + 2 * k * n, kInfCost);
  double* const dp = f64.data();
  double* const fut = dp + (full + 1) * n;
  double* const term_dist = fut + n;
  double* const futplus = term_dist + k * n;
  std::vector<std::uint64_t>& how = ws.scratch_u64();
  how.assign((full + 1) * n, pack_how(kHowNone, 0, 0));

  for (std::size_t i = 0; i < k; ++i) {
    double* const row = dp + static_cast<std::size_t>(1u << i) * n;
    double* const td = term_dist + i * n;
    const std::uint64_t h = pack_how(kHowInit, i, 0);
    std::uint64_t* const hrow = how.data() + static_cast<std::size_t>(1u << i) * n;
    for (NodeId v = 0; v < n; ++v) {
      const double d = bank.dist(i, v);
      td[v] = d;
      row[v] = d;
      hrow[v] = h;
    }
  }

  // Star upper bound rooted at terms[0]; +inf when a terminal is cut off,
  // which turns the guard off (the DP then reports infeasible as before).
  const double* const dist_root = term_dist;
  double ub = 0.0;
  for (std::size_t i = 1; i < k; ++i) ub += dist_root[terms[i]];

  // Takahashi–Matsuyama greedy tree, usually far tighter than the star:
  // grow from the root, each round attaching the terminal closest to the
  // current tree along its shortest path (cost read from its base-case
  // row, nodes walked off the bank's parent chain). The overlap between
  // attach paths is not discounted, which only loosens the bound.
  if (ub < kInfCost) {
    std::vector<NodeId>& tree_nodes = ws.scratch_nodes();
    tree_nodes.assign(1, terms[0]);
    double tm = 0.0;
    std::uint32_t attached = 1;  // bitmask over terminal indices
    for (std::size_t round = 1; round < k; ++round) {
      double best_d = kInfCost;
      std::size_t best_i = 0;
      NodeId best_v = terms[0];
      for (std::size_t i = 1; i < k; ++i) {
        if ((attached >> i) & 1u) continue;
        const double* const td = term_dist + i * n;
        for (const NodeId v : tree_nodes) {
          if (td[v] < best_d) {
            best_d = td[v];
            best_i = i;
            best_v = v;
          }
        }
      }
      tm += best_d;
      attached |= 1u << best_i;
      for (NodeId v = best_v; v != terms[best_i];
           v = bank.parent(best_i, v)) {
        tree_nodes.push_back(bank.parent(best_i, v));
      }
    }
    if (tm < ub) ub = tm;
  }
  const double guard = prune_guard(ub);

  // futplus fields (see the file comment): one seeded relaxation pass per
  // non-root terminal. Only worth it when the guard is live and some subset
  // will actually read them (k ≥ 3 — for k = 2 the lone non-singleton
  // subset is `full`, whose fut is the d(root, ·) base term).
  const bool futplus_live = ub < kInfCost && k >= 3;
  if (futplus_live) {
    for (std::size_t i = 1; i < k; ++i) {
      double* const fp = futplus + i * n;
      const double* const td = term_dist + i * n;
      ws.heap_clear();
      for (NodeId v = 0; v < n; ++v) {
        fp[v] = dist_root[v] + td[v];
        ws.heap_push(fp[v], v);
      }
      while (!ws.heap_empty()) {
        const auto [d, v] = ws.heap_pop();
        if (d > fp[v]) continue;
        const std::uint32_t row_end = csr.offsets[v + 1];
        for (std::uint32_t s = csr.offsets[v]; s != row_end; ++s) {
          const Incidence inc = arcs[s];
          if (mask != nullptr && !mask->allows(inc.edge)) continue;
          const double nd = d + wt[s];
          if (nd < fp[inc.neighbor]) {
            fp[inc.neighbor] = nd;
            ws.heap_push(nd, inc.neighbor);
          }
        }
      }
    }
  }

  for (std::uint32_t S = 1; S <= full; ++S) {
    if ((S & (S - 1)) == 0) continue;  // singletons done above
    double* const row = dp + static_cast<std::size_t>(S) * n;
    std::uint64_t* const hrow = how.data() + static_cast<std::size_t>(S) * n;
    // Future bound for this subset; without live futplus fields (guard off
    // or k = 2) the plain distance fields keep the same shape for free.
    for (NodeId v = 0; v < n; ++v) fut[v] = dist_root[v];
    const double* const attach = futplus_live ? futplus : term_dist;
    for (std::size_t i = 1; i < k; ++i) {
      if ((S >> i) & 1u) continue;
      const double* const td = attach + i * n;
      for (NodeId v = 0; v < n; ++v) {
        if (td[v] > fut[v]) fut[v] = td[v];
      }
    }
    // Merge two complementary sub-trees at v.
    for (std::uint32_t sub = (S - 1) & S; sub > 0; sub = (sub - 1) & S) {
      const std::uint32_t rest = S ^ sub;
      if (sub > rest) continue;  // each unordered split once
      const double* const a = dp + static_cast<std::size_t>(sub) * n;
      const double* const b = dp + static_cast<std::size_t>(rest) * n;
      for (NodeId v = 0; v < n; ++v) {
        if (a[v] == kInfCost || b[v] == kInfCost) continue;
        const double c = a[v] + b[v];
        if (c < row[v] && c + fut[v] <= guard) {
          row[v] = c;
          hrow[v] = pack_how(kHowMerge, sub, 0);
        }
      }
    }
    // Dijkstra-style relaxation: grow the tree along cheap paths. The dist
    // array is the DP row, so only the heap comes from the workspace. Every
    // finite cell already passed the guard (all non-singleton writes are
    // guard-tested against this subset's fut), so seeding needs no re-test
    // — the guard's work here is keeping cells *out* of the row entirely.
    ws.heap_clear();
    for (NodeId v = 0; v < n; ++v) {
      if (row[v] < kInfCost) ws.heap_push(row[v], v);
    }
    while (!ws.heap_empty()) {
      const auto [d, v] = ws.heap_pop();
      if (d > row[v]) continue;
      const std::uint32_t row_end = csr.offsets[v + 1];
      for (std::uint32_t s = csr.offsets[v]; s != row_end; ++s) {
        const Incidence inc = arcs[s];
        if (mask != nullptr && !mask->allows(inc.edge)) continue;
        const double nd = d + wt[s];
        if (nd < row[inc.neighbor] && nd + fut[inc.neighbor] <= guard) {
          row[inc.neighbor] = nd;
          hrow[inc.neighbor] = pack_how(kHowExtend, 0, inc.edge);
          ws.heap_push(nd, inc.neighbor);
        }
      }
    }
  }

  const NodeId root = terms[0];
  if (dp[static_cast<std::size_t>(full) * n + root] == kInfCost) {
    return std::nullopt;
  }

  // Reconstruct the edge set by unwinding the DP choices.
  std::set<EdgeId> edges;
  std::vector<std::pair<std::uint32_t, NodeId>> stack{{full, root}};
  auto add_bank_path = [&](std::size_t layer, NodeId v) {
    // Walk layer `layer`'s parent chain from v back to terms[layer].
    while (v != terms[layer]) {
      edges.insert(bank.parent_edge(layer, v));
      v = bank.parent(layer, v);
    }
  };
  while (!stack.empty()) {
    auto [S, v] = stack.back();
    stack.pop_back();
    const std::uint64_t h = how[static_cast<std::size_t>(S) * n + v];
    switch (how_kind(h)) {
      case kHowInit:
        add_bank_path(how_aux(h), v);
        break;
      case kHowMerge: {
        const std::uint32_t sub = how_aux(h);
        stack.emplace_back(sub, v);
        stack.emplace_back(S ^ sub, v);
        break;
      }
      case kHowExtend: {
        const EdgeId e = how_payload(h);
        edges.insert(e);
        const Edge& edge = g.edge(e);
        stack.emplace_back(S, edge.u == v ? edge.v : edge.u);
        break;
      }
      default:
        DAGSFC_CHECK_MSG(false, "Steiner reconstruction hit an unset cell");
    }
  }

  SteinerTree out;
  out.edges.assign(edges.begin(), edges.end());
  for (EdgeId e : out.edges) out.cost += g.edge(e).weight;
  // Deduplication can only make the reconstruction cheaper; the DP value is
  // optimal, so equality must hold (up to float noise).
  DAGSFC_ASSERT(out.cost <=
                dp[static_cast<std::size_t>(full) * n + root] + 1e-9);
  return out;
}

std::optional<SteinerTree> steiner_tree(const Graph& g,
                                        const std::vector<NodeId>& terminals,
                                        const EdgeFilter& filter) {
  if (!flat_search_default()) {
    return reference::steiner_tree(g, terminals, filter);
  }
  SearchWorkspace& ws = thread_local_workspace();
  if (!filter) return steiner_tree(g, terminals, nullptr, ws);
  ws.scratch_mask().fill_from(g, filter);
  const EdgeMask mask = ws.scratch_mask().view();
  return steiner_tree(g, terminals, &mask, ws);
}

}  // namespace dagsfc::graph
