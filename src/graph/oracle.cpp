#include "graph/oracle.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace dagsfc::graph {

DistanceOracle::DistanceOracle(const Graph& g, Options opts)
    : g_(&g),
      opts_(opts),
      registry_(opts.registry != nullptr ? opts.registry
                                         : &util::MetricRegistry::global()) {
  opts_.active_per_query =
      std::min(opts_.active_per_query, AltQuery::kMaxActive);
  if (opts_.active_per_query == 0) opts_.active_per_query = 1;
  rebuild();
}

void DistanceOracle::ensure_current() {
  if (g_->structure_revision() != structure_rev_) {
    rebuild();
  } else if (g_->weight_revision() != weight_rev_) {
    refresh();
  }
}

/// Copies the SSSP result sitting in build_ws_ into the bank's strided
/// column `column`. False when the landmark cannot reach every node.
bool DistanceOracle::fill_column(std::size_t column) {
  double* const bank = tables_.data();
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const double d = build_ws_.dist(v);
    if (d == kInfCost) return false;
    bank[static_cast<std::size_t>(v) * cols_ + column] = d;
  }
  return true;
}

void DistanceOracle::rebuild() {
  const std::size_t n = g_->num_nodes();
  landmarks_.clear();
  tables_.clear();
  num_nodes_ = n;
  complete_ = false;
  structure_rev_ = g_->structure_revision();
  weight_rev_ = g_->weight_revision();
  ++builds_;
  registry_->counter("dagsfc_oracle_builds_total").inc(1);
  if (n == 0) return;

  // Two-phase selection. Phase 1 is classic farthest-point (periphery
  // anchors: best for the *lower* bound). Phase 2 spends the rest of the
  // budget on an upper-bound cover: the seed ub = min_l d(s,l)+d(l,t) is
  // what decides how much the kernels prune, and farthest-point is the
  // worst possible placement for it — periphery landmarks sit behind the
  // endpoints, never near the middle of a shortest path. Greedily picking
  // landmarks that minimize the mean seed overshoot over sampled pairs
  // moved the median ub/d on the paper-scale topologies from ~1.49 to
  // ~1.02 at the same budget. Everything stays deterministic: ties break
  // to the lowest id, and the sampling Rng is fixed-seeded.
  const std::size_t want =
      std::max<std::size_t>(1, std::min(opts_.landmarks, n));
  cols_ = want;
  dijkstra_into(*g_, 0, build_ws_);
  std::vector<double> min_dist(n);
  for (NodeId v = 0; v < n; ++v) {
    const double d = build_ws_.dist(v);
    if (d == kInfCost) return;  // disconnected: oracle stays inactive
    min_dist[v] = d;
  }
  auto farthest = [&]() {
    NodeId best = 0;
    for (NodeId v = 1; v < n; ++v) {
      if (min_dist[v] > min_dist[best]) best = v;
    }
    return best;
  };
  auto add_landmark = [&](NodeId l) {
    landmarks_.push_back(l);
    for (NodeId v = 0; v < n; ++v) {
      const double d = build_ws_.dist(v);  // caller ran the SSSP
      if (d < min_dist[v]) min_dist[v] = d;
    }
  };
  // Selection may stop before `want` landmarks (the set already covers V);
  // the unused trailing columns simply stay zero and are never indexed.
  tables_.assign(n * cols_, 0.0);

  // Phase 1: farthest-point anchors — a quarter of the budget, at least 1.
  const std::size_t anchor_budget = std::max<std::size_t>(1, want / 4);
  bool covered = false;
  while (landmarks_.size() < anchor_budget) {
    const NodeId l = farthest();
    if (!landmarks_.empty() && min_dist[l] == 0.0) {
      covered = true;  // set covers V — tiny graph, nothing left to gain
      break;
    }
    dijkstra_into(*g_, l, build_ws_);
    add_landmark(l);
    if (!fill_column(landmarks_.size() - 1)) return;
  }

  // Phase 2: ub-cover greedy. Sample candidate nodes, run one SSSP each
  // (the chosen rows become the landmark tables — no SSSP is wasted on a
  // winner), price 128 training pairs (source = a candidate, so its true
  // distance is a row lookup), and greedily add whichever candidate most
  // reduces the mean seed-ub overshoot.
  if (!covered && landmarks_.size() < want && n > landmarks_.size()) {
    Rng rng(0x414c54ULL);  // fixed seed: deterministic selection
    std::vector<char> taken(n, 0);
    for (const NodeId l : landmarks_) taken[l] = 1;
    const std::size_t cand_budget =
        std::min<std::size_t>(n - landmarks_.size(),
                              std::max<std::size_t>(3 * want, 48));
    std::vector<NodeId> cand;
    cand.reserve(cand_budget);
    if (2 * cand_budget + landmarks_.size() >= n) {
      for (NodeId v = 0; v < n && cand.size() < cand_budget; ++v) {
        if (!taken[v]) cand.push_back(v);
      }
    } else {
      while (cand.size() < cand_budget) {
        const auto v = static_cast<NodeId>(rng.index(n));
        if (!taken[v]) {
          taken[v] = 1;
          cand.push_back(v);
        }
      }
    }
    std::vector<double> rows(cand.size() * n);
    for (std::size_t j = 0; j < cand.size(); ++j) {
      dijkstra_into(*g_, cand[j], build_ws_);
      for (NodeId v = 0; v < n; ++v) {
        rows[j * n + v] = build_ws_.dist(v);  // finite: graph is connected
      }
    }
    struct TrainPair {
      std::uint32_t ci;  // source = cand[ci]
      NodeId t;
      double d;  // true distance, from the candidate's row
    };
    std::vector<TrainPair> train;
    train.reserve(128);
    for (std::size_t attempt = 0; attempt < 512 && train.size() < 128;
         ++attempt) {
      const auto ci = static_cast<std::uint32_t>(attempt % cand.size());
      const auto t = static_cast<NodeId>(rng.index(n));
      const double d = rows[ci * n + t];
      if (d > 0.0) train.push_back({ci, t, d});
    }
    // Current best seed ub per pair under the already-chosen landmarks.
    std::vector<double> cur(train.size(), kInfCost);
    for (std::size_t i = 0; i < train.size(); ++i) {
      const double* const rs = node_row(cand[train[i].ci]);
      const double* const rt = node_row(train[i].t);
      for (std::size_t l = 0; l < landmarks_.size(); ++l) {
        const double u = rs[l] + rt[l];
        if (u < cur[i]) cur[i] = u;
      }
    }
    std::vector<char> picked(cand.size(), 0);
    while (landmarks_.size() < want && !train.empty()) {
      std::size_t best = cand.size();
      double best_score = kInfCost;
      for (std::size_t j = 0; j < cand.size(); ++j) {
        if (picked[j]) continue;
        double score = 0.0;
        for (std::size_t i = 0; i < train.size(); ++i) {
          const TrainPair& p = train[i];
          const double u = rows[j * n + cand[p.ci]] + rows[j * n + p.t];
          score += (u < cur[i] ? u : cur[i]) / p.d;
        }
        if (score < best_score) {
          best_score = score;
          best = j;
        }
      }
      if (best == cand.size()) break;  // every candidate already picked
      picked[best] = 1;
      const std::size_t column = landmarks_.size();
      landmarks_.push_back(cand[best]);
      double* const bank = tables_.data();
      for (NodeId v = 0; v < n; ++v) {
        const double d = rows[best * n + v];
        bank[static_cast<std::size_t>(v) * cols_ + column] = d;
        if (d < min_dist[v]) min_dist[v] = d;
      }
      for (std::size_t i = 0; i < train.size(); ++i) {
        const double u = rows[best * n + cand[train[i].ci]] +
                         rows[best * n + train[i].t];
        if (u < cur[i]) cur[i] = u;
      }
    }
  }

  // Phase 3: if the greedy could not fill the budget (no usable training
  // pairs / candidates exhausted on small graphs), fall back to farthest.
  while (!covered && landmarks_.size() < want) {
    const NodeId l = farthest();
    if (min_dist[l] == 0.0) break;  // set covers V
    dijkstra_into(*g_, l, build_ws_);
    add_landmark(l);
    if (!fill_column(landmarks_.size() - 1)) return;
  }
  complete_ = true;
}

void DistanceOracle::refresh() {
  DAGSFC_CHECK(g_->structure_revision() == structure_rev_);
  weight_rev_ = g_->weight_revision();
  ++refreshes_;
  registry_->counter("dagsfc_oracle_refreshes_total").inc(1);
  if (landmarks_.empty()) return;
  complete_ = false;  // not usable if a query raced in (they must not)
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    dijkstra_into(*g_, landmarks_[l], build_ws_);
    if (!fill_column(l)) return;
  }
  complete_ = true;
}

double DistanceOracle::lower_bound(NodeId a, NodeId b) const {
  if (!complete_) return 0.0;
  const double* const ra = node_row(a);
  const double* const rb = node_row(b);
  double lb = 0.0;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double d = ra[l] - rb[l];
    const double v = d < 0.0 ? -d : d;
    if (v > lb) lb = v;
  }
  return lb;
}

double DistanceOracle::upper_bound(NodeId a, NodeId b) const {
  if (!complete_) return kInfCost;
  const double* const ra = node_row(a);
  const double* const rb = node_row(b);
  double ub = kInfCost;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double v = ra[l] + rb[l];
    if (v < ub) ub = v;
  }
  return ub;
}

AltQuery DistanceOracle::query(NodeId source, NodeId target,
                               bool seed_upper_bound) const {
  AltQuery q;
  q.target = target;
  if (!complete_) return q;
  DAGSFC_CHECK(source < num_nodes_ && target < num_nodes_);
  const double* const rs = node_row(source);
  const double* const rt = node_row(target);

  // Rank landmarks by the bound they give *this* pair (descending, ties to
  // the lower landmark index) and activate the top few. The choice only
  // affects pruning tightness, never results.
  const std::uint32_t want =
      std::min<std::uint32_t>(opts_.active_per_query,
                              static_cast<std::uint32_t>(landmarks_.size()));
  std::array<std::uint32_t, AltQuery::kMaxActive> pick{};
  std::array<double, AltQuery::kMaxActive> score{};
  std::uint32_t picked = 0;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double d = rs[l] - rt[l];
    const double s = d < 0.0 ? -d : d;
    // Insertion into the small sorted top-list; strict > keeps the earliest
    // landmark on ties.
    std::uint32_t i = picked < want ? picked++ : want;
    while (i > 0 && s > score[i - 1]) {
      if (i < want) {
        score[i] = score[i - 1];
        pick[i] = pick[i - 1];
      }
      --i;
    }
    if (i < want) {
      score[i] = s;
      pick[i] = static_cast<std::uint32_t>(l);
    }
  }
  q.bank = tables_.data();
  q.stride = static_cast<std::uint32_t>(cols_);
  q.active = picked;
  for (std::uint32_t i = 0; i < picked; ++i) {
    q.lm[i] = pick[i];
    q.to_target[i] = rt[pick[i]];
  }
  // Max-neutral padding: unused slots repeat the tightest landmark so
  // lower_bound's fixed-width reduction needs no trip-count branch.
  for (std::uint32_t i = picked; i < AltQuery::kMaxActive; ++i) {
    q.lm[i] = q.lm[0];
    q.to_target[i] = q.to_target[0];
  }
  if (seed_upper_bound) q.seed_ub = upper_bound(source, target);
  return q;
}

}  // namespace dagsfc::graph
