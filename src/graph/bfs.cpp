#include "graph/bfs.hpp"

namespace dagsfc::graph {

BfsRings bfs_rings(const Graph& g, NodeId start, const NodeFilter& filter) {
  DAGSFC_CHECK(g.has_node(start));
  BfsRings out;
  out.depth.assign(g.num_nodes(), BfsRings::kUnreached);
  out.parent.assign(g.num_nodes(), kInvalidNode);
  out.rings.push_back({start});
  out.depth[start] = 0;
  while (true) {
    const auto& frontier = out.rings.back();
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (const Incidence& inc : g.neighbors(v)) {
        const NodeId w = inc.neighbor;
        if (out.depth[w] != BfsRings::kUnreached) continue;
        if (filter && !filter(w)) continue;
        out.depth[w] = out.depth[v] + 1;
        out.parent[w] = v;
        next.push_back(w);
      }
    }
    if (next.empty()) break;
    out.rings.push_back(std::move(next));
  }
  return out;
}

RingExpander::RingExpander(const Graph& g, NodeId start, NodeFilter filter)
    : g_(g),
      filter_(std::move(filter)),
      seen_(g.num_nodes(), 0),
      parent_(g.num_nodes(), kInvalidNode) {
  DAGSFC_CHECK(g.has_node(start));
  seen_[start] = 1;
  visited_.push_back(start);
  current_ring_.push_back(start);
}

const std::vector<NodeId>& RingExpander::expand() {
  scratch_.clear();
  for (NodeId v : current_ring_) {
    for (const Incidence& inc : g_.neighbors(v)) {
      const NodeId w = inc.neighbor;
      if (seen_[w]) continue;
      if (filter_ && !filter_(w)) continue;
      seen_[w] = 1;
      parent_[w] = v;
      scratch_.push_back(w);
      visited_.push_back(w);
    }
  }
  current_ring_.swap(scratch_);
  ++iterations_;
  return current_ring_;
}

}  // namespace dagsfc::graph
