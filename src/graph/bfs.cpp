#include "graph/bfs.hpp"

namespace dagsfc::graph {

BfsRings bfs_rings(const Graph& g, NodeId start, const NodeFilter& filter) {
  DAGSFC_CHECK(g.has_node(start));
  BfsRings out;
  out.depth.assign(g.num_nodes(), BfsRings::kUnreached);
  out.parent.assign(g.num_nodes(), kInvalidNode);
  out.rings.push_back({start});
  out.depth[start] = 0;
  while (true) {
    const auto& frontier = out.rings.back();
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (const Incidence& inc : g.neighbors(v)) {
        const NodeId w = inc.neighbor;
        if (out.depth[w] != BfsRings::kUnreached) continue;
        if (filter && !filter(w)) continue;
        out.depth[w] = out.depth[v] + 1;
        out.parent[w] = v;
        next.push_back(w);
      }
    }
    if (next.empty()) break;
    out.rings.push_back(std::move(next));
  }
  return out;
}

RingExpander::RingExpander(const Graph& g, NodeId start, NodeFilter filter,
                           SearchWorkspace* ws)
    : g_(g), filter_(std::move(filter)), ws_(ws != nullptr ? ws : &own_ws_) {
  DAGSFC_CHECK(g.has_node(start));
  ws_->bfs_prepare(g);
  ws_->bfs_mark(start, kInvalidNode);
  ws_->bfs_visited().push_back(start);
  ws_->bfs_ring().push_back(start);
}

const std::vector<NodeId>& RingExpander::expand() {
  const CsrView csr = g_.csr();
  std::vector<NodeId>& ring = ws_->bfs_ring();
  std::vector<NodeId>& scratch = ws_->bfs_scratch();
  std::vector<NodeId>& visited = ws_->bfs_visited();
  scratch.clear();
  for (NodeId v : ring) {
    for (const Incidence& inc : csr.row(v)) {
      const NodeId w = inc.neighbor;
      if (ws_->bfs_seen(w)) continue;
      if (filter_ && !filter_(w)) continue;
      ws_->bfs_mark(w, v);
      scratch.push_back(w);
      visited.push_back(w);
    }
  }
  ring.swap(scratch);
  ++iterations_;
  return ring;
}

}  // namespace dagsfc::graph
