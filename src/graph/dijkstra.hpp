#pragma once
/// \file dijkstra.hpp
/// Min-cost path queries over link prices. Used by the RANV/MINV baselines,
/// by MBBE's strategy (2) (meta-path instantiation via minimum-cost paths on
/// the real-time network), and as the relaxation inside Yen's algorithm.
///
/// Two API tiers:
///   * Flat tier — dijkstra_into() and friends run over the graph's CSR view
///     with a caller-owned SearchWorkspace and an optional EdgeMask. Warm
///     calls are allocation-free; results live in the workspace until the
///     next search and can be exported on demand. This is what PathOracle
///     and the embedders use.
///   * Legacy tier — the original EdgeFilter signatures, kept for callers
///     that don't carry a workspace (ILP bound generation, one-off tests).
///     They dispatch to the flat kernels through a per-thread workspace, or
///     to the frozen seed code in graph::reference when
///     set_flat_search_default(false) is in effect. Either way the results
///     are bit-identical.

#include <optional>
#include <vector>

#include "graph/edge_mask.hpp"
#include "graph/graph.hpp"
#include "graph/workspace.hpp"

namespace dagsfc::graph {

/// Single-source shortest path tree by edge weight (price).
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> dist;        // kInfCost if unreachable
  std::vector<NodeId> parent;      // kInvalidNode for source/unreached
  std::vector<EdgeId> parent_edge;

  [[nodiscard]] bool reached(NodeId v) const {
    return v < dist.size() && dist[v] < kInfCost;
  }
  /// Reconstructs the min-cost path source→target; nullopt if unreachable.
  [[nodiscard]] std::optional<Path> path_to(NodeId target) const;
};

// --- flat tier -----------------------------------------------------------

/// Dijkstra from \p source into \p ws. A null \p mask means all edges are
/// usable; \p stop_at = kInvalidNode means exhaust the graph, otherwise the
/// search stops once \p stop_at is settled (same early exit as the seed's
/// point-to-point query). On a warm workspace this performs no heap
/// allocation. The mask (when given) must cover g.num_edges() bits.
void dijkstra_into(const Graph& g, NodeId source, SearchWorkspace& ws,
                   const EdgeMask* mask = nullptr,
                   NodeId stop_at = kInvalidNode);

/// Copies the last search out of \p ws into an owning tree over \p n nodes
/// (pass g.num_nodes(); unreached slots get the kInfCost/kInvalid fill the
/// seed used).
[[nodiscard]] ShortestPathTree export_tree(const SearchWorkspace& ws,
                                           std::size_t n);

/// Reconstructs the path to \p target straight from \p ws — exactly
/// ShortestPathTree::path_to without materializing the tree.
[[nodiscard]] std::optional<Path> extract_path(const SearchWorkspace& ws,
                                               NodeId target);

/// Full search + export, for callers that want an owning tree.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        SearchWorkspace& ws,
                                        const EdgeMask* mask = nullptr);

/// Point-to-point min-cost path with early exit at \p target.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                SearchWorkspace& ws,
                                                const EdgeMask* mask = nullptr);

// --- legacy tier ---------------------------------------------------------

/// Dijkstra from \p source over the whole graph (or the filtered subgraph).
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        const EdgeFilter& filter = {});

/// Point-to-point min-cost path with early exit at \p target.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                const EdgeFilter& filter = {});

}  // namespace dagsfc::graph
