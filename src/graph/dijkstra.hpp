#pragma once
/// \file dijkstra.hpp
/// Min-cost path queries over link prices. Used by the RANV/MINV baselines,
/// by MBBE's strategy (2) (meta-path instantiation via minimum-cost paths on
/// the real-time network), and as the relaxation inside Yen's algorithm.
///
/// Two API tiers:
///   * Flat tier — dijkstra_into() and friends run over the graph's CSR view
///     with a caller-owned SearchWorkspace and an optional EdgeMask. Warm
///     calls are allocation-free; results live in the workspace until the
///     next search and can be exported on demand. This is what PathOracle
///     and the embedders use.
///   * Legacy tier — the original EdgeFilter signatures, kept for callers
///     that don't carry a workspace (ILP bound generation, one-off tests).
///     They dispatch to the flat kernels through a per-thread workspace, or
///     to the frozen seed code in graph::reference when
///     set_flat_search_default(false) is in effect. Either way the results
///     are bit-identical.

#include <optional>
#include <span>
#include <vector>

#include "graph/alt_query.hpp"
#include "graph/edge_mask.hpp"
#include "graph/graph.hpp"
#include "graph/workspace.hpp"

namespace dagsfc::graph {

/// Single-source shortest path tree by edge weight (price).
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> dist;        // kInfCost if unreachable
  std::vector<NodeId> parent;      // kInvalidNode for source/unreached
  std::vector<EdgeId> parent_edge;

  [[nodiscard]] bool reached(NodeId v) const {
    return v < dist.size() && dist[v] < kInfCost;
  }
  /// Reconstructs the min-cost path source→target; nullopt if unreachable.
  [[nodiscard]] std::optional<Path> path_to(NodeId target) const;
};

// --- flat tier -----------------------------------------------------------

/// Dijkstra from \p source into \p ws. A null \p mask means all edges are
/// usable; \p stop_at = kInvalidNode means exhaust the graph, otherwise the
/// search stops once \p stop_at is settled (same early exit as the seed's
/// point-to-point query). On a warm workspace this performs no heap
/// allocation. The mask (when given) must cover g.num_edges() bits.
void dijkstra_into(const Graph& g, NodeId source, SearchWorkspace& ws,
                   const EdgeMask* mask = nullptr,
                   NodeId stop_at = kInvalidNode);

/// Copies the last search out of \p ws into an owning tree over \p n nodes
/// (pass g.num_nodes(); unreached slots get the kInfCost/kInvalid fill the
/// seed used).
[[nodiscard]] ShortestPathTree export_tree(const SearchWorkspace& ws,
                                           std::size_t n);

/// Reconstructs the path to \p target straight from \p ws — exactly
/// ShortestPathTree::path_to without materializing the tree.
[[nodiscard]] std::optional<Path> extract_path(const SearchWorkspace& ws,
                                               NodeId target);

/// Full search + export, for callers that want an owning tree.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        SearchWorkspace& ws,
                                        const EdgeMask* mask = nullptr);

/// Point-to-point min-cost path with early exit at \p target.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                SearchWorkspace& ws,
                                                const EdgeMask* mask = nullptr);

// --- goal-directed tier (ALT pruning, see oracle.hpp) --------------------

/// Dijkstra with ALT pruning toward \p stop_at (required; must equal
/// alt.target). Same pop order, same relaxations, minus the ones the
/// landmark lower bound proves cannot lie on any path at most as cheap as
/// the best known route to the target — so the settled region around the
/// target, its distance and its parent chain are bitwise identical to the
/// unpruned kernel's (proof sketch above run_flat_alt in dijkstra.cpp).
/// alt.seed_ub must be kInfCost when \p mask is non-null: a landmark-routed
/// upper bound may use masked edges. An inactive alt (active == 0) falls
/// back to the plain kernel.
void dijkstra_into(const Graph& g, NodeId source, SearchWorkspace& ws,
                   const EdgeMask* mask, NodeId stop_at, const AltQuery& alt);

/// Point-to-point query through the pruned kernel.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                SearchWorkspace& ws,
                                                const EdgeMask* mask,
                                                const AltQuery& alt);

// --- batched tier --------------------------------------------------------

/// One prepared pass that runs |sources| independent SSSPs over a layered
/// state space (state = layer·|V| + node) — the Steiner base case and the
/// shard plane's border-to-border summaries do this today as k separate
/// searches, each paying its own prepare, mask capture, and cold CSR
/// streams. Layers run back to back over one slot bank, so the heap's
/// working set stays standalone-sized while the incidence/weight arrays and
/// the mask stay hot across layers. Layer i's results are bitwise identical
/// to a standalone dijkstra_into(g, sources[i], ws, mask): its loop is the
/// standalone loop with slot indices offset by layer·|V|. Read the result
/// bank through MultiSourceView; it stays valid until the next prepare of
/// \p ws.
void multi_source_dijkstra_into(const Graph& g, std::span<const NodeId> sources,
                                SearchWorkspace& ws,
                                const EdgeMask* mask = nullptr);

/// Layer-strided read view over a workspace filled by
/// multi_source_dijkstra_into. Parents are reported as node ids within the
/// layer (the stored state ids are translated back).
class MultiSourceView {
 public:
  MultiSourceView(const SearchWorkspace& ws, const Graph& g,
                  std::size_t num_layers)
      : ws_(&ws), n_(g.num_nodes()), layers_(num_layers) {}

  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_; }
  [[nodiscard]] bool reached(std::size_t layer, NodeId v) const {
    return ws_->reached(state(layer, v));
  }
  [[nodiscard]] double dist(std::size_t layer, NodeId v) const {
    return ws_->dist(state(layer, v));
  }
  [[nodiscard]] NodeId parent(std::size_t layer, NodeId v) const {
    const NodeId p = ws_->parent(state(layer, v));
    return p == kInvalidNode
               ? kInvalidNode
               : static_cast<NodeId>(p - layer * n_);
  }
  [[nodiscard]] EdgeId parent_edge(std::size_t layer, NodeId v) const {
    return ws_->parent_edge(state(layer, v));
  }

 private:
  [[nodiscard]] NodeId state(std::size_t layer, NodeId v) const {
    DAGSFC_ASSERT(layer < layers_ && v < n_);
    return static_cast<NodeId>(layer * n_ + v);
  }

  const SearchWorkspace* ws_;
  std::size_t n_;
  std::size_t layers_;
};

/// One search from \p source that stops as soon as *every* node in
/// \p targets has been settled — the inter-layer multicast fan-outs route
/// all meta-paths sharing a source with one heap pass instead of
/// |targets| early-exit runs. Each extract_path(ws, t) afterwards is
/// bitwise identical to its individual min_cost_path: targets are finalized
/// when popped, and continuing past an earlier target cannot rewrite
/// anything already settled. Duplicate target entries are fine.
void dijkstra_into_targets(const Graph& g, NodeId source,
                           std::span<const NodeId> targets,
                           SearchWorkspace& ws, const EdgeMask* mask = nullptr);

// --- legacy tier ---------------------------------------------------------

/// Dijkstra from \p source over the whole graph (or the filtered subgraph).
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        const EdgeFilter& filter = {});

/// Point-to-point min-cost path with early exit at \p target.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                const EdgeFilter& filter = {});

}  // namespace dagsfc::graph
