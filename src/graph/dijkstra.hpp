#pragma once
/// \file dijkstra.hpp
/// Min-cost path queries over link prices. Used by the RANV/MINV baselines,
/// by MBBE's strategy (2) (meta-path instantiation via minimum-cost paths on
/// the real-time network), and as the relaxation inside Yen's algorithm.

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Predicate limiting which edges a search may traverse (e.g. links with
/// remaining bandwidth). Absent ⇒ all edges usable.
using EdgeFilter = std::function<bool(EdgeId)>;

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// Single-source shortest path tree by edge weight (price).
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> dist;        // kInfCost if unreachable
  std::vector<NodeId> parent;      // kInvalidNode for source/unreached
  std::vector<EdgeId> parent_edge;

  [[nodiscard]] bool reached(NodeId v) const {
    return v < dist.size() && dist[v] < kInfCost;
  }
  /// Reconstructs the min-cost path source→target; nullopt if unreachable.
  [[nodiscard]] std::optional<Path> path_to(NodeId target) const;
};

/// Dijkstra from \p source over the whole graph (or the filtered subgraph).
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        const EdgeFilter& filter = {});

/// Point-to-point min-cost path with early exit at \p target.
[[nodiscard]] std::optional<Path> min_cost_path(const Graph& g, NodeId source,
                                                NodeId target,
                                                const EdgeFilter& filter = {});

}  // namespace dagsfc::graph
