#include "graph/path_cache.hpp"

#include <algorithm>

#include "graph/yen.hpp"

namespace dagsfc::graph {

void PathCache::index_add(ContextIndex& index, std::uint64_t context) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), context,
      [](const auto& p, std::uint64_t c) { return p.first < c; });
  if (it != index.end() && it->first == context) {
    ++it->second;
  } else {
    index.insert(it, {context, 1});
  }
}

void PathCache::index_remove(ContextIndex& index, std::uint64_t context,
                             std::size_t n) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), context,
      [](const auto& p, std::uint64_t c) { return p.first < c; });
  if (it == index.end() || it->first != context) return;
  it->second = it->second > n ? it->second - n : 0;
  if (it->second == 0) index.erase(it);
}

void PathCache::flipped_contexts(const ContextIndex& index, double before,
                                 double after, double eps, bool debit,
                                 std::vector<std::uint64_t>& out) {
  for (const auto& [context, count] : index) {
    const double rate = std::bit_cast<double>(context);
    const bool flip =
        debit ? usable(before, rate, eps) && !usable(after, rate, eps)
              : !usable(before, rate, eps) && usable(after, rate, eps);
    if (flip) out.push_back(context);
  }
}

template <typename Store>
void PathCache::make_room(Store& store, ContextIndex& index,
                          PathQueryCounters& c) {
  if (store.size() < max_entries_) return;
  c.evictions += store.size();
  store.clear();
  index.clear();
}

std::vector<EdgeId> PathCache::footprint(const ShortestPathTree& t) {
  std::vector<EdgeId> edges;
  edges.reserve(t.parent_edge.size());
  for (NodeId v = 0; v < t.parent.size(); ++v) {
    if (t.parent[v] != kInvalidNode) edges.push_back(t.parent_edge[v]);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::shared_ptr<const ShortestPathTree> PathCache::tree(
    const Graph& g, NodeId source, std::uint64_t context,
    const EdgeFilter& filter, PathQueryCounters& c) {
  const TreeKey key{context, source};
  if (auto it = trees_.find(key); it != trees_.end()) {
    ++c.cache_hits;
    return it->second.tree;
  }
  ++c.cache_misses;
  ++c.dijkstra_calls;
  auto entry = std::make_shared<const ShortestPathTree>(
      dijkstra(g, source, filter));
  make_room(trees_, tree_contexts_, c);
  trees_.emplace(key, TreeEntry{entry, footprint(*entry)});
  index_add(tree_contexts_, context);
  return entry;
}

std::shared_ptr<const ShortestPathTree> PathCache::tree(
    const Graph& g, NodeId source, std::uint64_t context,
    const EdgeMask* mask, SearchWorkspace& ws, PathQueryCounters& c) {
  const TreeKey key{context, source};
  if (auto it = trees_.find(key); it != trees_.end()) {
    ++c.cache_hits;
    return it->second.tree;
  }
  ++c.cache_misses;
  ++c.dijkstra_calls;
  auto entry =
      std::make_shared<const ShortestPathTree>(dijkstra(g, source, ws, mask));
  make_room(trees_, tree_contexts_, c);
  trees_.emplace(key, TreeEntry{entry, footprint(*entry)});
  index_add(tree_contexts_, context);
  return entry;
}

std::shared_ptr<const std::vector<Path>> PathCache::k_paths(
    const Graph& g, NodeId source, NodeId target, std::size_t k,
    std::uint64_t context, const EdgeFilter& filter, PathQueryCounters& c) {
  const YenKey key{context, source, target, k};
  if (auto it = yens_.find(key); it != yens_.end()) {
    ++c.cache_hits;
    return it->second;
  }
  ++c.cache_misses;
  ++c.yen_calls;
  auto entry = std::make_shared<const std::vector<Path>>(
      k_shortest_paths(g, source, target, k, filter));
  make_room(yens_, yen_contexts_, c);
  yens_.emplace(key, entry);
  index_add(yen_contexts_, context);
  return entry;
}

std::shared_ptr<const std::vector<Path>> PathCache::k_paths(
    const Graph& g, NodeId source, NodeId target, std::size_t k,
    std::uint64_t context, const EdgeMask* mask, SearchWorkspace& ws,
    PathQueryCounters& c) {
  const YenKey key{context, source, target, k};
  if (auto it = yens_.find(key); it != yens_.end()) {
    ++c.cache_hits;
    return it->second;
  }
  ++c.cache_misses;
  ++c.yen_calls;
  auto entry = std::make_shared<const std::vector<Path>>(
      k_shortest_paths(g, source, target, k, mask, ws));
  make_room(yens_, yen_contexts_, c);
  yens_.emplace(key, entry);
  index_add(yen_contexts_, context);
  return entry;
}

void PathCache::evict_tree_context(std::uint64_t context) {
  auto it = trees_.lower_bound(TreeKey{context, 0});
  std::size_t n = 0;
  while (it != trees_.end() && it->first.context == context) {
    it = trees_.erase(it);
    ++n;
  }
  inval_.trees_evicted += n;
  index_remove(tree_contexts_, context, n);
}

void PathCache::evict_yen_context(std::uint64_t context) {
  auto it = yens_.lower_bound(YenKey{context, 0, 0, 0});
  std::size_t n = 0;
  while (it != yens_.end() && it->first.context == context) {
    it = yens_.erase(it);
    ++n;
  }
  inval_.yens_evicted += n;
  index_remove(yen_contexts_, context, n);
}

void PathCache::on_link_debit(EdgeId e, double before, double after,
                              double eps) {
  ++inval_.link_debits;
  // The common case exits here: no cached rate flips, nothing is walked.
  std::vector<std::uint64_t> flipped;
  flipped_contexts(tree_contexts_, before, after, eps, /*debit=*/true,
                   flipped);
  flipped_contexts(yen_contexts_, before, after, eps, /*debit=*/true,
                   flipped);
  if (flipped.empty()) return;
  std::sort(flipped.begin(), flipped.end());
  flipped.erase(std::unique(flipped.begin(), flipped.end()), flipped.end());
  inval_.flips += flipped.size();

  for (const std::uint64_t context : flipped) {
    // Trees: only entries whose parent-edge footprint contains e can change
    // (exact — see the file comment); walk just this context's range.
    auto it = trees_.lower_bound(TreeKey{context, 0});
    while (it != trees_.end() && it->first.context == context) {
      if (std::binary_search(it->second.edges.begin(),
                             it->second.edges.end(), e)) {
        it = trees_.erase(it);
        ++inval_.trees_evicted;
        index_remove(tree_contexts_, context, 1);
      } else {
        ++it;
      }
    }
    // Yen lists at a flipped rate go wholesale (spur-masking).
    evict_yen_context(context);
  }
}

void PathCache::on_link_credit(EdgeId /*e*/, double before, double after,
                               double eps) {
  ++inval_.link_credits;
  std::vector<std::uint64_t> flipped;
  flipped_contexts(tree_contexts_, before, after, eps, /*debit=*/false,
                   flipped);
  flipped_contexts(yen_contexts_, before, after, eps, /*debit=*/false,
                   flipped);
  if (flipped.empty()) return;
  std::sort(flipped.begin(), flipped.end());
  flipped.erase(std::unique(flipped.begin(), flipped.end()), flipped.end());
  inval_.flips += flipped.size();
  for (const std::uint64_t context : flipped) {
    evict_tree_context(context);
    evict_yen_context(context);
  }
}

}  // namespace dagsfc::graph
