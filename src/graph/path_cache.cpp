#include "graph/path_cache.hpp"

#include "graph/yen.hpp"

namespace dagsfc::graph {

template <typename Store>
void PathCache::make_room(Store& store, std::uint64_t version,
                          PathQueryCounters& c) {
  if (store.size() < max_entries_) return;
  std::size_t before = store.size();
  for (auto it = store.begin(); it != store.end();) {
    if (it->first.version != version) {
      it = store.erase(it);
    } else {
      ++it;
    }
  }
  c.evictions += before - store.size();
  if (store.size() >= max_entries_) {
    c.evictions += store.size();
    store.clear();
  }
}

std::shared_ptr<const ShortestPathTree> PathCache::tree(
    const Graph& g, NodeId source, std::uint64_t version,
    std::uint64_t context, const EdgeFilter& filter, PathQueryCounters& c) {
  const TreeKey key{version, context, source};
  if (auto it = trees_.find(key); it != trees_.end()) {
    ++c.cache_hits;
    return it->second;
  }
  ++c.cache_misses;
  ++c.dijkstra_calls;
  auto entry = std::make_shared<const ShortestPathTree>(
      dijkstra(g, source, filter));
  make_room(trees_, version, c);
  trees_.emplace(key, entry);
  return entry;
}

std::shared_ptr<const ShortestPathTree> PathCache::tree(
    const Graph& g, NodeId source, std::uint64_t version,
    std::uint64_t context, const EdgeMask* mask, SearchWorkspace& ws,
    PathQueryCounters& c) {
  const TreeKey key{version, context, source};
  if (auto it = trees_.find(key); it != trees_.end()) {
    ++c.cache_hits;
    return it->second;
  }
  ++c.cache_misses;
  ++c.dijkstra_calls;
  auto entry =
      std::make_shared<const ShortestPathTree>(dijkstra(g, source, ws, mask));
  make_room(trees_, version, c);
  trees_.emplace(key, entry);
  return entry;
}

std::shared_ptr<const std::vector<Path>> PathCache::k_paths(
    const Graph& g, NodeId source, NodeId target, std::size_t k,
    std::uint64_t version, std::uint64_t context, const EdgeFilter& filter,
    PathQueryCounters& c) {
  const YenKey key{version, context, source, target, k};
  if (auto it = yens_.find(key); it != yens_.end()) {
    ++c.cache_hits;
    return it->second;
  }
  ++c.cache_misses;
  ++c.yen_calls;
  auto entry = std::make_shared<const std::vector<Path>>(
      k_shortest_paths(g, source, target, k, filter));
  make_room(yens_, version, c);
  yens_.emplace(key, entry);
  return entry;
}

std::shared_ptr<const std::vector<Path>> PathCache::k_paths(
    const Graph& g, NodeId source, NodeId target, std::size_t k,
    std::uint64_t version, std::uint64_t context, const EdgeMask* mask,
    SearchWorkspace& ws, PathQueryCounters& c) {
  const YenKey key{version, context, source, target, k};
  if (auto it = yens_.find(key); it != yens_.end()) {
    ++c.cache_hits;
    return it->second;
  }
  ++c.cache_misses;
  ++c.yen_calls;
  auto entry = std::make_shared<const std::vector<Path>>(
      k_shortest_paths(g, source, target, k, mask, ws));
  make_room(yens_, version, c);
  yens_.emplace(key, entry);
  return entry;
}

}  // namespace dagsfc::graph
