#include "graph/dot.hpp"

#include <iomanip>
#include <sstream>

namespace dagsfc::graph {

std::string to_dot(const Graph& g, const std::string& name,
                   const NodeLabeler& labeler) {
  std::ostringstream os;
  os << "graph \"" << name << "\" {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\""
       << (labeler ? labeler(v) : std::to_string(v)) << "\"];\n";
  }
  os << std::fixed << std::setprecision(2);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    os << "  n" << ed.u << " -- n" << ed.v << " [label=\"" << ed.weight
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dagsfc::graph
